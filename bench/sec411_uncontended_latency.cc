// Regenerates the Section 4.1.1 result: the latency of an uncontended
// lock/unlock pair for the original and modified Distributed Locks and the
// spin lock.
//
// Paper (HECTOR, 16 MHz):
//   MCS     5.40 us
//   H2-MCS  3.69 us  (32% better than MCS)
//   Spin    3.65 us  (H2 within ~1% of spin)
//
// Absolute simulator values depend on where the lock word lives (here: one
// ring hop away, as kernel locks usually are); the relationships -- H1 beats
// MCS, H2 beats H1 and lands within a few percent of the spin lock -- are the
// reproduced result.

#include <cstdio>

#include "src/hsim/locks/stress.h"

int main() {
  using hsim::LockKind;
  printf("Section 4.1.1: uncontended lock/unlock pair latency (lock one ring hop away)\n\n");
  printf("%-8s %12s %14s\n", "", "measured", "paper");
  const double mcs = hsim::UncontendedPairLatencyUs(LockKind::kMcs);
  const double h1 = hsim::UncontendedPairLatencyUs(LockKind::kMcsH1);
  const double h2 = hsim::UncontendedPairLatencyUs(LockKind::kMcsH2);
  const double spin = hsim::UncontendedPairLatencyUs(LockKind::kSpin35us);
  printf("%-8s %9.2f us %11s\n", "MCS", mcs, "5.40 us");
  printf("%-8s %9.2f us %11s\n", "H1-MCS", h1, "-");
  printf("%-8s %9.2f us %11s\n", "H2-MCS", h2, "3.69 us");
  printf("%-8s %9.2f us %11s\n", "Spin", spin, "3.65 us");
  printf("\nH2 improvement over MCS: %.0f%% (paper: 32%%)\n", 100.0 * (mcs - h2) / mcs);
  printf("H2 vs spin lock:         %+.0f%% (paper: +1%%)\n", 100.0 * (h2 - spin) / spin);

  const bool ok = h1 < mcs && h2 < h1 && h2 < spin * 1.15 && (mcs - h2) / mcs > 0.15;
  printf("\n%s\n", ok ? "Relationships match the paper." : "RELATIONSHIP MISMATCH!");
  return ok ? 0 : 1;
}
