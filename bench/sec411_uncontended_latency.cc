// Regenerates the Section 4.1.1 result: the latency of an uncontended
// lock/unlock pair for the original and modified Distributed Locks and the
// spin lock.
//
// Paper (HECTOR, 16 MHz):
//   MCS     5.40 us
//   H2-MCS  3.69 us  (32% better than MCS)
//   Spin    3.65 us  (H2 within ~1% of spin)
//
// Absolute simulator values depend on where the lock word lives (here: one
// ring hop away, as kernel locks usually are); the relationships -- H1 beats
// MCS, H2 beats H1 and lands within a few percent of the spin lock -- are the
// reproduced result.

#include <cstdio>

#include "src/hmetrics/bench_main.h"
#include "src/hsim/locks/stress.h"

int main(int argc, char** argv) {
  using hsim::LockKind;
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("sec411_uncontended_latency");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  const int rounds = opts.smoke ? 8 : 64;
  report.SetParam("rounds", rounds);
  printf("Section 4.1.1: uncontended lock/unlock pair latency (lock one ring hop away)\n\n");
  printf("%-8s %12s %14s\n", "", "measured", "paper");
  const double mcs = hsim::UncontendedPairLatencyUs(LockKind::kMcs, rounds);
  const double h1 = hsim::UncontendedPairLatencyUs(LockKind::kMcsH1, rounds);
  const double h2 = hsim::UncontendedPairLatencyUs(LockKind::kMcsH2, rounds);
  const double spin = hsim::UncontendedPairLatencyUs(LockKind::kSpin35us, rounds);
  printf("%-8s %9.2f us %11s\n", "MCS", mcs, "5.40 us");
  printf("%-8s %9.2f us %11s\n", "H1-MCS", h1, "-");
  printf("%-8s %9.2f us %11s\n", "H2-MCS", h2, "3.69 us");
  printf("%-8s %9.2f us %11s\n", "Spin", spin, "3.65 us");
  printf("\nH2 improvement over MCS: %.0f%% (paper: 32%%)\n", 100.0 * (mcs - h2) / mcs);
  printf("H2 vs spin lock:         %+.0f%% (paper: +1%%)\n", 100.0 * (h2 - spin) / spin);

  const bool ok = h1 < mcs && h2 < h1 && h2 < spin * 1.15 && (mcs - h2) / mcs > 0.15;
  printf("\n%s\n", ok ? "Relationships match the paper." : "RELATIONSHIP MISMATCH!");

  struct {
    const char* name;
    double us;
  } rows[] = {{"mcs", mcs}, {"h1-mcs", h1}, {"h2-mcs", h2}, {"spin-35us", spin}};
  for (const auto& row : rows) {
    report.AddSeries("pair_latency_us", {{"lock", row.name}})
        .AddPoint({{"us", row.us}});
  }
  report.AddSeries("relationships")
      .AddPoint({{"h2_vs_mcs_improvement", (mcs - h2) / mcs},
                 {"h2_vs_spin", (h2 - spin) / spin},
                 {"ok", ok ? 1.0 : 0.0}});
  if (!hmetrics::WriteReport(opts, report)) {
    return 1;
  }
  return ok ? 0 : 1;
}
