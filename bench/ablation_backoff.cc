// Ablation: the exponential-backoff cap of the spin lock (simulator).
//
// The paper evaluates two caps: 35 us ("intended for lightly contended
// locks ... used internal to our operating system for a cluster size of 4")
// and 2 ms ("yields optimal results for the experiments presented" but
// "highly susceptible to starvation").  This sweep fills in the curve
// between them: throughput-derived response time, lock-module utilization
// (the second-order footprint), and the starvation tail.

#include <cstdio>

#include "src/hmetrics/bench_main.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/stats.h"
#include "src/hsim/task.h"

namespace {

struct Row {
  double w_us;
  double module_util;
  double frac_over_2ms;
  double max_us;
};

Row RunCap(hsim::Tick cap, unsigned procs, hsim::Tick hold, hsim::Tick duration) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hsim::SimSpinLock lock(&machine, /*home=*/0, cap);
  hsim::LatencyRecorder recorder;
  std::uint64_t window_ops = 0;
  const hsim::Tick warm = hsim::UsToTicks(1000);
  const hsim::Tick deadline = warm + duration;
  struct Ctx {
    hsim::SimSpinLock* lock;
    hsim::LatencyRecorder* rec;
    std::uint64_t* ops;
    hsim::Tick warm, deadline, hold;
  } ctx{&lock, &recorder, &window_ops, warm, deadline, hold};
  for (unsigned p = 0; p < procs; ++p) {
    engine.Spawn([](hsim::Processor* proc, Ctx* c) -> hsim::Task<void> {
      while (proc->now() < c->deadline) {
        const hsim::Tick t0 = proc->now();
        co_await c->lock->Acquire(*proc);
        const hsim::Tick t1 = proc->now();
        if (t1 >= c->warm && t1 <= c->deadline) {
          ++*c->ops;
          if (t0 >= c->warm) {
            c->rec->Record(t1 - t0);
          }
        }
        co_await proc->Compute(c->hold);
        co_await c->lock->Release(*proc);
        co_await proc->Compute(48);
      }
    }(&machine.processor(p), &ctx));
  }
  engine.RunUntilIdle();
  Row row;
  row.w_us = window_ops ? procs * hsim::TicksToUs(duration) / static_cast<double>(window_ops) : 0;
  row.module_util = engine.now() ? static_cast<double>(machine.memory(0).total_busy()) /
                                       static_cast<double>(engine.now())
                                 : 0;
  row.frac_over_2ms = recorder.fraction_above(hsim::UsToTicks(2000));
  row.max_us = hsim::TicksToUs(recorder.max());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("ablation_backoff");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Ablation: spin-lock backoff cap sweep, p=16, hold=25 us (simulator)\n\n");
  printf("%10s %12s %14s %12s %12s\n", "cap(us)", "W(us)", "module util", ">2ms frac",
         "worst(us)");
  const double caps_us[] = {8, 35, 140, 500, 2000, 8000};
  hmetrics::BenchSeries& out = report.AddSeries("cap_sweep", {{"lock", "spin"}});
  for (double cap : caps_us) {
    const Row r = RunCap(hsim::UsToTicks(cap), 16, hsim::UsToTicks(25),
                         hsim::UsToTicks(opts.smoke ? 8000 : 60000));
    printf("%10.0f %12.1f %13.1f%% %11.2f%% %12.0f\n", cap, r.w_us, 100 * r.module_util,
           100 * r.frac_over_2ms, r.max_us);
    out.AddPoint({{"cap_us", cap},
                  {"w_us", r.w_us},
                  {"module_util", r.module_util},
                  {"frac_over_2ms", r.frac_over_2ms},
                  {"worst_us", r.max_us}});
  }
  printf("\nReading: small caps flood the lock's memory module (second-order\n"
         "contention slows everyone, including the holder); large caps quiet the\n"
         "memory system but leave the lock idle between retries and grow an\n"
         "ever-longer starvation tail.  The queue-based Distributed Locks escape\n"
         "the trade-off entirely, which is the paper's argument for them.\n");
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
