// Regenerates Figure 4: instruction counts required to execute a lock/unlock
// pair for each locking algorithm in the absence of contention.
//
// The counts are produced by instrumentation: the simulated lock algorithms
// charge every instruction they execute to per-processor counters, and this
// harness differences the counters around one uncontended acquire/release
// pair.  Expected (paper) values:
//
//            Atomic  Mem  Reg  Br
//   MCS        2      2    3    5
//   H1-MCS     2      1    3    5
//   H2-MCS     2      0    3    4
//   Spin       2      0    1    3

#include <cstdio>
#include <cstdint>
#include <memory>

#include "src/halloc/shared_pool.h"
#include "src/halloc/slab_core.h"
#include "src/hmetrics/bench_main.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/locks/mcs_lock.h"
#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/opstats.h"

namespace {

using hsim::LockKind;

hsim::Task<void> OnePair(hsim::Processor* p, hsim::SimLock* lock) {
  co_await lock->Acquire(*p);
  co_await lock->Release(*p);
}

hsim::OpStats CountPair(LockKind kind) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  auto lock = MakeSimLock(&machine, kind, 0);
  hsim::Processor& p = machine.processor(0);
  engine.Spawn(OnePair(&p, lock.get()));  // warm-up pair
  engine.RunUntilIdle();
  const hsim::OpStats before = p.stats();
  engine.Spawn(OnePair(&p, lock.get()));
  engine.RunUntilIdle();
  return p.stats() - before;
}

hsim::Task<void> OneSharedPair(hsim::Processor* p, hsim::SimDrwLock* lock) {
  co_await lock->AcquireShared(*p);
  co_await lock->ReleaseShared(*p);
}

// Uncontended reader or writer pair on the distributed RW lock (4-station
// default machine, so the writer sweep reads 4 cluster counters).
hsim::OpStats CountDrwPair(bool shared) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hsim::SimDrwLock lock(&machine, /*home=*/0);
  hsim::Processor& p = machine.processor(0);
  if (shared) {
    engine.Spawn(OneSharedPair(&p, &lock));  // warm-up pair
  } else {
    engine.Spawn(OnePair(&p, &lock));
  }
  engine.RunUntilIdle();
  const hsim::OpStats before = p.stats();
  if (shared) {
    engine.Spawn(OneSharedPair(&p, &lock));
  } else {
    engine.Spawn(OnePair(&p, &lock));
  }
  engine.RunUntilIdle();
  return p.stats() - before;
}

template <class Core>
hsim::Task<void> OneAlloc(hsim::Processor* p, Core* core, std::uint64_t* out) {
  *out = co_await core->Alloc(*p);
}

template <class Core>
hsim::Task<void> OneFree(hsim::Processor* p, Core* core, std::uint64_t ref) {
  co_await core->Free(*p, ref);
}

struct AllocPairCounts {
  hsim::OpStats alloc;
  hsim::OpStats free;
};

// Differenced around one warm uncontended alloc and one free on processor 0,
// the same protocol as CountPair: a warm-up pair first so both measured ops
// take the steady-state path (slab: magazine pop/push under the cache lock;
// shared pool: stack pop/push under the pool lock).
template <class Core, class Make>
AllocPairCounts CountAllocPair(Make make) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hsim::SimBackend backend(&machine);
  std::unique_ptr<Core> core = make(&backend);
  hsim::Processor& p = machine.processor(0);
  std::uint64_t ref = 0;
  engine.Spawn(OneAlloc(&p, core.get(), &ref));  // warm-up pair
  engine.RunUntilIdle();
  engine.Spawn(OneFree(&p, core.get(), ref));
  engine.RunUntilIdle();
  AllocPairCounts counts;
  hsim::OpStats before = p.stats();
  engine.Spawn(OneAlloc(&p, core.get(), &ref));
  engine.RunUntilIdle();
  counts.alloc = p.stats() - before;
  before = p.stats();
  engine.Spawn(OneFree(&p, core.get(), ref));
  engine.RunUntilIdle();
  counts.free = p.stats() - before;
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("fig4_instruction_counts");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Figure 4: instruction counts for an uncontended lock/unlock pair\n");
  printf("(regenerated from simulator instrumentation; paper values in parentheses)\n\n");
  printf("%-8s %14s %14s %14s %14s\n", "", "Atomic", "Mem", "Reg", "Br");
  struct Row {
    const char* name;
    LockKind kind;
    int paper[4];
  };
  const Row rows[] = {
      {"MCS", LockKind::kMcs, {2, 2, 3, 5}},
      {"H1-MCS", LockKind::kMcsH1, {2, 1, 3, 5}},
      {"H2-MCS", LockKind::kMcsH2, {2, 0, 3, 4}},
      {"Spin", LockKind::kSpin35us, {2, 0, 1, 3}},
  };
  bool all_match = true;
  for (const Row& row : rows) {
    const hsim::OpStats d = CountPair(row.kind);
    const std::uint64_t measured[4] = {d.atomic_ops, d.mem_accesses(), d.reg_instrs, d.branches};
    printf("%-8s", row.name);
    bool row_match = true;
    for (int i = 0; i < 4; ++i) {
      printf("      %4llu (%d)", static_cast<unsigned long long>(measured[i]), row.paper[i]);
      row_match &= measured[i] == static_cast<std::uint64_t>(row.paper[i]);
    }
    all_match &= row_match;
    printf("\n");
    report.AddSeries("instruction_counts", {{"lock", row.name}})
        .AddPoint({{"atomic", static_cast<double>(measured[0])},
                   {"mem", static_cast<double>(measured[1])},
                   {"reg", static_cast<double>(measured[2])},
                   {"br", static_cast<double>(measured[3])},
                   {"matches_paper", row_match ? 1.0 : 0.0}});
  }
  // Beyond the paper: the distributed RW lock's uncontended pairs, pinned
  // against counts derived from the code path (no paper column exists).
  // Reader pair: CAS-bump own counter (1 load + 1 atomic, 1 reg, 1 br), flag
  // load (+1 branch), CAS-drop (1 load + 1 atomic, 1 reg, 1 br).  Writer
  // pair: wmutex CAS, flag store, 4 sweep loads (+1 branch each), then two
  // release stores (+1 branch).
  printf("\ndistributed RW lock (derived expected values in parentheses)\n");
  struct DrwRow {
    const char* name;
    bool shared;
    int expected[4];
  };
  const DrwRow drw_rows[] = {
      {"DRW-read", true, {2, 3, 2, 3}},
      {"DRW-write", false, {1, 7, 1, 6}},
  };
  for (const DrwRow& row : drw_rows) {
    const hsim::OpStats d = CountDrwPair(row.shared);
    const std::uint64_t measured[4] = {d.atomic_ops, d.mem_accesses(), d.reg_instrs, d.branches};
    printf("%-9s", row.name);
    bool row_match = true;
    for (int i = 0; i < 4; ++i) {
      printf("      %4llu (%d)", static_cast<unsigned long long>(measured[i]), row.expected[i]);
      row_match &= measured[i] == static_cast<std::uint64_t>(row.expected[i]);
    }
    all_match &= row_match;
    printf("\n");
    report.AddSeries("instruction_counts", {{"lock", row.name}})
        .AddPoint({{"atomic", static_cast<double>(measured[0])},
                   {"mem", static_cast<double>(measured[1])},
                   {"reg", static_cast<double>(measured[2])},
                   {"br", static_cast<double>(measured[3])},
                   {"matches_paper", row_match ? 1.0 : 0.0}});
  }

  // Beyond the paper: the halloc fast paths, one row per operation (not per
  // pair -- alloc and free cost differently).  Derived expected values:
  //   Slab alloc: cache-lock CAS (+1 reg, +1 br), load loaded, load count
  //   (+1 br for the count test), PopRound's round load + count store
  //   (+1 reg), release store (+1 br)            -> 1 atomic, 5 mem, 2 reg, 3 br.
  //   Slab free: same shell; PushRound stores the round instead of loading
  //   it (2 loads + 3 stores)                    -> 1 atomic, 5 mem, 2 reg, 3 br.
  //   Pool alloc: pool-lock CAS (+1 reg, +1 br), head load (+1 br), next
  //   load, head store, release store (+1 br)    -> 1 atomic, 4 mem, 1 reg, 3 br.
  //   Pool free: head load, next store, head store, no nil test
  //                                              -> 1 atomic, 4 mem, 1 reg, 2 br.
  // The slab pays one extra mem access and a reg op over the shared pool --
  // the price of the magazine indirection -- but every one of its references
  // stays on the allocating cluster's station (bench/alloc_scaling).
  printf("\nhalloc allocators, per operation (derived expected values in "
         "parentheses)\n");
  const AllocPairCounts slab = CountAllocPair<halloc::SlabAllocatorCore<hsim::SimBackend>>(
      [](hsim::SimBackend* b) {
        return std::make_unique<halloc::SlabAllocatorCore<hsim::SimBackend>>(
            b, halloc::SlabConfig{});
      });
  const AllocPairCounts pool = CountAllocPair<halloc::SharedPoolCore<hsim::SimBackend>>(
      [](hsim::SimBackend* b) {
        return std::make_unique<halloc::SharedPoolCore<hsim::SimBackend>>(
            b, /*capacity=*/64, /*home=*/0);
      });
  struct AllocRow {
    const char* name;
    const hsim::OpStats* d;
    int expected[4];
  };
  const AllocRow alloc_rows[] = {
      {"Slab-alloc", &slab.alloc, {1, 5, 2, 3}},
      {"Slab-free", &slab.free, {1, 5, 2, 3}},
      {"Pool-alloc", &pool.alloc, {1, 4, 1, 3}},
      {"Pool-free", &pool.free, {1, 4, 1, 2}},
  };
  for (const AllocRow& row : alloc_rows) {
    const hsim::OpStats& d = *row.d;
    const std::uint64_t measured[4] = {d.atomic_ops, d.mem_accesses(), d.reg_instrs, d.branches};
    printf("%-10s", row.name);
    bool row_match = true;
    for (int i = 0; i < 4; ++i) {
      printf("      %4llu (%d)", static_cast<unsigned long long>(measured[i]), row.expected[i]);
      row_match &= measured[i] == static_cast<std::uint64_t>(row.expected[i]);
    }
    all_match &= row_match;
    printf("\n");
    report.AddSeries("instruction_counts", {{"lock", row.name}})
        .AddPoint({{"atomic", static_cast<double>(measured[0])},
                   {"mem", static_cast<double>(measured[1])},
                   {"reg", static_cast<double>(measured[2])},
                   {"br", static_cast<double>(measured[3])},
                   {"matches_paper", row_match ? 1.0 : 0.0}});
  }

  printf("\n%s\n", all_match ? "All rows match the paper exactly."
                             : "MISMATCH against the paper's table!");
  if (!hmetrics::WriteReport(opts, report)) {
    return 1;
  }
  return all_match ? 0 : 1;
}
