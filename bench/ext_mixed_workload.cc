// Extension experiment: the conclusion's mixed-workload claim.
//
// "Taken together these results suggest that with a mix of real applications
// having both independent and non-independent demands, a cluster size
// somewhere in the range of 4 to 16 processors would be optimal for our
// system."  (Section 6.)
//
// The paper never ran this experiment -- Figures 7c and 7d pull in opposite
// directions (independent faults want tiny clusters, shared faults want
// moderate ones) and the conclusion interpolates.  Here we run the mix: 8
// processors executing independent sequential programs interleaved with 8
// processors of one SPMD program doing fault/barrier/unmap rounds, across
// cluster sizes.

#include <cstdio>

#include "src/hkernel/workloads.h"
#include "src/hmetrics/bench_main.h"

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("ext_mixed_workload");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Extension: mixed workload (8 independent + 8 SPMD processors),\n");
  printf("mean fault latency vs cluster size (us; lower is better)\n\n");
  printf("%-10s %12s %12s %14s %12s\n", "csize", "fault(us)", "p95(us)", "replications",
         "wd-retries");
  // The mean is dominated by the independent side's cheap faults; the SPMD
  // side's pain shows in the tail, so score configurations by p95.
  double best = 1e18;
  unsigned best_cs = 0;
  hmetrics::BenchSeries& out = report.AddSeries("mixed_fault");
  for (unsigned cs : {1u, 2u, 4u, 8u, 16u}) {
    hkernel::FaultTestParams params;
    params.cluster_size = cs;
    params.active_procs = 16;
    params.pages = 8;      // private pages per independent program
    params.iterations = opts.smoke ? 2 : 3;  // SPMD rounds
    params.warmup = 1;
    params.warmup_time = hsim::UsToTicks(2000);
    const hkernel::FaultTestResult r = RunMixedFaultTest(params);
    printf("%-10u %12.1f %12.1f %14llu %12llu\n", cs, r.latency.mean_us(),
           hsim::TicksToUs(r.latency.percentile(95)),
           static_cast<unsigned long long>(r.counters.replications),
           static_cast<unsigned long long>(r.counters.rpc_would_deadlock));
    const double p95 = hsim::TicksToUs(r.latency.percentile(95));
    out.AddPoint({{"cluster_size", static_cast<double>(cs)},
                  {"mean_us", r.latency.mean_us()},
                  {"p95_us", p95},
                  {"replications", static_cast<double>(r.counters.replications)},
                  {"would_deadlock", static_cast<double>(r.counters.rpc_would_deadlock)}});
    if (p95 < best) {
      best = p95;
      best_cs = cs;
    }
  }
  printf("\nBest cluster size for the mix by p95 fault latency: %u "
         "(the conclusion predicts 4..16)\n", best_cs);
  report.AddSeries("best").AddPoint({{"cluster_size", static_cast<double>(best_cs)},
                                     {"p95_us", best}});
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
