// Ablation: the two Distributed Lock modifications in isolation (simulator).
//
// Questions answered, one per design decision in DESIGN.md:
//   1. What does each modification buy uncontended?  (H1 removes the qnode
//      init store; H2 additionally removes the successor-check load+branch.)
//   2. What does H2's unconditional release cost under contention?  (Every
//      release with a successor repairs the queue: two extra swaps.)
//   3. How often does the swap-only release actually repair per variant?

#include <cstdio>

#include "src/hmetrics/bench_main.h"
#include "src/hsim/locks/stress.h"

namespace {

using hsim::LockKind;

void ContentionRow(LockKind kind, const char* name, const hmetrics::BenchOptions& opts,
                   hmetrics::BenchReport* report) {
  hsim::LockStressParams params;
  params.kind = kind;
  params.processors = 16;
  params.hold = 0;
  params.duration = hsim::UsToTicks(opts.smoke ? 2000 : 15000);
  const hsim::LockStressResult r = hsim::RunLockStress(params);
  const double uncontended = hsim::UncontendedPairLatencyUs(kind, opts.smoke ? 8 : 64);
  const double repair_rate = static_cast<double>(r.mcs_repairs) /
                             static_cast<double>(r.acquisitions ? r.acquisitions : 1);
  printf("%-8s %16.2f %14.1f %12llu %15.1f%%\n", name, uncontended, r.little_response_us(),
         static_cast<unsigned long long>(r.mcs_repairs), 100.0 * repair_rate);
  report->AddSeries("variant", {{"lock", hsim::LockKindName(kind)}})
      .AddPoint({{"uncontended_us", uncontended},
                 {"w_p16_h0_us", r.little_response_us()},
                 {"repairs", static_cast<double>(r.mcs_repairs)},
                 {"repairs_per_acquire", repair_rate}});
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("ablation_mcs_mods");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Ablation: MCS modifications H1 and H2 (simulator, 16 MHz HECTOR model)\n\n");
  printf("%-8s %16s %14s %12s %16s\n", "variant", "uncontended(us)", "W@p16,h0(us)",
         "repairs", "repairs/acquire");
  ContentionRow(LockKind::kMcs, "MCS", opts, &report);
  ContentionRow(LockKind::kMcsH1, "H1-MCS", opts, &report);
  ContentionRow(LockKind::kMcsH2, "H2-MCS", opts, &report);
  printf("\nReading: H1 is strictly better than MCS (cheaper uncontended, same\n"
         "contended behaviour).  H2 buys a further uncontended improvement at a\n"
         "constant contended repair cost -- the trade the paper makes because the\n"
         "kernel's coarse locks are mostly uncontended (and hierarchical\n"
         "clustering keeps them that way).\n");
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
