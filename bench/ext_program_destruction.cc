// Extension experiment: the Section 2.5 "program destruction" lesson,
// quantified.
//
// A parallel program (one root + one child per processor, spread over the
// clusters) is torn down all at once while its processes are still messaging
// the root -- the workload the paper says made deadlock-avoidance retries
// common.  Two designs are compared:
//
//   combined      -- family-tree links live inside the process descriptors
//                    that message passing reserves (HURRICANE's design);
//                    remote unlink handlers must fail on a reserved
//                    descriptor, so destruction storms retry.
//   separate-tree -- tree links in their own structure, locked in tree order
//                    only; remote unlinks never fail (the design the paper
//                    wishes it had used).

#include <cstdio>
#include <memory>
#include <vector>

#include "src/hkernel/process.h"
#include "src/hmetrics/bench_main.h"
#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace {

using hkernel::kNoPid;
using hkernel::Pid;
using hkernel::ProcessManager;
using hkernel::TreePolicy;

struct Result {
  double teardown_us;
  ProcessManager::Stats stats;
};

Result Run(TreePolicy policy, std::uint32_t cluster_size, int messages_per_child) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hkernel::KernelConfig config;
  config.cluster_size = cluster_size;
  hkernel::KernelSystem system(&machine, config);
  ProcessManager pm(&system, policy);
  bool stop = false;
  for (hsim::ProcId p = 0; p < machine.num_processors(); ++p) {
    engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
  }

  struct Shared {
    Pid root = kNoPid;
    std::vector<Pid> children;
    int destroyed = 0;
    hsim::Tick teardown_start = 0;
    hsim::Tick teardown_end = 0;
  };
  auto shared = std::make_shared<Shared>();

  struct Ctx {
    hsim::Engine* engine;
    hsim::Machine* machine;
    hkernel::KernelSystem* system;
    ProcessManager* pm;
    bool* stop;
    int messages;
  } ctx{&engine, &machine, &system, &pm, &stop, messages_per_child};

  engine.Spawn([](Ctx c, std::shared_ptr<Shared> s) -> hsim::Task<void> {
    s->root = co_await c.pm->Create(c.machine->processor(0), 0, kNoPid);
    for (hsim::ProcId proc = 0; proc < 16; ++proc) {
      s->children.push_back(co_await c.pm->Create(c.machine->processor(proc), proc, s->root));
    }
    s->teardown_start = c.engine->now();
    for (hsim::ProcId proc = 0; proc < 16; ++proc) {
      // Each child sends a few last messages to the root, then dies -- all at
      // about the same time (Section 2.5).
      c.engine->Spawn([](Ctx cc, std::shared_ptr<Shared> ss,
                         hsim::ProcId self) -> hsim::Task<void> {
        for (int i = 0; i < cc.messages; ++i) {
          co_await cc.pm->SendMessage(cc.machine->processor(self), ss->root);
        }
        co_await cc.pm->Destroy(cc.machine->processor(self), ss->children[self]);
        if (++ss->destroyed == 16) {
          co_await cc.pm->Destroy(cc.machine->processor(0), ss->root);
          ss->teardown_end = cc.engine->now();
          *cc.stop = true;
        }
      }(c, s, proc));
    }
  }(ctx, shared));
  engine.RunUntilIdle();

  Result result;
  result.teardown_us = hsim::TicksToUs(shared->teardown_end - shared->teardown_start);
  result.stats = pm.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("ext_program_destruction");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  const int messages_per_child = opts.smoke ? 2 : 6;
  report.SetParam("messages_per_child", messages_per_child);
  printf("Extension: parallel program destruction (Section 2.5), 17 processes,\n");
  printf("children messaging the root while the whole program is torn down.\n\n");
  printf("%-14s %8s %14s %12s %10s\n", "tree design", "csize", "teardown(us)", "unlink-rtr",
         "messages");
  for (std::uint32_t cs : {2u, 4u, 8u}) {
    for (TreePolicy policy : {TreePolicy::kCombined, TreePolicy::kSeparateTree}) {
      const Result r = Run(policy, cs, messages_per_child);
      const char* design = policy == TreePolicy::kCombined ? "combined" : "separate-tree";
      printf("%-14s %8u %14.0f %12llu %10llu\n", design, cs, r.teardown_us,
             static_cast<unsigned long long>(r.stats.unlink_retries),
             static_cast<unsigned long long>(r.stats.messages));
      report.AddSeries("teardown", {{"design", design}})
          .AddPoint({{"cluster_size", static_cast<double>(cs)},
                     {"teardown_us", r.teardown_us},
                     {"unlink_retries", static_cast<double>(r.stats.unlink_retries)},
                     {"messages", static_cast<double>(r.stats.messages)}});
    }
  }
  printf("\nReading: with the family tree inside the message-passing descriptors\n"
         "(combined), simultaneous sibling destruction keeps hitting reserved\n"
         "parents and retrying across clusters.  A dedicated tree structure with\n"
         "tree-order locking (what Section 2.5 concludes they should have built)\n"
         "eliminates the retries and shortens the teardown.\n");
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
