// Offered load vs achieved throughput and latency for the hsvc serving
// runtime, swept across cluster counts -- the serving-layer analogue of the
// paper's Figure 7 cluster sweep.
//
// Two claims, one per load regime:
//
//   underload (0.5x capacity): adding clusters adds capacity near-linearly.
//     Each cluster gets the same per-cluster offered load; the completed
//     fraction stays ~1.0 and total achieved throughput tracks clusters.
//
//   overload (2x capacity): admission control converts excess load into
//     prompt rejections instead of queueing collapse.  The completed
//     fraction settles near capacity/offered, rejections are nonzero, and
//     tail latency stays bounded by the queue bound and the retry budget
//     rather than growing with the backlog.
//
// Pump service is token-bucket paced (ServiceConfig::service_rate_per_worker),
// so *capacity is configured*, not host-speed-dependent: the frac_* fields
// and the achieved/offered ratios are stable enough to regression-gate even
// on a loaded single-core CI host.  Wall-clock latency percentiles
// (coordinated-omission-safe, from each op's scheduled arrival) are emitted
// in a separate series that the baseline deliberately omits.

// A third section races the serving layer's coarse lock: every hsvc table
// operation serializes on its cluster replica's HybridTable coarse lock, so
// the lock family (H1/H2 MCS vs the NUMA-aware CNA, HMCS-T, and Fissile) is
// raced on exactly that table under a closed-loop 16-thread mixed workload,
// with an hprof site attached for same-cluster/cross-cluster handoff
// attribution.  Wall-clock throughput and the handoff mix are host-dependent
// and ride in the ungated series; the gated series carries only the
// configuration-determined op counts.

// A fourth section ("blame") runs a deterministic simulated contention
// scenario -- 16 processors in 4 clusters sharing one lock, each request a
// flight-recorded think/acquire/hold cycle -- for the kernel's coarse lock
// (the 35 us-capped backoff spinlock) and the NUMA-aware hmcs-t, and gates
// the hwhy headline number: the lock_wait share of the promoted p99 tail
// must be strictly lower for hmcs-t than for coarse, and every promoted
// ledger must reconcile with its end-to-end latency within 1%.  Simulated
// ticks, so the series is exact and regression-gated in BENCH_BASELINE.json.
//
// With --why the open-loop sweep below additionally runs with a flight
// recorder attached end to end (hload opens/closes records, hsvc stamps the
// admit/inbox/batch boundaries and charges lock waits via the pump's
// ScopedLedger) and prints the hwhy tail-blame report for the whole sweep;
// --why=PATH also writes the raw hurricane-flight/1 document for the CLI.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/hflight/blame.h"
#include "src/hflight/flight.h"
#include "src/hload/open_loop.h"
#include "src/hlock/hybrid_table.h"
#include "src/hlock/mcs_locks.h"
#include "src/hlock/numa_locks.h"
#include "src/hmetrics/bench_main.h"
#include "src/hprof/lock_site.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"

namespace {

// --- serving-layer coarse-lock race ----------------------------------------

// Native locks group dense hlock thread ids into synthetic clusters; the race
// uses 16 threads in 4 clusters of 4, the HECTOR station shape.
constexpr unsigned kRaceThreads = 16;
constexpr unsigned kRacePpc = 4;

// HybridTable default-constructs its CoarseLock, so the topology-aware locks
// get thin default-constructible wrappers that bake in the cluster map.
struct RaceCnaLock : hlock::CnaLock {
  RaceCnaLock() : hlock::CnaLock(kRacePpc) {}
};
struct RaceHmcsTLock : hlock::HmcsTLock {
  RaceHmcsTLock() : hlock::HmcsTLock(kRacePpc) {}
};

struct LockRaceOutcome {
  std::uint64_t ops = 0;          // operations completed (exact, closed loop)
  double ops_per_s = 0;           // wall-clock rate (host-dependent)
  double frac_contended = 0;      // coarse-lock acquisitions that waited
  double frac_same_processor = 0; // handoff mix by synthetic cluster
  double frac_same_cluster = 0;
  double frac_cross_cluster = 0;
  std::uint64_t max_queue_depth = 0;
};

// Closed-loop mixed workload against one HybridTable: each thread runs
// `ops_per_thread` operations over a small shared key space, mostly Peek
// (reads) with every 8th op a write through an exclusive reservation.  Every
// operation takes the coarse lock, so the lock sees the service's real
// access pattern: short critical sections at high arrival rate.
template <typename CoarseLock>
LockRaceOutcome RunLockRace(std::size_t ops_per_thread, hprof::LockSiteStats* site) {
  hlock::HybridTable<std::uint64_t, std::uint64_t, CoarseLock> table;
  table.coarse_lock().set_site(site);

  constexpr std::uint64_t kKeys = 64;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kRaceThreads);
  for (unsigned t = 0; t < kRaceThreads; ++t) {
    pool.emplace_back([&, t] {
      // Seed this thread's slice of the key space before the measured phase;
      // the write also assigns the thread's dense id while unmeasured.
      for (std::uint64_t key = t; key < kKeys; key += kRaceThreads) {
        auto guard = table.Acquire(key);
        guard.value() = key;
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t h = t * 2654435761u + 12345;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        h = h * 6364136223846793005u + 1442695040888963407u;
        const std::uint64_t key = (h >> 33) % kKeys;
        if (i % 8 == 0) {
          auto guard = table.Acquire(key);
          guard.value() += 1;
        } else {
          (void)table.Peek(key);
        }
      }
    });
  }
  while (ready.load(std::memory_order_acquire) != kRaceThreads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) {
    th.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  LockRaceOutcome out;
  out.ops = static_cast<std::uint64_t>(ops_per_thread) * kRaceThreads;
  out.ops_per_s = elapsed_s > 0 ? static_cast<double>(out.ops) / elapsed_s : 0;
  const double acqs = static_cast<double>(site->acquisitions());
  out.frac_contended = acqs > 0 ? static_cast<double>(site->contended()) / acqs : 0;
  const double same_proc = static_cast<double>(site->handoffs(hprof::Handoff::kSameProcessor));
  const double same_clust = static_cast<double>(site->handoffs(hprof::Handoff::kSameCluster));
  const double cross_clust = static_cast<double>(site->handoffs(hprof::Handoff::kCrossCluster));
  const double handoffs = same_proc + same_clust + cross_clust;
  if (handoffs > 0) {
    out.frac_same_processor = same_proc / handoffs;
    out.frac_same_cluster = same_clust / handoffs;
    out.frac_cross_cluster = cross_clust / handoffs;
  }
  out.max_queue_depth = site->max_queue_depth();
  return out;
}

// --- read-path race: distributed RW readers vs the coarse lock --------------

struct ReadPathOutcome {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double reader_ops_per_s = 0;  // wall-clock (host-dependent)
  double ops_per_s = 0;
};

// The same closed-loop table workload at the serving layer's read-heavy mix
// (95% Peek / 5% exclusive update), with the reader route selected by
// ReadPath: kDistributed walks chains under the per-cluster RW lock,
// kCoarse serializes every Peek on the replica's coarse lock.  Identical op
// schedule on both paths, so the reader-throughput ratio isolates the lock.
ReadPathOutcome RunReadPathRace(hlock::ReadPath path, std::size_t ops_per_thread) {
  hlock::HybridTable<std::uint64_t, std::uint64_t> table(
      /*num_buckets=*/128, kRacePpc, path);

  constexpr std::uint64_t kKeys = 64;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kRaceThreads);
  for (unsigned t = 0; t < kRaceThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t key = t; key < kKeys; key += kRaceThreads) {
        auto guard = table.Acquire(key);
        guard.value() = key;
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t h = t * 2654435761u + 12345;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        h = h * 6364136223846793005u + 1442695040888963407u;
        const std::uint64_t key = (h >> 33) % kKeys;
        if (i % 20 == 0) {
          auto guard = table.Acquire(key);
          guard.value() += 1;
        } else {
          (void)table.Peek(key);
        }
      }
    });
  }
  while (ready.load(std::memory_order_acquire) != kRaceThreads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) {
    th.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  ReadPathOutcome out;
  const std::uint64_t writes_per_thread = (ops_per_thread + 19) / 20;
  out.writes = writes_per_thread * kRaceThreads;
  out.reads = static_cast<std::uint64_t>(ops_per_thread) * kRaceThreads - out.writes;
  if (elapsed_s > 0) {
    out.reader_ops_per_s = static_cast<double>(out.reads) / elapsed_s;
    out.ops_per_s = static_cast<double>(out.reads + out.writes) / elapsed_s;
  }
  return out;
}

// --- deterministic tail-blame scenario (gated "blame" series) ---------------

// 16 simulated processors in 4 station-clusters, one shared lock.  Each
// request is one flight-recorded think/acquire/hold cycle with the stamps
// taken from simulated time, so the promoted tail -- and therefore the hwhy
// blame decomposition -- is bit-identical across hosts.
constexpr std::uint32_t kBlameProcs = 16;
constexpr std::uint32_t kBlameClusters = 4;
constexpr double kBlameQuantile = 0.99;

struct BlameOutcome {
  double frac_lock_wait_p99 = 0;  // lock_wait share of the promoted tail
  double frac_reconcile_ok = 0;   // 1.0 iff every promoted ledger reconciles
  std::uint64_t closed = 0;
  std::uint64_t tail_records = 0;
};

hsim::Task<void> BlameWorker(hsim::Processor& p, hsim::SimLock* lock,
                             hflight::FlightRecorder* recorder, std::uint32_t site_id,
                             hsim::ProcId* lock_owner, int requests) {
  constexpr hsim::ProcId kNobody = ~hsim::ProcId{0};
  for (int i = 0; i < requests; ++i) {
    // The whole cycle is one request executing: admit/inbox/batch collapse.
    hflight::FlightRecord* rec = recorder->Open(p.station(), p.now());
    rec->enqueue = rec->begin;
    rec->start = rec->begin;
    rec->exec = rec->begin;
    // Per-request service work ("other"), deterministically jittered per
    // (processor, iteration) so arrivals decorrelate: a fair FIFO lock would
    // otherwise run in a zero-variance convoy with no tail to promote.
    std::uint64_t h = (static_cast<std::uint64_t>(p.id()) << 32 |
                       static_cast<std::uint32_t>(i)) *
                      0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    co_await p.Compute(200 + (h % 400));
    const hsim::Tick wait_from = p.now();
    co_await lock->Acquire(p);
    const bool cross = *lock_owner != kNobody &&
                       *lock_owner / (kBlameProcs / kBlameClusters) !=
                           p.id() / (kBlameProcs / kBlameClusters);
    rec->AddLockWait(site_id, p.now() - wait_from, cross);
    const hsim::Tick hold_from = p.now();
    co_await p.Compute(16);  // critical section
    *lock_owner = p.id();
    co_await lock->Release(p);
    rec->AddHold(p.now() - hold_from);
    rec->done = p.now();
    recorder->Close(rec, hflight::Fate::kOk, p.now());
  }
}

BlameOutcome RunBlameScenario(hsim::LockKind kind, int requests_per_proc) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});  // 4 stations x 4
  std::unique_ptr<hsim::SimLock> lock =
      hsim::MakeSimLock(&machine, kind, /*home=*/0);

  hflight::FlightConfig cfg;
  cfg.clusters = kBlameClusters;
  cfg.ring_size = 256;
  cfg.ticks_per_us = 16.0;
  cfg.tail_quantile = kBlameQuantile;
  hflight::FlightRecorder recorder(cfg);
  const std::uint32_t site_id =
      recorder.InternSite(std::string("svc/coarse/") + hsim::LockKindName(kind));

  hsim::ProcId lock_owner = ~hsim::ProcId{0};
  for (hsim::ProcId p = 0; p < machine.num_processors(); ++p) {
    engine.Spawn(BlameWorker(machine.processor(p), lock.get(), &recorder, site_id,
                             &lock_owner, requests_per_proc));
  }
  engine.RunUntilIdle();

  BlameOutcome out;
  out.closed = recorder.closed();
  hmetrics::JsonValue doc;
  std::string error;
  hflight::BlameReport blame;
  if (hmetrics::JsonParser::Parse(recorder.ToJson(), &doc, &error) &&
      blame.AddFlight(doc, &error) && blame.Analyze(&error)) {
    out.frac_lock_wait_p99 = blame.phase_share(hflight::Phase::kLockWait);
    out.frac_reconcile_ok = blame.max_reconcile_error() <= 0.01 ? 1.0 : 0.0;
    out.tail_records = blame.tail_records();
  } else {
    std::fprintf(stderr, "blame scenario (%s): %s\n", hsim::LockKindName(kind),
                 error.c_str());
  }
  return out;
}

struct RunOutcome {
  hload::RunnerResult load;
  std::uint64_t svc_rejected = 0;
  std::uint64_t svc_expired = 0;
  std::uint64_t svc_combined = 0;
};

RunOutcome RunOne(std::uint32_t clusters, double rate_per_worker, double load_factor,
                  std::size_t ops_per_cluster, hflight::FlightRecorder* flight) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{clusters, 1};
  service_config.service_rate_per_worker = rate_per_worker;
  service_config.queue_bound = 16;
  service_config.batch_max = 16;
  service_config.flight = flight;
  hsvc::Service service(service_config);

  hload::RunnerConfig config;
  config.flight = flight;
  config.workload.seed = 1234;
  config.workload.num_clusters = clusters;
  config.workload.keys_per_cluster = 64;
  config.workload.read_fraction = 0.9;
  config.workload.local_fraction = 0.8;
  // Uniform keys for the gated numbers: zipfian combining is a feature, but
  // its run-to-run variance does not belong in a regression band.
  config.workload.key_dist = hload::KeyDist::kUniform;
  config.rate_per_cluster = load_factor * rate_per_worker;
  config.ops_per_cluster = ops_per_cluster;
  // Large enough that retry backoffs never exhaust the pool: at overload the
  // excess must terminate as rejected_final (a configuration-determined
  // fraction), not as pool_exhausted (a timing-determined one).
  config.pool_size = 512;
  config.max_retries = 3;

  // Preload every key so reads exercise hit/replicate paths, not miss paths.
  for (std::uint64_t key = 0; key < config.workload.keys_per_cluster * clusters; ++key) {
    service.table().Put(key, key);
  }

  RunOutcome out;
  out.load = hload::LoadRunner(&service, config).Run();
  service.Drain();
  out.svc_rejected = service.rejected();
  out.svc_expired = service.expired();
  out.svc_combined = service.combined_gets();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("svc_throughput");
  report.SetEnv("sim", "native-host");

  // Configured capacity per worker (= per cluster: one worker per cluster
  // here).  The paced pump makes this exact by construction.
  const double rate = opts.smoke ? 300 : 600;
  const double window_s = opts.smoke ? 0.6 : 2.0;
  const std::vector<std::uint32_t> cluster_counts{1, 2, 4};
  const struct Regime {
    const char* name;
    double load_factor;
  } regimes[] = {{"underload", 0.5}, {"overload", 2.0}};

  report.SetParam("smoke", opts.smoke ? 1 : 0);
  report.SetParam("rate_per_worker", rate);
  report.SetParam("window_s", window_s);

  // Coarse-lock race first: cluster attribution groups dense hlock thread
  // ids (kRacePpc per cluster), and the race threads only own the dense ids
  // 0..15 while no other thread in the process has touched a native lock.
  {
    const std::size_t ops_per_thread = opts.smoke ? 500 : 4000;
    struct RaceSeries {
      const char* name;
      LockRaceOutcome (*run)(std::size_t, hprof::LockSiteStats*);
    };
    const RaceSeries kRaceLocks[] = {
        {"h1-mcs", &RunLockRace<hlock::McsH1Lock>},
        {"h2-mcs", &RunLockRace<hlock::McsH2Lock>},
        {"cna", &RunLockRace<RaceCnaLock>},
        {"hmcs-t", &RunLockRace<RaceHmcsTLock>},
        {"fissile", &RunLockRace<hlock::FissileLock>},
    };
    hprof::SiteTable sites(/*ticks_per_us=*/1000.0);  // native: nanoseconds
    printf("serving-table coarse-lock race (%u threads, %u clusters, %zu ops/thread)\n",
           kRaceThreads, kRaceThreads / kRacePpc, ops_per_thread);
    printf("%-10s %12s %10s %11s %11s %12s %8s\n", "lock", "ops/s", "contended",
           "same-proc", "same-clust", "cross-clust", "maxq");
    for (const RaceSeries& lock : kRaceLocks) {
      hprof::LockSiteStats& site =
          sites.AddSite(std::string("svc/coarse/") + lock.name, kRacePpc);
      const LockRaceOutcome out = lock.run(ops_per_thread, &site);
      printf("%-10s %12.0f %10.3f %11.3f %11.3f %12.3f %8llu\n", lock.name,
             out.ops_per_s, out.frac_contended, out.frac_same_processor,
             out.frac_same_cluster, out.frac_cross_cluster,
             static_cast<unsigned long long>(out.max_queue_depth));
      // Gated: the closed loop completes every planned op by construction.
      report.AddSeries("lock_race", {{"lock", lock.name}})
          .AddPoint({{"threads", static_cast<double>(kRaceThreads)},
                     {"ops", static_cast<double>(out.ops)},
                     {"frac_completed", 1.0}});
      // Ungated: wall-clock rate and the host-scheduling-dependent handoff
      // mix (the deterministic-sim counterpart is gated in fig5's handoff
      // series; here the mix is reported for the same materially-higher
      // same-cluster share, not band-checked).
      report.AddSeries("lock_race_wallclock", {{"lock", lock.name}})
          .AddPoint({{"threads", static_cast<double>(kRaceThreads)},
                     {"ops_per_s", out.ops_per_s},
                     {"frac_contended", out.frac_contended},
                     {"frac_same_processor", out.frac_same_processor},
                     {"frac_same_cluster", out.frac_same_cluster},
                     {"frac_cross_cluster", out.frac_cross_cluster},
                     {"max_queue_depth", static_cast<double>(out.max_queue_depth)}});
    }
    printf("\n");
  }

  // Read-path race at the serving mix (95/5): the distributed per-cluster RW
  // read path against the coarse-serialized one, same op schedule.  Reader
  // throughput must be at least 3x at 4 clusters; the gated field is the
  // saturating indicator min(ratio/3, 1) so the gate is a floor, stable
  // however far ahead the distributed path pulls on a given host.
  {
    const std::size_t ops_per_thread = opts.smoke ? 500 : 4000;
    printf("read-path race at 95%%/5%% (%u threads, %u clusters, %zu ops/thread)\n",
           kRaceThreads, kRaceThreads / kRacePpc, ops_per_thread);
    const ReadPathOutcome coarse =
        RunReadPathRace(hlock::ReadPath::kCoarse, ops_per_thread);
    const ReadPathOutcome dist =
        RunReadPathRace(hlock::ReadPath::kDistributed, ops_per_thread);
    const double speedup = coarse.reader_ops_per_s > 0
                               ? dist.reader_ops_per_s / coarse.reader_ops_per_s
                               : 0.0;
    printf("%-12s %14s %14s\n", "read path", "reads/s", "total ops/s");
    printf("%-12s %14.0f %14.0f\n", "coarse", coarse.reader_ops_per_s, coarse.ops_per_s);
    printf("%-12s %14.0f %14.0f\n", "distributed", dist.reader_ops_per_s, dist.ops_per_s);
    printf("distributed reader throughput advantage: %.2fx (floor 3x)\n\n", speedup);
    // Gated: the op schedule (exact counts) and the >=3x floor indicator.
    report.AddSeries("read_path", {})
        .AddPoint({{"clusters", static_cast<double>(kRaceThreads / kRacePpc)},
                   {"ops", static_cast<double>((dist.reads + dist.writes))},
                   {"frac_reads", static_cast<double>(dist.reads) /
                                      static_cast<double>(dist.reads + dist.writes)},
                   {"frac_speedup_met", speedup >= 3.0 ? 1.0 : speedup / 3.0}});
    // Ungated: the raw wall-clock rates behind the indicator.
    report.AddSeries("read_path_wallclock", {})
        .AddPoint({{"clusters", static_cast<double>(kRaceThreads / kRacePpc)},
                   {"coarse_reads_per_s", coarse.reader_ops_per_s},
                   {"distributed_reads_per_s", dist.reader_ops_per_s},
                   {"reader_speedup", speedup}});
  }

  // Deterministic simulated tail blame: the kernel's coarse backoff spinlock
  // vs the NUMA-aware hmcs-t under identical request schedules.  Gated: the
  // hwhy headline (lock_wait share of the promoted p99 tail) must stay
  // strictly lower for hmcs-t, and every promoted ledger must reconcile
  // within 1%.  (A fair FIFO lock is deliberately not the baseline here: its
  // waits have so little variance that the only above-threshold totals are
  // the startup transient's, leaving an empty steady-state tail.)
  {
    const int requests_per_proc = opts.smoke ? 32 : 128;
    const BlameOutcome coarse =
        RunBlameScenario(hsim::LockKind::kSpin35us, requests_per_proc);
    const BlameOutcome hmcst =
        RunBlameScenario(hsim::LockKind::kHmcsT, requests_per_proc);
    const double below = hmcst.frac_lock_wait_p99 < coarse.frac_lock_wait_p99 ? 1.0 : 0.0;
    printf("tail blame (simulated, %u procs / %u clusters, %d reqs/proc, q=%.2f)\n",
           kBlameProcs, kBlameClusters, requests_per_proc, kBlameQuantile);
    printf("%-10s %18s %14s %12s\n", "lock", "lock_wait@p99", "reconcile_ok", "tail_recs");
    printf("%-10s %17.1f%% %14.0f %12llu\n", "coarse",
           coarse.frac_lock_wait_p99 * 100, coarse.frac_reconcile_ok,
           static_cast<unsigned long long>(coarse.tail_records));
    printf("%-10s %17.1f%% %14.0f %12llu\n", "hmcs-t",
           hmcst.frac_lock_wait_p99 * 100, hmcst.frac_reconcile_ok,
           static_cast<unsigned long long>(hmcst.tail_records));
    printf("hmcs-t lock_wait share strictly below coarse: %s\n\n",
           below == 1.0 ? "yes" : "NO");
    report.AddSeries("blame", {{"lock", "coarse"}})
        .AddPoint({{"procs", static_cast<double>(kBlameProcs)},
                   {"clusters", static_cast<double>(kBlameClusters)},
                   {"quantile", kBlameQuantile},
                   {"frac_lock_wait_p99", coarse.frac_lock_wait_p99},
                   {"frac_reconcile_ok", coarse.frac_reconcile_ok}});
    report.AddSeries("blame", {{"lock", "hmcs-t"}})
        .AddPoint({{"procs", static_cast<double>(kBlameProcs)},
                   {"clusters", static_cast<double>(kBlameClusters)},
                   {"quantile", kBlameQuantile},
                   {"frac_lock_wait_p99", hmcst.frac_lock_wait_p99},
                   {"frac_reconcile_ok", hmcst.frac_reconcile_ok}});
    report.AddSeries("blame", {{"lock", "gate"}})
        .AddPoint({{"procs", static_cast<double>(kBlameProcs)},
                   {"clusters", static_cast<double>(kBlameClusters)},
                   {"frac_hmcst_below_coarse", below},
                   {"frac_reconcile_ok",
                    coarse.frac_reconcile_ok * hmcst.frac_reconcile_ok}});
  }

  // --why: one always-on recorder across the whole sweep (per-cluster rings
  // sized for the largest run; native steady_clock ns, 1000 ticks/us).
  std::unique_ptr<hflight::FlightRecorder> why_recorder;
  if (opts.why) {
    hflight::FlightConfig cfg;
    cfg.clusters = cluster_counts.back();
    cfg.ticks_per_us = 1000.0;
    why_recorder = std::make_unique<hflight::FlightRecorder>(cfg);
  }

  printf("hsvc open-loop throughput sweep (paced %.0f ops/s per worker)\n\n", rate);
  printf("%-10s %8s %12s %12s %10s %10s %10s %10s %10s\n", "regime", "clusters",
         "offered/s", "achieved/s", "completed", "failed", "rejects", "p99_ms", "p999_ms");

  for (const Regime& regime : regimes) {
    // Buffered locally: AddSeries invalidates previously returned series
    // references, so the report is only assembled after the sweep.
    std::vector<hmetrics::Point> gate_points;
    std::vector<hmetrics::Point> latency_points;
    for (const std::uint32_t clusters : cluster_counts) {
      const double offered = regime.load_factor * rate;
      const auto ops =
          static_cast<std::size_t>(window_s * offered);
      const RunOutcome out =
          RunOne(clusters, rate, regime.load_factor, ops, why_recorder.get());
      const hload::RunnerResult& r = out.load;

      const double frac_completed = r.completed_fraction();
      const double frac_failed =
          r.planned == 0
              ? 0.0
              : static_cast<double>(r.rejected_final + r.abandoned) /
                    static_cast<double>(r.planned);
      const double frac_expired =
          r.planned == 0 ? 0.0
                         : static_cast<double>(r.expired) / static_cast<double>(r.planned);
      const double p99_us = static_cast<double>(r.latency.PercentileNs(99)) / 1000.0;
      const double p999_us = static_cast<double>(r.latency.PercentileNs(99.9)) / 1000.0;

      // Gated point: coordinates plus configuration-determined fractions.
      gate_points.push_back({{"clusters", static_cast<double>(clusters)},
                             {"offered_rps", offered},
                             {"frac_completed", frac_completed},
                             {"frac_failed", frac_failed},
                             {"frac_expired", frac_expired}});
      // Ungated point: wall-clock tails and raw counters (machine-dependent).
      latency_points.push_back(
          {{"clusters", static_cast<double>(clusters)},
           {"offered_rps", offered},
           {"achieved_rps", r.achieved_rps()},
           {"p50_us", static_cast<double>(r.latency.PercentileNs(50)) / 1000.0},
           {"p99_us", p99_us},
           {"p999_us", p999_us},
           {"mean_us", r.latency.mean_ns() / 1000.0},
           {"rejected_submits", static_cast<double>(r.rejected_submits)},
           {"svc_rejected", static_cast<double>(out.svc_rejected)},
           {"svc_expired", static_cast<double>(out.svc_expired)},
           {"combined_gets", static_cast<double>(out.svc_combined)},
           {"pool_exhausted", static_cast<double>(r.pool_exhausted)}});

      printf("%-10s %8u %12.0f %12.0f %10.3f %10.3f %10llu %10.2f %10.2f\n", regime.name,
             clusters, offered * clusters, r.achieved_rps(), frac_completed, frac_failed,
             static_cast<unsigned long long>(r.rejected_submits), p99_us / 1000.0,
             p999_us / 1000.0);
    }
    hmetrics::BenchSeries& gate = report.AddSeries("throughput", {{"load", regime.name}});
    for (hmetrics::Point& point : gate_points) {
      gate.AddPoint(std::move(point));
    }
    hmetrics::BenchSeries& latency = report.AddSeries("latency", {{"load", regime.name}});
    for (hmetrics::Point& point : latency_points) {
      latency.AddPoint(std::move(point));
    }
  }
  printf("\nunderload: achieved tracks offered as clusters grow (near-linear capacity\n"
         "scaling at fixed per-cluster load).  overload: the completed fraction\n"
         "settles near capacity/offered with nonzero rejections -- admission control\n"
         "degrades into bounded-latency rejection, not queueing collapse.\n");

  if (why_recorder != nullptr) {
    const std::string flight_doc = why_recorder->ToJson();
    if (!opts.why_path.empty()) {
      std::FILE* f = std::fopen(opts.why_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", opts.why_path.c_str());
        return 1;
      }
      std::fwrite(flight_doc.data(), 1, flight_doc.size(), f);
      std::fclose(f);
    }
    hmetrics::JsonValue doc;
    std::string error;
    hflight::BlameReport blame;
    if (!hmetrics::JsonParser::Parse(flight_doc, &doc, &error) ||
        !blame.AddFlight(doc, &error) || !blame.Analyze(&error)) {
      std::fprintf(stderr, "hwhy analysis failed: %s\n", error.c_str());
      return 1;
    }
    printf("\n%s", blame.RenderText(10).c_str());
  }

  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
