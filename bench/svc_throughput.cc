// Offered load vs achieved throughput and latency for the hsvc serving
// runtime, swept across cluster counts -- the serving-layer analogue of the
// paper's Figure 7 cluster sweep.
//
// Two claims, one per load regime:
//
//   underload (0.5x capacity): adding clusters adds capacity near-linearly.
//     Each cluster gets the same per-cluster offered load; the completed
//     fraction stays ~1.0 and total achieved throughput tracks clusters.
//
//   overload (2x capacity): admission control converts excess load into
//     prompt rejections instead of queueing collapse.  The completed
//     fraction settles near capacity/offered, rejections are nonzero, and
//     tail latency stays bounded by the queue bound and the retry budget
//     rather than growing with the backlog.
//
// Pump service is token-bucket paced (ServiceConfig::service_rate_per_worker),
// so *capacity is configured*, not host-speed-dependent: the frac_* fields
// and the achieved/offered ratios are stable enough to regression-gate even
// on a loaded single-core CI host.  Wall-clock latency percentiles
// (coordinated-omission-safe, from each op's scheduled arrival) are emitted
// in a separate series that the baseline deliberately omits.

#include <cstdio>
#include <vector>

#include "src/hload/open_loop.h"
#include "src/hmetrics/bench_main.h"

namespace {

struct RunOutcome {
  hload::RunnerResult load;
  std::uint64_t svc_rejected = 0;
  std::uint64_t svc_expired = 0;
  std::uint64_t svc_combined = 0;
};

RunOutcome RunOne(std::uint32_t clusters, double rate_per_worker, double load_factor,
                  std::size_t ops_per_cluster) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{clusters, 1};
  service_config.service_rate_per_worker = rate_per_worker;
  service_config.queue_bound = 16;
  service_config.batch_max = 16;
  hsvc::Service service(service_config);

  hload::RunnerConfig config;
  config.workload.seed = 1234;
  config.workload.num_clusters = clusters;
  config.workload.keys_per_cluster = 64;
  config.workload.read_fraction = 0.9;
  config.workload.local_fraction = 0.8;
  // Uniform keys for the gated numbers: zipfian combining is a feature, but
  // its run-to-run variance does not belong in a regression band.
  config.workload.key_dist = hload::KeyDist::kUniform;
  config.rate_per_cluster = load_factor * rate_per_worker;
  config.ops_per_cluster = ops_per_cluster;
  // Large enough that retry backoffs never exhaust the pool: at overload the
  // excess must terminate as rejected_final (a configuration-determined
  // fraction), not as pool_exhausted (a timing-determined one).
  config.pool_size = 512;
  config.max_retries = 3;

  // Preload every key so reads exercise hit/replicate paths, not miss paths.
  for (std::uint64_t key = 0; key < config.workload.keys_per_cluster * clusters; ++key) {
    service.table().Put(key, key);
  }

  RunOutcome out;
  out.load = hload::LoadRunner(&service, config).Run();
  service.Drain();
  out.svc_rejected = service.rejected();
  out.svc_expired = service.expired();
  out.svc_combined = service.combined_gets();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("svc_throughput");
  report.SetEnv("sim", "native-host");

  // Configured capacity per worker (= per cluster: one worker per cluster
  // here).  The paced pump makes this exact by construction.
  const double rate = opts.smoke ? 300 : 600;
  const double window_s = opts.smoke ? 0.6 : 2.0;
  const std::vector<std::uint32_t> cluster_counts{1, 2, 4};
  const struct Regime {
    const char* name;
    double load_factor;
  } regimes[] = {{"underload", 0.5}, {"overload", 2.0}};

  report.SetParam("smoke", opts.smoke ? 1 : 0);
  report.SetParam("rate_per_worker", rate);
  report.SetParam("window_s", window_s);

  printf("hsvc open-loop throughput sweep (paced %.0f ops/s per worker)\n\n", rate);
  printf("%-10s %8s %12s %12s %10s %10s %10s %10s %10s\n", "regime", "clusters",
         "offered/s", "achieved/s", "completed", "failed", "rejects", "p99_ms", "p999_ms");

  for (const Regime& regime : regimes) {
    // Buffered locally: AddSeries invalidates previously returned series
    // references, so the report is only assembled after the sweep.
    std::vector<hmetrics::Point> gate_points;
    std::vector<hmetrics::Point> latency_points;
    for (const std::uint32_t clusters : cluster_counts) {
      const double offered = regime.load_factor * rate;
      const auto ops =
          static_cast<std::size_t>(window_s * offered);
      const RunOutcome out = RunOne(clusters, rate, regime.load_factor, ops);
      const hload::RunnerResult& r = out.load;

      const double frac_completed = r.completed_fraction();
      const double frac_failed =
          r.planned == 0
              ? 0.0
              : static_cast<double>(r.rejected_final + r.abandoned) /
                    static_cast<double>(r.planned);
      const double frac_expired =
          r.planned == 0 ? 0.0
                         : static_cast<double>(r.expired) / static_cast<double>(r.planned);
      const double p99_us = static_cast<double>(r.latency.PercentileNs(99)) / 1000.0;
      const double p999_us = static_cast<double>(r.latency.PercentileNs(99.9)) / 1000.0;

      // Gated point: coordinates plus configuration-determined fractions.
      gate_points.push_back({{"clusters", static_cast<double>(clusters)},
                             {"offered_rps", offered},
                             {"frac_completed", frac_completed},
                             {"frac_failed", frac_failed},
                             {"frac_expired", frac_expired}});
      // Ungated point: wall-clock tails and raw counters (machine-dependent).
      latency_points.push_back(
          {{"clusters", static_cast<double>(clusters)},
           {"offered_rps", offered},
           {"achieved_rps", r.achieved_rps()},
           {"p50_us", static_cast<double>(r.latency.PercentileNs(50)) / 1000.0},
           {"p99_us", p99_us},
           {"p999_us", p999_us},
           {"mean_us", r.latency.mean_ns() / 1000.0},
           {"rejected_submits", static_cast<double>(r.rejected_submits)},
           {"svc_rejected", static_cast<double>(out.svc_rejected)},
           {"svc_expired", static_cast<double>(out.svc_expired)},
           {"combined_gets", static_cast<double>(out.svc_combined)},
           {"pool_exhausted", static_cast<double>(r.pool_exhausted)}});

      printf("%-10s %8u %12.0f %12.0f %10.3f %10.3f %10llu %10.2f %10.2f\n", regime.name,
             clusters, offered * clusters, r.achieved_rps(), frac_completed, frac_failed,
             static_cast<unsigned long long>(r.rejected_submits), p99_us / 1000.0,
             p999_us / 1000.0);
    }
    hmetrics::BenchSeries& gate = report.AddSeries("throughput", {{"load", regime.name}});
    for (hmetrics::Point& point : gate_points) {
      gate.AddPoint(std::move(point));
    }
    hmetrics::BenchSeries& latency = report.AddSeries("latency", {{"load", regime.name}});
    for (hmetrics::Point& point : latency_points) {
      latency.AddPoint(std::move(point));
    }
  }
  printf("\nunderload: achieved tracks offered as clusters grow (near-linear capacity\n"
         "scaling at fixed per-cluster load).  overload: the completed fraction\n"
         "settles near capacity/offered with nonzero rejections -- admission control\n"
         "degrades into bounded-latency rejection, not queueing collapse.\n");

  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
