// Native hierarchical-clustering benchmark: read-local replication vs a
// single shared table.
//
// The paper's Section 2.4 "concurrent requests to read-shared resources"
// argument, on host hardware: once a key is replicated, reads are entirely
// cluster-local; without clustering every read crosses to the single home
// structure.  (On a single-core host the absolute numbers mostly show call
// overheads; the local-hit vs remote-fetch gap is the point.)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/hcluster/clustered_table.h"
#include "src/hcluster/replicated_counter.h"
#include "src/hcluster/runtime.h"
#include "src/hmetrics/bench_main.h"

namespace {

using Clock = std::chrono::steady_clock;

double UsPerOp(Clock::time_point t0, Clock::time_point t1, int ops) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / ops;
}

template <typename Fn>
void RunOn(hcluster::ClusterRuntime& rt, hcluster::WorkerId w, Fn fn) {
  std::atomic<bool> done{false};
  rt.Post(w, [&] {
    fn();
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("native_cluster");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  report.SetEnv("sim", "native-host");
  hcluster::ClusterRuntime rt(hcluster::Topology{8, 2});
  hcluster::ClusteredTable<int, int> table(&rt);
  constexpr int kKeys = 64;
  for (int k = 0; k < kKeys; ++k) {
    table.Put(k, k);
  }

  printf("Native clustered table (8 workers, 4 clusters of 2)\n\n");

  // Remote first-touch: replication cost.
  double replicate_us = 0;
  RunOn(rt, 0, [&] {
    const auto t0 = Clock::now();
    for (int k = 0; k < kKeys; ++k) {
      (void)table.Get(k);
    }
    replicate_us = UsPerOp(t0, Clock::now(), kKeys);
  });
  printf("first read (replicates ~3/4 of keys): %8.2f us/op\n", replicate_us);

  // Local hits.
  double hit_us = 0;
  const int kReads = opts.smoke ? 2000 : 20000;
  RunOn(rt, 0, [&] {
    const auto t0 = Clock::now();
    for (int i = 0; i < kReads; ++i) {
      (void)table.Get(i % kKeys);
    }
    hit_us = UsPerOp(t0, Clock::now(), kReads);
  });
  printf("repeat read (all local hits):         %8.2f us/op\n", hit_us);
  printf("replication amortizes after ~%.0f reads of a key\n\n",
         hit_us > 0 ? replicate_us / hit_us : 0.0);

  // Global update cost grows with replica count (the write-shared case the
  // paper bounds by cluster size).
  double put_us = 0;
  {
    const auto t0 = Clock::now();
    for (int k = 0; k < kKeys; ++k) {
      table.Put(k, k + 1);
    }
    put_us = UsPerOp(t0, Clock::now(), kKeys);
  }
  printf("global update with replicas everywhere: %6.2f us/op\n", put_us);
  printf("stats: replications=%llu deadlock-retries=%llu\n\n",
         static_cast<unsigned long long>(table.replications()),
         static_cast<unsigned long long>(table.retries()));

  // Replicated counter vs a single shared atomic.
  hcluster::ReplicatedCounter counter(rt.topology());
  std::atomic<std::int64_t> shared{0};
  const int kIncs = opts.smoke ? 20000 : 200000;
  double replicated_add_us = 0;
  double shared_add_us = 0;
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIncs; ++i) {
      counter.Add(/*worker=*/0, 1);
    }
    replicated_add_us = UsPerOp(t0, Clock::now(), kIncs);
    printf("replicated counter add (local cell):  %8.4f us/op\n", replicated_add_us);
  }
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIncs; ++i) {
      shared.fetch_add(1, std::memory_order_relaxed);
    }
    shared_add_us = UsPerOp(t0, Clock::now(), kIncs);
    printf("single shared atomic add:             %8.4f us/op\n", shared_add_us);
  }
  printf("(single-threaded these tie; the replicated cell wins once multiple\n"
         "sockets contend for the line -- the paper's page-descriptor refcount)\n");
  printf("\ncounter total: %lld (expected %d)\n", static_cast<long long>(counter.Total()),
         kIncs);

  report.AddSeries("clustered_table")
      .AddPoint({{"first_read_us", replicate_us},
                 {"local_hit_us", hit_us},
                 {"global_update_us", put_us},
                 {"replications", static_cast<double>(table.replications())},
                 {"retries", static_cast<double>(table.retries())}});
  report.AddSeries("replicated_counter")
      .AddPoint({{"replicated_add_us", replicated_add_us},
                 {"shared_atomic_add_us", shared_add_us},
                 {"total_ok", counter.Total() == kIncs ? 1.0 : 0.0}});
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
