// Regenerates Figures 7a and 7b: page-fault response time for the
// independent- and shared-fault stress tests on a single 16-processor
// cluster, as the number of faulting processes p varies, comparing
// Distributed Locks (H2-MCS) against exponential-backoff spin locks.
//
// Paper claims checked:
//   7a: little difference for p in 1..4; beyond 4 the spin locks degrade
//       substantially; at p=16 spin costs over twice the Distributed Locks.
//       The increase is due almost entirely to memory/interconnect
//       contention (second-order effects).
//   7b: with faults to *shared* pages, contention moves to the reserve bits
//       and the gap between the lock kinds is much smaller.
//
// Also prints the Section 1 reference point (uncontended fault ~160 us, of
// which ~40 us locking).

#include <cstdio>

#include "src/hkernel/workloads.h"
#include "src/hmetrics/bench_main.h"

namespace {

using hkernel::FaultTestParams;
using hkernel::FaultTestResult;
using hsim::LockKind;

const unsigned kProcs[] = {1, 2, 4, 8, 12, 16};

bool g_smoke = false;

FaultTestParams IndependentParams(LockKind kind, unsigned p) {
  FaultTestParams params;
  params.lock_kind = kind;
  params.cluster_size = 16;
  params.active_procs = p;
  params.pages = 8;
  params.warmup_time = hsim::UsToTicks(g_smoke ? 1000 : 2500);
  params.measure_time = hsim::UsToTicks(g_smoke ? 3000 : 12000);
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  g_smoke = opts.smoke;
  hmetrics::BenchReport report("fig7_fault_tests");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Figure 7a: independent-fault test, one cluster of 16 processors\n");
  printf("(page-fault response time in us, Little's-law W over the run)\n\n");
  printf("%-18s", "lock \\ p");
  for (unsigned p : kProcs) {
    printf("%9u", p);
  }
  printf("\n");
  double dl16 = 0;
  double spin16 = 0;
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "independent"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned p : kProcs) {
      const FaultTestResult r = RunIndependentFaultTest(IndependentParams(kind, p));
      const double w = r.little_response_us();
      printf("%9.0f", w);
      out.AddPoint({{"p", static_cast<double>(p)},
                    {"w_us", w},
                    {"mean_us", r.latency.mean_us()},
                    {"lock_us", r.lock_overhead.mean_us()}});
      if (p == 16) {
        (kind == LockKind::kMcsH2 ? dl16 : spin16) = w;
      }
    }
    printf("\n");
  }
  printf("\nspin/DL ratio at p=16: %.2fx (paper: over 2x)\n\n", spin16 / dl16);

  {
    const FaultTestResult r = RunIndependentFaultTest(IndependentParams(LockKind::kMcsH2, 1));
    printf("Section 1 reference: uncontended soft fault %.0f us, locking %.0f us "
           "(paper: 160 us / 40 us)\n\n",
           r.latency.mean_us(), r.lock_overhead.mean_us());
    report.AddSeries("uncontended_reference")
        .AddPoint({{"fault_us", r.latency.mean_us()},
                   {"lock_us", r.lock_overhead.mean_us()}});
  }

  printf("Figure 7b: shared-fault test, one cluster of 16 processors\n");
  printf("(mean page-fault response time in us over fault/barrier/unmap rounds)\n\n");
  printf("%-18s", "lock \\ p");
  for (unsigned p : kProcs) {
    printf("%9u", p);
  }
  printf("\n");
  double dl16s = 0;
  double spin16s = 0;
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "shared"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned p : kProcs) {
      FaultTestParams params;
      params.lock_kind = kind;
      params.cluster_size = 16;
      params.active_procs = p;
      params.pages = 4;
      params.iterations = opts.smoke ? 2 : 4;
      params.warmup = 1;
      const FaultTestResult r = RunSharedFaultTest(params);
      printf("%9.0f", r.latency.mean_us());
      out.AddPoint({{"p", static_cast<double>(p)},
                    {"mean_us", r.latency.mean_us()},
                    {"lock_us", r.lock_overhead.mean_us()}});
      if (p == 16) {
        (kind == LockKind::kMcsH2 ? dl16s : spin16s) = r.latency.mean_us();
      }
    }
    printf("\n");
  }
  printf("\nspin/DL ratio at p=16: %.2fx -- much smaller than Figure 7a's %.2fx:\n"
         "contention has moved from the coarse locks to the reserve bits, with\n"
         "bursts on the coarse lock whenever a reserve bit clears.\n",
         spin16s / dl16s, spin16 / dl16);
  report.AddSeries("ratios")
      .AddPoint({{"independent_spin_over_dl_p16", spin16 / dl16},
                 {"shared_spin_over_dl_p16", spin16s / dl16s}});
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
