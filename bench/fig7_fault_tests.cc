// Regenerates Figures 7a and 7b: page-fault response time for the
// independent- and shared-fault stress tests on a single 16-processor
// cluster, as the number of faulting processes p varies, comparing
// Distributed Locks (H2-MCS) against exponential-backoff spin locks.
//
// Paper claims checked:
//   7a: little difference for p in 1..4; beyond 4 the spin locks degrade
//       substantially; at p=16 spin costs over twice the Distributed Locks.
//       The increase is due almost entirely to memory/interconnect
//       contention (second-order effects).
//   7b: with faults to *shared* pages, contention moves to the reserve bits
//       and the gap between the lock kinds is much smaller.
//
// Also prints the Section 1 reference point (uncontended fault ~160 us, of
// which ~40 us locking).
//
// With --faults the binary instead runs the fault campaign: the shared and
// mixed workloads on clusters of 4 (so every shared fault crosses clusters)
// under injected drop+duplication rates of 0%, 2%, and 10% on both RPC legs.
// Each cell is run twice with the same seed and must (a) complete, (b) apply
// every issued RPC exactly once (applied == issued), and (c) replay
// bit-identically.  Any violation makes the exit status nonzero.

#include <cstdio>
#include <cstring>

#include "src/hkernel/workloads.h"
#include "src/hmetrics/bench_main.h"
#include "src/hsim/fault.h"

namespace {

using hkernel::FaultTestParams;
using hkernel::FaultTestResult;
using hsim::LockKind;

const unsigned kProcs[] = {1, 2, 4, 8, 12, 16};

bool g_smoke = false;

FaultTestParams IndependentParams(LockKind kind, unsigned p) {
  FaultTestParams params;
  params.lock_kind = kind;
  params.cluster_size = 16;
  params.active_procs = p;
  params.pages = 8;
  params.warmup_time = hsim::UsToTicks(g_smoke ? 1000 : 2500);
  params.measure_time = hsim::UsToTicks(g_smoke ? 3000 : 12000);
  return params;
}

FaultTestParams CampaignParams(double rate, std::uint64_t seed) {
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 16;
  params.pages = 4;
  params.iterations = g_smoke ? 2 : 6;
  params.warmup = 1;
  params.faults.drop_request = rate;
  params.faults.drop_reply = rate;
  params.faults.dup_request = rate;
  params.faults.dup_reply = rate;
  params.faults.seed = seed;
  return params;
}

bool SameRun(const FaultTestResult& a, const FaultTestResult& b) {
  return a.duration == b.duration && a.latency.count() == b.latency.count() &&
         a.latency.mean_us() == b.latency.mean_us() && a.counters.rpcs == b.counters.rpcs &&
         a.counters.rpc_retransmits == b.counters.rpc_retransmits &&
         a.counters.rpc_dup_requests == b.counters.rpc_dup_requests &&
         a.counters.rpc_dup_replies == b.counters.rpc_dup_replies &&
         a.transport.requests_seen == b.transport.requests_seen &&
         a.transport.dropped() == b.transport.dropped() &&
         a.transport.duplicated() == b.transport.duplicated();
}

// Runs the fault campaign; returns the number of failed cells.
int RunFaultCampaign(const hmetrics::BenchOptions& opts) {
  const double kRates[] = {0.0, 0.02, 0.10};
  struct Workload {
    const char* name;
    FaultTestResult (*run)(const FaultTestParams&);
  };
  const Workload kWorkloads[] = {
      {"shared", hkernel::RunSharedFaultTest},
      {"mixed", hkernel::RunMixedFaultTest},
  };
  hmetrics::BenchReport report("fig7_fault_campaign");
  report.SetParam("smoke", g_smoke ? 1 : 0);
  int failures = 0;

  printf("Fault campaign: drop+dup injected on both RPC legs, clusters of 4\n");
  printf("(exact-once check: every issued RPC applied exactly once)\n\n");
  printf("%-10s %6s %8s %8s %8s %8s %8s %8s  %s\n", "workload", "rate", "rpcs", "applied",
         "retrans", "dropped", "dup_inj", "dup_det", "verdict");
  for (const Workload& w : kWorkloads) {
    hmetrics::BenchSeries& out = report.AddSeries("fault_campaign", {{"workload", w.name}});
    for (double rate : kRates) {
      const FaultTestParams params = CampaignParams(rate, /*seed=*/0x5eedULL);
      const FaultTestResult r = w.run(params);
      const FaultTestResult replay = w.run(params);
      const bool exact_once = r.counters.rpc_ops_applied == r.counters.rpcs;
      const bool deterministic = SameRun(r, replay);
      // Dedup hits = transport duplicates + retransmit echoes; everything the
      // plan duplicated must be accounted for either as a detected duplicate
      // or as an undrained tail packet.
      const std::uint64_t dup_detected = r.counters.rpc_dup_requests + r.counters.rpc_dup_replies;
      const bool dups_reconcile =
          dup_detected + r.backlog >= r.transport.duplicated() &&
          dup_detected <= r.transport.duplicated() + 2 * r.counters.rpc_retransmits;
      const bool ok = exact_once && deterministic && dups_reconcile;
      failures += ok ? 0 : 1;
      printf("%-10s %5.0f%% %8llu %8llu %8llu %8llu %8llu %8llu  %s%s%s\n", w.name, rate * 100,
             static_cast<unsigned long long>(r.counters.rpcs),
             static_cast<unsigned long long>(r.counters.rpc_ops_applied),
             static_cast<unsigned long long>(r.counters.rpc_retransmits),
             static_cast<unsigned long long>(r.transport.dropped()),
             static_cast<unsigned long long>(r.transport.duplicated()),
             static_cast<unsigned long long>(dup_detected), ok ? "ok" : "FAIL",
             deterministic ? "" : " (nondeterministic)",
             exact_once ? "" : " (applied != issued)");
      out.AddPoint({{"rate", rate},
                    {"rpcs", static_cast<double>(r.counters.rpcs)},
                    {"applied", static_cast<double>(r.counters.rpc_ops_applied)},
                    {"retransmits", static_cast<double>(r.counters.rpc_retransmits)},
                    {"dropped", static_cast<double>(r.transport.dropped())},
                    {"dup_injected", static_cast<double>(r.transport.duplicated())},
                    {"dup_detected", static_cast<double>(dup_detected)},
                    {"backlog", static_cast<double>(r.backlog)},
                    {"mean_us", r.latency.mean_us()},
                    {"exact_once", exact_once ? 1.0 : 0.0},
                    {"deterministic", deterministic ? 1.0 : 0.0}});
    }
  }
  printf("\n%s\n", failures == 0 ? "all cells passed exact-once + determinism"
                                 : "FAULT CAMPAIGN FAILED");
  if (!hmetrics::WriteReport(opts, report)) {
    return 1;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  g_smoke = opts.smoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      return RunFaultCampaign(opts);
    }
  }
  hmetrics::BenchReport report("fig7_fault_tests");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Figure 7a: independent-fault test, one cluster of 16 processors\n");
  printf("(page-fault response time in us, Little's-law W over the run)\n\n");
  printf("%-18s", "lock \\ p");
  for (unsigned p : kProcs) {
    printf("%9u", p);
  }
  printf("\n");
  double dl16 = 0;
  double spin16 = 0;
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "independent"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned p : kProcs) {
      const FaultTestResult r = RunIndependentFaultTest(IndependentParams(kind, p));
      const double w = r.little_response_us();
      printf("%9.0f", w);
      out.AddPoint({{"p", static_cast<double>(p)},
                    {"w_us", w},
                    {"mean_us", r.latency.mean_us()},
                    {"lock_us", r.lock_overhead.mean_us()}});
      if (p == 16) {
        (kind == LockKind::kMcsH2 ? dl16 : spin16) = w;
      }
    }
    printf("\n");
  }
  printf("\nspin/DL ratio at p=16: %.2fx (paper: over 2x)\n\n", spin16 / dl16);

  {
    const FaultTestResult r = RunIndependentFaultTest(IndependentParams(LockKind::kMcsH2, 1));
    printf("Section 1 reference: uncontended soft fault %.0f us, locking %.0f us "
           "(paper: 160 us / 40 us)\n\n",
           r.latency.mean_us(), r.lock_overhead.mean_us());
    report.AddSeries("uncontended_reference")
        .AddPoint({{"fault_us", r.latency.mean_us()},
                   {"lock_us", r.lock_overhead.mean_us()}});
  }

  printf("Figure 7b: shared-fault test, one cluster of 16 processors\n");
  printf("(mean page-fault response time in us over fault/barrier/unmap rounds)\n\n");
  printf("%-18s", "lock \\ p");
  for (unsigned p : kProcs) {
    printf("%9u", p);
  }
  printf("\n");
  double dl16s = 0;
  double spin16s = 0;
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "shared"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned p : kProcs) {
      FaultTestParams params;
      params.lock_kind = kind;
      params.cluster_size = 16;
      params.active_procs = p;
      params.pages = 4;
      params.iterations = opts.smoke ? 2 : 4;
      params.warmup = 1;
      const FaultTestResult r = RunSharedFaultTest(params);
      printf("%9.0f", r.latency.mean_us());
      out.AddPoint({{"p", static_cast<double>(p)},
                    {"mean_us", r.latency.mean_us()},
                    {"lock_us", r.lock_overhead.mean_us()}});
      if (p == 16) {
        (kind == LockKind::kMcsH2 ? dl16s : spin16s) = r.latency.mean_us();
      }
    }
    printf("\n");
  }
  printf("\nspin/DL ratio at p=16: %.2fx -- much smaller than Figure 7a's %.2fx:\n"
         "contention has moved from the coarse locks to the reserve bits, with\n"
         "bursts on the coarse lock whenever a reserve bit clears.\n",
         spin16s / dl16s, spin16 / dl16);
  report.AddSeries("ratios")
      .AddPoint({{"independent_spin_over_dl_p16", spin16 / dl16},
                 {"shared_spin_over_dl_p16", spin16s / dl16s}});
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
