// Native (std::atomic) lock benchmarks on the host machine: the uncontended
// acquire/release cost of every lock in hlock, and small contended runs.
//
// This is the modern-hardware counterpart of Section 4.1.1: the H1/H2
// modifications shave loads and branches off the MCS fast path, which is
// visible (if less dramatic) even with cache-based atomics -- exactly the
// paper's Section 5.2 prediction that "reducing the number of atomic
// operations will likely remain beneficial".
//
// NOTE: contended results on a single-core host measure scheduler behaviour
// more than lock behaviour; the simulator benches carry the paper's
// contention results.

#include <benchmark/benchmark.h>

#include "bench/gbench_report.h"
#include "src/hlock/mcs_locks.h"
#include "src/hlock/mcs_try_lock.h"
#include "src/hlock/spin_locks.h"

namespace {

template <typename Lock>
void BM_Uncontended(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}

void BM_UncontendedClassicMcs(benchmark::State& state) {
  hlock::McsLock lock;
  hlock::McsLock::QNode node;
  for (auto _ : state) {
    lock.lock(node);
    benchmark::DoNotOptimize(&lock);
    lock.unlock(node);
  }
}

template <typename Lock>
void BM_Contended(benchmark::State& state) {
  static Lock lock;
  static std::int64_t counter = 0;
  for (auto _ : state) {
    lock.lock();
    counter = counter + 1;
    benchmark::DoNotOptimize(counter);
    lock.unlock();
  }
}

}  // namespace

BENCHMARK(BM_Uncontended<hlock::TasSpinLock>)->Name("uncontended/tas");
BENCHMARK(BM_Uncontended<hlock::TtasSpinLock>)->Name("uncontended/ttas");
BENCHMARK(BM_Uncontended<hlock::BackoffSpinLock>)->Name("uncontended/backoff");
BENCHMARK(BM_Uncontended<hlock::TicketLock>)->Name("uncontended/ticket");
BENCHMARK(BM_UncontendedClassicMcs)->Name("uncontended/mcs_classic");
BENCHMARK(BM_Uncontended<hlock::McsH1Lock>)->Name("uncontended/mcs_h1");
BENCHMARK(BM_Uncontended<hlock::McsH2Lock>)->Name("uncontended/mcs_h2");
BENCHMARK(BM_Uncontended<hlock::McsTryV1Lock>)->Name("uncontended/mcs_try_v1");
BENCHMARK(BM_Uncontended<hlock::McsTryV2Lock>)->Name("uncontended/mcs_try_v2");

BENCHMARK(BM_Contended<hlock::TtasSpinLock>)->Name("contended/ttas")->Threads(2);
BENCHMARK(BM_Contended<hlock::McsH2Lock>)->Name("contended/mcs_h2")->Threads(2);
BENCHMARK(BM_Contended<hlock::TicketLock>)->Name("contended/ticket")->Threads(2);

int main(int argc, char** argv) {
  return hbench::RunGoogleBench(argc, argv, "native_lock_latency");
}
