// hmesh scaling and chaos campaign (ISSUE 10 tentpole bench).
//
// Three sections, all pure simulation (deterministic, regression-gated):
//
//   read-mostly sweep (95/5, zipf 0.99): weak scaling over 1 -> 8 machines at
//     a fixed per-machine offered rate.  Hot keys are replicated on every
//     member, so reads stay machine-local and adding machines adds capacity
//     near-linearly *if* the mesh absorbs the cross-machine write broadcasts
//     and forwarded cold reads.  Gate: throughput at 8 machines >= 6x the
//     single-machine run.
//
//   write-heavy sweep (50/50): the same mesh under a write-dominated load.
//     Every hot-key put broadcasts a versioned update to all N-1 replicas
//     before acking, so throughput *must* fall below the read-mostly curve
//     and the update amplification (updates applied per put) must track the
//     member count.  Gate: write-heavy throughput at 8 machines is below
//     read-mostly at 8 machines.
//
//   chaos campaign (4 machines): kill one member at steady state under load
//     with a lossy transport, recover it, re-sync.  Gates: every acked write
//     applied at exactly one version (exact-once), the highest acked version
//     of every key survives on the final owner (zero lost ops), failover
//     detection and re-sync fit their configured budgets, and the whole
//     campaign replays bit-identically (equal mesh digests across two runs).
//
// --why attaches the flight recorder to the 4-machine read-mostly run and
// prints the tail-blame report (cross-machine RPC legs appear as causally
// linked child records).  --profile attaches per-machine store lock sites
// and prints the hprof contention report.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hflight/blame.h"
#include "src/hflight/flight.h"
#include "src/hmesh/client.h"
#include "src/hmesh/mesh.h"
#include "src/hmetrics/bench_main.h"
#include "src/hmetrics/bench_report.h"
#include "src/hmetrics/registry.h"
#include "src/hprof/lock_site.h"
#include "src/hprof/report.h"

namespace {

using hmesh::AckedWrite;
using hmesh::ClientConfig;
using hmesh::ClientStats;
using hmesh::Mesh;
using hmesh::MeshConfig;
using hsim::Tick;
using hsim::TicksToUs;
using hsim::UsToTicks;

template <typename Pred>
bool DriveUntil(hsim::Engine& eng, Tick deadline, Pred pred) {
  while (!pred() && eng.now() < deadline) {
    if (eng.RunUntil(eng.now() + UsToTicks(100))) {
      break;
    }
  }
  return pred();
}

struct SweepPoint {
  std::uint32_t machines = 0;
  double offered_ops_s = 0;
  double tp_ops_s = 0;
  double local_frac = 0;
  double p99_us = 0;
  double update_amp = 0;  // replica updates applied per put served
  std::uint64_t completed = 0;
  std::uint64_t forwarded = 0;
  bool done = false;
};

SweepPoint RunSweepPoint(std::uint32_t machines, double read_fraction, double rate_per_s,
                         std::uint64_t ops, hflight::FlightRecorder* flight,
                         hprof::SiteTable* sites) {
  hsim::Engine eng;
  MeshConfig mc;
  mc.machines = machines;
  Mesh mesh(&eng, mc);
  if (flight != nullptr) {
    mesh.AttachFlightRecorder(flight);
  }
  if (sites != nullptr) {
    mesh.AttachLockProfiler(sites);
  }
  mesh.Start();

  ClientConfig cc;
  cc.workload.num_clusters = machines;
  cc.workload.keys_per_cluster = mc.keys_per_machine;
  cc.workload.read_fraction = read_fraction;
  cc.workload.seed = 2024;
  cc.ops = ops;
  cc.rate_per_s = rate_per_s;
  std::vector<ClientStats> stats(machines);
  for (std::uint32_t m = 0; m < machines; ++m) {
    eng.Spawn(RunClient(&mesh, m, cc, &stats[m]));
  }

  SweepPoint pt;
  pt.machines = machines;
  pt.offered_ops_s = rate_per_s * machines;
  pt.done = DriveUntil(eng, UsToTicks(10'000'000), [&] {
    return std::all_of(stats.begin(), stats.end(),
                       [](const ClientStats& s) { return s.done; });
  });
  const Tick end = eng.now();

  hload::LatencyRecorder merged;
  std::uint64_t local = 0;
  std::uint64_t puts = 0;
  std::uint64_t updates = 0;
  for (std::uint32_t m = 0; m < machines; ++m) {
    pt.completed += stats[m].completed;
    local += stats[m].local_reads;
    pt.forwarded += stats[m].forwarded_reads;
    merged.Merge(stats[m].latency);
    puts += mesh.node_counters(m).puts_served;
    updates += mesh.node_counters(m).updates_applied;
  }
  const std::uint64_t reads = local + pt.forwarded;
  pt.local_frac = reads == 0 ? 0 : static_cast<double>(local) / static_cast<double>(reads);
  pt.update_amp = puts == 0 ? 0 : static_cast<double>(updates) / static_cast<double>(puts);
  pt.tp_ops_s = end == 0 ? 0
                         : static_cast<double>(pt.completed) / (TicksToUs(end) / 1e6);
  pt.p99_us = static_cast<double>(merged.PercentileNs(0.99)) / 1000.0;

  mesh.Shutdown();
  eng.RunUntilIdle();
  return pt;
}

struct ChaosOutcome {
  bool done = false;
  bool exact_once = true;
  std::uint64_t lost_ops = 0;
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  std::uint64_t failovers = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t put_dedups = 0;
  double detect_us = 0;
  double resync_us = 0;
  std::uint64_t digest = 0;
};

ChaosOutcome RunChaos(std::uint64_t ops, hmetrics::Registry* registry) {
  constexpr std::uint32_t kMachines = 4;
  constexpr std::uint32_t kVictim = 3;
  const Tick kill_at = UsToTicks(2'000);
  const Tick recover_at = UsToTicks(6'000);

  hsim::Engine eng;
  MeshConfig mc;
  mc.machines = kMachines;
  Mesh mesh(&eng, mc);
  hsim::FaultConfig faults;
  faults.drop_request = 0.01;
  faults.drop_reply = 0.01;
  faults.dup_request = 0.005;
  faults.seed = 1234;
  mesh.set_fault_plan(faults);
  mesh.Start();

  ClientConfig cc;
  cc.workload.num_clusters = kMachines;
  cc.workload.keys_per_cluster = mc.keys_per_machine;
  cc.workload.read_fraction = 0.8;
  cc.workload.seed = 77;
  cc.ops = ops;
  cc.rate_per_s = 80'000;
  std::vector<ClientStats> stats(kMachines - 1);
  for (std::uint32_t m = 0; m < kMachines - 1; ++m) {
    eng.Spawn(RunClient(&mesh, m, cc, &stats[m]));
  }
  eng.Spawn(mesh.KillAt(kill_at, kVictim));
  eng.Spawn(mesh.RecoverAt(recover_at, kVictim));

  ChaosOutcome out;
  out.done = DriveUntil(eng, UsToTicks(20'000'000), [&] {
    return std::all_of(stats.begin(), stats.end(),
                       [](const ClientStats& s) { return s.done; }) &&
           mesh.timeline(kVictim).synced_at != 0;
  });
  DriveUntil(eng, UsToTicks(21'000'000), [&] { return mesh.Quiescent(); });

  std::vector<AckedWrite> acked;
  for (std::uint32_t m = 0; m < kMachines - 1; ++m) {
    out.issued += stats[m].issued;
    out.completed += stats[m].completed;
    acked.insert(acked.end(), stats[m].acked_writes.begin(), stats[m].acked_writes.end());
  }
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.put_dedups += mesh.node_counters(m).put_dedups;
  }

  // Gate 1: exact-once -- one applied version per acked op.
  for (const AckedWrite& w : acked) {
    const auto it = mesh.op_versions().find(w.op_id);
    if (it == mesh.op_versions().end() || it->second.size() != 1 ||
        it->second[0] != w.version) {
      out.exact_once = false;
    }
  }
  // Gate 2: zero lost ops -- highest acked version of every key on its owner.
  std::map<std::uint64_t, AckedWrite> newest;
  for (const AckedWrite& w : acked) {
    auto [it, inserted] = newest.emplace(w.key, w);
    if (!inserted && w.version > it->second.version) {
      it->second = w;
    }
  }
  for (const auto& [key, w] : newest) {
    const Mesh::Entry* e = mesh.Lookup(mesh.ring().OwnerOf(key), key);
    if (e == nullptr || e->version != w.version || e->value != w.value) {
      ++out.lost_ops;
    }
  }
  const Mesh::Timeline& tl = mesh.timeline(kVictim);
  out.detect_us = TicksToUs(tl.failover_at - tl.killed_at);
  out.resync_us = TicksToUs(tl.synced_at - tl.recover_at);
  out.failovers = mesh.failovers();
  out.resyncs = mesh.resyncs();
  out.digest = mesh.Digest();
  if (registry != nullptr) {
    mesh.PublishCounters(registry);
  }
  mesh.Shutdown();
  eng.RunUntilIdle();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);

  const std::uint64_t sweep_ops = opts.smoke ? 400 : 1500;
  const std::uint64_t write_ops = opts.smoke ? 250 : 600;
  const std::uint64_t chaos_ops = opts.smoke ? 400 : 900;
  const double read_rate = 150'000;  // per machine, below per-member capacity
  const double write_rate = 50'000;

  hmetrics::BenchReport report("mesh_scaling");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  report.SetParam("machines_max", 8);
  report.SetParam("read_rate_per_machine", read_rate);
  report.SetParam("write_rate_per_machine", write_rate);

  // --- read-mostly weak scaling ---------------------------------------------
  std::printf("mesh read-mostly weak scaling (95/5, %.0fk ops/s per machine)\n",
              read_rate / 1000);
  std::printf("  %-9s %12s %12s %9s %8s %8s\n", "machines", "offered/s", "achieved/s",
              "speedup", "local%", "p99_us");
  auto& read_series = report.AddSeries("mesh_scaling", {{"workload", "read_mostly"}});
  double tp1 = 0;
  double tp8 = 0;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const SweepPoint pt = RunSweepPoint(n, 0.95, read_rate, sweep_ops, nullptr, nullptr);
    if (n == 1) {
      tp1 = pt.tp_ops_s;
    }
    if (n == 8) {
      tp8 = pt.tp_ops_s;
    }
    const double speedup = tp1 == 0 ? 0 : pt.tp_ops_s / tp1;
    std::printf("  %-9u %12.0f %12.0f %8.2fx %7.1f%% %8.1f%s\n", n, pt.offered_ops_s,
                pt.tp_ops_s, speedup, pt.local_frac * 100, pt.p99_us,
                pt.done ? "" : "  [DID NOT DRAIN]");
    read_series.AddPoint({{"machines", static_cast<double>(n)},
                          {"offered_ops_s", pt.offered_ops_s},
                          {"tp_ops_s", pt.tp_ops_s},
                          {"speedup", speedup},
                          {"frac_local", pt.local_frac},
                          {"update_amp", pt.update_amp},
                          {"completed", static_cast<double>(pt.completed)}});
  }
  const double read_speedup_8 = tp1 == 0 ? 0 : tp8 / tp1;

  // --- write-heavy broadcast cost -------------------------------------------
  std::printf("\nmesh write-heavy broadcast cost (50/50, %.0fk ops/s per machine)\n",
              write_rate / 1000);
  std::printf("  %-9s %12s %12s %11s\n", "machines", "offered/s", "achieved/s",
              "updates/put");
  auto& write_series = report.AddSeries("mesh_scaling", {{"workload", "write_heavy"}});
  double write_tp8 = 0;
  double read_tp8_at_write_rate = tp8;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const SweepPoint pt = RunSweepPoint(n, 0.5, write_rate, write_ops, nullptr, nullptr);
    if (n == 8) {
      write_tp8 = pt.tp_ops_s;
    }
    std::printf("  %-9u %12.0f %12.0f %11.2f%s\n", n, pt.offered_ops_s, pt.tp_ops_s,
                pt.update_amp, pt.done ? "" : "  [DID NOT DRAIN]");
    write_series.AddPoint({{"machines", static_cast<double>(n)},
                           {"offered_ops_s", pt.offered_ops_s},
                           {"tp_ops_s", pt.tp_ops_s},
                           {"update_amp", pt.update_amp},
                           {"completed", static_cast<double>(pt.completed)}});
  }

  // --- chaos campaign --------------------------------------------------------
  std::printf("\nmesh chaos campaign (4 machines, kill+recover under lossy load)\n");
  hmetrics::Registry registry;
  const ChaosOutcome a = RunChaos(chaos_ops, &registry);
  const ChaosOutcome b = RunChaos(chaos_ops, nullptr);  // replay check
  const bool replay_identical = a.digest == b.digest;
  std::printf("  completed %llu/%llu  failovers=%llu resyncs=%llu dedups=%llu\n",
              static_cast<unsigned long long>(a.completed),
              static_cast<unsigned long long>(a.issued),
              static_cast<unsigned long long>(a.failovers),
              static_cast<unsigned long long>(a.resyncs),
              static_cast<unsigned long long>(a.put_dedups));
  std::printf("  exact_once=%s lost_ops=%llu detect=%.0fus resync=%.0fus replay=%s\n",
              a.exact_once ? "yes" : "NO", static_cast<unsigned long long>(a.lost_ops),
              a.detect_us, a.resync_us, replay_identical ? "identical" : "DIVERGED");
  std::printf("  cross-machine packets (hmetrics mesh.traffic.src_dst):\n");
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::printf("    m%u ->", s);
    for (std::uint32_t t = 0; t < 4; ++t) {
      const std::string name =
          "mesh.traffic." + std::to_string(s) + "_" + std::to_string(t);
      std::printf(" %8llu",
                  static_cast<unsigned long long>(registry.counter(name).value()));
    }
    std::printf("\n");
  }

  auto& chaos_series = report.AddSeries("mesh_chaos", {{"scenario", "kill_recover"}});
  chaos_series.AddPoint({{"machines", 4.0},
                         {"completed", static_cast<double>(a.completed)},
                         {"issued", static_cast<double>(a.issued)},
                         {"failovers", static_cast<double>(a.failovers)},
                         {"resyncs", static_cast<double>(a.resyncs)},
                         {"put_dedups", static_cast<double>(a.put_dedups)},
                         {"detect_us", a.detect_us},
                         {"resync_us", a.resync_us}});

  // --- gates ------------------------------------------------------------------
  const bool gate_speedup = read_speedup_8 >= 6.0;
  const bool gate_write_below = write_tp8 < read_tp8_at_write_rate;
  const bool gate_chaos = a.exact_once && a.lost_ops == 0 && a.completed == a.issued &&
                          a.detect_us <= 3000 && a.resync_us <= 10'000 && replay_identical;
  std::printf("\ngates: read_speedup_8=%.2f (>=6: %s)  write_below_read=%s  chaos=%s\n",
              read_speedup_8, gate_speedup ? "pass" : "FAIL",
              gate_write_below ? "pass" : "FAIL", gate_chaos ? "pass" : "FAIL");

  auto& gates = report.AddSeries("mesh_gates", {{"scenario", "all"}});
  gates.AddPoint({{"machines", 8.0},
                  {"read_speedup_8", read_speedup_8},
                  {"frac_write_below_read", gate_write_below ? 1.0 : 0.0},
                  {"chaos_exact_once", a.exact_once ? 1.0 : 0.0},
                  {"chaos_lost_ops", static_cast<double>(a.lost_ops)},
                  {"chaos_detect_us", a.detect_us},
                  {"chaos_resync_us", a.resync_us},
                  {"chaos_replay_identical", replay_identical ? 1.0 : 0.0}});

  // --- optional instrumented runs -------------------------------------------
  if (opts.profile) {
    hprof::SiteTable sites(/*ticks_per_us=*/16.0);  // simulated time
    (void)RunSweepPoint(4, 0.95, read_rate, opts.smoke ? 300 : 1000, nullptr, &sites);
    if (!opts.profile_path.empty()) {
      if (!hmetrics::WriteJsonFile(opts.profile_path, sites.ToJson())) {
        return 1;
      }
      std::printf("\nwrote lockprof export to %s\n", opts.profile_path.c_str());
    }
    hprof::ProfileReport prof;
    std::string error;
    if (!prof.AddSites(sites, &error)) {
      std::fprintf(stderr, "hprof: %s\n", error.c_str());
      return 1;
    }
    prof.Rank();
    std::printf("\n%s", prof.RenderText().c_str());
  }
  if (opts.why) {
    hflight::FlightConfig fc;
    fc.clusters = 4;
    fc.ticks_per_us = static_cast<double>(hsim::kCyclesPerMicrosecond);
    hflight::FlightRecorder flight(fc);
    (void)RunSweepPoint(4, 0.95, read_rate, opts.smoke ? 300 : 1000, &flight, nullptr);
    const std::string flight_doc = flight.ToJson();
    if (!opts.why_path.empty()) {
      if (!hmetrics::WriteJsonFile(opts.why_path, flight_doc)) {
        return 1;
      }
      std::printf("\nwrote flight export to %s\n", opts.why_path.c_str());
    }
    hmetrics::JsonValue doc;
    std::string error;
    hflight::BlameReport blame;
    if (!hmetrics::JsonParser::Parse(flight_doc, &doc, &error) ||
        !blame.AddFlight(doc, &error) || !blame.Analyze(&error)) {
      std::fprintf(stderr, "hwhy analysis failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("\n%s", blame.RenderText(10).c_str());
  }

  const bool ok = gate_speedup && gate_write_below && gate_chaos;
  if (!hmetrics::WriteReport(opts, report)) {
    return 1;
  }
  return ok ? 0 : 1;
}
