// alloc_scaling: cross-cluster traffic of the halloc slab allocator against
// the shared-free-list baseline it replaces, on the simulated HECTOR machine
// (4 stations x 4 processor-memory modules).
//
// The paper's argument for per-cluster kernel data applies verbatim to the
// allocation path: a single free list homed in one memory module forces 12 of
// 16 processors across the ring on EVERY alloc and free, while the slab
// core's per-cluster magazines keep the fast path inside the allocating
// processor's own station.  Two workloads measure that with the simulator's
// per-processor loc_* counters:
//
//   steady state -- every processor cycles one object (batch=1).  After the
//     magazine primes, the slab never leaves its station: ring crossings per
//     op must be exactly zero, against a shared-pool figure that grows as
//     stations join (processors fill stations in order, so p=4 is one
//     station, p=16 all four).
//   depot churn -- batches larger than two magazines force a depot trip per
//     batch.  Only the depot metadata crosses the ring (the carved refs stay
//     home), so the slab's ring crossings per op stay well below the shared
//     pool's; the claim gated in BENCH_BASELINE.json is a >= 4x reduction.
//
// The churn phase also attaches hprof sites to the slab depot lock and the
// shared pool lock: the depot shows up like any other lock site, with
// per-cluster acquisition shares and a handoff mix (all four clusters visit
// the depot, so most owner transitions are cross-cluster -- the point is that
// trips are RARE, not local).  --profile renders the two sites as an hprof
// report; --profile=PATH also writes the hurricane-lockprof/1 document.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/halloc/shared_pool.h"
#include "src/halloc/slab_core.h"
#include "src/hmetrics/bench_main.h"
#include "src/hprof/lock_site.h"
#include "src/hprof/report.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace {

using SharedCore = halloc::SharedPoolCore<hsim::SimBackend>;
using SlabCore = halloc::SlabAllocatorCore<hsim::SimBackend>;

// Geometry shared by both allocators: same capacity, and batches sized so the
// churn phase (kBatch > 2 * magazine_size) takes a depot trip per batch while
// peak live objects (16 procs * kBatch) stay under capacity.
constexpr std::uint64_t kObjectsPerCluster = 128;
constexpr std::uint64_t kMagazineSize = 8;
constexpr unsigned kClusters = 4;
constexpr std::uint64_t kCapacity = kClusters * kObjectsPerCluster;
constexpr int kBatch = static_cast<int>(2 * kMagazineSize + 1);

const unsigned kProcs[] = {4, 8, 16};

// Each iteration allocates `batch` objects and frees them all; kNil grants
// (exhaustion) are simply not freed, and the cores count them as alloc_fail.
template <class Core>
hsim::Task<void> Worker(hsim::Processor* p, Core* core, int iters, int batch) {
  std::vector<std::uint64_t> held;
  held.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < iters; ++i) {
    for (int j = 0; j < batch; ++j) {
      const std::uint64_t ref = co_await core->Alloc(*p);
      if (ref != Core::kNil) {
        held.push_back(ref);
      }
    }
    for (std::uint64_t ref : held) {
      co_await core->Free(*p, ref);
    }
    held.clear();
  }
}

struct RunResult {
  std::uint64_t ops = 0;       // completed allocs + frees (+ refusals)
  hsim::OpStats traffic;       // summed over the participating processors

  double ring_per_op() const {
    return ops > 0 ? static_cast<double>(traffic.loc_ring) /
                         static_cast<double>(ops)
                   : 0.0;
  }
  double frac_ring() const {
    const std::uint64_t total = traffic.loc_total();
    return total > 0 ? static_cast<double>(traffic.loc_ring) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

template <class Core>
hsim::OpStats DriveWorkload(hsim::Engine* engine, hsim::Machine* machine,
                            Core* core, unsigned procs, int iters, int batch) {
  std::vector<hsim::OpStats> before;
  before.reserve(procs);
  for (unsigned i = 0; i < procs; ++i) {
    before.push_back(machine->processor(i).stats());
  }
  for (unsigned i = 0; i < procs; ++i) {
    engine->Spawn(Worker(&machine->processor(i), core, iters, batch));
  }
  engine->RunUntilIdle();
  hsim::OpStats delta;
  for (unsigned i = 0; i < procs; ++i) {
    delta += machine->processor(i).stats() - before[i];
  }
  return delta;
}

RunResult RunShared(unsigned procs, int iters, int batch,
                    hprof::LockSiteStats* site) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hsim::SimBackend backend(&machine);
  SharedCore pool(&backend, kCapacity, /*home=*/0);
  if (site != nullptr) {
    pool.set_lock_site(site);
  }
  RunResult r;
  r.traffic = DriveWorkload(&engine, &machine, &pool, procs, iters, batch);
  r.ops = pool.allocs() + pool.frees() + pool.fails();
  return r;
}

RunResult RunSlab(unsigned procs, int iters, int batch,
                  hprof::LockSiteStats* site) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hsim::SimBackend backend(&machine);
  halloc::SlabConfig cfg;
  cfg.objects_per_cluster = kObjectsPerCluster;
  cfg.magazine_size = kMagazineSize;
  SlabCore core(&backend, cfg);
  if (site != nullptr) {
    core.set_depot_site(site);
  }
  RunResult r;
  r.traffic = DriveWorkload(&engine, &machine, &core, procs, iters, batch);
  const halloc::CacheStats total = core.TotalCacheStats();
  r.ops = total.allocs() + total.frees() + total.alloc_fail;
  return r;
}

void AddHandoffPoint(hmetrics::BenchReport* report, const char* alloc_name,
                     const hprof::LockSiteStats& site) {
  const double same_proc =
      static_cast<double>(site.handoffs(hprof::Handoff::kSameProcessor));
  const double same_clust =
      static_cast<double>(site.handoffs(hprof::Handoff::kSameCluster));
  const double cross_clust =
      static_cast<double>(site.handoffs(hprof::Handoff::kCrossCluster));
  const double total = same_proc + same_clust + cross_clust;
  const double denom = total > 0 ? total : 1;
  printf("%-12s %12llu %12.3f %12.3f %12.3f\n", alloc_name,
         static_cast<unsigned long long>(site.acquisitions()),
         same_proc / denom, same_clust / denom, cross_clust / denom);
  report->AddSeries("lock_handoff", {{"alloc", alloc_name}})
      .AddPoint({{"procs", 16},
                 {"clusters", static_cast<double>(kClusters)},
                 {"acquisitions", static_cast<double>(site.acquisitions())},
                 {"frac_same_processor", same_proc / denom},
                 {"frac_same_cluster", same_clust / denom},
                 {"frac_cross_cluster", cross_clust / denom}});
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("alloc_scaling");
  report.SetParam("smoke", opts.smoke ? 1 : 0);

  printf("alloc_scaling: allocator ring traffic, per-cluster slab vs shared "
         "free list\n\n");

  // --- steady state: one object cycled per processor ------------------------
  const int steady_iters = opts.smoke ? 200 : 2000;
  struct Runner {
    const char* name;
    RunResult (*run)(unsigned, int, int, hprof::LockSiteStats*);
  };
  const Runner kRunners[] = {{"shared-pool", RunShared}, {"slab", RunSlab}};

  printf("steady state (batch=1, iters=%d): ring crossings per alloc/free\n",
         steady_iters);
  printf("%-12s", "alloc \\ p");
  for (unsigned p : kProcs) {
    printf("%10u", p);
  }
  printf("%14s\n", "frac_ring@16");
  double steady_rpo[2] = {0, 0};
  for (int s = 0; s < 2; ++s) {
    hmetrics::BenchSeries& out =
        report.AddSeries("steady_traffic", {{"alloc", kRunners[s].name}});
    printf("%-12s", kRunners[s].name);
    double frac16 = 0;
    for (unsigned p : kProcs) {
      const RunResult r = kRunners[s].run(p, steady_iters, /*batch=*/1, nullptr);
      printf("%10.3f", r.ring_per_op());
      out.AddPoint({{"procs", static_cast<double>(p)},
                    {"iters", static_cast<double>(steady_iters)},
                    {"ops", static_cast<double>(r.ops)},
                    {"ring_per_op", r.ring_per_op()},
                    {"frac_ring", r.frac_ring()}});
      if (p == 16) {
        steady_rpo[s] = r.ring_per_op();
        frac16 = r.frac_ring();
      }
    }
    printf("%14.3f\n", frac16);
  }

  // Headline gate: at 16 processors / 4 clusters the slab eliminates the
  // shared pool's per-op ring traffic outright (the fast path never leaves
  // the station), so the drop fraction sits at 1.0 and is gated with the
  // +/- 0.1 frac tolerance.
  const double steady_drop =
      steady_rpo[0] > 0 ? 1.0 - steady_rpo[1] / steady_rpo[0] : 0.0;
  printf("\nsteady-state ring-traffic drop at p=16: %.1f%% (shared %.3f -> "
         "slab %.3f per op)\n",
         100.0 * steady_drop, steady_rpo[0], steady_rpo[1]);
  report.AddSeries("steady_drop", {})
      .AddPoint({{"procs", 16},
                 {"clusters", static_cast<double>(kClusters)},
                 {"iters", static_cast<double>(steady_iters)},
                 {"shared_ring_per_op", steady_rpo[0]},
                 {"slab_ring_per_op", steady_rpo[1]},
                 {"frac_ring_drop", steady_drop}});

  // --- depot churn: batches too big for the magazine pair -------------------
  // Every batch drains loaded+previous and takes one depot trip; the trip
  // crosses the ring (depot words live at module 0) but amortizes over the
  // whole batch, so per-op ring traffic stays a small multiple of zero while
  // the shared pool still pays per op.  The hprof sites attached here feed
  // the handoff table below and --profile.
  const int churn_rounds = opts.smoke ? 50 : 400;
  hprof::SiteTable sites(static_cast<double>(hsim::kCyclesPerMicrosecond));
  hprof::LockSiteStats& depot_site =
      sites.AddSite("alloc/slab-depot", /*procs_per_cluster=*/4);
  hprof::LockSiteStats& shared_site =
      sites.AddSite("alloc/shared-pool", /*procs_per_cluster=*/4);

  printf("\ndepot churn (batch=%d, rounds=%d, p=16): ring crossings per op\n",
         kBatch, churn_rounds);
  double churn_rpo[2] = {0, 0};
  const hprof::LockSiteStats* churn_sites[2] = {&shared_site, &depot_site};
  for (int s = 0; s < 2; ++s) {
    const RunResult r = kRunners[s].run(
        16, churn_rounds, kBatch,
        const_cast<hprof::LockSiteStats*>(churn_sites[s]));
    churn_rpo[s] = r.ring_per_op();
    printf("  %-12s %8.3f (frac_ring %.3f, ops %llu)\n", kRunners[s].name,
           r.ring_per_op(), r.frac_ring(),
           static_cast<unsigned long long>(r.ops));
    report.AddSeries("churn_traffic", {{"alloc", kRunners[s].name}})
        .AddPoint({{"procs", 16},
                   {"clusters", static_cast<double>(kClusters)},
                   {"iters", static_cast<double>(churn_rounds)},
                   {"ops", static_cast<double>(r.ops)},
                   {"ring_per_op", r.ring_per_op()},
                   {"frac_ring", r.frac_ring()}});
  }
  const double churn_ratio =
      churn_rpo[1] > 0 ? churn_rpo[0] / churn_rpo[1] : 0.0;
  printf("  slab advantage: %.1fx fewer ring crossings per op "
         "(target >= 4x)\n", churn_ratio);
  report.AddSeries("churn_advantage", {})
      .AddPoint({{"procs", 16},
                 {"clusters", static_cast<double>(kClusters)},
                 {"iters", static_cast<double>(churn_rounds)},
                 {"ring_ratio", churn_ratio},
                 {"frac_target_met",
                  churn_ratio >= 4.0 ? 1.0 : churn_ratio / 4.0}});

  // --- depot lock as an hprof site ------------------------------------------
  // The depot is a lock like any other to the profiler: acquisition counts,
  // per-cluster shares, and an owner-transition mix.  All four clusters trip
  // it, so its handoffs skew cross-cluster -- cheap because trips are rare,
  // which is exactly what the acquisition count (vs the shared pool's)
  // shows.
  printf("\nlock sites at p=16 (churn phase): handoff mix\n");
  printf("%-12s %12s %12s %12s %12s\n", "site", "acqs", "same-proc",
         "same-clust", "cross-clust");
  AddHandoffPoint(&report, "shared-pool", shared_site);
  AddHandoffPoint(&report, "slab", depot_site);

  printf("\nslab depot acquisitions by cluster:\n");
  std::uint64_t depot_total = 0;
  for (const auto& [cluster, share] : depot_site.by_cluster()) {
    (void)cluster;
    depot_total += share.acquisitions;
  }
  for (const auto& [cluster, share] : depot_site.by_cluster()) {
    const double frac_share =
        depot_total > 0 ? static_cast<double>(share.acquisitions) /
                              static_cast<double>(depot_total)
                        : 0.0;
    printf("  cluster %u: %llu acquisitions (%.3f of total)\n", cluster,
           static_cast<unsigned long long>(share.acquisitions), frac_share);
    report.AddSeries("depot_by_cluster",
                     {{"alloc", "slab"}, {"cluster", std::to_string(cluster)}})
        .AddPoint({{"procs", 16},
                   {"clusters", static_cast<double>(kClusters)},
                   {"acquisitions", static_cast<double>(share.acquisitions)},
                   {"frac_share", frac_share}});
  }

  if (opts.profile) {
    if (!opts.profile_path.empty()) {
      if (!hmetrics::WriteJsonFile(opts.profile_path, sites.ToJson())) {
        return 1;
      }
      printf("\nwrote lockprof export to %s\n", opts.profile_path.c_str());
    }
    hprof::ProfileReport prof;
    std::string error;
    if (!prof.AddSites(sites, &error)) {
      fprintf(stderr, "hprof: %s\n", error.c_str());
      return 1;
    }
    prof.Rank();
    printf("\n%s", prof.RenderText().c_str());
  }

  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
