// Extension experiment: Section 5.2's what-if -- the same lock algorithms on
// a cache-coherent machine with cache-based atomic primitives.
//
// The paper's predictions, each checked here:
//   1. "cache-based atomic primitives can reduce the cost of atomic
//      operations to close to that of regular memory accesses": uncontended
//      lock/unlock pairs collapse from microseconds to a handful of cycles
//      once the lock line stays in the owner's cache.
//   2. For "low sharing [and] low steady-state contention ... spin locks
//      would be the better choice, since they have the lowest latency".
//   3. "if high contention is common", queue-based locks win -- the
//      spin lock's line ping-pong (every retry steals the line) replaces the
//      uncached machine's memory-module meltdown as the second-order effect.

#include <cstdio>

#include "src/hmetrics/bench_main.h"
#include "src/hsim/locks/stress.h"

namespace {

using hsim::LockKind;
using hsim::LockStressParams;
using hsim::MachineConfig;

bool g_smoke = false;

double Pair(LockKind kind, bool coherent) {
  // UncontendedPairLatencyUs builds its own machine; replicate it here with a
  // configurable machine via the stress harness at p=1 instead.
  LockStressParams params;
  params.kind = kind;
  params.processors = 1;
  params.hold = 0;
  params.think = 64;
  params.machine.cache_coherent = coherent;
  params.duration = hsim::UsToTicks(g_smoke ? 1000 : 4000);
  const auto r = hsim::RunLockStress(params);
  // little_response ~ acquire+hold+release+think per op; subtract the think.
  return r.little_response_us() - hsim::TicksToUs(64);
}

double Contended(LockKind kind, bool coherent, unsigned p) {
  LockStressParams params;
  params.kind = kind;
  params.processors = p;
  params.hold = 0;
  params.machine.cache_coherent = coherent;
  params.duration = hsim::UsToTicks(g_smoke ? 2000 : 12000);
  return hsim::RunLockStress(params).little_response_us();
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  g_smoke = opts.smoke;
  hmetrics::BenchReport report("ext_cache_coherent");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Extension: the Section 5.2 what-if -- cache coherence + cached atomics\n\n");

  printf("Uncontended lock+unlock cycle (us, loop overhead removed):\n");
  printf("%-10s %12s %12s\n", "lock", "uncached", "coherent");
  for (auto [kind, name] : {std::pair{LockKind::kSpin35us, "spin"},
                            {LockKind::kMcs, "mcs"},
                            {LockKind::kMcsH2, "h2-mcs"}}) {
    const double uncached = Pair(kind, false);
    const double coherent = Pair(kind, true);
    printf("%-10s %12.2f %12.2f\n", name, uncached, coherent);
    report.AddSeries("uncontended_pair_us", {{"lock", name}})
        .AddPoint({{"uncached_us", uncached}, {"coherent_us", coherent}});
  }
  printf("(prediction 1: cached atomics make the uncontended pair nearly free,\n"
         " eroding -- as the paper anticipated -- part of the hybrid strategy's\n"
         " atomic-op-counting advantage)\n\n");

  printf("Contended response W (us) on the coherent machine, hold=0:\n");
  printf("%-10s", "lock \\ p");
  for (unsigned p : {2u, 4u, 8u, 16u}) {
    printf("%10u", p);
  }
  printf("\n");
  for (auto [kind, name] : {std::pair{LockKind::kSpin35us, "spin-35us"},
                            {LockKind::kMcs, "mcs"},
                            {LockKind::kMcsH2, "h2-mcs"}}) {
    hmetrics::BenchSeries& out =
        report.AddSeries("coherent_response_us", {{"lock", name}});
    printf("%-10s", name);
    for (unsigned p : {2u, 4u, 8u, 16u}) {
      const double w = Contended(kind, true, p);
      printf("%10.1f", w);
      out.AddPoint({{"p", static_cast<double>(p)}, {"w_us", w}});
    }
    printf("\n");
  }
  printf("\n(predictions 2 and 3: at low contention the spin lock's latency\n"
         " advantage shows; as contention rises its line ping-pong lets the\n"
         " queue locks take over -- hierarchical clustering to bound contention\n"
         " 'should prove to be even more beneficial' there, Section 5.3)\n");
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
