// Hybrid vs fine-grained vs global-lock hash tables, native (Figure 1's
// design comparison on host hardware).
//
// What the hybrid strategy buys (Section 2.4):
//   - vs fine-grained: ONE lock acquisition on the fast path instead of two
//     (bucket + entry), so uncontended operations are cheaper;
//   - vs a global lock: the coarse lock is dropped before the element is
//     used, so long element holds do not serialize the table.

#include <benchmark/benchmark.h>

#include "bench/gbench_report.h"
#include "src/hlock/fine_table.h"
#include "src/hlock/hybrid_table.h"

namespace {

void BM_HybridAcquireRelease(benchmark::State& state) {
  hlock::HybridTable<int, int> table;
  {
    auto g = table.Acquire(1);
    g.value() = 0;
  }
  for (auto _ : state) {
    auto guard = table.Acquire(1);
    guard.value() += 1;
    benchmark::DoNotOptimize(guard.value());
  }
}

void BM_FineAcquireRelease(benchmark::State& state) {
  hlock::FineTable<int, int> table;
  {
    auto g = table.Acquire(1);
    g.value() = 0;
  }
  for (auto _ : state) {
    auto guard = table.Acquire(1);
    guard.value() += 1;
    benchmark::DoNotOptimize(guard.value());
  }
}

void BM_GlobalWith(benchmark::State& state) {
  hlock::GlobalTable<int, int> table;
  table.With(1, [](int& v) { v = 0; });
  for (auto _ : state) {
    table.With(1, [](int& v) {
      v += 1;
      benchmark::DoNotOptimize(v);
    });
  }
}

void BM_HybridPeek(benchmark::State& state) {
  hlock::HybridTable<int, int> table;
  {
    auto g = table.Acquire(7);
    g.value() = 42;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Peek(7));
  }
}

void BM_HybridReaders(benchmark::State& state) {
  hlock::HybridTable<int, int> table;
  {
    auto g = table.Acquire(7);
    g.value() = 42;
  }
  for (auto _ : state) {
    auto guard = table.AcquireShared(7);
    benchmark::DoNotOptimize(guard.value());
  }
}

// Independent keys under light parallelism: hybrid must not serialize them.
template <typename TableOp>
void IndependentKeysLoop(benchmark::State& state, TableOp op) {
  const int key = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    op(key);
  }
}

void BM_HybridIndependentKeys(benchmark::State& state) {
  static hlock::HybridTable<int, int> table;
  IndependentKeysLoop(state, [&](int key) {
    auto guard = table.Acquire(key);
    guard.value() += 1;
  });
}

void BM_FineIndependentKeys(benchmark::State& state) {
  static hlock::FineTable<int, int> table;
  IndependentKeysLoop(state, [&](int key) {
    auto guard = table.Acquire(key);
    guard.value() += 1;
  });
}

}  // namespace

BENCHMARK(BM_HybridAcquireRelease);
BENCHMARK(BM_FineAcquireRelease);
BENCHMARK(BM_GlobalWith);
BENCHMARK(BM_HybridPeek);
BENCHMARK(BM_HybridReaders);
BENCHMARK(BM_HybridIndependentKeys)->Threads(2);
BENCHMARK(BM_FineIndependentKeys)->Threads(2);

int main(int argc, char** argv) {
  return hbench::RunGoogleBench(argc, argv, "native_hybrid_table");
}
