// Regenerates Figure 5: lock response time under contention, when p
// processors continuously acquire and release the same lock.
//
//   Figure 5a -- lock held for 0 us.
//   Figure 5b -- lock held for 25 us.
//
// Reported metric: system response time by Little's law (W = p / throughput),
// which is robust to unfair locks starving individual processors; the sample
// mean over completed acquisitions is shown alongside.  Paper claims checked:
//   - MCS and H1 scale linearly; H1's re-initialization costs nothing under
//     contention.
//   - H2's missing successor check adds a constant repair overhead per
//     release, significant at hold=0, minor at hold=25us.
//   - spin/35us-cap degrades far worse than the Distributed Locks at hold=0.
//   - spin/2ms-cap is competitive on average, but starves: the paper saw
//     >13% of acquisitions take over 2ms at p=16, hold=25us.
//
// Beyond the paper, the modern NUMA-aware locks (CNA, HMCS-T, Fissile) race
// in the same panels, and a handoff-attribution section profiles every
// queue-based lock at p=16: CNA and HMCS-T must show a materially higher
// same-cluster handoff share than the FIFO MCS family.

#include <cstdio>
#include <string>

#include "src/hmetrics/bench_main.h"
#include "src/hprof/lock_site.h"
#include "src/hprof/report.h"
#include "src/hsim/locks/stress.h"

namespace {

using hsim::LockKind;
using hsim::LockStressParams;
using hsim::LockStressResult;
using hsim::Tick;

struct Series {
  const char* name;
  LockKind kind;
};

const Series kSeries[] = {
    {"mcs", LockKind::kMcs},         {"h1-mcs", LockKind::kMcsH1},
    {"h2-mcs", LockKind::kMcsH2},    {"spin-35us", LockKind::kSpin35us},
    {"spin-2ms", LockKind::kSpin2ms}, {"cna", LockKind::kCna},
    {"hmcs-t", LockKind::kHmcsT},    {"fissile", LockKind::kFissile},
};

// The subset raced for handoff attribution: the queue-based locks, where the
// grant order is the algorithm's choice (spin locks hand off to whoever wins
// the next test-and-set, which is bus arbitration, not policy).
const Series kHandoffSeries[] = {
    {"mcs", LockKind::kMcs},        {"h1-mcs", LockKind::kMcsH1},
    {"h2-mcs", LockKind::kMcsH2},   {"cna", LockKind::kCna},
    {"hmcs-t", LockKind::kHmcsT},   {"fissile", LockKind::kFissile},
};

const unsigned kProcs[] = {1, 2, 4, 8, 12, 16};

void RunPanel(Tick hold, const char* title, const hmetrics::BenchOptions& opts,
              hmetrics::BenchReport* report) {
  const double hold_us = hsim::TicksToUs(hold);
  printf("%s\n", title);
  printf("%-10s", "lock \\ p");
  for (unsigned p : kProcs) {
    printf("%10u", p);
  }
  printf("\n");
  for (const Series& series : kSeries) {
    hmetrics::BenchSeries& out = report->AddSeries(
        "response_us", {{"lock", series.name},
                        {"hold_us", hold_us > 0 ? "25" : "0"}});
    printf("%-10s", series.name);
    for (unsigned p : kProcs) {
      LockStressParams params;
      params.kind = series.kind;
      params.processors = p;
      params.hold = hold;
      const unsigned window_us = hold > 0 ? 20000 : 10000;
      params.duration = hsim::UsToTicks(opts.smoke ? window_us / 10 : window_us);
      const LockStressResult r = hsim::RunLockStress(params);
      printf("%10.1f", r.little_response_us());
      out.AddPoint({{"p", static_cast<double>(p)},
                    {"w_us", r.little_response_us()},
                    {"mean_us", r.acquire_latency.mean_us()}});
    }
    printf("\n");
  }
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("fig5_lock_contention");
  report.SetParam("smoke", opts.smoke ? 1 : 0);

  printf("Figure 5: lock response time under contention (us, Little's-law W)\n\n");
  RunPanel(0, "Figure 5a: lock held 0 us", opts, &report);
  RunPanel(hsim::UsToTicks(25), "Figure 5b: lock held 25 us", opts, &report);

  // Starvation under the 2 ms backoff cap (paper: >13%% of acquisitions took
  // over 2 ms at p=16, hold=25 us).
  LockStressParams params;
  params.kind = LockKind::kSpin2ms;
  params.processors = 16;
  params.hold = hsim::UsToTicks(25);
  params.duration = hsim::UsToTicks(opts.smoke ? 10000 : 100000);
  const LockStressResult r = hsim::RunLockStress(params);
  printf("spin-2ms starvation at p=16, hold=25us:\n");
  printf("  fraction of completed acquisitions > 2 ms: %.1f%% (paper: >13%%)\n",
         100.0 * r.acquire_latency.fraction_above(hsim::UsToTicks(2000)));
  printf("  worst completed acquisition: %.0f us\n",
         hsim::TicksToUs(r.acquire_latency.max()));
  printf("  mean completed acquisition:  %.0f us vs system W %.0f us\n",
         r.acquire_latency.mean_us(), r.little_response_us());
  printf("  (completed-sample statistics understate starvation: the starved\n"
         "   processors' acquisitions rarely complete inside the window)\n");
  report.AddSeries("starvation", {{"lock", "spin-2ms"}})
      .AddPoint({{"p", 16},
                 {"hold_us", 25},
                 {"frac_over_2ms", r.acquire_latency.fraction_above(hsim::UsToTicks(2000))},
                 {"worst_us", hsim::TicksToUs(r.acquire_latency.max())},
                 {"mean_us", r.acquire_latency.mean_us()},
                 {"w_us", r.little_response_us()}});

  // Handoff attribution at full contention (p=16, hold=25us): for each
  // queue-based lock, attach an hprof site and report the owner-transition
  // mix by NUMA distance.  FIFO MCS grants in arrival order, so with 4
  // stations only ~1/4 of its handoffs stay on the releasing owner's station;
  // CNA and HMCS-T reorder grants to batch same-station waiters and should
  // push the same-cluster share toward 1 (bounded by the streak/threshold
  // caps that prevent remote starvation).
  printf("\nhandoff attribution at p=16, hold=25us (fraction of handoffs)\n");
  printf("%-10s %12s %12s %12s\n", "lock", "same-proc", "same-clust", "cross-clust");
  for (const Series& series : kHandoffSeries) {
    hprof::LockSiteStats site(std::string("fig5/") + series.name,
                              /*procs_per_cluster=*/4);
    LockStressParams hp;
    hp.kind = series.kind;
    hp.processors = 16;
    hp.hold = hsim::UsToTicks(25);
    hp.duration = hsim::UsToTicks(opts.smoke ? 2000 : 20000);
    hp.site = &site;
    hsim::RunLockStress(hp);
    const double same_proc =
        static_cast<double>(site.handoffs(hprof::Handoff::kSameProcessor));
    const double same_clust =
        static_cast<double>(site.handoffs(hprof::Handoff::kSameCluster));
    const double cross_clust =
        static_cast<double>(site.handoffs(hprof::Handoff::kCrossCluster));
    const double total = same_proc + same_clust + cross_clust;
    const double denom = total > 0 ? total : 1;
    printf("%-10s %12.3f %12.3f %12.3f\n", series.name, same_proc / denom,
           same_clust / denom, cross_clust / denom);
    report.AddSeries("handoff", {{"lock", series.name}})
        .AddPoint({{"p", 16},
                   {"hold_us", 25},
                   {"frac_same_processor", same_proc / denom},
                   {"frac_same_cluster", same_clust / denom},
                   {"frac_cross_cluster", cross_clust / denom}});
  }

  // Reader-writer mix (beyond the paper): the distributed RW lock against a
  // coarse H2-MCS carrying the same 95/5 mix as plain exclusive ops.  At the
  // Figure 5b hold length (25 us, long enough to amortize the ~7 us fixed
  // memory cost of a lock pair) readers on different stations overlap under
  // drwlock and its aggregate throughput pulls away; the coarse lock
  // serializes everything and its Little's-law W climbs with p.
  printf("\nreader-writer mix at 95%% read / 5%% write, hold=25us "
         "(Little's-law W in us)\n");
  printf("%-12s", "lock \\ p");
  const unsigned kRwProcs[] = {4, 8, 16};
  for (unsigned p : kRwProcs) {
    printf("%10u", p);
  }
  printf("\n");
  const struct {
    const char* name;
    LockKind kind;
  } kRwSeries[] = {
      {"drwlock", LockKind::kDrw},
      {"h2-mcs", LockKind::kMcsH2},
  };
  double rw_w[2][3] = {};
  for (int s = 0; s < 2; ++s) {
    hmetrics::BenchSeries& out =
        report.AddSeries("rw_mix", {{"lock", kRwSeries[s].name}});
    printf("%-12s", kRwSeries[s].name);
    for (int pi = 0; pi < 3; ++pi) {
      hsim::RwStressParams rp;
      rp.kind = kRwSeries[s].kind;
      rp.processors = kRwProcs[pi];
      rp.write_every = 20;
      rp.hold_read = hsim::UsToTicks(25);
      rp.hold_write = hsim::UsToTicks(25);
      rp.duration = hsim::UsToTicks(opts.smoke ? 2000 : 20000);
      const hsim::RwStressResult rr = hsim::RunRwLockStress(rp);
      rw_w[s][pi] = rr.little_response_us();
      const std::uint64_t ops = rr.read_ops + rr.write_ops;
      printf("%10.1f", rr.little_response_us());
      out.AddPoint(
          {{"p", static_cast<double>(kRwProcs[pi])},
           {"w_us", rr.little_response_us()},
           {"read_w_us", static_cast<double>(kRwProcs[pi]) *
                             hsim::TicksToUs(rr.window) /
                             (rr.read_ops > 0 ? rr.read_ops : 1)},
           {"frac_read_ops",
            ops > 0 ? static_cast<double>(rr.read_ops) / ops : 0.0}});
    }
    printf("\n");
  }
  // Throughput advantage of the RW lock at each width, as gated indicators:
  // W ratios invert to ops ratios at fixed p, and the fractions saturate at 1
  // so the gates are floors, stable however far ahead drwlock pulls.
  // frac_target_met carries the headline claim -- at p=16 (all 4 stations,
  // the "4 clusters" configuration) the distributed readers must deliver at
  // least 3x the coarse path's throughput on the same 95/5 mix.
  hmetrics::BenchSeries& rw_adv = report.AddSeries("rw_mix_speedup", {});
  for (int pi = 0; pi < 3; ++pi) {
    const double speedup = rw_w[0][pi] > 0 ? rw_w[1][pi] / rw_w[0][pi] : 0.0;
    printf("%s p=%-2u drwlock throughput advantage over h2-mcs: %.2fx\n",
           pi == 0 ? "\n" : "", kRwProcs[pi], speedup);
    rw_adv.AddPoint({{"p", static_cast<double>(kRwProcs[pi])},
                     {"speedup", speedup},
                     {"frac_ahead", speedup >= 1.0 ? 1.0 : speedup},
                     {"frac_target_met", speedup >= 3.0 ? 1.0 : speedup / 3.0}});
  }

  if (opts.profile) {
    // Figure 5 contention analysis as an hprof report: all 16 processors
    // alternate between one machine-wide "kernel/shared" lock and their own
    // station's "cluster<s>/local" lock.  The shared lock must rank first by
    // total wait time and show cross-cluster handoffs; the station locks stay
    // cheap and cluster-local.
    hprof::SiteTable sites(static_cast<double>(hsim::kCyclesPerMicrosecond));
    hsim::ProfiledContentionParams pp;
    if (opts.smoke) {
      pp.duration = hsim::UsToTicks(1000);
    }
    const hsim::ProfiledContentionResult pr =
        hsim::RunProfiledContention(pp, &sites);
    printf("\nprofiled contention run: %llu shared / %llu station-local "
           "acquisitions\n",
           static_cast<unsigned long long>(pr.shared_acquisitions),
           static_cast<unsigned long long>(pr.local_acquisitions));
    if (!opts.profile_path.empty()) {
      if (!hmetrics::WriteJsonFile(opts.profile_path, sites.ToJson())) {
        return 1;
      }
      printf("wrote lockprof export to %s\n", opts.profile_path.c_str());
    }
    hprof::ProfileReport prof;
    std::string error;
    if (!prof.AddSites(sites, &error)) {
      fprintf(stderr, "hprof: %s\n", error.c_str());
      return 1;
    }
    prof.Rank();
    printf("\n%s", prof.RenderText().c_str());
  }

  if (!opts.trace_path.empty()) {
    // A short traced run of the contended H2-MCS case: lock-acquire spans and
    // release instants for every processor, openable in Perfetto.
    hmetrics::TraceSession trace(hmetrics::kTraceLocks);
    LockStressParams tp;
    tp.kind = LockKind::kMcsH2;
    tp.processors = 4;
    tp.hold = hsim::UsToTicks(25);
    tp.warmup = hsim::UsToTicks(100);
    tp.duration = hsim::UsToTicks(1000);
    tp.trace = &trace;
    hsim::RunLockStress(tp);
    if (!hmetrics::WriteTrace(opts, trace)) {
      return 1;
    }
    printf("\nwrote %llu trace events to %s\n",
           static_cast<unsigned long long>(trace.event_count()), opts.trace_path.c_str());
  }
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
