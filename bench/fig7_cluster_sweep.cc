// Regenerates Figures 7c and 7d: page-fault response time with 16 faulting
// processes as a function of the cluster size (1, 2, 4, 8, 16).
//
// Paper claims checked:
//   7c (independent): small clusters are best; with cluster size <= 4 the
//       hybrid strategy does as well as fine-grained locking (no degradation
//       at all); 16 processes in 4 clusters of 4 perform like 4 processes in
//       one 16-processor cluster -- hierarchical clustering localizes
//       requests.
//   7d (shared): moderate cluster sizes win.  Very small clusters pay for
//       inter-cluster operations (null RPC ~27 us, cluster-wide lookup +
//       descriptor replication ~88 us); one big cluster pays lock and
//       reserve-bit contention.  Deadlock-avoidance retries are common at
//       small cluster sizes, independent of strategy.

#include <cstdio>

#include "src/hkernel/workloads.h"
#include "src/hmetrics/bench_main.h"

namespace {

using hkernel::FaultTestParams;
using hkernel::FaultTestResult;
using hsim::LockKind;

const unsigned kClusterSizes[] = {1, 2, 4, 8, 16};

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("fig7_cluster_sweep");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Figure 7c: independent-fault test, p=16, response time vs cluster size\n");
  printf("(page-fault response time in us, Little's-law W)\n\n");
  printf("%-18s", "lock \\ csize");
  for (unsigned cs : kClusterSizes) {
    printf("%9u", cs);
  }
  printf("\n");
  double dl_cs4 = 0;
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "independent"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned cs : kClusterSizes) {
      FaultTestParams params;
      params.lock_kind = kind;
      params.cluster_size = cs;
      params.active_procs = 16;
      params.pages = 8;
      params.warmup_time = hsim::UsToTicks(opts.smoke ? 1000 : 2500);
      params.measure_time = hsim::UsToTicks(opts.smoke ? 3000 : 12000);
      const FaultTestResult r = RunIndependentFaultTest(params);
      printf("%9.0f", r.little_response_us());
      out.AddPoint({{"cluster_size", static_cast<double>(cs)},
                    {"w_us", r.little_response_us()}});
      if (kind == LockKind::kMcsH2 && cs == 4) {
        dl_cs4 = r.little_response_us();
      }
    }
    printf("\n");
  }
  {
    // Cross-check with Figure 7a: 16 processes in 4 clusters of 4 should
    // match 4 processes in one 16-processor cluster.
    FaultTestParams params;
    params.cluster_size = 16;
    params.active_procs = 4;
    params.pages = 8;
    params.warmup_time = hsim::UsToTicks(opts.smoke ? 1000 : 2500);
    params.measure_time = hsim::UsToTicks(opts.smoke ? 3000 : 12000);
    const FaultTestResult r = RunIndependentFaultTest(params);
    printf("\n16 procs in 4x4 clusters: %.0f us vs 4 procs in one 16-cluster: %.0f us\n"
           "(the paper finds these equal: clustering localizes independent requests)\n\n",
           dl_cs4, r.little_response_us());
    report.AddSeries("localization_crosscheck")
        .AddPoint({{"dl_16p_in_4x4_us", dl_cs4},
                   {"dl_4p_in_16_us", r.little_response_us()}});
  }

  printf("Figure 7d: shared-fault test, p=16, response time vs cluster size\n");
  printf("(mean page-fault response time in us; wd = deadlock-avoidance retries)\n\n");
  printf("%-18s", "lock \\ csize");
  for (unsigned cs : kClusterSizes) {
    printf("%14u", cs);
  }
  printf("\n");
  for (LockKind kind : {LockKind::kMcsH2, LockKind::kSpin35us}) {
    hmetrics::BenchSeries& out = report.AddSeries(
        "fault_response_us", {{"lock", hsim::LockKindName(kind)}, {"test", "shared"}});
    printf("%-18s", hsim::LockKindName(kind));
    for (unsigned cs : kClusterSizes) {
      FaultTestParams params;
      params.lock_kind = kind;
      params.cluster_size = cs;
      params.active_procs = 16;
      params.pages = 4;
      params.iterations = opts.smoke ? 2 : 4;
      params.warmup = 1;
      const FaultTestResult r = RunSharedFaultTest(params);
      char cell[32];
      snprintf(cell, sizeof(cell), "%.0f(wd=%llu)", r.latency.mean_us(),
               static_cast<unsigned long long>(r.counters.rpc_would_deadlock));
      printf("%14s", cell);
      out.AddPoint({{"cluster_size", static_cast<double>(cs)},
                    {"mean_us", r.latency.mean_us()},
                    {"would_deadlock", static_cast<double>(r.counters.rpc_would_deadlock)}});
    }
    printf("\n");
  }

  // Footnote 6 reference points.
  const hkernel::CalibrationResult cal = hkernel::RunCalibration(LockKind::kMcsH2);
  printf("\nSection 4.2 footnote 6 reference points:\n");
  printf("  null RPC round trip:              %.1f us (paper: 27 us)\n", cal.null_rpc_us);
  printf("  cluster-wide lookup + replicate:  %.1f us (paper: 88 us)\n", cal.replicate_us);
  report.AddSeries("calibration")
      .AddPoint({{"null_rpc_us", cal.null_rpc_us}, {"replicate_us", cal.replicate_us}});
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
