// Ablation: optimistic vs pessimistic deadlock management (Section 2.3 /
// 2.5, simulator).
//
// The optimistic protocol leaves an exclusively-reserved local shell behind
// while fetching a descriptor, so (a) cluster peers combine on one fetch and
// (b) no state re-establishment is needed unless a retry actually happens.
// The paper's initial pessimistic protocol holds nothing across the RPC: it
// must re-search afterwards, may find its work already done (a redundant
// fetch), and bursty same-page demand fans out into redundant RPCs.

#include <cstdio>

#include "src/hkernel/workloads.h"
#include "src/hmetrics/bench_main.h"

namespace {

using hkernel::DeadlockProtocol;
using hkernel::FaultTestParams;
using hkernel::FaultTestResult;

void Row(const char* name, DeadlockProtocol protocol, unsigned cluster_size,
         const hmetrics::BenchOptions& opts, hmetrics::BenchReport* report) {
  FaultTestParams params;
  params.protocol = protocol;
  params.cluster_size = cluster_size;
  params.active_procs = 16;
  params.pages = 4;
  params.iterations = opts.smoke ? 2 : 4;
  params.warmup = 1;
  const FaultTestResult r = RunSharedFaultTest(params);
  printf("%-12s %8u %12.0f %8llu %8llu %10llu %10llu\n", name, cluster_size,
         r.latency.mean_us(), static_cast<unsigned long long>(r.counters.rpcs),
         static_cast<unsigned long long>(r.counters.replications),
         static_cast<unsigned long long>(r.counters.redundant_rpcs),
         static_cast<unsigned long long>(r.counters.rpc_would_deadlock));
  report->AddSeries("shared_fault", {{"protocol", name}})
      .AddPoint({{"cluster_size", static_cast<double>(cluster_size)},
                 {"fault_us", r.latency.mean_us()},
                 {"rpcs", static_cast<double>(r.counters.rpcs)},
                 {"replications", static_cast<double>(r.counters.replications)},
                 {"redundant_rpcs", static_cast<double>(r.counters.redundant_rpcs)},
                 {"would_deadlock", static_cast<double>(r.counters.rpc_would_deadlock)}});
}

}  // namespace

int main(int argc, char** argv) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report("ablation_protocols");
  report.SetParam("smoke", opts.smoke ? 1 : 0);
  printf("Ablation: deadlock-management protocol, shared-fault test, p=16\n");
  printf("(the workload where the paper says retries happen regardless of strategy)\n\n");
  printf("%-12s %8s %12s %8s %8s %10s %10s\n", "protocol", "csize", "fault(us)", "rpcs",
         "replic.", "redundant", "wd-retry");
  for (unsigned cs : {2u, 4u, 8u}) {
    Row("optimistic", DeadlockProtocol::kOptimistic, cs, opts, &report);
    Row("pessimistic", DeadlockProtocol::kPessimistic, cs, opts, &report);
  }
  printf("\nReading: the pessimistic protocol issues redundant fetches whenever a\n"
         "burst of same-page faults hits a cluster (no reserved shell to combine\n"
         "on) and pays the re-establishment search after every RPC.  The paper\n"
         "kept the optimistic protocol for replication and the pessimistic one\n"
         "for broadcasts, where holding the local copy locked would be worse.\n");
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}
