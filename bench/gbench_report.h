// Glue between google-benchmark binaries and the shared BenchReport schema.
//
// RunGoogleBench() is the main() body for the google-benchmark benches: it
// consumes the shared --json/--smoke flags first (ParseBenchArgs leaves
// google-benchmark's own flags in place), runs the registered benchmarks with
// a reporter that both prints the usual console table and collects every run
// into a BenchReport, and emits the report.  --smoke injects a small
// --benchmark_min_time so CI exercises every benchmark in seconds.

#ifndef BENCH_GBENCH_REPORT_H_
#define BENCH_GBENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/hmetrics/bench_main.h"

namespace hbench {

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  // OO_None: no color escapes -- with --json the report must be the last
  // clean line of stdout.
  explicit CollectingReporter(hmetrics::BenchReport* report)
      : benchmark::ConsoleReporter(OO_None), report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      report_->AddSeries("latency_ns", {{"benchmark", run.benchmark_name()}})
          .AddPoint({{"real_ns_per_iter", run.GetAdjustedRealTime()},
                     {"cpu_ns_per_iter", run.GetAdjustedCPUTime()},
                     {"iterations", static_cast<double>(run.iterations)},
                     {"threads", static_cast<double>(run.threads)}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  hmetrics::BenchReport* report_;
};

inline int RunGoogleBench(int argc, char** argv, const char* bench_name) {
  const hmetrics::BenchOptions opts = hmetrics::ParseBenchArgs(&argc, argv);
  hmetrics::BenchReport report(bench_name);
  report.SetEnv("sim", "native-host");
  report.SetParam("smoke", opts.smoke ? 1 : 0);

  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (opts.smoke) {
    args.push_back(min_time.data());
  }
  int gb_argc = static_cast<int>(args.size());
  benchmark::Initialize(&gb_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return hmetrics::WriteReport(opts, report) ? 0 : 1;
}

}  // namespace hbench

#endif  // BENCH_GBENCH_REPORT_H_
