# Empty compiler generated dependencies file for sec411_uncontended_latency.
# This may be replaced when dependencies are built.
