file(REMOVE_RECURSE
  "CMakeFiles/sec411_uncontended_latency.dir/sec411_uncontended_latency.cc.o"
  "CMakeFiles/sec411_uncontended_latency.dir/sec411_uncontended_latency.cc.o.d"
  "sec411_uncontended_latency"
  "sec411_uncontended_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec411_uncontended_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
