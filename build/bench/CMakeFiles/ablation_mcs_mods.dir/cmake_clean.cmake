file(REMOVE_RECURSE
  "CMakeFiles/ablation_mcs_mods.dir/ablation_mcs_mods.cc.o"
  "CMakeFiles/ablation_mcs_mods.dir/ablation_mcs_mods.cc.o.d"
  "ablation_mcs_mods"
  "ablation_mcs_mods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mcs_mods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
