# Empty dependencies file for ablation_mcs_mods.
# This may be replaced when dependencies are built.
