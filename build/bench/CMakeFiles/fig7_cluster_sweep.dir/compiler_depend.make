# Empty compiler generated dependencies file for fig7_cluster_sweep.
# This may be replaced when dependencies are built.
