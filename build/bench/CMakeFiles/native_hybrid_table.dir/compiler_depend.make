# Empty compiler generated dependencies file for native_hybrid_table.
# This may be replaced when dependencies are built.
