file(REMOVE_RECURSE
  "CMakeFiles/native_hybrid_table.dir/native_hybrid_table.cc.o"
  "CMakeFiles/native_hybrid_table.dir/native_hybrid_table.cc.o.d"
  "native_hybrid_table"
  "native_hybrid_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_hybrid_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
