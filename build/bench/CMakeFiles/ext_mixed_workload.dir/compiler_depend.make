# Empty compiler generated dependencies file for ext_mixed_workload.
# This may be replaced when dependencies are built.
