file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_workload.dir/ext_mixed_workload.cc.o"
  "CMakeFiles/ext_mixed_workload.dir/ext_mixed_workload.cc.o.d"
  "ext_mixed_workload"
  "ext_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
