# Empty dependencies file for fig4_instruction_counts.
# This may be replaced when dependencies are built.
