file(REMOVE_RECURSE
  "CMakeFiles/fig4_instruction_counts.dir/fig4_instruction_counts.cc.o"
  "CMakeFiles/fig4_instruction_counts.dir/fig4_instruction_counts.cc.o.d"
  "fig4_instruction_counts"
  "fig4_instruction_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_instruction_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
