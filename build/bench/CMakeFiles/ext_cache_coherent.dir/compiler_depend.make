# Empty compiler generated dependencies file for ext_cache_coherent.
# This may be replaced when dependencies are built.
