file(REMOVE_RECURSE
  "CMakeFiles/ext_cache_coherent.dir/ext_cache_coherent.cc.o"
  "CMakeFiles/ext_cache_coherent.dir/ext_cache_coherent.cc.o.d"
  "ext_cache_coherent"
  "ext_cache_coherent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cache_coherent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
