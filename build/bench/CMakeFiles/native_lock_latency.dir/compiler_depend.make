# Empty compiler generated dependencies file for native_lock_latency.
# This may be replaced when dependencies are built.
