file(REMOVE_RECURSE
  "CMakeFiles/native_lock_latency.dir/native_lock_latency.cc.o"
  "CMakeFiles/native_lock_latency.dir/native_lock_latency.cc.o.d"
  "native_lock_latency"
  "native_lock_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_lock_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
