file(REMOVE_RECURSE
  "CMakeFiles/ext_program_destruction.dir/ext_program_destruction.cc.o"
  "CMakeFiles/ext_program_destruction.dir/ext_program_destruction.cc.o.d"
  "ext_program_destruction"
  "ext_program_destruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_program_destruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
