# Empty dependencies file for ext_program_destruction.
# This may be replaced when dependencies are built.
