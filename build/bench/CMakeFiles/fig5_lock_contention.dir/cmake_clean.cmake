file(REMOVE_RECURSE
  "CMakeFiles/fig5_lock_contention.dir/fig5_lock_contention.cc.o"
  "CMakeFiles/fig5_lock_contention.dir/fig5_lock_contention.cc.o.d"
  "fig5_lock_contention"
  "fig5_lock_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lock_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
