# Empty dependencies file for fig5_lock_contention.
# This may be replaced when dependencies are built.
