# Empty compiler generated dependencies file for fig7_fault_tests.
# This may be replaced when dependencies are built.
