file(REMOVE_RECURSE
  "CMakeFiles/fig7_fault_tests.dir/fig7_fault_tests.cc.o"
  "CMakeFiles/fig7_fault_tests.dir/fig7_fault_tests.cc.o.d"
  "fig7_fault_tests"
  "fig7_fault_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
