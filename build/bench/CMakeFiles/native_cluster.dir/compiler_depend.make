# Empty compiler generated dependencies file for native_cluster.
# This may be replaced when dependencies are built.
