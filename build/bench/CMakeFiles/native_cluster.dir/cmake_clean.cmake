file(REMOVE_RECURSE
  "CMakeFiles/native_cluster.dir/native_cluster.cc.o"
  "CMakeFiles/native_cluster.dir/native_cluster.cc.o.d"
  "native_cluster"
  "native_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
