# Empty compiler generated dependencies file for hlock.
# This may be replaced when dependencies are built.
