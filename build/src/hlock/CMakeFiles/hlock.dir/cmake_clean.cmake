file(REMOVE_RECURSE
  "CMakeFiles/hlock.dir/mcs_try_lock.cc.o"
  "CMakeFiles/hlock.dir/mcs_try_lock.cc.o.d"
  "CMakeFiles/hlock.dir/soft_irq_gate.cc.o"
  "CMakeFiles/hlock.dir/soft_irq_gate.cc.o.d"
  "libhlock.a"
  "libhlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
