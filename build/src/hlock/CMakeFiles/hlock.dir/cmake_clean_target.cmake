file(REMOVE_RECURSE
  "libhlock.a"
)
