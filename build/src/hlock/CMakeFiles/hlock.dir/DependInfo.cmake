
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hlock/mcs_try_lock.cc" "src/hlock/CMakeFiles/hlock.dir/mcs_try_lock.cc.o" "gcc" "src/hlock/CMakeFiles/hlock.dir/mcs_try_lock.cc.o.d"
  "/root/repo/src/hlock/soft_irq_gate.cc" "src/hlock/CMakeFiles/hlock.dir/soft_irq_gate.cc.o" "gcc" "src/hlock/CMakeFiles/hlock.dir/soft_irq_gate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
