
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hkernel/kernel.cc" "src/hkernel/CMakeFiles/hkernel.dir/kernel.cc.o" "gcc" "src/hkernel/CMakeFiles/hkernel.dir/kernel.cc.o.d"
  "/root/repo/src/hkernel/page_table.cc" "src/hkernel/CMakeFiles/hkernel.dir/page_table.cc.o" "gcc" "src/hkernel/CMakeFiles/hkernel.dir/page_table.cc.o.d"
  "/root/repo/src/hkernel/process.cc" "src/hkernel/CMakeFiles/hkernel.dir/process.cc.o" "gcc" "src/hkernel/CMakeFiles/hkernel.dir/process.cc.o.d"
  "/root/repo/src/hkernel/rpc.cc" "src/hkernel/CMakeFiles/hkernel.dir/rpc.cc.o" "gcc" "src/hkernel/CMakeFiles/hkernel.dir/rpc.cc.o.d"
  "/root/repo/src/hkernel/workloads.cc" "src/hkernel/CMakeFiles/hkernel.dir/workloads.cc.o" "gcc" "src/hkernel/CMakeFiles/hkernel.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsim/CMakeFiles/hsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
