# Empty compiler generated dependencies file for hkernel.
# This may be replaced when dependencies are built.
