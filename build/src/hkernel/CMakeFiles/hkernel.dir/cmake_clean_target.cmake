file(REMOVE_RECURSE
  "libhkernel.a"
)
