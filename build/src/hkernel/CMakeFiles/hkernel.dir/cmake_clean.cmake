file(REMOVE_RECURSE
  "CMakeFiles/hkernel.dir/kernel.cc.o"
  "CMakeFiles/hkernel.dir/kernel.cc.o.d"
  "CMakeFiles/hkernel.dir/page_table.cc.o"
  "CMakeFiles/hkernel.dir/page_table.cc.o.d"
  "CMakeFiles/hkernel.dir/process.cc.o"
  "CMakeFiles/hkernel.dir/process.cc.o.d"
  "CMakeFiles/hkernel.dir/rpc.cc.o"
  "CMakeFiles/hkernel.dir/rpc.cc.o.d"
  "CMakeFiles/hkernel.dir/workloads.cc.o"
  "CMakeFiles/hkernel.dir/workloads.cc.o.d"
  "libhkernel.a"
  "libhkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
