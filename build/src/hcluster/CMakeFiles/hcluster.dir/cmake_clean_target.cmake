file(REMOVE_RECURSE
  "libhcluster.a"
)
