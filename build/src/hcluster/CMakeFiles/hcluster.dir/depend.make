# Empty dependencies file for hcluster.
# This may be replaced when dependencies are built.
