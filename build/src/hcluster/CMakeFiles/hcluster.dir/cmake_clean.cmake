file(REMOVE_RECURSE
  "CMakeFiles/hcluster.dir/runtime.cc.o"
  "CMakeFiles/hcluster.dir/runtime.cc.o.d"
  "libhcluster.a"
  "libhcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
