file(REMOVE_RECURSE
  "libhsim.a"
)
