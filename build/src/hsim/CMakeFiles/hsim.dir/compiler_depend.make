# Empty compiler generated dependencies file for hsim.
# This may be replaced when dependencies are built.
