
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsim/engine.cc" "src/hsim/CMakeFiles/hsim.dir/engine.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/engine.cc.o.d"
  "/root/repo/src/hsim/locks/mcs_lock.cc" "src/hsim/CMakeFiles/hsim.dir/locks/mcs_lock.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/locks/mcs_lock.cc.o.d"
  "/root/repo/src/hsim/locks/reserve_bit.cc" "src/hsim/CMakeFiles/hsim.dir/locks/reserve_bit.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/locks/reserve_bit.cc.o.d"
  "/root/repo/src/hsim/locks/spin_lock.cc" "src/hsim/CMakeFiles/hsim.dir/locks/spin_lock.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/locks/spin_lock.cc.o.d"
  "/root/repo/src/hsim/locks/stress.cc" "src/hsim/CMakeFiles/hsim.dir/locks/stress.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/locks/stress.cc.o.d"
  "/root/repo/src/hsim/machine.cc" "src/hsim/CMakeFiles/hsim.dir/machine.cc.o" "gcc" "src/hsim/CMakeFiles/hsim.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
