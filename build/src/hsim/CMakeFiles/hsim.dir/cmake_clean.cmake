file(REMOVE_RECURSE
  "CMakeFiles/hsim.dir/engine.cc.o"
  "CMakeFiles/hsim.dir/engine.cc.o.d"
  "CMakeFiles/hsim.dir/locks/mcs_lock.cc.o"
  "CMakeFiles/hsim.dir/locks/mcs_lock.cc.o.d"
  "CMakeFiles/hsim.dir/locks/reserve_bit.cc.o"
  "CMakeFiles/hsim.dir/locks/reserve_bit.cc.o.d"
  "CMakeFiles/hsim.dir/locks/spin_lock.cc.o"
  "CMakeFiles/hsim.dir/locks/spin_lock.cc.o.d"
  "CMakeFiles/hsim.dir/locks/stress.cc.o"
  "CMakeFiles/hsim.dir/locks/stress.cc.o.d"
  "CMakeFiles/hsim.dir/machine.cc.o"
  "CMakeFiles/hsim.dir/machine.cc.o.d"
  "libhsim.a"
  "libhsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
