# Empty compiler generated dependencies file for clustered_kv.
# This may be replaced when dependencies are built.
