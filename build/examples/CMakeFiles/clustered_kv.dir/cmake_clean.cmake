file(REMOVE_RECURSE
  "CMakeFiles/clustered_kv.dir/clustered_kv.cpp.o"
  "CMakeFiles/clustered_kv.dir/clustered_kv.cpp.o.d"
  "clustered_kv"
  "clustered_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
