# Empty dependencies file for numa_sim_tour.
# This may be replaced when dependencies are built.
