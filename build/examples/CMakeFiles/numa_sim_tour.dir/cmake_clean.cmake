file(REMOVE_RECURSE
  "CMakeFiles/numa_sim_tour.dir/numa_sim_tour.cpp.o"
  "CMakeFiles/numa_sim_tour.dir/numa_sim_tour.cpp.o.d"
  "numa_sim_tour"
  "numa_sim_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_sim_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
