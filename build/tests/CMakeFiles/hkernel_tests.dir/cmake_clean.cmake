file(REMOVE_RECURSE
  "CMakeFiles/hkernel_tests.dir/hkernel/deadlock_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/deadlock_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/kernel_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/kernel_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/page_table_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/page_table_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/process_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/process_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/protocol_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/protocol_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/rpc_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/rpc_test.cc.o.d"
  "CMakeFiles/hkernel_tests.dir/hkernel/workloads_test.cc.o"
  "CMakeFiles/hkernel_tests.dir/hkernel/workloads_test.cc.o.d"
  "hkernel_tests"
  "hkernel_tests.pdb"
  "hkernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hkernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
