
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hkernel/deadlock_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/deadlock_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/deadlock_test.cc.o.d"
  "/root/repo/tests/hkernel/kernel_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/kernel_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/kernel_test.cc.o.d"
  "/root/repo/tests/hkernel/page_table_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/page_table_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/page_table_test.cc.o.d"
  "/root/repo/tests/hkernel/process_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/process_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/process_test.cc.o.d"
  "/root/repo/tests/hkernel/protocol_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/protocol_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/protocol_test.cc.o.d"
  "/root/repo/tests/hkernel/rpc_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/rpc_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/rpc_test.cc.o.d"
  "/root/repo/tests/hkernel/workloads_test.cc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/workloads_test.cc.o" "gcc" "tests/CMakeFiles/hkernel_tests.dir/hkernel/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hkernel/CMakeFiles/hkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hsim/CMakeFiles/hsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
