# Empty compiler generated dependencies file for hkernel_tests.
# This may be replaced when dependencies are built.
