
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hsim/coherent_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/coherent_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/coherent_test.cc.o.d"
  "/root/repo/tests/hsim/engine_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/engine_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/engine_test.cc.o.d"
  "/root/repo/tests/hsim/lock_property_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/lock_property_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/lock_property_test.cc.o.d"
  "/root/repo/tests/hsim/machine_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/machine_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/machine_test.cc.o.d"
  "/root/repo/tests/hsim/resource_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/resource_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/resource_test.cc.o.d"
  "/root/repo/tests/hsim/sim_locks_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/sim_locks_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/sim_locks_test.cc.o.d"
  "/root/repo/tests/hsim/stress_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/stress_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/stress_test.cc.o.d"
  "/root/repo/tests/hsim/task_test.cc" "tests/CMakeFiles/hsim_tests.dir/hsim/task_test.cc.o" "gcc" "tests/CMakeFiles/hsim_tests.dir/hsim/task_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsim/CMakeFiles/hsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
