# Empty compiler generated dependencies file for hsim_tests.
# This may be replaced when dependencies are built.
