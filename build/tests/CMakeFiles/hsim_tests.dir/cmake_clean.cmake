file(REMOVE_RECURSE
  "CMakeFiles/hsim_tests.dir/hsim/coherent_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/coherent_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/engine_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/engine_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/lock_property_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/lock_property_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/machine_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/machine_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/resource_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/resource_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/sim_locks_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/sim_locks_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/stress_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/stress_test.cc.o.d"
  "CMakeFiles/hsim_tests.dir/hsim/task_test.cc.o"
  "CMakeFiles/hsim_tests.dir/hsim/task_test.cc.o.d"
  "hsim_tests"
  "hsim_tests.pdb"
  "hsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
