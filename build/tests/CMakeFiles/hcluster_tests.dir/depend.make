# Empty dependencies file for hcluster_tests.
# This may be replaced when dependencies are built.
