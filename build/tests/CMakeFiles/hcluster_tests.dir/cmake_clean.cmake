file(REMOVE_RECURSE
  "CMakeFiles/hcluster_tests.dir/hcluster/clustered_table_test.cc.o"
  "CMakeFiles/hcluster_tests.dir/hcluster/clustered_table_test.cc.o.d"
  "CMakeFiles/hcluster_tests.dir/hcluster/runtime_test.cc.o"
  "CMakeFiles/hcluster_tests.dir/hcluster/runtime_test.cc.o.d"
  "hcluster_tests"
  "hcluster_tests.pdb"
  "hcluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
