file(REMOVE_RECURSE
  "CMakeFiles/hlock_tests.dir/hlock/future_work_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/future_work_test.cc.o.d"
  "CMakeFiles/hlock_tests.dir/hlock/hybrid_table_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/hybrid_table_test.cc.o.d"
  "CMakeFiles/hlock_tests.dir/hlock/locks_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/locks_test.cc.o.d"
  "CMakeFiles/hlock_tests.dir/hlock/soft_irq_gate_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/soft_irq_gate_test.cc.o.d"
  "CMakeFiles/hlock_tests.dir/hlock/try_lock_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/try_lock_test.cc.o.d"
  "CMakeFiles/hlock_tests.dir/hlock/typed_lock_test.cc.o"
  "CMakeFiles/hlock_tests.dir/hlock/typed_lock_test.cc.o.d"
  "hlock_tests"
  "hlock_tests.pdb"
  "hlock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
