
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hlock/future_work_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/future_work_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/future_work_test.cc.o.d"
  "/root/repo/tests/hlock/hybrid_table_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/hybrid_table_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/hybrid_table_test.cc.o.d"
  "/root/repo/tests/hlock/locks_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/locks_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/locks_test.cc.o.d"
  "/root/repo/tests/hlock/soft_irq_gate_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/soft_irq_gate_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/soft_irq_gate_test.cc.o.d"
  "/root/repo/tests/hlock/try_lock_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/try_lock_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/try_lock_test.cc.o.d"
  "/root/repo/tests/hlock/typed_lock_test.cc" "tests/CMakeFiles/hlock_tests.dir/hlock/typed_lock_test.cc.o" "gcc" "tests/CMakeFiles/hlock_tests.dir/hlock/typed_lock_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hlock/CMakeFiles/hlock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
