# Empty compiler generated dependencies file for hlock_tests.
# This may be replaced when dependencies are built.
