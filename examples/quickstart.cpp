// Quickstart: the native hybrid locking API in five minutes.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// The library gives you:
//   1. the HURRICANE-modified Distributed (MCS) locks -- drop-in BasicLockable
//      mutexes that queue fairly and spin locally;
//   2. reserve-bit style hybrid tables -- one coarse lock, held briefly, plus
//      a per-entry reservation you can hold as long as you like;
//   3. a software interrupt gate for deferring work that must not run while
//      locks are held.

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/hlock/hybrid_table.h"
#include "src/hlock/mcs_locks.h"
#include "src/hlock/soft_irq_gate.h"

int main() {
  // --- 1. Distributed Locks as plain mutexes ---------------------------------
  // McsH2Lock is the paper's production variant: the uncontended path is one
  // atomic swap to lock and one to unlock.
  hlock::McsH2Lock mutex;
  long counter = 0;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10000; ++i) {
          std::lock_guard<hlock::McsH2Lock> guard(mutex);
          counter = counter + 1;  // plain variable: the lock does the work
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  printf("1) 4 threads x 10000 increments under McsH2Lock: %ld (expect 40000)\n", counter);
  printf("   queue repairs performed by the swap-only release: %llu\n",
         static_cast<unsigned long long>(mutex.repairs()));

  // --- 2. the hybrid table ----------------------------------------------------
  // One coarse lock protects the whole table but is held only to find the
  // entry and flip its reserve word; the guard then owns the entry for as
  // long as needed without blocking operations on other keys.
  hlock::HybridTable<std::string, long> inventory;
  {
    auto apples = inventory.Acquire("apples");  // creates the entry
    apples.value() = 12;
    // While we hold "apples", another thread works on "pears" concurrently.
    std::thread other([&] {
      auto pears = inventory.Acquire("pears");
      pears.value() = 7;
    });
    other.join();
    apples.value() += 1;
  }  // guard released here
  printf("2) hybrid table: apples=%ld pears=%ld\n", *inventory.Peek("apples"),
         *inventory.Peek("pears"));

  // Handler-context code uses the no-spin probes and must be prepared to
  // retry -- the paper's optimistic deadlock-avoidance protocol.
  {
    auto held = inventory.Acquire("apples");
    auto probe = inventory.TryAcquire("apples");
    printf("   TryAcquire while reserved: %s (handlers fail instead of deadlocking)\n",
           probe ? "acquired?!" : "refused");
  }

  // --- 3. the software interrupt gate -----------------------------------------
  // Work posted while the gate is closed (we "hold a lock") is deferred and
  // runs, in arrival order, when the gate opens.
  hlock::SoftIrqGate gate;
  std::string log;
  {
    hlock::SoftIrqGate::Region masked(gate);
    gate.Post([&] { log += "B"; });
    log += "A";  // critical section work
  }  // gate opens: deferred work drains
  gate.Post([&] { log += "C"; });
  gate.Poll();
  printf("3) soft-irq gate ordering: %s (expect ABC)\n", log.c_str());

  return 0;
}
