// Fault storm: drive the simulated HURRICANE kernel through the phases of a
// parallel application and watch the locking architecture respond.
//
// The scenario is the paper's motivating worst case: an SPMD program whose
// threads (one per processor) simultaneously fault on the same shared pages
// -- e.g. after a barrier every thread touches freshly-unmapped data.  We run
// it twice, once on a single 16-processor cluster and once with clusters of
// 4, and print where the time went.
//
// Run: ./build/examples/fault_storm

#include <cstdio>

#include "src/hkernel/workloads.h"

namespace {

void Report(const char* title, const hkernel::FaultTestResult& r) {
  printf("%s\n", title);
  printf("  mean fault latency:      %8.1f us\n", r.latency.mean_us());
  printf("  95th percentile:         %8.1f us\n",
         hsim::TicksToUs(r.latency.percentile(95)));
  printf("  locking share per fault: %8.1f us\n", r.lock_overhead.mean_us());
  printf("  descriptor replications: %8llu\n",
         static_cast<unsigned long long>(r.counters.replications));
  printf("  RPCs (incl. retries):    %8llu\n",
         static_cast<unsigned long long>(r.counters.rpcs));
  printf("  deadlock-avoid retries:  %8llu\n",
         static_cast<unsigned long long>(r.counters.rpc_would_deadlock));
  printf("  reserve-bit waits:       %8llu\n",
         static_cast<unsigned long long>(r.counters.reserve_waits));
  printf("  bus queueing:            %8.0f us   memory queueing: %.0f us\n\n",
         hsim::TicksToUs(r.bus_wait), hsim::TicksToUs(r.mem_wait));
}

}  // namespace

int main() {
  printf("Fault storm: 16 threads of one SPMD program, 4 shared pages,\n");
  printf("rounds of [all fault] -> barrier -> [unmap everywhere] -> barrier.\n\n");

  hkernel::FaultTestParams params;
  params.active_procs = 16;
  params.pages = 4;
  params.iterations = 5;
  params.warmup = 1;

  params.cluster_size = 16;
  Report("One cluster of 16 (no replication, shared locks):",
         hkernel::RunSharedFaultTest(params));

  params.cluster_size = 4;
  Report("Four clusters of 4 (replication bounds contention):",
         hkernel::RunSharedFaultTest(params));

  params.cluster_size = 1;
  Report("Sixteen clusters of 1 (every access is an RPC -- too fine):",
         hkernel::RunSharedFaultTest(params));

  printf("The middle configuration wins (the paper's Figure 7d): clusters big\n");
  printf("enough to amortize replication, small enough to bound lock contention.\n");
  return 0;
}
