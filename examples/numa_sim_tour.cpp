// A tour of the HECTOR simulator: write your own cycle-level experiment in
// ~40 lines of coroutine code.
//
// This example measures, from first principles, why the paper's Distributed
// Locks beat spin locks on a NUMA machine without cache coherence: it pits
// one "holder" doing useful work against remote "spinners" and shows the
// holder's slowdown -- the second-order effect -- directly.
//
// Run: ./build/examples/numa_sim_tour

#include <cstdio>

#include "src/hsim/engine.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace {

using hsim::Engine;
using hsim::Machine;
using hsim::Processor;
using hsim::SimWord;
using hsim::Task;
using hsim::Tick;

// The holder walks a linked structure on its own module: 200 dependent loads.
Task<void> Holder(Processor* p, SimWord* data, Tick* elapsed) {
  const Tick start = p->now();
  for (int i = 0; i < 200; ++i) {
    co_await p->Load(*data);
    co_await p->Exec(2, 1);
  }
  *elapsed = p->now() - start;
}

// A remote spinner hammers a word co-located with the holder's data --
// exactly what test-and-set waiters do to a lock word.
Task<void> Spinner(Processor* p, SimWord* lock_word, int attempts) {
  for (int i = 0; i < attempts; ++i) {
    co_await p->FetchStore(*lock_word, 1);
    co_await p->Exec(1, 1);
  }
}

Tick RunScenario(int num_spinners) {
  Engine engine;
  Machine machine(&engine, hsim::MachineConfig{});
  // The holder's data and the contended word live on module 0 -- co-located,
  // as a lock and the structure it protects are in a kernel heap.
  SimWord& data = machine.AllocWord(0);
  SimWord& lock_word = machine.AllocWord(0);
  Tick elapsed = 0;
  engine.Spawn(Holder(&machine.processor(0), &data, &elapsed));
  for (int s = 0; s < num_spinners; ++s) {
    // Spinners come from other stations: their swaps cross the ring.
    engine.Spawn(Spinner(&machine.processor(4 + s), &lock_word, 400));
  }
  engine.RunUntilIdle();
  return elapsed;
}

}  // namespace

int main() {
  printf("HECTOR model sanity (uncontended access latencies):\n");
  {
    Engine engine;
    Machine machine(&engine, hsim::MachineConfig{});
    SimWord& local = machine.AllocWord(0);
    SimWord& station = machine.AllocWord(1);
    SimWord& ring = machine.AllocWord(4);
    engine.Spawn([](Processor* p, SimWord* a, SimWord* b, SimWord* c) -> Task<void> {
      Tick t0 = p->now();
      co_await p->Load(*a);
      printf("  local (on-module):   %2llu cycles (paper: 10)\n",
             static_cast<unsigned long long>(p->now() - t0));
      t0 = p->now();
      co_await p->Load(*b);
      printf("  on-station:          %2llu cycles (paper: 19)\n",
             static_cast<unsigned long long>(p->now() - t0));
      t0 = p->now();
      co_await p->Load(*c);
      printf("  cross-ring:          %2llu cycles (paper: 23)\n",
             static_cast<unsigned long long>(p->now() - t0));
    }(&machine.processor(0), &local, &station, &ring));
    engine.RunUntilIdle();
  }

  printf("\nSecond-order contention: a holder doing 200 dependent local loads\n");
  printf("while N remote processors hammer a co-located word with swaps:\n\n");
  const Tick baseline = RunScenario(0);
  printf("  %2d spinners: %6llu cycles (baseline)\n", 0,
         static_cast<unsigned long long>(baseline));
  for (int spinners : {1, 2, 4, 8}) {
    const Tick t = RunScenario(spinners);
    printf("  %2d spinners: %6llu cycles (%.2fx slower)\n", spinners,
           static_cast<unsigned long long>(t),
           static_cast<double>(t) / static_cast<double>(baseline));
  }
  printf("\nThe holder never touches the contended word, yet it slows down --\n");
  printf("remote spinning steals its memory module's bandwidth.  Distributed\n");
  printf("Locks avoid this by having waiters spin on their own local nodes.\n");
  return 0;
}
