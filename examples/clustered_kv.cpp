// A clustered key-value store: hierarchical clustering applied to a service
// (the paper's Figure 2, as an application).
//
// Scenario: a configuration service read by every worker on every request.
// Without clustering, all reads hit one shared structure; with a
// ClusteredTable each cluster keeps its own replica, so steady-state reads
// are cluster-local, and the rare configuration pushes broadcast to the
// replicas using the pessimistic update protocol.
//
// Run: ./build/examples/clustered_kv

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "src/hcluster/clustered_table.h"
#include "src/hcluster/runtime.h"

namespace {

template <typename Fn>
void RunOn(hcluster::ClusterRuntime& rt, hcluster::WorkerId w, Fn fn) {
  std::atomic<bool> done{false};
  rt.Post(w, [&] {
    fn();
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
}

}  // namespace

int main() {
  // 8 workers in 4 clusters of 2 (think: 4 NUMA domains).
  hcluster::ClusterRuntime rt(hcluster::Topology{8, 2});
  hcluster::ClusteredTable<std::string, std::string> config(&rt);

  // An operator seeds the configuration (writes route to each key's home
  // cluster automatically).
  config.Put("feature.shiny", "off");
  config.Put("limits.max_conn", "1024");
  config.Put("backend.url", "db-1.internal");
  printf("seeded 3 config keys\n");

  // Every worker serves requests, reading config on each one.  First reads
  // replicate; the rest are cluster-local.
  std::atomic<long> requests{0};
  std::atomic<int> workers_done{0};
  for (hcluster::WorkerId w = 0; w < 8; ++w) {
    rt.Post(w, [&, w] {
      for (int i = 0; i < 2000; ++i) {
        auto url = config.Get("backend.url");
        auto flag = config.Get("feature.shiny");
        if (url.has_value() && flag.has_value()) {
          requests.fetch_add(1, std::memory_order_relaxed);
        }
      }
      workers_done.fetch_add(1);
      (void)w;
    });
  }
  while (workers_done.load() != 8) {
    std::this_thread::yield();
  }
  printf("served %ld requests; replications=%llu (one per key per non-home cluster)\n",
         requests.load(), static_cast<unsigned long long>(config.replications()));
  for (hcluster::ClusterId c = 0; c < rt.topology().num_clusters(); ++c) {
    printf("  cluster %u local hits: %llu\n", c,
           static_cast<unsigned long long>(config.local_hits(c)));
  }

  // A config push: the global update reaches every replica before returning.
  config.Put("feature.shiny", "on");
  bool all_on = true;
  for (hcluster::WorkerId w = 0; w < 8; w += 2) {
    RunOn(rt, w, [&] {
      auto v = config.Get("feature.shiny");
      all_on = all_on && v.has_value() && *v == "on";
    });
  }
  printf("after global update, every cluster reads feature.shiny=on: %s\n",
         all_on ? "yes" : "NO");
  printf("deadlock-avoidance retries during the run: %llu\n",
         static_cast<unsigned long long>(config.retries()));
  return 0;
}
