#!/usr/bin/env python3
"""Compare BENCH_RESULTS.json against a committed baseline.

Usage:
    tools/check_regress.py [--baseline FILE] [--results FILE] [--self-test]

The baseline is a BENCH_RESULTS.json snapshot (an array of
hurricane-bench-report/1 documents) committed as BENCH_BASELINE.json.  Every
series in the baseline must still exist in the results (matched by bench name,
series name, and the full label set), every point must still exist (matched by
index), and every numeric field must stay inside the tolerance band:

  * coordinate fields (p, cap_us, hold_us, cluster_size, ...) must match
    exactly -- a changed sweep is a schema change, not noise;
  * frac_* fields (starvation fractions etc.) may move by +/- 0.1 absolute;
  * everything else passes when |new - old| <= 0.5 or the relative change is
    at most 35%.  The simulator is deterministic, but smoke runs are short and
    scheduling-order changes legitimately move tail metrics; the band is wide
    enough for that and still catches 2x regressions.

Wall-clock native benches (native_*) are skipped entirely: their numbers
measure the CI machine, not the code.

Extra series/points/fields in the results are allowed (new benches should not
fail the gate); anything missing or out of band fails it.

Exit status: 0 clean, 1 regression or missing data, 2 usage/IO error.
Requires only the Python 3 standard library.
"""

import argparse
import json
import sys

# Wall-clock benches: their numbers vary with host load, so they are excluded
# from the gate (they still run and land in BENCH_RESULTS.json).
SKIP_BENCHES = {"native_lock_latency", "native_hybrid_table", "native_cluster"}

# Sweep coordinates: must match exactly between baseline and results.
# "quantile" is the tail quantile of the hwhy blame series -- a changed
# quantile redefines the metric, so it is a coordinate, not a measurement.
COORD_KEYS = {"p", "cap_us", "hold_us", "cluster_size", "clusters", "procs",
              "processors", "drop_pct", "dup_pct", "iters", "offered_rps",
              "quantile", "machines"}

ABS_TOL = 0.5        # absolute slack for generic metrics
REL_TOL = 0.35       # relative slack for generic metrics
FRAC_ABS_TOL = 0.1   # absolute slack for frac_* fields (already in [0, 1])


def series_key(bench, series):
    return (bench, series.get("name", ""),
            tuple(sorted((series.get("labels") or {}).items())))


def index_reports(reports):
    """Maps (bench, series name, labels) -> list of points."""
    out = {}
    for report in reports:
        bench = report.get("bench", "")
        if bench in SKIP_BENCHES:
            continue
        for series in report.get("series", []):
            out[series_key(bench, series)] = series.get("points", [])
    return out


def field_ok(key, old, new):
    if not isinstance(old, (int, float)) or isinstance(old, bool):
        return old == new
    if not isinstance(new, (int, float)) or isinstance(new, bool):
        return False
    if key in COORD_KEYS:
        return old == new
    if key.startswith("frac_"):
        return abs(new - old) <= FRAC_ABS_TOL
    if abs(new - old) <= ABS_TOL:
        return True
    denom = max(abs(old), abs(new))
    return abs(new - old) <= REL_TOL * denom


def compare(baseline, results):
    """Returns a list of human-readable regression descriptions."""
    base_idx = index_reports(baseline)
    new_idx = index_reports(results)
    problems = []
    for key, base_points in sorted(base_idx.items()):
        bench, name, labels = key
        where = f"{bench}/{name}{dict(labels)}"
        new_points = new_idx.get(key)
        if new_points is None:
            problems.append(f"missing series: {where}")
            continue
        if len(new_points) < len(base_points):
            problems.append(f"{where}: {len(base_points)} points in baseline, "
                            f"only {len(new_points)} in results")
            continue
        for i, base_point in enumerate(base_points):
            new_point = new_points[i]
            for field, old in sorted(base_point.items()):
                if field not in new_point:
                    problems.append(f"{where}[{i}]: field {field!r} missing")
                    continue
                new = new_point[field]
                if not field_ok(field, old, new):
                    problems.append(
                        f"{where}[{i}].{field}: baseline {old!r} -> {new!r} "
                        f"(outside tolerance)")
    return problems


def self_test():
    """Exercises the comparator on synthetic documents; returns exit status."""
    base = [{"bench": "b", "params": {}, "env": {},
             "series": [{"name": "s", "labels": {"lock": "mcs"},
                         "points": [{"p": 4, "w_us": 100.0,
                                     "frac_over_2ms": 0.05}]}]}]
    same = json.loads(json.dumps(base))
    drifted = json.loads(json.dumps(base))
    drifted[0]["series"][0]["points"][0]["w_us"] = 120.0  # +20%: in band
    perturbed = json.loads(json.dumps(base))
    perturbed[0]["series"][0]["points"][0]["w_us"] = 250.0  # 2.5x: regression
    missing = [{"bench": "b", "params": {}, "env": {}, "series": []}]
    skipped = json.loads(json.dumps(base))
    skipped[0]["bench"] = "native_cluster"

    # The hwhy blame gate: lock_wait share of the p99 tail per lock, plus the
    # hmcs-t-strictly-below-coarse indicator.  The indicator collapsing to 0
    # and a re-based quantile must both fail.
    blame_base = [{"bench": "svc_throughput", "params": {}, "env": {},
                   "series": [{"name": "blame", "labels": {"lock": "gate"},
                               "points": [{"procs": 16, "clusters": 4,
                                           "frac_hmcst_below_coarse": 1.0,
                                           "frac_reconcile_ok": 1.0}]},
                              {"name": "blame", "labels": {"lock": "hmcs-t"},
                               "points": [{"procs": 16, "clusters": 4,
                                           "quantile": 0.99,
                                           "frac_lock_wait_p99": 0.80}]}]}]
    blame_same = json.loads(json.dumps(blame_base))
    blame_broken = json.loads(json.dumps(blame_base))
    blame_broken[0]["series"][0]["points"][0]["frac_hmcst_below_coarse"] = 0.0
    blame_requantiled = json.loads(json.dumps(blame_base))
    blame_requantiled[0]["series"][1]["points"][0]["quantile"] = 0.9

    # The hmesh chaos gates: an acked write lost after failover, a ring sweep
    # re-based to fewer machines, and a collapsed local-read fraction must all
    # fail; the exact-count fields get no slack from the generic band.
    mesh_base = [{"bench": "mesh_scaling", "params": {}, "env": {},
                  "series": [{"name": "mesh_gates", "labels": {"scenario": "all"},
                              "points": [{"machines": 8,
                                          "read_speedup_8": 7.4,
                                          "chaos_lost_ops": 0.0,
                                          "chaos_replay_identical": 1.0}]},
                             {"name": "mesh_scaling",
                              "labels": {"workload": "read_mostly"},
                              "points": [{"machines": 8, "frac_local": 0.87}]}]}]
    mesh_same = json.loads(json.dumps(mesh_base))
    mesh_lost = json.loads(json.dumps(mesh_base))
    mesh_lost[0]["series"][0]["points"][0]["chaos_lost_ops"] = 2.0
    mesh_resized = json.loads(json.dumps(mesh_base))
    mesh_resized[0]["series"][1]["points"][0]["machines"] = 4
    mesh_remote = json.loads(json.dumps(mesh_base))
    mesh_remote[0]["series"][1]["points"][0]["frac_local"] = 0.4

    checks = [
        ("identical results pass", compare(base, same) == []),
        ("in-band drift passes", compare(base, drifted) == []),
        ("perturbed metric fails", compare(base, perturbed) != []),
        ("missing series fails", compare(base, missing) != []),
        ("changed coordinate fails",
         compare(base, [{"bench": "b", "series": [
             {"name": "s", "labels": {"lock": "mcs"},
              "points": [{"p": 8, "w_us": 100.0,
                          "frac_over_2ms": 0.05}]}]}]) != []),
        ("native benches are skipped", compare(skipped, missing) == []),
        ("identical blame series passes", compare(blame_base, blame_same) == []),
        ("lost hmcs-t-below-coarse gate fails",
         compare(blame_base, blame_broken) != []),
        ("re-based blame quantile fails",
         compare(blame_base, blame_requantiled) != []),
        ("identical mesh series passes", compare(mesh_base, mesh_same) == []),
        ("lost chaos op fails", compare(mesh_base, mesh_lost) != []),
        ("re-based machine sweep fails", compare(mesh_base, mesh_resized) != []),
        ("collapsed local-read fraction fails",
         compare(mesh_base, mesh_remote) != []),
    ]
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test: {len(failed)} of {len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", default="BENCH_BASELINE.json")
    parser.add_argument("--results", default="BENCH_RESULTS.json")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the comparator itself and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.results) as f:
            results = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_regress: {e}", file=sys.stderr)
        return 2

    problems = compare(baseline, results)
    n_series = len(index_reports(baseline))
    if problems:
        print(f"check_regress: {len(problems)} problem(s) against "
              f"{args.baseline}:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_regress: OK ({n_series} baseline series within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
