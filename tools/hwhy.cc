// hwhy: offline "why is p99 slow" analysis.
//
//   hwhy [--json] [--top=N] [--self-test] FILE...
//
// Each FILE is either a hurricane-flight/1 document (the FlightRecorder
// export written by `svc_throughput --why=PATH`) or a hurricane-lockprof/1
// document (the SiteTable export from `bench --profile=PATH`).  The format is
// auto-detected per file; the flight document supplies the tail records and
// phase ledgers, a lockprof document (optional) enriches the blamed lock
// sites with system-wide contention stats.  The report answers where the
// tail's time went: per-phase blame shares, the top lock sites by tail
// contribution, and the cross-cluster share of tail lock waiting -- after
// verifying that every record's phase ledger reconciles with its measured
// end-to-end latency within 1%.
//
// Flags:
//   --json       emit the hurricane-hwhy-report/1 JSON document instead of
//                the text report.
//   --top=N      show only the N most-blamed lock sites (text report).
//   --self-test  run the built-in end-to-end pipeline check (records a
//                synthetic run, exports, re-parses, verifies the known blame
//                shares) and exit; no FILE needed.
//
// Exit status: 0 on success, 1 on unreadable/unparseable/irreconcilable
// input (or a failed self-test), 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/hflight/blame.h"
#include "src/hmetrics/json.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hwhy [--json] [--top=N] [--self-test] FILE...\n"
               "  FILE: hurricane-flight/1 export or hurricane-lockprof/1 "
               "export (auto-detected)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool self_test = false;
  std::size_t top = 0;
  std::vector<const char*> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--self-test") == 0) {
      self_test = true;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = static_cast<std::size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "hwhy: unknown flag %s\n", arg);
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (self_test) {
    std::string error;
    if (!hflight::BlameReport::SelfTest(&error)) {
      std::fprintf(stderr, "hwhy: self-test FAILED: %s\n", error.c_str());
      return 1;
    }
    std::printf("hwhy: self-test ok\n");
    return 0;
  }
  if (files.empty()) {
    return Usage();
  }

  hflight::BlameReport report;
  bool have_flight = false;
  for (const char* path : files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "hwhy: cannot read %s\n", path);
      return 1;
    }
    hmetrics::JsonValue doc;
    std::string error;
    if (!hmetrics::JsonParser::Parse(text, &doc, &error)) {
      std::fprintf(stderr, "hwhy: %s: %s\n", path, error.c_str());
      return 1;
    }
    bool ok = false;
    if (doc.is_object() && doc["schema"].string_value == hflight::kFlightSchema) {
      ok = report.AddFlight(doc, &error);
      have_flight = have_flight || ok;
    } else if (doc.is_object() && doc.Has("sites")) {
      ok = report.AddLockProf(doc, &error);
    } else {
      error = "neither a flight export nor a lockprof document";
    }
    if (!ok) {
      std::fprintf(stderr, "hwhy: %s: %s\n", path, error.c_str());
      return 1;
    }
  }
  if (!have_flight) {
    std::fprintf(stderr, "hwhy: no hurricane-flight/1 document among the inputs\n");
    return 1;
  }

  std::string error;
  if (!report.Analyze(&error)) {
    std::fprintf(stderr, "hwhy: %s\n", error.c_str());
    return 1;
  }
  const std::string out = json ? report.RenderJson() : report.RenderText(top);
  std::fputs(out.c_str(), stdout);
  if (!json) {
    std::fputc('\n', stdout);
  }
  return 0;
}
