// hprof: offline lock-contention analysis.
//
//   hprof [--json] [--top=N] [--procs-per-cluster=N] [--contended-us=X] FILE...
//
// Each FILE is either a hurricane-lockprof/1 document (the SiteTable export
// written by `bench --profile=PATH` or LockSiteStats in any host program) or a
// Chrome trace_event JSON (the TraceSession export from `bench --trace=PATH`).
// The format is auto-detected per file and all inputs merge into one report:
// hot locks ranked by total wait time, NUMA handoff attribution, per-cluster
// contention shares, and critical-section profiles.
//
// Flags:
//   --json                emit the hurricane-hprof-report/1 JSON document
//                         instead of the text report.
//   --top=N               show only the N hottest locks (text report).
//   --procs-per-cluster=N cluster geometry for handoff classification of
//                         trace-derived sites (default 4; lockprof documents
//                         carry their own geometry).
//   --contended-us=X      acquire spans longer than X us count as contended
//                         when rebuilding stats from a trace (default 5.0).
//
// Exit status: 0 on success, 1 on unreadable/unparseable input, 2 on usage
// errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/hmetrics/json.h"
#include "src/hprof/report.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hprof [--json] [--top=N] [--procs-per-cluster=N] "
               "[--contended-us=X] FILE...\n"
               "  FILE: hurricane-lockprof/1 export or Chrome trace_event "
               "JSON (auto-detected)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::size_t top = 0;
  hprof::TraceBuildOptions trace_opts;
  std::vector<const char*> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = static_cast<std::size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (std::strncmp(arg, "--procs-per-cluster=", 20) == 0) {
      const unsigned long v = std::strtoul(arg + 20, nullptr, 10);
      if (v == 0) {
        std::fprintf(stderr, "hprof: --procs-per-cluster must be >= 1\n");
        return Usage();
      }
      trace_opts.procs_per_cluster = static_cast<std::uint32_t>(v);
    } else if (std::strncmp(arg, "--contended-us=", 15) == 0) {
      trace_opts.contended_threshold_us = std::strtod(arg + 15, nullptr);
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "hprof: unknown flag %s\n", arg);
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  hprof::ProfileReport report;
  for (const char* path : files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "hprof: cannot read %s\n", path);
      return 1;
    }
    hmetrics::JsonValue doc;
    std::string error;
    if (!hmetrics::JsonParser::Parse(text, &doc, &error)) {
      std::fprintf(stderr, "hprof: %s: %s\n", path, error.c_str());
      return 1;
    }
    bool ok = false;
    if (doc.is_object() && doc.Has("sites")) {
      ok = report.AddLockProf(doc, &error);
    } else if (doc.is_object() && doc.Has("traceEvents")) {
      ok = report.AddTrace(doc, trace_opts, &error);
    } else {
      error = "neither a lockprof export nor a trace_event document";
    }
    if (!ok) {
      std::fprintf(stderr, "hprof: %s: %s\n", path, error.c_str());
      return 1;
    }
  }

  report.Rank();
  const std::string out = json ? report.RenderJson() : report.RenderText(top);
  std::fputs(out.c_str(), stdout);
  return 0;
}
