// NUMA-aware slab allocator: per-cluster magazine caches over a shared depot,
// written once over the memory backend (src/hlock/algo/backend.h).
//
// The paper's locking story has an allocation corollary: PRs 6-7 homed *lock
// words* at the cluster that touches them, but every hot-path object (page
// descriptor, RPC packet, request node) still came from one shared free list,
// so each allocate/free pair bounced a global head word -- and the object
// itself -- across the ring.  This allocator reproduces the Bonwick
// slab/magazine/depot design (the structure the GNUMach slab layer and
// Solaris libumem reproduce) with the paper's homing rule applied at every
// layer:
//
//   object refs    partitioned into per-cluster ranges; an object's backing
//                  memory is homed at HomeClusterOf(ref)'s modules
//   magazine       a fixed-capacity stack of refs ("rounds"); the per-cluster
//                  cache holds two (loaded + previous), homed at the cluster
//   depot          global stacks of FULL and EMPTY magazines plus the
//                  uncarved slab cursors, behind one depot lock
//
//   Alloc fast path: pop a round off the loaded magazine -- cluster-local
//   words only, under the cluster's own cache lock.  When loaded and
//   previous are both empty the cache takes a depot trip: exchange an empty
//   magazine for a full one, or carve a fresh slab of refs from the cluster's
//   own range (stealing from another cluster's range when its own is dry --
//   the depot-steal).  The free path mirrors it: when both magazines fill,
//   hand the full previous to the depot and take an empty back.
//
// The loaded/previous exchange rule is the magazine layer's whole trick: a
// cache ping-ponging on an alloc/free boundary flips between the two
// magazines without ever visiting the depot, so depot-lock traffic scales
// with *drift* between a cluster's allocs and frees, not with throughput.
//
// Depot-lock contention is exactly the cross-cluster signal the paper says to
// profile: attach an hprof site with set_depot_site() and every depot trip
// records wait/hold/handoff with the acquirer's true cluster, so `hprof`
// reports allocator contention with NUMA handoff attribution like any other
// lock (the bench/alloc_scaling --profile path).
//
// Magazine-count invariant: with capacity C_total and magazine size M, the
// pool owns ceil(C_total/M) + 2*clusters magazines; each cluster permanently
// holds exactly two.  When a free-side depot trip needs an empty magazine the
// requesting cluster holds 2M rounds, so the depot can hold at most
// floor(C_total/M) - 2 full magazines, leaving >= 2 empties on the empty
// stack -- the free path can never fail.  The alloc path can: when every ref
// is live (or stranded in other clusters' part-full magazines) Alloc returns
// the nil ref 0, and the caller sees pool exhaustion exactly as it did with
// the shared free list.
//
// Memory orders (the table in DESIGN.md): cache and depot locks are plain
// CAS(0->1, acquire) / store(0, release) spin locks with the doubling poll
// backoff of drwlock; every word protected by a lock (magazine counts,
// rounds, stack tops, slab cursors, the cache's loaded/previous slots) is
// accessed relaxed inside the critical section.  The release unlock is what
// publishes a magazine's contents to the next cache that pops it from the
// depot -- which is precisely the edge the deliberate kBrokenDepotRelease
// knob severs so the model checker can watch a stale magazine cross clusters
// (tests/hcheck/halloc_hcheck_test.cc, mirroring the drwlock bug knobs).

#ifndef HALLOC_SLAB_CORE_H_
#define HALLOC_SLAB_CORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hlock/algo/backend.h"
#include "src/hprof/lock_site.h"

namespace halloc {

enum class AllocBroken : std::uint8_t {
  kNone,
  // Depot unlock demoted to relaxed: the next depot visitor can observe the
  // stack top without the magazine contents the previous holder wrote.
  kBrokenDepotRelease,
  // Magazine pop decrements the round count twice: leaks every other round
  // and wraps the count on an odd magazine, tripping the range check.
  kBrokenCountSkew,
};

struct SlabConfig {
  std::uint64_t objects_per_cluster = 256;
  std::uint32_t magazine_size = 8;
  // Module homing the depot words (stack tops, depot lock, slab cursors).
  std::uint32_t depot_home = 0;
  AllocBroken broken = AllocBroken::kNone;
  // Host-side double-alloc/double-free tracking (B::Check on violation).
  // Pure observer: adds no backend operations, so costed runs are
  // bit-identical either way.  Distinct refs touch distinct bytes, so
  // concurrent native use is race-free as long as the allocator is correct.
  bool debug_checks = true;
};

// Per-cluster cache outcomes, counted host-side under that cluster's cache
// lock (no backend traffic).
struct CacheStats {
  std::uint64_t alloc_fast = 0;    // popped from the loaded magazine
  std::uint64_t alloc_swap = 0;    // loaded/previous exchange sufficed
  std::uint64_t alloc_depot = 0;   // took the depot trip
  std::uint64_t alloc_fail = 0;    // pool exhausted: returned the nil ref
  std::uint64_t free_fast = 0;
  std::uint64_t free_swap = 0;
  std::uint64_t free_depot = 0;

  std::uint64_t allocs() const { return alloc_fast + alloc_swap + alloc_depot; }
  std::uint64_t frees() const { return free_fast + free_swap + free_depot; }

  CacheStats& operator+=(const CacheStats& o) {
    alloc_fast += o.alloc_fast;
    alloc_swap += o.alloc_swap;
    alloc_depot += o.alloc_depot;
    alloc_fail += o.alloc_fail;
    free_fast += o.free_fast;
    free_swap += o.free_swap;
    free_depot += o.free_depot;
    return *this;
  }
};

// Depot outcomes, counted host-side under the depot lock.
struct DepotStats {
  std::uint64_t full_pops = 0;
  std::uint64_t full_pushes = 0;
  std::uint64_t empty_pops = 0;
  std::uint64_t empty_pushes = 0;
  std::uint64_t carves = 0;   // slabs carved from the requester's own range
  std::uint64_t steals = 0;   // slabs carved from another cluster's range
};

template <class B>
class SlabAllocatorCore {
 public:
  using Ctx = typename B::Ctx;
  using Word = typename B::Word;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  // The nil ref: Alloc's "pool exhausted" result.  Valid refs are
  // 1..capacity().
  static constexpr std::uint64_t kNil = 0;

  // Doubling-delay poll pacing for the lock spins, same constants and
  // rationale as drwlock: fixed-interval polling of a remote lock word
  // saturates the very module the release store must land on.
  static constexpr std::uint64_t kPollBase = 16;
  static constexpr std::uint64_t kPollCap = 512;

  SlabAllocatorCore(B* b, const SlabConfig& cfg)
      : b_(b),
        broken_(cfg.broken),
        num_clusters_(b->NumClusters()),
        objects_per_cluster_(cfg.objects_per_cluster),
        capacity_(cfg.objects_per_cluster * b->NumClusters()),
        magazine_size_(cfg.magazine_size == 0 ? 1 : cfg.magazine_size),
        caches_(new Cache[num_clusters_]),
        slab_next_(new Word[num_clusters_]),
        cache_stats_(num_clusters_) {
    B::Check(objects_per_cluster_ >= 1, "halloc: empty per-cluster range");
    const std::uint64_t slab_mags =
        (capacity_ + magazine_size_ - 1) / magazine_size_;
    const std::uint64_t num_mags = slab_mags + 2ull * num_clusters_;
    mags_.reset(new Mag[num_mags]);
    b_->InitWord(depot_lock_, cfg.depot_home, 0);
    b_->InitWord(full_top_, cfg.depot_home, kNil);
    b_->InitWord(empty_top_, cfg.depot_home, kNil);
    const std::uint64_t primed_init =
        objects_per_cluster_ < magazine_size_ ? objects_per_cluster_ : magazine_size_;
    for (std::uint32_t c = 0; c < num_clusters_; ++c) {
      // Slab cursor: next uncarved ref in cluster c's range, skipping the
      // slab primed into the cluster's loaded magazine below.  Touched only
      // under the depot lock, so homed with the other depot words.
      b_->InitWord(slab_next_[c], cfg.depot_home,
                   c * objects_per_cluster_ + 1 + primed_init);
    }
    // Magazines 2c / 2c+1 are cluster c's initial loaded/previous pair,
    // homed at that cluster; the rest start on the depot empty stack, homed
    // round-robin so circulating magazines keep the machine's modules evenly
    // loaded.  Each cluster's loaded magazine is primed with the first slab
    // of its range at construction (free host-side init), so first-touch
    // allocation is the fast path, not a depot trip; the rest of the range
    // is carved lazily on depot misses.
    const std::uint64_t primed =
        objects_per_cluster_ < magazine_size_ ? objects_per_cluster_ : magazine_size_;
    std::uint64_t empty_chain = kNil;
    for (std::uint64_t i = 0; i < num_mags; ++i) {
      const std::uint32_t home_cluster =
          i < 2ull * num_clusters_ ? static_cast<std::uint32_t>(i / 2)
                                   : static_cast<std::uint32_t>(
                                         (i - 2ull * num_clusters_) % num_clusters_);
      const std::uint32_t home = ClusterHome(home_cluster);
      Mag& m = mags_[i];
      m.rounds.reset(new Word[magazine_size_]);
      const bool is_loaded_mag = i < 2ull * num_clusters_ && i % 2 == 0;
      b_->InitWord(m.count, home, is_loaded_mag ? primed : 0);
      for (std::uint32_t j = 0; j < magazine_size_; ++j) {
        const std::uint64_t round =
            is_loaded_mag && j < primed ? home_cluster * objects_per_cluster_ + 1 + j
                                        : kNil;
        b_->InitWord(m.rounds[j], home, round);
      }
      if (i < 2ull * num_clusters_) {
        b_->InitWord(m.next, home, kNil);
      } else {
        b_->InitWord(m.next, home, empty_chain);
        empty_chain = i + 1;  // stack values are magazine index + 1
      }
    }
    b_->InitWord(empty_top_, cfg.depot_home, empty_chain);
    for (std::uint32_t c = 0; c < num_clusters_; ++c) {
      const std::uint32_t home = ClusterHome(c);
      Cache& cache = caches_[c];
      b_->InitWord(cache.lock, home, 0);
      b_->InitWord(cache.loaded, home, 2ull * c + 1);
      b_->InitWord(cache.prev, home, 2ull * c + 2);
    }
    if (cfg.debug_checks) {
      debug_allocated_.reset(new std::uint8_t[capacity_ + 1]());
    }
  }
  SlabAllocatorCore(const SlabAllocatorCore&) = delete;
  SlabAllocatorCore& operator=(const SlabAllocatorCore&) = delete;

  // --- allocation ----------------------------------------------------------

  // Returns a ref in 1..capacity(), or kNil when the pool is exhausted.  The
  // ref's backing object should live in HomeClusterOf(ref)'s memory.
  TaskT<std::uint64_t> Alloc(Ctx& ctx) {
    const std::uint32_t cluster = b_->ClusterOfCtx(b_->CtxId(ctx));
    Cache& cache = caches_[cluster];
    co_await LockCache(ctx, cache.lock);
    std::uint64_t loaded =
        co_await b_->Load(ctx, cache.loaded, std::memory_order_relaxed);
    std::uint64_t cnt =
        co_await b_->Load(ctx, mags_[loaded - 1].count, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 0, 1);
    if (cnt == 0) {
      const std::uint64_t prev =
          co_await b_->Load(ctx, cache.prev, std::memory_order_relaxed);
      const std::uint64_t pcnt =
          co_await b_->Load(ctx, mags_[prev - 1].count, std::memory_order_relaxed);
      co_await b_->Exec(ctx, 0, 1);
      if (pcnt != 0) {
        // Loaded/previous exchange: the cache is ping-ponging across an
        // alloc/free boundary; no depot traffic.
        co_await b_->Store(ctx, cache.loaded, prev, std::memory_order_relaxed);
        co_await b_->Store(ctx, cache.prev, loaded, std::memory_order_relaxed);
        loaded = prev;
        cnt = pcnt;
        ++cache_stats_[cluster].alloc_swap;
      } else {
        // Both magazines empty: depot trip.  Exchange the (empty) loaded
        // magazine for a full one, or carve a fresh slab into it.
        co_await LockDepot(ctx, cluster);
        const std::uint64_t full = co_await PopStack(ctx, full_top_);
        if (full != kNil) {
          ++depot_stats_.full_pops;
          ++depot_stats_.empty_pushes;
          co_await PushStack(ctx, empty_top_, loaded);
          co_await b_->Store(ctx, cache.loaded, full, std::memory_order_relaxed);
          loaded = full;
        } else {
          co_await Carve(ctx, cluster, mags_[loaded - 1]);
        }
        co_await UnlockDepot(ctx);
        cnt = co_await b_->Load(ctx, mags_[loaded - 1].count,
                                std::memory_order_relaxed);
        co_await b_->Exec(ctx, 0, 1);
        if (cnt == 0) {
          // Every ref is live or stranded in other clusters' part-full
          // magazines: genuine exhaustion, the shared-free-list analogue of
          // an empty list.
          ++cache_stats_[cluster].alloc_fail;
          co_await UnlockCache(ctx, cache.lock);
          co_return kNil;
        }
        ++cache_stats_[cluster].alloc_depot;
      }
    } else {
      ++cache_stats_[cluster].alloc_fast;
    }
    const std::uint64_t ref = co_await PopRound(ctx, mags_[loaded - 1], cnt);
    co_await UnlockCache(ctx, cache.lock);
    if (debug_allocated_ != nullptr) {
      B::Check(debug_allocated_[ref] == 0, "halloc: ref allocated twice");
      debug_allocated_[ref] = 1;
    }
    co_return ref;
  }

  TaskT<void> Free(Ctx& ctx, std::uint64_t ref) {
    B::Check(ref >= 1 && ref <= capacity_, "halloc: free of out-of-range ref");
    if (debug_allocated_ != nullptr) {
      B::Check(debug_allocated_[ref] == 1, "halloc: double free");
      debug_allocated_[ref] = 0;
    }
    const std::uint32_t cluster = b_->ClusterOfCtx(b_->CtxId(ctx));
    Cache& cache = caches_[cluster];
    co_await LockCache(ctx, cache.lock);
    std::uint64_t loaded =
        co_await b_->Load(ctx, cache.loaded, std::memory_order_relaxed);
    std::uint64_t cnt =
        co_await b_->Load(ctx, mags_[loaded - 1].count, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 0, 1);
    if (cnt >= magazine_size_) {
      const std::uint64_t prev =
          co_await b_->Load(ctx, cache.prev, std::memory_order_relaxed);
      const std::uint64_t pcnt =
          co_await b_->Load(ctx, mags_[prev - 1].count, std::memory_order_relaxed);
      co_await b_->Exec(ctx, 0, 1);
      if (pcnt < magazine_size_) {
        co_await b_->Store(ctx, cache.loaded, prev, std::memory_order_relaxed);
        co_await b_->Store(ctx, cache.prev, loaded, std::memory_order_relaxed);
        loaded = prev;
        cnt = pcnt;
        ++cache_stats_[cluster].free_swap;
      } else {
        // Both magazines full: hand the full previous to the depot and take
        // an empty back (always available -- see the invariant in the file
        // comment); the old loaded becomes the new previous.
        co_await LockDepot(ctx, cluster);
        ++depot_stats_.full_pushes;
        co_await PushStack(ctx, full_top_, prev);
        const std::uint64_t empty = co_await PopStack(ctx, empty_top_);
        B::Check(empty != kNil, "halloc: depot out of empty magazines");
        ++depot_stats_.empty_pops;
        co_await UnlockDepot(ctx);
        co_await b_->Store(ctx, cache.prev, loaded, std::memory_order_relaxed);
        co_await b_->Store(ctx, cache.loaded, empty, std::memory_order_relaxed);
        loaded = empty;
        cnt = 0;
        ++cache_stats_[cluster].free_depot;
      }
    } else {
      ++cache_stats_[cluster].free_fast;
    }
    co_await PushRound(ctx, mags_[loaded - 1], cnt, ref);
    co_await UnlockCache(ctx, cache.lock);
  }

  // --- introspection / profiling -------------------------------------------

  std::uint64_t capacity() const { return capacity_; }
  std::uint32_t magazine_size() const { return magazine_size_; }
  std::uint32_t num_clusters() const { return num_clusters_; }
  std::uint64_t objects_per_cluster() const { return objects_per_cluster_; }

  // The cluster whose range a ref was carved from: its backing object should
  // be homed in this cluster's memory.
  std::uint32_t HomeClusterOf(std::uint64_t ref) const {
    return static_cast<std::uint32_t>((ref - 1) / objects_per_cluster_);
  }

  const CacheStats& cache_stats(std::uint32_t cluster) const {
    return cache_stats_[cluster];
  }
  CacheStats TotalCacheStats() const {
    CacheStats total;
    for (const CacheStats& s : cache_stats_) {
      total += s;
    }
    return total;
  }
  const DepotStats& depot_stats() const { return depot_stats_; }

  // Attaches the depot lock to hprof (null detaches).  Recording is
  // host-side only: a profiled run is operation-identical to an unprofiled
  // one.  Not thread-safe against concurrent allocator users.
  void set_depot_site(hprof::LockSiteStats* site) { depot_site_ = site; }
  hprof::LockSiteStats* depot_site() const { return depot_site_; }

 private:
  // A magazine: a bounded stack of object refs.  `next` chains it into a
  // depot stack (values are magazine index + 1; kNil terminates).
  struct Mag {
    Word next;
    Word count;
    std::unique_ptr<Word[]> rounds;
  };

  // Per-cluster cache state, one cache line per cluster: the fast path must
  // never invalidate another cluster's line.
  struct alignas(64) Cache {
    Word lock;    // CAS(0->1, acquire) / store(0, release)
    Word loaded;  // magazine index + 1; never kNil after construction
    Word prev;
  };

  std::uint32_t ClusterHome(std::uint32_t cluster) const {
    const std::uint32_t n = b_->NumCtxs();
    for (std::uint32_t id = 0; id < n; ++id) {
      if (b_->ClusterOfCtx(id) == cluster) {
        return b_->HomeOf(id);
      }
    }
    return 0;
  }

  TaskT<void> LockCache(Ctx& ctx, Word& lock) {
    std::uint64_t delay = kPollBase;
    while (true) {
      const bool won = co_await b_->CompareSwap(ctx, lock, 0, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      if (won) {
        co_return;
      }
      co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
      delay = delay < kPollCap ? delay * 2 : kPollCap;
    }
  }

  TaskT<void> UnlockCache(Ctx& ctx, Word& lock) {
    co_await b_->Store(ctx, lock, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
  }

  TaskT<void> LockDepot(Ctx& ctx, std::uint32_t cluster) {
    const std::uint64_t wait_start = depot_site_ != nullptr ? b_->Now(ctx) : 0;
    bool contended = false;
    std::uint64_t delay = kPollBase;
    while (true) {
      const bool won = co_await b_->CompareSwap(ctx, depot_lock_, 0, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      if (won) {
        break;
      }
      if (depot_site_ != nullptr && !contended) {
        depot_site_->EnterQueue(cluster);
      }
      contended = true;
      co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
      delay = delay < kPollCap ? delay * 2 : kPollCap;
    }
    if (depot_site_ != nullptr) {
      const std::uint64_t now = b_->Now(ctx);
      if (contended) {
        depot_site_->LeaveQueue();
      }
      depot_site_->RecordAcquire(b_->CtxId(ctx), now - wait_start, contended,
                                 cluster);
      depot_hold_start_ = now;
    }
  }

  TaskT<void> UnlockDepot(Ctx& ctx) {
    if (depot_site_ != nullptr) {
      depot_site_->RecordRelease(b_->Now(ctx) - depot_hold_start_);
    }
    std::memory_order mo = std::memory_order_release;
    if (broken_ == AllocBroken::kBrokenDepotRelease) {
      // BUG (deliberate, for hcheck): without the release, the stack-top
      // store can become visible before the magazine's rounds/count stores;
      // the next depot visitor pops a magazine whose contents it reads stale.
      mo = std::memory_order_relaxed;
    }
    co_await b_->Store(ctx, depot_lock_, 0, mo);
    co_await b_->Exec(ctx, 0, 1);
  }

  // Depot magazine stacks.  Callers hold the depot lock, so all accesses are
  // relaxed; the depot unlock's release publishes them.
  TaskT<std::uint64_t> PopStack(Ctx& ctx, Word& top) {
    const std::uint64_t head =
        co_await b_->Load(ctx, top, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 0, 1);
    if (head == kNil) {
      co_return kNil;
    }
    const std::uint64_t next =
        co_await b_->Load(ctx, mags_[head - 1].next, std::memory_order_relaxed);
    co_await b_->Store(ctx, top, next, std::memory_order_relaxed);
    co_return head;
  }

  TaskT<void> PushStack(Ctx& ctx, Word& top, std::uint64_t mag) {
    const std::uint64_t head =
        co_await b_->Load(ctx, top, std::memory_order_relaxed);
    co_await b_->Store(ctx, mags_[mag - 1].next, head, std::memory_order_relaxed);
    co_await b_->Store(ctx, top, mag, std::memory_order_relaxed);
  }

  // Carves up to one magazine's worth of never-allocated refs into `into`.
  // Prefers the requester's own range; when dry, scans the other clusters'
  // ranges (the depot-steal -- those refs stay homed at the donor cluster).
  // Caller holds the depot lock.  Leaves `into.count` 0 when every range is
  // exhausted.
  TaskT<void> Carve(Ctx& ctx, std::uint32_t cluster, Mag& into) {
    for (std::uint32_t i = 0; i < num_clusters_; ++i) {
      const std::uint32_t donor = (cluster + i) % num_clusters_;
      const std::uint64_t next =
          co_await b_->Load(ctx, slab_next_[donor], std::memory_order_relaxed);
      const std::uint64_t limit = (donor + 1ull) * objects_per_cluster_ + 1;
      co_await b_->Exec(ctx, 1, 1);
      if (next >= limit) {
        continue;
      }
      std::uint64_t n = limit - next;
      if (n > magazine_size_) {
        n = magazine_size_;
      }
      for (std::uint64_t j = 0; j < n; ++j) {
        co_await b_->Store(ctx, into.rounds[j], next + j,
                           std::memory_order_relaxed);
        co_await b_->Exec(ctx, 1, 1);
      }
      co_await b_->Store(ctx, slab_next_[donor], next + n,
                         std::memory_order_relaxed);
      co_await b_->Store(ctx, into.count, n, std::memory_order_relaxed);
      if (donor == cluster) {
        ++depot_stats_.carves;
      } else {
        ++depot_stats_.steals;
      }
      co_return;
    }
  }

  // Pops the top round.  `cnt` is the count the caller just read (saves the
  // reload on the fast path).  Caller holds the cache lock.
  TaskT<std::uint64_t> PopRound(Ctx& ctx, Mag& mag, std::uint64_t cnt) {
    B::Check(cnt >= 1 && cnt <= magazine_size_,
             "halloc: magazine count out of range");
    const std::uint64_t ref =
        co_await b_->Load(ctx, mag.rounds[cnt - 1], std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 0);
    std::uint64_t dec = 1;
    if (broken_ == AllocBroken::kBrokenCountSkew) {
      // BUG (deliberate, for hcheck): double decrement -- leaks a round per
      // pop and wraps the count once it hits 1, so the range check above
      // fires on the next pop from this magazine.
      dec = 2;
    }
    co_await b_->Store(ctx, mag.count, cnt - dec, std::memory_order_relaxed);
    B::Check(ref != kNil, "halloc: nil round in magazine");
    co_return ref;
  }

  TaskT<void> PushRound(Ctx& ctx, Mag& mag, std::uint64_t cnt, std::uint64_t ref) {
    B::Check(cnt < magazine_size_, "halloc: push into a full magazine");
    co_await b_->Store(ctx, mag.rounds[cnt], ref, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 0);
    co_await b_->Store(ctx, mag.count, cnt + 1, std::memory_order_relaxed);
  }

  B* b_;
  AllocBroken broken_;
  std::uint32_t num_clusters_;
  std::uint64_t objects_per_cluster_;
  std::uint64_t capacity_;
  std::uint32_t magazine_size_;
  Word depot_lock_;
  Word full_top_;   // stack of full magazines (exactly magazine_size_ rounds)
  Word empty_top_;  // stack of empty magazines
  std::unique_ptr<Mag[]> mags_;  // Words are non-movable on native backends
  std::unique_ptr<Cache[]> caches_;
  std::unique_ptr<Word[]> slab_next_;  // per-cluster uncarved-range cursors
  std::vector<CacheStats> cache_stats_;
  DepotStats depot_stats_;
  hprof::LockSiteStats* depot_site_ = nullptr;
  // Host-side hold stamp; the depot lock is exclusive, so the single slot is
  // owner-written.  Touched only when a site is attached.
  std::uint64_t depot_hold_start_ = 0;
  std::unique_ptr<std::uint8_t[]> debug_allocated_;
};

}  // namespace halloc

#endif  // HALLOC_SLAB_CORE_H_
