// Native typed wrapper over SlabAllocatorCore: a fixed arena of T plus the
// slab/magazine/depot machinery on real std::atomic.
//
// Native thread placement is whatever the OS did, so the cluster topology is
// declared, not discovered: AllocBackend shadows NativeBackend's id-division
// cluster map with an explicit registration table, and callers tell the
// allocator which cluster each participating thread (or explicit ctx id)
// belongs to before allocating.  hload registers one generator thread per
// cluster; the sim's RPC transport registers one ctx per kernel cluster and
// passes ctx ids explicitly (the engine host is single-threaded).
//
// The arena is sized at construction and never reallocates, so T may be
// non-movable (request nodes hold std::atomic members) and pointers handed
// out stay stable for the allocator's lifetime.

#ifndef HALLOC_SLAB_ALLOCATOR_H_
#define HALLOC_SLAB_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hlock/algo/native_backend.h"
#include "src/hlock/platform.h"
#include "src/halloc/slab_core.h"

namespace halloc {

// NativeBackend with the cluster map replaced by an explicit table.  The
// core calls ClusterOfCtx/NumClusters/NumCtxs non-virtually through its B
// template parameter, so shadowing is enough.
template <class Platform = hlock::StdPlatform>
class AllocBackend : public hlock::algo::NativeBackend<Platform> {
 public:
  explicit AllocBackend(std::uint32_t num_clusters)
      : num_clusters_(num_clusters == 0 ? 1 : num_clusters),
        cluster_of_(Platform::kMaxThreads, 0) {}

  void RegisterCtx(std::uint32_t ctx_id, std::uint32_t cluster) {
    Platform::Check(ctx_id < cluster_of_.size(), "halloc: ctx id out of range");
    Platform::Check(cluster < num_clusters_, "halloc: cluster out of range");
    cluster_of_[ctx_id] = cluster;
  }

  std::uint32_t ClusterOfCtx(std::uint32_t id) const { return cluster_of_[id]; }
  std::uint32_t NumClusters() const { return num_clusters_; }

 private:
  std::uint32_t num_clusters_;
  std::vector<std::uint32_t> cluster_of_;
};

template <typename T, class Platform = hlock::StdPlatform>
class SlabAllocator {
 public:
  using Backend = AllocBackend<Platform>;
  using Core = SlabAllocatorCore<Backend>;

  SlabAllocator(std::uint32_t num_clusters, const SlabConfig& cfg)
      : backend_(num_clusters),
        core_(&backend_, cfg),
        arena_(core_.capacity()) {}

  // Maps the calling thread onto a cluster; call once per participating
  // thread before Alloc/Free.  Unregistered threads land in cluster 0.
  void RegisterThread(std::uint32_t cluster) {
    backend_.RegisterCtx(Platform::ThreadId(), cluster);
  }
  // Explicit-ctx registration for single-threaded embedders (the sim
  // transport) that key allocations by logical cluster rather than thread.
  void RegisterCtx(std::uint32_t ctx_id, std::uint32_t cluster) {
    backend_.RegisterCtx(ctx_id, cluster);
  }

  // nullptr on pool exhaustion.
  T* Alloc() { return AllocFor(Platform::ThreadId()); }
  void Free(T* obj) { FreeFor(Platform::ThreadId(), obj); }

  T* AllocFor(std::uint32_t ctx_id) {
    typename Backend::Ctx ctx{ctx_id};
    const std::uint64_t ref = core_.Alloc(ctx).Get();
    return ref == Core::kNil ? nullptr : &arena_[ref - 1];
  }
  void FreeFor(std::uint32_t ctx_id, T* obj) {
    typename Backend::Ctx ctx{ctx_id};
    core_.Free(ctx, static_cast<std::uint64_t>(obj - arena_.data()) + 1).Get();
  }

  std::uint64_t capacity() const { return core_.capacity(); }
  std::uint32_t num_clusters() const { return core_.num_clusters(); }
  const Core& core() const { return core_; }
  Core& core() { return core_; }
  void set_depot_site(hprof::LockSiteStats* site) { core_.set_depot_site(site); }

  // Arena access for embedders that index objects directly.
  T& object(std::uint64_t ref) { return arena_[ref - 1]; }

 private:
  Backend backend_;
  Core core_;
  std::vector<T> arena_;
};

}  // namespace halloc

#endif  // HALLOC_SLAB_ALLOCATOR_H_
