// Shared-free-list baseline: one lock, one stack, one home module.
//
// This is the allocator the slab layer replaces -- and exactly the coarse
// structure the paper argues against: every allocate/free from every cluster
// serializes on one lock word and walks a list whose head and link words all
// live in a single memory module, so at 16 processors 12 of 16 touch it
// across the ring on every operation.  bench/alloc_scaling races it against
// SlabAllocatorCore to reproduce the paper's locality argument for the
// allocation path; it is not intended for production use.
//
// Same ref contract as the slab core (1..capacity(), kNil on exhaustion) and
// the same hprof hook: set_lock_site() profiles the pool lock, so the bench
// can compare the shared lock's cross-cluster handoff mix against the slab
// depot's.

#ifndef HALLOC_SHARED_POOL_H_
#define HALLOC_SHARED_POOL_H_

#include <cstdint>
#include <memory>

#include "src/hlock/algo/backend.h"
#include "src/hprof/lock_site.h"

namespace halloc {

template <class B>
class SharedPoolCore {
 public:
  using Ctx = typename B::Ctx;
  using Word = typename B::Word;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  static constexpr std::uint64_t kNil = 0;
  static constexpr std::uint64_t kPollBase = 16;
  static constexpr std::uint64_t kPollCap = 512;

  // All pool words -- lock, head, and every link -- are homed at `home`: the
  // unhomed shared pool the slab allocator's per-cluster ranges replace.
  SharedPoolCore(B* b, std::uint64_t capacity, std::uint32_t home = 0)
      : b_(b), capacity_(capacity), next_(new Word[capacity]) {
    b_->InitWord(lock_, home, 0);
    // Free all refs, low first on top: the same initial order the slab
    // core's lazy carve hands out.
    b_->InitWord(head_, home, capacity == 0 ? kNil : 1);
    for (std::uint64_t i = 0; i < capacity; ++i) {
      b_->InitWord(next_[i], home, i + 2 <= capacity ? i + 2 : kNil);
    }
  }
  SharedPoolCore(const SharedPoolCore&) = delete;
  SharedPoolCore& operator=(const SharedPoolCore&) = delete;

  TaskT<std::uint64_t> Alloc(Ctx& ctx) {
    co_await Lock(ctx);
    const std::uint64_t ref =
        co_await b_->Load(ctx, head_, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 0, 1);
    if (ref == kNil) {
      ++fails_;
      co_await Unlock(ctx);
      co_return kNil;
    }
    const std::uint64_t next =
        co_await b_->Load(ctx, next_[ref - 1], std::memory_order_relaxed);
    co_await b_->Store(ctx, head_, next, std::memory_order_relaxed);
    ++allocs_;
    co_await Unlock(ctx);
    co_return ref;
  }

  TaskT<void> Free(Ctx& ctx, std::uint64_t ref) {
    B::Check(ref >= 1 && ref <= capacity_,
             "halloc: shared-pool free of out-of-range ref");
    co_await Lock(ctx);
    const std::uint64_t head =
        co_await b_->Load(ctx, head_, std::memory_order_relaxed);
    co_await b_->Store(ctx, next_[ref - 1], head, std::memory_order_relaxed);
    co_await b_->Store(ctx, head_, ref, std::memory_order_relaxed);
    ++frees_;
    co_await Unlock(ctx);
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocs() const { return allocs_; }
  std::uint64_t frees() const { return frees_; }
  std::uint64_t fails() const { return fails_; }

  void set_lock_site(hprof::LockSiteStats* site) { lock_site_ = site; }
  hprof::LockSiteStats* lock_site() const { return lock_site_; }

 private:
  TaskT<void> Lock(Ctx& ctx) {
    const std::uint64_t wait_start = lock_site_ != nullptr ? b_->Now(ctx) : 0;
    const std::uint32_t cluster = b_->ClusterOfCtx(b_->CtxId(ctx));
    bool contended = false;
    std::uint64_t delay = kPollBase;
    while (true) {
      const bool won = co_await b_->CompareSwap(ctx, lock_, 0, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      if (won) {
        break;
      }
      if (lock_site_ != nullptr && !contended) {
        lock_site_->EnterQueue(cluster);
      }
      contended = true;
      co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
      delay = delay < kPollCap ? delay * 2 : kPollCap;
    }
    if (lock_site_ != nullptr) {
      const std::uint64_t now = b_->Now(ctx);
      if (contended) {
        lock_site_->LeaveQueue();
      }
      lock_site_->RecordAcquire(b_->CtxId(ctx), now - wait_start, contended,
                                cluster);
      hold_start_ = now;
    }
  }

  TaskT<void> Unlock(Ctx& ctx) {
    if (lock_site_ != nullptr) {
      lock_site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    co_await b_->Store(ctx, lock_, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
  }

  B* b_;
  std::uint64_t capacity_;
  Word lock_;
  Word head_;
  std::unique_ptr<Word[]> next_;  // intrusive links, one per object
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
  std::uint64_t fails_ = 0;
  hprof::LockSiteStats* lock_site_ = nullptr;
  std::uint64_t hold_start_ = 0;
};

}  // namespace halloc

#endif  // HALLOC_SHARED_POOL_H_
