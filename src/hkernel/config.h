// Kernel configuration and calibration constants.
//
// The time constants below are calibrated so the simulated kernel matches the
// paper's absolute reference points on the 16 MHz machine:
//   - a simple soft page fault costs ~160 us, ~40 us of it locking overhead;
//   - a null RPC costs ~27 us;
//   - a cluster-wide page lookup plus descriptor replication costs ~88 us.
// (Section 1 and Section 4.2, footnote 6.)

#ifndef HKERNEL_CONFIG_H_
#define HKERNEL_CONFIG_H_

#include <cstdint>

#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/types.h"

namespace hkernel {

using hsim::Tick;

// Cross-cluster deadlock-management protocol (Section 2.3).
enum class DeadlockProtocol {
  // Set reserve bits on everything needed after the call, drop the coarse
  // locks, RPC; the remote side fails (never spins) on a reserve bit and the
  // initiator retries.  State is re-established only when a retry happens.
  kOptimistic,
  // The paper's initial protocol: release *everything* (locks and reserve
  // bits) before the RPC and re-establish state afterwards -- re-searching
  // the table and handling the data having moved or vanished.  Simpler, but
  // pays the re-establishment cost every time and loses the combining effect
  // of the reserved local shell.
  kPessimistic,
};

struct KernelConfig {
  // --- structure -------------------------------------------------------------
  // Which machine of a multi-machine mesh this kernel instance runs on.
  // Purely diagnostic for a standalone kernel (defaults to 0); hmesh assigns
  // each member its mesh id so watchdog messages name the culprit machine.
  std::uint32_t machine_id = 0;
  std::uint32_t cluster_size = 16;  // processors per cluster (1..16)
  hsim::LockKind lock_kind = hsim::LockKind::kMcsH2;
  DeadlockProtocol protocol = DeadlockProtocol::kOptimistic;
  std::uint32_t hash_bins = 256;         // bins per per-cluster page hash table
  std::uint32_t table_capacity = 2048;   // descriptors per cluster pool
  // Rounds per descriptor-arena magazine (the halloc slab allocator that
  // replaced the per-table host free list).  Depot traffic scales with
  // alloc/free drift divided by this.
  std::uint32_t desc_magazine_size = 8;
  static constexpr std::uint32_t kPayloadWords = 8;  // descriptor payload copied on replication

  // --- locking ---------------------------------------------------------------
  // Backoff cap for reserve-bit spinning and RPC retries (the kernel's
  // internal 35 us value for a cluster of 4).
  Tick reserve_backoff_cap = hsim::UsToTicks(35);
  // Fixed bookkeeping executed around each coarse-lock acquire/release pair
  // (lock hierarchy checks, interrupt-gate manipulation, stack setup).  Three
  // lock sites per fault x (admin + lock latency) makes up the paper's ~40 us
  // of locking overhead per fault.
  Tick lock_admin_acquire = 140;
  Tick lock_admin_release = 100;

  // --- fault path ------------------------------------------------------------
  Tick fault_entry = 160;     // exception entry, translation, dispatch (10 us)
  Tick fault_prework = 320;   // region lookup work outside any reserve bit (20 us)
  Tick fault_mapwork = 1190;  // pte/mapping work while the reserve bit is held (~74 us)
  Tick fault_exit = 160;      // return from exception (10 us)

  // --- RPC -------------------------------------------------------------------
  Tick rpc_send = 112;       // marshal + raise remote interrupt
  Tick rpc_transit = 48;    // interconnect + interrupt delivery latency
  Tick rpc_dispatch = 96;    // handler entry at the target
  Tick rpc_reply = 80;       // reply marshal at the target
  Tick rpc_recv = 48;        // reply unmarshal at the initiator
  Tick rpc_poll = 16;       // initiator poll granularity while waiting
  // Maximum RPC handler invocations serviced per interrupt point; bounding
  // this keeps the interrupted kernel path live under a retry storm.
  int irq_batch = 2;
  // Backoff cap between retries of an RPC that failed with kWouldDeadlock.
  // Deliberately long: remote requesters have "a greater potential of being
  // starved" (Section 2.3) and hammering the target livelocks it.
  Tick rpc_retry_backoff = hsim::UsToTicks(320);
  // Retransmit timeout for a lost request or reply.  Deliberately far above
  // the ~27 us null-RPC round trip so that a fault-free run never retransmits
  // spuriously even when the target is busy; doubles (with jitter) up to the
  // cap on successive timeouts of the same call.
  Tick rpc_timeout = hsim::UsToTicks(240);
  Tick rpc_timeout_cap = hsim::UsToTicks(3840);
  // CallWithRetry escalates to the rpc_retry_storms counter once a single
  // logical operation has been refused this many consecutive times.
  int rpc_storm_threshold = 16;

  // --- workload --------------------------------------------------------------
  Tick idle_poll = 24;  // idle-loop poll granularity (bounds RPC latency at idle)

  std::uint32_t num_clusters(std::uint32_t nprocs) const {
    return (nprocs + cluster_size - 1) / cluster_size;
  }
};

}  // namespace hkernel

#endif  // HKERNEL_CONFIG_H_
