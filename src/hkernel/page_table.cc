#include "src/hkernel/page_table.h"

namespace hkernel {

PageHashTable::PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                             std::uint32_t num_bins, std::uint32_t capacity)
    : PageHashTable(machine, modules, num_bins, nullptr) {
  // Private arena spanning the whole machine as one allocation cluster, its
  // descriptors spread over this table's modules -- the old per-table pool,
  // now costed through the slab layer.
  owned_arena_ = std::make_unique<DescriptorArena>(
      machine, machine->config().num_processors(), capacity,
      KernelConfig{}.desc_magazine_size,
      std::vector<std::vector<hsim::ModuleId>>{modules});
  arena_ = owned_arena_.get();
}

PageHashTable::PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                             std::uint32_t num_bins, DescriptorArena* arena)
    : arena_(arena) {
  bins_.reserve(num_bins);
  for (std::uint32_t b = 0; b < num_bins; ++b) {
    bins_.push_back(&machine->AllocWord(modules[b % modules.size()], kNilDesc));
  }
}

hsim::Task<DescRef> PageHashTable::Lookup(hsim::Processor& p, std::uint64_t page) {
  const std::uint32_t bin = BinOf(page);
  co_await p.Exec(2, 0);  // hash computation
  DescRef ref = static_cast<DescRef>(co_await p.Load(*bins_[bin]));
  while (ref != kNilDesc) {
    co_await p.Exec(0, 1);
    const std::uint64_t key = co_await p.Load(*desc(ref).page);
    co_await p.Exec(0, 1);
    if (key == page) {
      co_return ref;
    }
    ref = static_cast<DescRef>(co_await p.Load(*desc(ref).next));
  }
  co_await p.Exec(0, 1);
  co_return kNilDesc;
}

hsim::Task<DescRef> PageHashTable::Insert(hsim::Processor& p, std::uint64_t page) {
  const DescRef ref = co_await arena_->Alloc(p);
  if (ref == kNilDesc) {
    co_return kNilDesc;
  }
  ++live_;
  PageDescriptor& d = desc(ref);
  co_await p.Store(*d.page, page);
  co_await p.Store(*d.flags, 0);
  const std::uint32_t bin = BinOf(page);
  const std::uint64_t head = co_await p.Load(*bins_[bin]);
  co_await p.Store(*d.next, head);
  co_await p.Store(*bins_[bin], ref);
  co_return ref;
}

hsim::Task<bool> PageHashTable::Remove(hsim::Processor& p, std::uint64_t page) {
  const std::uint32_t bin = BinOf(page);
  co_await p.Exec(2, 0);
  hsim::SimWord* link = bins_[bin];
  DescRef ref = static_cast<DescRef>(co_await p.Load(*link));
  while (ref != kNilDesc) {
    co_await p.Exec(0, 1);
    const std::uint64_t key = co_await p.Load(*desc(ref).page);
    co_await p.Exec(0, 1);
    if (key == page) {
      const std::uint64_t next = co_await p.Load(*desc(ref).next);
      co_await p.Store(*link, next);
      // Scrub identity but keep the reserve word type-stable: a late spinner
      // observes kFree (or the next owner's state), never garbage.
      co_await p.Store(*desc(ref).page, 0);
      co_await arena_->Free(p, ref);
      --live_;
      co_return true;
    }
    link = desc(ref).next;
    ref = static_cast<DescRef>(co_await p.Load(*link));
  }
  co_return false;
}

}  // namespace hkernel
