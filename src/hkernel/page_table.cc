#include "src/hkernel/page_table.h"

#include "src/hsim/locks/reserve_bit.h"

namespace hkernel {

PageHashTable::PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                             std::uint32_t num_bins, std::uint32_t capacity) {
  bins_.reserve(num_bins);
  for (std::uint32_t b = 0; b < num_bins; ++b) {
    bins_.push_back(&machine->AllocWord(modules[b % modules.size()], kNilDesc));
  }
  descriptors_.reserve(capacity);
  free_list_.reserve(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    const hsim::ModuleId home = modules[i % modules.size()];
    PageDescriptor d;
    d.page = &machine->AllocWord(home, 0);
    d.next = &machine->AllocWord(home, kNilDesc);
    d.reserve = &machine->AllocWord(home, hsim::SimReserve::kFree);
    d.flags = &machine->AllocWord(home, 0);
    d.ref_count = &machine->AllocWord(home, 0);
    d.replicas = &machine->AllocWord(home, 0);
    d.payload.reserve(KernelConfig::kPayloadWords);
    for (std::uint32_t w = 0; w < KernelConfig::kPayloadWords; ++w) {
      d.payload.push_back(&machine->AllocWord(home, 0));
    }
    descriptors_.push_back(std::move(d));
    free_list_.push_back(capacity - i);  // hand out low indices first
  }
}

hsim::Task<DescRef> PageHashTable::Lookup(hsim::Processor& p, std::uint64_t page) {
  const std::uint32_t bin = BinOf(page);
  co_await p.Exec(2, 0);  // hash computation
  DescRef ref = static_cast<DescRef>(co_await p.Load(*bins_[bin]));
  while (ref != kNilDesc) {
    co_await p.Exec(0, 1);
    const std::uint64_t key = co_await p.Load(*desc(ref).page);
    co_await p.Exec(0, 1);
    if (key == page) {
      co_return ref;
    }
    ref = static_cast<DescRef>(co_await p.Load(*desc(ref).next));
  }
  co_await p.Exec(0, 1);
  co_return kNilDesc;
}

hsim::Task<DescRef> PageHashTable::Insert(hsim::Processor& p, std::uint64_t page) {
  if (free_list_.empty()) {
    co_return kNilDesc;
  }
  const DescRef ref = free_list_.back();
  free_list_.pop_back();
  ++live_;
  co_await p.Exec(4, 1);  // pool allocation bookkeeping
  PageDescriptor& d = desc(ref);
  co_await p.Store(*d.page, page);
  co_await p.Store(*d.flags, 0);
  const std::uint32_t bin = BinOf(page);
  const std::uint64_t head = co_await p.Load(*bins_[bin]);
  co_await p.Store(*d.next, head);
  co_await p.Store(*bins_[bin], ref);
  co_return ref;
}

hsim::Task<bool> PageHashTable::Remove(hsim::Processor& p, std::uint64_t page) {
  const std::uint32_t bin = BinOf(page);
  co_await p.Exec(2, 0);
  hsim::SimWord* link = bins_[bin];
  DescRef ref = static_cast<DescRef>(co_await p.Load(*link));
  while (ref != kNilDesc) {
    co_await p.Exec(0, 1);
    const std::uint64_t key = co_await p.Load(*desc(ref).page);
    co_await p.Exec(0, 1);
    if (key == page) {
      const std::uint64_t next = co_await p.Load(*desc(ref).next);
      co_await p.Store(*link, next);
      // Scrub identity but keep the reserve word type-stable: a late spinner
      // observes kFree (or the next owner's state), never garbage.
      co_await p.Store(*desc(ref).page, 0);
      co_await p.Exec(3, 1);  // free-list bookkeeping
      free_list_.push_back(ref);
      --live_;
      co_return true;
    }
    link = desc(ref).next;
    ref = static_cast<DescRef>(co_await p.Load(*link));
  }
  co_return false;
}

}  // namespace hkernel
