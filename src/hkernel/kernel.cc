#include "src/hkernel/kernel.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/reserve_bit.h"
#include "src/hsim/locks/spin_lock.h"

namespace hkernel {

using hsim::SimReserve;

std::unique_ptr<hsim::SimLock> MakeCoarseLock(hsim::Machine* machine, hsim::ModuleId module,
                                              hsim::LockKind kind) {
  return hsim::MakeSimLock(machine, kind, module);
}

std::string StormDiagnostic(std::uint32_t machine_id, hsim::ProcId src, hsim::ProcId target,
                            std::uint32_t target_cluster, RpcOp op, int consecutive) {
  return "rpc retry storm: op=" + std::string(RpcOpName(op)) + " machine=" +
         std::to_string(machine_id) + " dst_proc=" + std::to_string(target) + " dst_cluster=" +
         std::to_string(target_cluster) + " src_proc=" + std::to_string(src) +
         " consecutive_refusals=" + std::to_string(consecutive);
}

ClusterKernel::ClusterKernel(hsim::Machine* machine, const KernelConfig& config, std::uint32_t id,
                             std::vector<hsim::ProcId> procs, DescriptorArena* arena)
    : id_(id), procs_(std::move(procs)) {
  // The cluster's memory-manager heap -- the coarse lock, the hash bins and
  // the page descriptors -- lives together on the cluster's first module, as
  // a kernel heap allocation would place it.  This co-location is what makes
  // remote test-and-set spinning so destructive: retries to the lock word
  // queue ahead of the very chain walks the lock holder is performing,
  // "extending the length of its critical section" (Section 2.1).  The
  // descriptors themselves live in the shared arena, which homes this
  // cluster's ref range at the same module (see KernelSystem's ctor).
  const hsim::ModuleId lock_home = procs_.front();
  lock_ = MakeCoarseLock(machine, lock_home, config.lock_kind);
  table_ = std::make_unique<PageHashTable>(machine, std::vector<hsim::ModuleId>{lock_home},
                                           config.hash_bins, arena);
}

Program::Program(hsim::Machine* machine, const KernelConfig& config, std::uint32_t id,
                 std::uint32_t num_clusters, std::uint32_t nprocs)
    : id_(id) {
  replicas_.resize(num_clusters);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    // Spread different programs' region structures across the cluster's
    // modules so that unrelated programs do not collide on one module.
    const std::uint32_t first = c * config.cluster_size;
    const hsim::ModuleId home =
        std::min(first + (id % config.cluster_size), nprocs - 1);
    replicas_[c].lock = MakeCoarseLock(machine, home, config.lock_kind);
    replicas_[c].words[0] = &machine->AllocWord(home, 0);
    replicas_[c].words[1] = &machine->AllocWord(home, 0);
  }
}

KernelSystem::KernelSystem(hsim::Machine* machine, const KernelConfig& config)
    : machine_(machine), config_(config) {
  const std::uint32_t nprocs = machine->num_processors();
  assert(config_.cluster_size >= 1 && config_.cluster_size <= nprocs);
  const std::uint32_t nclusters = config_.num_clusters(nprocs);
  // One machine-wide descriptor arena, clustered like the kernel: cluster c's
  // ref range (table_capacity descriptors) is homed at its first module, where
  // the old per-table pools lived.
  std::vector<std::vector<hsim::ModuleId>> cluster_modules;
  cluster_modules.reserve(nclusters);
  for (std::uint32_t c = 0; c < nclusters; ++c) {
    cluster_modules.push_back({static_cast<hsim::ModuleId>(c * config_.cluster_size)});
  }
  arena_ = std::make_unique<DescriptorArena>(machine, config_.cluster_size,
                                             config_.table_capacity,
                                             config_.desc_magazine_size,
                                             std::move(cluster_modules));
  for (std::uint32_t c = 0; c < nclusters; ++c) {
    std::vector<hsim::ProcId> procs;
    for (std::uint32_t i = 0; i < config_.cluster_size; ++i) {
      const hsim::ProcId p = c * config_.cluster_size + i;
      if (p < nprocs) {
        procs.push_back(p);
      }
    }
    clusters_.push_back(
        std::make_unique<ClusterKernel>(machine, config_, c, std::move(procs), arena_.get()));
  }
  cpus_.reserve(nprocs);
  pte_words_.resize(nprocs);
  for (hsim::ProcId p = 0; p < nprocs; ++p) {
    cpus_.push_back(std::make_unique<CpuKernel>(this, p));
    pte_words_[p].push_back(&machine->AllocWord(p, 0));
    pte_words_[p].push_back(&machine->AllocWord(p, 0));
  }
  // Envelope pool for packets in transit.  Sized well above the stop-and-wait
  // steady state (one outstanding call per processor plus its reply) so only
  // fault-plan duplicate/delay storms can exhaust it -- and those take the
  // counted by-value fallback rather than failing.
  halloc::SlabConfig pkt_cfg;
  pkt_cfg.objects_per_cluster = 8ull * config_.cluster_size;
  pkt_cfg.magazine_size = 4;
  packet_pool_ = std::make_unique<halloc::SlabAllocator<RpcPacket>>(nclusters, pkt_cfg);
  for (hsim::ProcId p = 0; p < nprocs; ++p) {
    packet_pool_->RegisterCtx(p, cluster_of_proc(p));
  }
}

hsim::Task<void> KernelSystem::ComputeInterruptible(hsim::Processor& p, hsim::Tick cycles) {
  // HURRICANE runs with interrupts enabled: long stretches of fault
  // processing (no coarse locks held) can be interrupted by RPC handlers.
  // Model that by taking interrupt points every `kSlice` cycles.
  constexpr hsim::Tick kSlice = 160;
  CpuKernel& k = cpu(p.id());
  while (cycles > 0) {
    const hsim::Tick step = std::min(cycles, kSlice);
    co_await p.Compute(step);
    cycles -= step;
    co_await k.IrqPoint(p);
  }
}

hsim::Task<void> KernelSystem::LockAcquire(hsim::Processor& p, hsim::SimLock& lock) {
  CpuKernel& k = cpu(p.id());
  // One lock path per processor: if another co-located context (e.g. a
  // handler run from an idle poll) is inside its acquire/hold/release window,
  // wait for it -- on real hardware the two could never overlap, and the
  // per-processor MCS queue nodes rely on that.
  while (k.lock_path_busy()) {
    co_await p.Compute(8);
  }
  k.set_lock_path_busy(true);
  // Close the software interrupt gate before queueing for the lock: an RPC
  // handler must never run on a processor that holds (or waits for) a coarse
  // lock it might itself need (Section 3.2).
  k.Mask();
  co_await p.Compute(config_.lock_admin_acquire);
  co_await lock.Acquire(p);
}

hsim::Task<void> KernelSystem::LockRelease(hsim::Processor& p, hsim::SimLock& lock) {
  CpuKernel& k = cpu(p.id());
  co_await lock.Release(p);
  co_await p.Compute(config_.lock_admin_release);
  k.Unmask();
  k.set_lock_path_busy(false);
  // Drain any work that arrived while the gate was closed.
  co_await k.IrqPoint(p);
}

hsim::Task<void> KernelSystem::WaitReserveFree(hsim::Processor& p, hsim::SimWord& reserve) {
  CpuKernel& k = cpu(p.id());
  hsim::Tick delay = 8;
  while (true) {
    const std::uint64_t state = co_await p.Load(reserve);
    co_await p.Exec(0, 1);
    if (state == SimReserve::kFree) {
      co_return;
    }
    // The gate is open while we spin: incoming RPCs are serviced, keeping the
    // processor available (it is itself a lockable resource).
    co_await k.IrqPoint(p);
    const hsim::Tick jittered = delay / 2 + p.rng().NextBelow(delay / 2 + 1);
    co_await p.BackoffDelay(jittered);
    delay = std::min(delay * 2, config_.reserve_backoff_cap);
  }
}

hsim::Task<void> KernelSystem::CallWithRetry(hsim::Processor& p, hsim::ProcId target,
                                             RpcRequest* request, int* retries) {
  CpuKernel& k = cpu(p.id());
  hsim::Tick delay = 64;
  int consecutive = 0;
  while (true) {
    co_await k.Call(p, target, request);
    if (request->status != RpcStatus::kWouldDeadlock) {
      co_return;
    }
    // Optimistic protocol: the remote side found a reserve bit held and
    // refused to wait.  Back off and retry until it succeeds.
    ++counters_.rpc_would_deadlock;
    if (retries != nullptr) {
      ++*retries;
    }
    // Retry-storm watchdog: a reserve bit held this long usually means its
    // holder is starved (e.g. livelocked behind our own retries).  Escalate
    // once per storm -- a counter bump plus a diagnostic naming the
    // destination machine/cluster/processor, so a mesh-wide log pins which
    // member is starving the caller.
    if (++consecutive == config_.rpc_storm_threshold) {
      ++counters_.rpc_retry_storms;
      const std::string diag =
          StormDiagnostic(config_.machine_id, p.id(), target, cluster_of_proc(target),
                          request->op, consecutive);
      std::fprintf(stderr, "[hkernel] %s\n", diag.c_str());
    }
    const hsim::Tick jittered = delay / 2 + p.rng().NextBelow(delay / 2 + 1);
    co_await p.BackoffDelay(jittered);
    delay = std::min(delay * 2, config_.rpc_retry_backoff);
  }
}

Program& KernelSystem::CreateProgram() {
  const std::uint32_t id = static_cast<std::uint32_t>(programs_.size());
  programs_.push_back(std::make_unique<Program>(machine_, config_, id, num_clusters(),
                                                machine_->num_processors()));
  Program& prog = *programs_.back();
  if (lock_profiler_ != nullptr) {
    for (std::uint32_t c = 0; c < num_clusters(); ++c) {
      prog.region_lock(c).set_site(&lock_profiler_->AddSite(
          "program" + std::to_string(id) + "/cluster" + std::to_string(c) + "/region",
          config_.cluster_size));
    }
  }
  return prog;
}

void KernelSystem::AttachLockProfiler(hprof::SiteTable* sites) {
  lock_profiler_ = sites;
  if (sites == nullptr) {
    return;
  }
  for (std::uint32_t c = 0; c < num_clusters(); ++c) {
    clusters_[c]->lock().set_site(
        &sites->AddSite("cluster" + std::to_string(c) + "/page-table", config_.cluster_size));
  }
  // The descriptor arena's depot lock is the allocator's only cross-cluster
  // serialization point; profile it like any other kernel lock so depot trips
  // show up with per-cluster handoff attribution.
  arena_->set_depot_site(&sites->AddSite("kernel/desc-depot", config_.cluster_size));
  packet_pool_->set_depot_site(
      &sites->AddSite("kernel/rpc-packet-depot", config_.cluster_size));
}

hsim::Task<void> KernelSystem::PageFault(hsim::Processor& p, Program& prog, std::uint64_t page,
                                         FaultOutcome* out) {
  const hsim::Tick t_start = p.now();
  hsim::Tick lock_cycles = 0;
  FaultOutcome outcome;
  ++counters_.faults;

  ClusterKernel& c = cluster_of(p);
  co_await p.Compute(config_.fault_entry);

  // --- 1. region (address-space) lookup, under the program's cluster-local
  // region-replica lock ---------------------------------------------------------
  hsim::SimLock& region_lock = prog.region_lock(c.id());
  {
    const hsim::Tick t0 = p.now();
    co_await LockAcquire(p, region_lock);
    lock_cycles += p.now() - t0;
  }
  co_await p.Load(prog.region_word(c.id(), 0));
  co_await p.Load(prog.region_word(c.id(), 1));
  {
    const hsim::Tick t0 = p.now();
    co_await LockRelease(p, region_lock);
    lock_cycles += p.now() - t0;
  }
  co_await ComputeInterruptible(p, config_.fault_prework);

  // --- 2. find the page descriptor and reserve it ---------------------------
  DescRef ref = kNilDesc;
  while (true) {
    {
      const hsim::Tick t0 = p.now();
      co_await LockAcquire(p, c.lock());
      lock_cycles += p.now() - t0;
    }
    ref = co_await c.table().Lookup(p, page);
    if (ref != kNilDesc) {
      const hsim::Tick t0 = p.now();
      const bool reserved = co_await SimReserve::TrySetExclusive(p, *c.table().desc(ref).reserve);
      lock_cycles += p.now() - t0;
      if (reserved) {
        const hsim::Tick t1 = p.now();
        co_await LockRelease(p, c.lock());
        lock_cycles += p.now() - t1;
        break;
      }
      // Reserved by another processor: drop the coarse lock, spin on the
      // reserve word with backoff, then search again (Figure 1b).
      {
        const hsim::Tick t1 = p.now();
        co_await LockRelease(p, c.lock());
        lock_cycles += p.now() - t1;
      }
      ++outcome.reserve_waits;
      ++counters_.reserve_waits;
      const hsim::Tick t2 = p.now();
      co_await WaitReserveFree(p, *c.table().desc(ref).reserve);
      lock_cycles += p.now() - t2;
      continue;
    }

    // Not present in this cluster.
    const std::uint32_t home = home_cluster_of(page);
    if (home == c.id()) {
      // Home first touch: establish the descriptor (the page is in core; the
      // descriptor is built from the core map).
      ref = co_await c.table().Insert(p, page);
      assert(ref != kNilDesc && "cluster descriptor pool exhausted");
      PageDescriptor& d = c.table().desc(ref);
      co_await p.Store(*d.flags, kFlagPresent | kFlagHome);
      for (hsim::SimWord* w : d.payload) {
        co_await p.Store(*w, page);
      }
      const bool reserved = co_await SimReserve::TrySetExclusive(p, *d.reserve);
      assert(reserved);
      (void)reserved;
      co_await LockRelease(p, c.lock());
      break;
    }

    if (config_.protocol == DeadlockProtocol::kPessimistic) {
      // Pessimistic protocol: hold *nothing* across the remote operation.
      {
        const hsim::Tick t0 = p.now();
        co_await LockRelease(p, c.lock());
        lock_cycles += p.now() - t0;
      }
      RpcRequest request;
      request.op = RpcOp::kGetPage;
      request.page = page;
      co_await CallWithRetry(p, PeerOf(p.id(), home), &request, &outcome.rpc_retries);
      assert(request.status == RpcStatus::kOk);

      // Re-establish state: with no reserved shell marking our fetch, the
      // table may have changed arbitrarily while we were away.
      {
        const hsim::Tick t0 = p.now();
        co_await LockAcquire(p, c.lock());
        lock_cycles += p.now() - t0;
      }
      ref = co_await c.table().Lookup(p, page);
      if (ref != kNilDesc) {
        // Someone else replicated meanwhile: our RPC was redundant.  Restart
        // the search loop to take the normal found path.
        ++counters_.redundant_rpcs;
        co_await LockRelease(p, c.lock());
        continue;
      }
      ref = co_await c.table().Insert(p, page);
      assert(ref != kNilDesc && "cluster descriptor pool exhausted");
      PageDescriptor& dd = c.table().desc(ref);
      for (std::uint32_t w = 0; w < KernelConfig::kPayloadWords; ++w) {
        co_await p.Store(*dd.payload[w], request.payload[w]);
      }
      co_await p.Store(*dd.flags, kFlagPresent);
      const bool res = co_await SimReserve::TrySetExclusive(p, *dd.reserve);
      assert(res);
      (void)res;
      co_await LockRelease(p, c.lock());
      outcome.replicated = true;
      ++counters_.replications;
      break;
    }

    // Optimistic protocol: create a local replica shell, exclusively
    // reserved, so cluster peers combine on it instead of issuing redundant
    // RPCs; then release all local locks and fetch the payload.
    ref = co_await c.table().Insert(p, page);
    assert(ref != kNilDesc && "cluster descriptor pool exhausted");
    PageDescriptor& d = c.table().desc(ref);
    const bool reserved = co_await SimReserve::TrySetExclusive(p, *d.reserve);
    assert(reserved);
    (void)reserved;
    {
      const hsim::Tick t0 = p.now();
      co_await LockRelease(p, c.lock());
      lock_cycles += p.now() - t0;
    }

    RpcRequest request;
    request.op = RpcOp::kGetPage;
    request.page = page;
    co_await CallWithRetry(p, PeerOf(p.id(), home), &request, &outcome.rpc_retries);
    assert(request.status == RpcStatus::kOk);

    for (std::uint32_t w = 0; w < KernelConfig::kPayloadWords; ++w) {
      co_await p.Store(*d.payload[w], request.payload[w]);
    }
    // Publish: only the reserve holder writes flags, so a plain store is safe.
    co_await p.Store(*d.flags, kFlagPresent);
    outcome.replicated = true;
    ++counters_.replications;
    break;
  }

  // --- 3. fault processing with the reserve bit held -------------------------
  PageDescriptor& d = c.table().desc(ref);
  co_await ComputeInterruptible(p, config_.fault_mapwork);
  co_await p.Store(*pte_words_[p.id()][0], page);
  co_await p.Store(*pte_words_[p.id()][1], 1);
  const std::uint64_t rc = co_await p.Load(*d.ref_count);
  co_await p.Store(*d.ref_count, rc + 1);
  {
    const hsim::Tick t0 = p.now();
    co_await SimReserve::ClearExclusive(p, *d.reserve);
    lock_cycles += p.now() - t0;
  }
  co_await p.Compute(config_.fault_exit);

  outcome.total = p.now() - t_start;
  outcome.lock_cycles = lock_cycles;
  if (out != nullptr) {
    *out = outcome;
  }
}

hsim::Task<void> KernelSystem::UnmapGlobal(hsim::Processor& p, std::uint64_t page) {
  ClusterKernel& c = cluster_of(p);
  const std::uint32_t home = home_cluster_of(page);
  assert(home == c.id() && "UnmapGlobal must run in the page's home cluster");
  ++counters_.unmaps;

  // Read the replica set under the home lock, then drop every local lock
  // before broadcasting: the pessimistic protocol (Section 2.5) is used for
  // updates that fan out to many clusters.
  co_await LockAcquire(p, c.lock());
  const DescRef ref = co_await c.table().Lookup(p, page);
  std::uint64_t mask = 0;
  if (ref != kNilDesc) {
    mask = co_await p.Load(*c.table().desc(ref).replicas);
    co_await p.Store(*c.table().desc(ref).replicas, 0);
    co_await p.Store(*c.table().desc(ref).ref_count, 0);
  }
  co_await LockRelease(p, c.lock());
  if (ref == kNilDesc) {
    co_return;
  }

  for (std::uint32_t k = 0; k < num_clusters(); ++k) {
    if (k == home || (mask & (1ULL << k)) == 0) {
      continue;
    }
    RpcRequest request;
    request.op = RpcOp::kInvalidate;
    request.page = page;
    co_await CallWithRetry(p, PeerOf(p.id(), k), &request, nullptr);
    ++counters_.invalidations;
  }
  // Clear the local page-table entries (TLB shootdown analogue).
  co_await p.Store(*pte_words_[p.id()][1], 0);
  co_await p.Compute(64);
}

hsim::Task<void> KernelSystem::GlobalUpdate(hsim::Processor& p, std::uint64_t page,
                                            std::uint64_t value) {
  ClusterKernel& c = cluster_of(p);
  const std::uint32_t home = home_cluster_of(page);
  assert(home == c.id() && "GlobalUpdate must run in the page's home cluster");

  // Update the home copy first (under lock + reserve), then broadcast.  The
  // local copy is unlocked before the broadcast starts: if a remote cluster
  // concurrently asks *us* to update, we must not hold our own copy locked
  // (Section 2.5, "Pessimistic vs. Optimistic").
  co_await LockAcquire(p, c.lock());
  const DescRef ref = co_await c.table().Lookup(p, page);
  std::uint64_t mask = 0;
  if (ref != kNilDesc) {
    mask = co_await p.Load(*c.table().desc(ref).replicas);
    co_await p.Store(*c.table().desc(ref).payload[0], value);
  }
  co_await LockRelease(p, c.lock());
  if (ref == kNilDesc) {
    co_return;
  }

  for (std::uint32_t k = 0; k < num_clusters(); ++k) {
    if (k == home || (mask & (1ULL << k)) == 0) {
      continue;
    }
    RpcRequest request;
    request.op = RpcOp::kGlobalUpdate;
    request.page = page;
    request.arg = value;
    co_await CallWithRetry(p, PeerOf(p.id(), k), &request, nullptr);
  }
}

hsim::Task<void> KernelSystem::NullRpc(hsim::Processor& p, std::uint32_t target_cluster) {
  RpcRequest request;
  request.op = RpcOp::kNull;
  co_await cpu(p.id()).Call(p, PeerOf(p.id(), target_cluster), &request);
}

hsim::Task<void> KernelSystem::IdleLoop(hsim::Processor& p, const bool* stop) {
  CpuKernel& k = cpu(p.id());
  while (!*stop) {
    co_await k.IrqPoint(p);
    co_await p.Compute(config_.idle_poll);
  }
}

hsim::Task<void> KernelSystem::HandleRpc(hsim::Processor& p, RpcRequest& request) {
  switch (request.op) {
    case RpcOp::kNull:
      request.status = RpcStatus::kOk;
      co_return;
    case RpcOp::kGetPage:
      co_await HandleGetPage(p, request);
      co_return;
    case RpcOp::kInvalidate:
      co_await HandleInvalidate(p, request);
      co_return;
    case RpcOp::kGlobalUpdate:
      co_await HandleGlobalUpdate(p, request);
      co_return;
    case RpcOp::kProcAddChild:
    case RpcOp::kProcUnlinkChild:
    case RpcOp::kProcDeposit:
      assert(aux_handler_ && "process RPC without a registered process manager");
      co_await aux_handler_(p, request);
      co_return;
  }
}

hsim::Task<void> KernelSystem::HandleGetPage(hsim::Processor& p, RpcRequest& request) {
  // Runs in the page's home cluster.  This is the "no-spin" version of the
  // lookup: if the descriptor is exclusively reserved, fail with
  // kWouldDeadlock instead of spinning -- the initiator retries (Section 2.3).
  ClusterKernel& c = cluster_of(p);
  co_await LockAcquire(p, c.lock());
  DescRef ref = co_await c.table().Lookup(p, request.page);
  if (ref == kNilDesc) {
    // Home first touch on behalf of a remote cluster: establish the
    // descriptor from the core map.
    ref = co_await c.table().Insert(p, request.page);
    assert(ref != kNilDesc && "home descriptor pool exhausted");
    PageDescriptor& d = c.table().desc(ref);
    co_await p.Store(*d.flags, kFlagPresent | kFlagHome);
    for (hsim::SimWord* w : d.payload) {
      co_await p.Store(*w, request.page);
    }
  }
  PageDescriptor& d = c.table().desc(ref);
  const bool readable = co_await SimReserve::TryAddReader(p, *d.reserve);
  if (!readable) {
    co_await LockRelease(p, c.lock());
    request.status = RpcStatus::kWouldDeadlock;
    co_return;
  }
  // Record the requester as a replica holder while we still hold the lock.
  const std::uint64_t mask = co_await p.Load(*d.replicas);
  co_await p.Store(*d.replicas, mask | (1ULL << request.src_cluster));
  co_await LockRelease(p, c.lock());

  // Copy the payload under the reader reservation only: multiple clusters can
  // replicate concurrently (the combining behaviour of Section 2.2).
  for (std::uint32_t w = 0; w < KernelConfig::kPayloadWords; ++w) {
    request.payload[w] = co_await p.Load(*d.payload[w]);
  }

  co_await LockAcquire(p, c.lock());
  co_await SimReserve::RemoveReader(p, *d.reserve);
  co_await LockRelease(p, c.lock());
  request.status = RpcStatus::kOk;
}

hsim::Task<void> KernelSystem::HandleInvalidate(hsim::Processor& p, RpcRequest& request) {
  // Runs in a replica-holding cluster.  No-spin: a reserve bit held by a
  // local fault in progress forces the unmapper to retry.
  ClusterKernel& c = cluster_of(p);
  co_await LockAcquire(p, c.lock());
  const DescRef ref = co_await c.table().Lookup(p, request.page);
  if (ref == kNilDesc) {
    co_await LockRelease(p, c.lock());
    request.status = RpcStatus::kOk;  // already gone
    co_return;
  }
  const std::uint64_t state = co_await SimReserve::Read(p, *c.table().desc(ref).reserve);
  if (state != SimReserve::kFree) {
    co_await LockRelease(p, c.lock());
    request.status = RpcStatus::kWouldDeadlock;
    co_return;
  }
  const bool removed = co_await c.table().Remove(p, request.page);
  assert(removed);
  (void)removed;
  co_await LockRelease(p, c.lock());
  // Local TLB shootdown cost.
  co_await p.Compute(64);
  request.status = RpcStatus::kOk;
}

hsim::Task<void> KernelSystem::HandleGlobalUpdate(hsim::Processor& p, RpcRequest& request) {
  ClusterKernel& c = cluster_of(p);
  co_await LockAcquire(p, c.lock());
  const DescRef ref = co_await c.table().Lookup(p, request.page);
  if (ref == kNilDesc) {
    co_await LockRelease(p, c.lock());
    request.status = RpcStatus::kOk;  // no replica here (raced with invalidation)
    co_return;
  }
  PageDescriptor& d = c.table().desc(ref);
  const std::uint64_t state = co_await SimReserve::Read(p, *d.reserve);
  if (state != SimReserve::kFree) {
    co_await LockRelease(p, c.lock());
    request.status = RpcStatus::kWouldDeadlock;
    co_return;
  }
  co_await p.Store(*d.payload[0], request.arg);
  co_await LockRelease(p, c.lock());
  request.status = RpcStatus::kOk;
}

}  // namespace hkernel
