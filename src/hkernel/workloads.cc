#include "src/hkernel/workloads.h"

#include <memory>
#include <vector>

#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {

hsim::Task<void> SimBarrier::Wait(hsim::Processor& p) {
  const std::uint64_t gen = generation_;
  if (++count_ == parties_) {
    count_ = 0;
    ++generation_;
    co_return;
  }
  CpuKernel& k = system_->cpu(p.id());
  while (generation_ == gen) {
    co_await k.IrqPoint(p);
    co_await p.Compute(24);
  }
}

namespace {

// Shared bookkeeping for a test run: the last driver to finish flips `stop`
// so idle loops wind down and the engine can drain.
struct RunState {
  std::uint32_t remaining = 0;
  bool stop = false;
  std::uint64_t window_ops = 0;

  void DriverDone() {
    if (--remaining == 0) {
      stop = true;
    }
  }
};

hsim::Task<void> IndependentDriver(KernelSystem* sys, hsim::ProcId pid, Program* prog,
                                   const FaultTestParams params, hsim::LatencyRecorder* latency,
                                   hsim::LatencyRecorder* lock_overhead, RunState* state) {
  hsim::Processor& p = sys->machine().processor(pid);
  CpuKernel& k = sys->cpu(pid);
  const hsim::Tick warm_end = params.warmup_time;
  const hsim::Tick deadline = params.warmup_time + params.measure_time;
  std::uint32_t i = 0;
  while (p.now() < deadline) {
    const std::uint64_t page = KernelSystem::MakePage(pid, i++ % params.pages);
    const hsim::Tick t0 = p.now();
    FaultOutcome out;
    co_await sys->PageFault(p, *prog, page, &out);
    if (p.now() >= warm_end && p.now() <= deadline) {
      ++state->window_ops;
    }
    if (t0 >= warm_end && p.now() <= deadline) {
      latency->Record(out.total);
      lock_overhead->Record(out.lock_cycles);
    }
    co_await k.IrqPoint(p);
    co_await p.Compute(32);  // minimal user work between faults
  }
  state->DriverDone();
}

hsim::Task<void> SharedDriver(KernelSystem* sys, hsim::ProcId pid, Program* prog,
                              const FaultTestParams params, SimBarrier* barrier, bool leader,
                              hsim::LatencyRecorder* latency, hsim::LatencyRecorder* lock_overhead,
                              RunState* state) {
  hsim::Processor& p = sys->machine().processor(pid);
  CpuKernel& k = sys->cpu(pid);
  const std::uint32_t total = params.warmup + params.iterations;
  for (std::uint32_t r = 0; r < total; ++r) {
    for (std::uint32_t n = 0; n < params.pages; ++n) {
      // Shared pages live in processor 0's cluster.
      const std::uint64_t page = KernelSystem::MakePage(0, n);
      FaultOutcome out;
      co_await sys->PageFault(p, *prog, page, &out);
      if (r >= params.warmup) {
        latency->Record(out.total);
        lock_overhead->Record(out.lock_cycles);
      }
      co_await k.IrqPoint(p);
    }
    co_await barrier->Wait(p);
    if (leader) {
      for (std::uint32_t n = 0; n < params.pages; ++n) {
        co_await sys->UnmapGlobal(p, KernelSystem::MakePage(0, n));
      }
    }
    co_await barrier->Wait(p);
  }
  state->DriverDone();
}

struct TestRig {
  hsim::Engine engine;
  std::unique_ptr<hsim::Machine> machine;
  std::unique_ptr<KernelSystem> system;
  RunState state;

  explicit TestRig(const FaultTestParams& params) {
    machine = std::make_unique<hsim::Machine>(&engine, hsim::MachineConfig{});
    machine->set_trace(params.trace);
    if (params.faults.any()) {
      machine->set_fault_plan(params.faults);
    }
    KernelConfig config;
    config.cluster_size = params.cluster_size;
    config.lock_kind = params.lock_kind;
    config.protocol = params.protocol;
    system = std::make_unique<KernelSystem>(machine.get(), config);
    system->set_metrics(params.metrics);
  }

  void SpawnIdleLoops(std::uint32_t active_procs) {
    for (hsim::ProcId p = active_procs; p < machine->num_processors(); ++p) {
      engine.Spawn(system->IdleLoop(machine->processor(p), &state.stop));
    }
  }

  FaultTestResult Finish(hsim::LatencyRecorder latency, hsim::LatencyRecorder lock_overhead) {
    FaultTestResult result;
    result.latency = std::move(latency);
    result.lock_overhead = std::move(lock_overhead);
    result.counters = system->counters();
    result.bus_wait = machine->total_bus_wait();
    result.mem_wait = machine->total_memory_wait();
    result.ring_wait = machine->total_ring_wait();
    if (machine->fault_plan() != nullptr) {
      result.transport = machine->fault_plan()->counters();
    }
    for (hsim::ProcId p = 0; p < machine->num_processors(); ++p) {
      result.backlog += system->cpu(p).backlog();
    }
    result.duration = engine.now();
    for (std::uint32_t m = 0; m < machine->num_processors(); ++m) {
      result.module_utilization.push_back(
          engine.now() > 0 ? static_cast<double>(machine->memory(m).total_busy()) /
                                 static_cast<double>(engine.now())
                           : 0.0);
      result.module_wait.push_back(machine->memory(m).total_wait());
    }
    system->PublishCounters();
    return result;
  }
};

}  // namespace

FaultTestResult RunIndependentFaultTest(const FaultTestParams& params) {
  TestRig rig(params);
  hsim::LatencyRecorder latency;
  hsim::LatencyRecorder lock_overhead;
  rig.state.remaining = params.active_procs;
  // One sequential program per processor: private regions, private address
  // spaces (Figure 6a).
  for (hsim::ProcId p = 0; p < params.active_procs; ++p) {
    Program& prog = rig.system->CreateProgram();
    rig.engine.Spawn(IndependentDriver(rig.system.get(), p, &prog, params, &latency,
                                       &lock_overhead, &rig.state));
  }
  rig.SpawnIdleLoops(params.active_procs);
  rig.engine.RunUntilIdle();
  FaultTestResult result = rig.Finish(std::move(latency), std::move(lock_overhead));
  result.window_ops = rig.state.window_ops;
  result.active_procs = params.active_procs;
  result.window = params.measure_time;
  return result;
}

FaultTestResult RunSharedFaultTest(const FaultTestParams& params) {
  TestRig rig(params);
  hsim::LatencyRecorder latency;
  hsim::LatencyRecorder lock_overhead;
  SimBarrier barrier(rig.system.get(), params.active_procs);
  rig.state.remaining = params.active_procs;
  // One parallel (SPMD) program spanning all processors (Figure 6b).
  Program& prog = rig.system->CreateProgram();
  for (hsim::ProcId p = 0; p < params.active_procs; ++p) {
    rig.engine.Spawn(SharedDriver(rig.system.get(), p, &prog, params, &barrier,
                                  /*leader=*/p == 0, &latency, &lock_overhead, &rig.state));
  }
  rig.SpawnIdleLoops(params.active_procs);
  rig.engine.RunUntilIdle();
  return rig.Finish(std::move(latency), std::move(lock_overhead));
}

FaultTestResult RunMixedFaultTest(const FaultTestParams& params) {
  TestRig rig(params);
  hsim::LatencyRecorder latency;
  hsim::LatencyRecorder lock_overhead;
  // Odd processors form one SPMD program; even processors run independent
  // sequential programs.  The shared side's round count bounds the run.
  std::vector<hsim::ProcId> shared_procs;
  std::vector<hsim::ProcId> indep_procs;
  for (hsim::ProcId p = 0; p < params.active_procs; ++p) {
    (p % 2 == 0 ? indep_procs : shared_procs).push_back(p);
  }
  SimBarrier barrier(rig.system.get(), static_cast<std::uint32_t>(shared_procs.size()));
  rig.state.remaining = static_cast<std::uint32_t>(shared_procs.size());

  Program& spmd = rig.system->CreateProgram();
  constexpr std::uint32_t kSharedPages = 4;
  const hsim::ProcId leader = shared_procs.front();
  for (hsim::ProcId pid : shared_procs) {
    rig.engine.Spawn([](KernelSystem* sys, hsim::ProcId self, hsim::ProcId lead, Program* prog,
                        const FaultTestParams p, SimBarrier* bar, hsim::LatencyRecorder* lat,
                        hsim::LatencyRecorder* lock_lat, RunState* state) -> hsim::Task<void> {
      hsim::Processor& proc = sys->machine().processor(self);
      CpuKernel& k = sys->cpu(self);
      const std::uint32_t rounds = p.warmup + p.iterations;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        for (std::uint32_t n = 0; n < kSharedPages; ++n) {
          FaultOutcome out;
          co_await sys->PageFault(proc, *prog, KernelSystem::MakePage(lead, n), &out);
          if (r >= p.warmup) {
            lat->Record(out.total);
            lock_lat->Record(out.lock_cycles);
          }
          co_await k.IrqPoint(proc);
        }
        co_await bar->Wait(proc);
        if (self == lead) {
          for (std::uint32_t n = 0; n < kSharedPages; ++n) {
            co_await sys->UnmapGlobal(proc, KernelSystem::MakePage(lead, n));
          }
        }
        co_await bar->Wait(proc);
      }
      state->DriverDone();
    }(rig.system.get(), pid, leader, &spmd, params, &barrier, &latency, &lock_overhead,
      &rig.state));
  }

  // Independent side: sequential programs faulting on private pages until the
  // SPMD side finishes.
  for (hsim::ProcId pid : indep_procs) {
    Program& prog = rig.system->CreateProgram();
    rig.engine.Spawn([](KernelSystem* sys, hsim::ProcId self, Program* pr,
                        const FaultTestParams p, hsim::LatencyRecorder* lat,
                        hsim::LatencyRecorder* lock_lat, RunState* state) -> hsim::Task<void> {
      hsim::Processor& proc = sys->machine().processor(self);
      CpuKernel& k = sys->cpu(self);
      std::uint32_t i = 0;
      const hsim::Tick warm = p.warmup_time;
      while (!state->stop) {
        FaultOutcome out;
        co_await sys->PageFault(proc, *pr, KernelSystem::MakePage(self, i++ % p.pages), &out);
        if (proc.now() >= warm) {
          lat->Record(out.total);
          lock_lat->Record(out.lock_cycles);
        }
        co_await k.IrqPoint(proc);
        co_await proc.Compute(32);
      }
    }(rig.system.get(), pid, &prog, params, &latency, &lock_overhead, &rig.state));
  }
  rig.SpawnIdleLoops(params.active_procs);
  rig.engine.RunUntilIdle();
  return rig.Finish(std::move(latency), std::move(lock_overhead));
}

CalibrationResult RunCalibration(hsim::LockKind lock_kind) {
  CalibrationResult result;

  // Uncontended fault: one processor, cluster of 4 (the system's deployment
  // value), private local pages.
  {
    FaultTestParams params;
    params.lock_kind = lock_kind;
    params.cluster_size = 4;
    params.active_procs = 1;
    params.pages = 4;
    params.warmup_time = hsim::UsToTicks(800);
    params.measure_time = hsim::UsToTicks(4000);
    FaultTestResult r = RunIndependentFaultTest(params);
    result.fault_us = r.latency.mean_us();
    result.fault_lock_us = r.lock_overhead.mean_us();
  }

  // Null RPC and replication cost, measured on an otherwise idle machine.
  {
    hsim::Engine engine;
    hsim::Machine machine(&engine, hsim::MachineConfig{});
    KernelConfig config;
    config.cluster_size = 4;
    config.lock_kind = lock_kind;
    KernelSystem system(&machine, config);
    bool stop = false;
    for (hsim::ProcId p = 1; p < machine.num_processors(); ++p) {
      engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
    }
    struct Out {
      double null_rpc_us = 0;
      double replicate_us = 0;
    } out;
    Program& prog = system.CreateProgram();
    engine.Spawn([](KernelSystem* sys, Program* pr, hsim::Processor* p, Out* o, bool* stop_flag)
                     -> hsim::Task<void> {
      // Null RPC round trip (averaged).
      constexpr int kRounds = 8;
      const hsim::Tick t0 = p->now();
      for (int i = 0; i < kRounds; ++i) {
        co_await sys->NullRpc(*p, /*target_cluster=*/1);
      }
      o->null_rpc_us = hsim::TicksToUs(p->now() - t0) / kRounds;

      // Replication cost: a fault on a remote-homed page minus a fault on the
      // same (now local) descriptor isolates the cluster-wide lookup +
      // replicate portion.
      const std::uint64_t page = KernelSystem::MakePage(/*home_proc=*/4, 7);
      FaultOutcome first;
      co_await sys->PageFault(*p, *pr, page, &first);
      FaultOutcome second;
      co_await sys->PageFault(*p, *pr, page, &second);
      o->replicate_us = hsim::TicksToUs(first.total - second.total);
      *stop_flag = true;
    }(&system, &prog, &machine.processor(0), &out, &stop));
    engine.RunUntilIdle();
    result.null_rpc_us = out.null_rpc_us;
    result.replicate_us = out.replicate_us;
  }

  return result;
}

}  // namespace hkernel
