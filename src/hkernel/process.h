// Program and process management: the family tree (Section 2.5).
//
// HURRICANE maintains a family tree of processes whose links run *through*
// the process descriptors -- the same descriptors message passing uses.  The
// paper's two lessons, both reproduced here:
//
//   "Retries": all processes of a program are destroyed at about the same
//   time; destruction updates up to three descriptors (the process, its
//   parent, and a sibling) that may live in three clusters, so deadlock-
//   avoidance retries are common during parallel destruction, independent of
//   the protocol chosen.
//
//   "Data structure design": combining two structures with different locking
//   characteristics in one entity caused the trouble.  Destruction has a
//   natural lock order (the tree); message passing involves two arbitrary
//   processes with no natural order.  Had the family tree been a separate
//   structure, tree operations could lock in tree order and avoid the RPC
//   retries.  `TreePolicy::kSeparateTree` implements that alternative: tree
//   links live in their own entries, only ever locked parent-before-child,
//   so the remote handlers may wait (bounded by the ordering) instead of
//   failing, and the retry storm disappears.
//
// Process descriptors are never replicated (they are write-shared); all
// operations on a remote process go through an RPC to its home cluster.

#ifndef HKERNEL_PROCESS_H_
#define HKERNEL_PROCESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hkernel/kernel.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

using Pid = std::uint64_t;
inline constexpr Pid kNoPid = 0;

// How the family tree is stored (the Section 2.5 design lesson).
enum class TreePolicy {
  kCombined,      // links inside the process descriptors (HURRICANE's design)
  kSeparateTree,  // links in a dedicated structure with tree-order locking
};

struct ProcessDescriptor {
  hsim::SimWord* pid;
  hsim::SimWord* state;         // kProcFree / kProcAlive / kProcDying
  hsim::SimWord* reserve;       // reserve word, shared by messaging (and, in
                                // the combined design, by tree operations)
  hsim::SimWord* parent;        // Pid
  hsim::SimWord* children;      // head of the child chain (node ref, 0 = none)
  hsim::SimWord* mailbox;       // message count
};

// One link of a parent's child chain, allocated in the parent's cluster.
struct ChildLink {
  hsim::SimWord* child;  // Pid
  hsim::SimWord* next;   // node ref (0 = end)
};

inline constexpr std::uint64_t kProcFree = 0;
inline constexpr std::uint64_t kProcAlive = 1;
inline constexpr std::uint64_t kProcDying = 2;

// Per-cluster process table: a small open table keyed by pid, protected by
// its own coarse lock (a separate lock class from the page tables; the lock
// hierarchy across classes makes holding one while asking for the other
// one-directional).
class ProcessTable {
 public:
  ProcessTable(hsim::Machine* machine, hsim::ModuleId home, std::uint32_t capacity);

  // All operations require the cluster's process lock.
  hsim::Task<std::uint32_t> Lookup(hsim::Processor& p, Pid pid);  // 0 = not found, else idx+1
  hsim::Task<std::uint32_t> Insert(hsim::Processor& p, Pid pid);
  hsim::Task<void> Remove(hsim::Processor& p, std::uint32_t ref);

  ProcessDescriptor& desc(std::uint32_t ref) { return descriptors_[ref - 1]; }
  std::uint32_t live() const { return live_; }

 private:
  std::vector<ProcessDescriptor> descriptors_;
  std::vector<hsim::SimWord*> slots_;  // slot i holds the pid stored in descriptor i (0 = free)
  std::uint32_t live_ = 0;
};

// The process-management service layered over a KernelSystem: per-cluster
// process tables + the RPC handlers for remote-descriptor operations.
class ProcessManager {
 public:
  ProcessManager(KernelSystem* system, TreePolicy policy,
                 std::uint32_t capacity_per_cluster = 256);
  ~ProcessManager();

  TreePolicy policy() const { return policy_; }

  // Creates a process homed on processor `home_proc`'s cluster, as a child of
  // `parent` (kNoPid for a root).  Returns the new pid.  Must run on a
  // processor in the home cluster.
  hsim::Task<Pid> Create(hsim::Processor& p, hsim::ProcId home_proc, Pid parent);

  // Destroys `pid`: unlinks it from the family tree (which may touch the
  // parent's descriptor in another cluster) and frees its descriptor.  Must
  // run on a processor in pid's home cluster -- the per-process teardown of a
  // program runs where the process lives, which is what makes the parallel
  // destruction of a program a cross-cluster storm.
  hsim::Task<void> Destroy(hsim::Processor& p, Pid pid);

  // Message passing: deposits a message in `to`'s mailbox, reserving the
  // target descriptor while the transfer happens.  Two arbitrary processes,
  // no natural lock order -- the operation that poisoned the combined design.
  hsim::Task<bool> SendMessage(hsim::Processor& p, Pid to);

  hsim::Task<std::uint64_t> ReadMailbox(hsim::Processor& p, Pid pid);

  // Number of live processes in `cluster`'s table.
  std::uint32_t live(std::uint32_t cluster) const;

  struct Stats {
    std::uint64_t creates = 0;
    std::uint64_t destroys = 0;
    std::uint64_t messages = 0;
    std::uint64_t unlink_retries = 0;  // would-deadlock retries during destruction
  };
  const Stats& stats() const { return stats_; }

  std::uint32_t home_cluster_of(Pid pid) const {
    return system_->cluster_of_proc(static_cast<hsim::ProcId>((pid >> 40) - 1));
  }
  static Pid MakePid(hsim::ProcId home_proc, std::uint64_t n) {
    return (static_cast<std::uint64_t>(home_proc + 1) << 40) | n;
  }

  // RPC dispatch, called from KernelSystem::HandleRpc.
  hsim::Task<void> HandleRpc(hsim::Processor& p, RpcRequest& request);

 private:
  struct ClusterState {
    std::unique_ptr<hsim::SimLock> lock;  // the cluster's process-table lock
    std::unique_ptr<ProcessTable> table;
    std::vector<ChildLink> links;  // child-chain node pool
    std::vector<std::uint32_t> free_links;
  };

  // Allocates / frees child-chain nodes (host bookkeeping; the nodes' words
  // are simulated memory).
  std::uint32_t AllocLink(std::uint32_t cluster);
  void FreeLink(std::uint32_t cluster, std::uint32_t ref);

  enum class DepositResult { kOk, kGone, kBusy };

  // Links `child` under `parent` in cluster `c` (both local to that cluster).
  hsim::Task<void> AddChildLocal(hsim::Processor& p, std::uint32_t c, Pid parent, Pid child);

  // Deposits a message into `to`'s mailbox in cluster `c`.  With may_wait the
  // caller spins on a reserved descriptor; otherwise it reports kBusy.
  hsim::Task<DepositResult> DepositLocal(hsim::Processor& p, std::uint32_t c, Pid to,
                                         bool may_wait);

  // Unlinks `child` from `parent`'s child list; both descriptors live in
  // `cluster`.  Returns false (would-deadlock) if a needed descriptor is
  // reserved and the policy requires failing instead of waiting.
  hsim::Task<bool> UnlinkChildLocal(hsim::Processor& p, std::uint32_t cluster, Pid parent,
                                    Pid child, bool may_wait);

  ClusterState& cluster(std::uint32_t id) { return *clusters_[id]; }

  KernelSystem* system_;
  TreePolicy policy_;
  std::vector<std::unique_ptr<ClusterState>> clusters_;
  std::vector<std::uint64_t> next_pid_;  // per cluster
  Stats stats_;
};

}  // namespace hkernel

#endif  // HKERNEL_PROCESS_H_
