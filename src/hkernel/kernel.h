// The clustered HURRICANE kernel model.
//
// A KernelSystem instantiates hierarchical clustering (Section 2.2) over a
// simulated HECTOR machine: processors are grouped into clusters of
// config.cluster_size, and each cluster owns a complete set of memory-manager
// structures -- a page-descriptor hash table, the coarse-grained lock that
// protects it, a region ("address space") lock, and a descriptor pool.
//
// Pages are identified by 64-bit ids that encode their home processor (and
// therefore home cluster).  A fault on a page whose home is a remote cluster
// creates a local replica shell under an exclusive reserve bit, releases all
// local locks, and fetches the descriptor payload by RPC -- the optimistic
// deadlock-avoidance protocol of Section 2.3: the remote handler never spins
// on a reserve bit; it fails with kWouldDeadlock and the initiator backs off
// and retries.
//
// Global updates (unmapping a shared page) use the pessimistic protocol: all
// local locks are dropped before the invalidations are broadcast.

#ifndef HKERNEL_KERNEL_H_
#define HKERNEL_KERNEL_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/halloc/slab_allocator.h"
#include "src/hkernel/config.h"
#include "src/hkernel/page_table.h"
#include "src/hkernel/rpc.h"
#include "src/hmetrics/registry.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hflight {
class FlightRecorder;
}  // namespace hflight

namespace hkernel {

// One cluster's instantiation of the kernel data structures.  The page table
// draws descriptors from the system-wide DescriptorArena (each cluster's refs
// are partitioned within it, so the fast path stays cluster-local).
class ClusterKernel {
 public:
  ClusterKernel(hsim::Machine* machine, const KernelConfig& config, std::uint32_t id,
                std::vector<hsim::ProcId> procs, DescriptorArena* arena);

  std::uint32_t id() const { return id_; }
  const std::vector<hsim::ProcId>& procs() const { return procs_; }

  hsim::SimLock& lock() { return *lock_; }  // protects the page hash table
  PageHashTable& table() { return *table_; }

 private:
  std::uint32_t id_;
  std::vector<hsim::ProcId> procs_;
  std::unique_ptr<hsim::SimLock> lock_;
  std::unique_ptr<PageHashTable> table_;
};

// An address space (a program).  Region descriptors are read-mostly data and
// are replicated per cluster (Section 2.2): each cluster that runs threads of
// the program gets its own region-list replica and the lock protecting it.
// A workload of many sequential programs therefore induces no address-space
// lock contention at all; a single parallel program contends only within a
// cluster.
class Program {
 public:
  Program(hsim::Machine* machine, const KernelConfig& config, std::uint32_t id,
          std::uint32_t num_clusters, std::uint32_t nprocs);

  std::uint32_t id() const { return id_; }
  hsim::SimLock& region_lock(std::uint32_t cluster) { return *replicas_[cluster].lock; }
  hsim::SimWord& region_word(std::uint32_t cluster, int i) {
    return *replicas_[cluster].words[i];
  }

 private:
  struct Replica {
    std::unique_ptr<hsim::SimLock> lock;
    hsim::SimWord* words[2];
  };
  std::uint32_t id_;
  std::vector<Replica> replicas_;
};

// Per-fault outcome, for the experiment harnesses.
struct FaultOutcome {
  hsim::Tick total = 0;          // end-to-end fault latency
  hsim::Tick lock_cycles = 0;    // time spent in locking primitives
  bool replicated = false;       // the descriptor was fetched from a remote cluster
  int reserve_waits = 0;         // times we had to spin on a reserve bit
  int rpc_retries = 0;           // kWouldDeadlock retries
};

class KernelSystem {
 public:
  KernelSystem(hsim::Machine* machine, const KernelConfig& config);

  hsim::Machine& machine() { return *machine_; }
  const KernelConfig& config() const { return config_; }

  // --- topology ---------------------------------------------------------------
  std::uint32_t num_clusters() const { return static_cast<std::uint32_t>(clusters_.size()); }
  ClusterKernel& cluster(std::uint32_t id) { return *clusters_[id]; }
  DescriptorArena& desc_arena() { return *arena_; }

  // Pool of in-transit RPC packet envelopes (the transport's wire buffers),
  // clustered like the kernel: an envelope is allocated at the sender's
  // cluster and freed at the receiver's, so cross-cluster RPC traffic is
  // exactly the alloc/free drift the slab depot absorbs.  Host-side objects
  // (the transport itself is host bookkeeping); the engine is single-threaded
  // so explicit ctx ids stand in for threads.
  halloc::SlabAllocator<RpcPacket>& packet_pool() { return *packet_pool_; }
  std::uint32_t cluster_of_proc(hsim::ProcId p) const { return p / config_.cluster_size; }
  ClusterKernel& cluster_of(hsim::Processor& p) { return *clusters_[cluster_of_proc(p.id())]; }
  CpuKernel& cpu(hsim::ProcId p) { return *cpus_[p]; }

  // Page ids encode the home processor so that the home cluster follows the
  // current clustering configuration.
  static std::uint64_t MakePage(hsim::ProcId home_proc, std::uint64_t n) {
    return (static_cast<std::uint64_t>(home_proc + 1) << 40) | n;
  }
  hsim::ProcId home_proc_of(std::uint64_t page) const {
    return static_cast<hsim::ProcId>((page >> 40) - 1);
  }
  std::uint32_t home_cluster_of(std::uint64_t page) const {
    return cluster_of_proc(home_proc_of(page));
  }

  // The i-th processor of a source cluster always calls the i-th processor of
  // the target cluster (Section 2.2), roughly balancing the RPC load.
  hsim::ProcId PeerOf(hsim::ProcId src, std::uint32_t target_cluster) const {
    return target_cluster * config_.cluster_size + (src % config_.cluster_size);
  }

  // Creates an address space.  Region replicas are spread across each
  // cluster's memory modules by program id.
  Program& CreateProgram();
  Program& program(std::uint32_t id) { return *programs_[id]; }

  // --- kernel operations --------------------------------------------------------
  // Handles a soft page fault (the page is in core) by processor `p`, running
  // a thread of `prog`, on `page`.  Replicates the descriptor from the home
  // cluster if needed.
  hsim::Task<void> PageFault(hsim::Processor& p, Program& prog, std::uint64_t page,
                             FaultOutcome* out = nullptr);

  // Globally unmaps `page`: invalidates every remote-cluster replica so that
  // subsequent faults re-replicate.  Must be called from the page's home
  // cluster; uses the pessimistic protocol (no local locks held while the
  // invalidations are broadcast).
  hsim::Task<void> UnmapGlobal(hsim::Processor& p, std::uint64_t page);

  // Broadcasts a payload update to all replicas (write-shared workload).
  // Must be called from the home cluster.
  hsim::Task<void> GlobalUpdate(hsim::Processor& p, std::uint64_t page, std::uint64_t value);

  // Performs a null RPC round trip to the peer in `target_cluster`
  // (calibration: the paper reports 27 us).
  hsim::Task<void> NullRpc(hsim::Processor& p, std::uint32_t target_cluster);

  // Spawns an idle loop on processor `p` that services RPCs until *stop
  // becomes true.  Used by harnesses whose processors would otherwise be
  // deaf to incoming RPCs.
  hsim::Task<void> IdleLoop(hsim::Processor& p, const bool* stop);

  // --- RPC dispatch (invoked by CpuKernel) -------------------------------------
  hsim::Task<void> HandleRpc(hsim::Processor& p, RpcRequest& request);

  // Auxiliary services (e.g. the process manager) register a handler for the
  // RPC operations the memory manager does not own.
  using AuxHandler = std::function<hsim::Task<void>(hsim::Processor&, RpcRequest&)>;
  void set_aux_handler(AuxHandler handler) { aux_handler_ = std::move(handler); }

  // --- lock wrappers ------------------------------------------------------------
  // Coarse-lock acquire/release with the software interrupt gate and the
  // fixed lock-path bookkeeping.  All kernel lock sites go through these.
  hsim::Task<void> LockAcquire(hsim::Processor& p, hsim::SimLock& lock);
  hsim::Task<void> LockRelease(hsim::Processor& p, hsim::SimLock& lock);

  // Calls `target` and retries (with exponential backoff) while the handler
  // reports kWouldDeadlock -- the client half of the optimistic protocol,
  // shared by every kernel service.
  hsim::Task<void> CallWithRetry(hsim::Processor& p, hsim::ProcId target, RpcRequest* request,
                                 int* retries = nullptr);

  // Spins (gate open, servicing RPCs) until `reserve` is observed free.
  hsim::Task<void> WaitReserveFree(hsim::Processor& p, hsim::SimWord& reserve);

  // --- counters -----------------------------------------------------------------
  struct Counters {
    std::uint64_t faults = 0;
    std::uint64_t replications = 0;
    std::uint64_t rpcs = 0;
    std::uint64_t rpc_would_deadlock = 0;  // handler-side refusals
    std::uint64_t redundant_rpcs = 0;      // pessimistic: fetches that re-establishment discarded
    std::uint64_t reserve_waits = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t unmaps = 0;
    // Transport-recovery counters (exact-once invariant: rpc_ops_applied ==
    // rpcs at quiescence, whatever the fault plan injected).
    std::uint64_t rpc_ops_applied = 0;   // handler executions (dedup hits excluded)
    std::uint64_t rpc_retransmits = 0;   // timeout-driven re-sends by initiators
    std::uint64_t rpc_dup_requests = 0;  // requests discarded by the dedup window
    std::uint64_t rpc_dup_replies = 0;   // replies discarded as stale/duplicate
    std::uint64_t rpc_retry_storms = 0;  // CallWithRetry watchdog escalations
    // Packet-envelope pool exhaustion: the transport fell back to a by-value
    // copy (correct but unpooled).  Nonzero only under fault-plan storms.
    std::uint64_t rpc_pool_fallbacks = 0;
  };
  const Counters& counters() const { return counters_; }
  Counters& counters() { return counters_; }

  // --- metrics ------------------------------------------------------------------
  // Attaches an hmetrics registry.  While attached, every RPC drain records
  // its batch size into the "kernel.rpc_batch_depth" histogram, and
  // PublishCounters() snapshots the Counters struct into "kernel.*" counters.
  // The Counters struct stays the hot-path accumulator; the registry is a
  // view over it, exactly as OpStats relates to ChargeOpStats.
  void set_metrics(hmetrics::Registry* registry) {
    metrics_ = registry;
    rpc_batch_depth_ =
        registry != nullptr ? &registry->histogram("kernel.rpc_batch_depth") : nullptr;
  }
  hmetrics::Registry* metrics() { return metrics_; }
  hmetrics::LatencyHistogram* rpc_batch_depth_hist() { return rpc_batch_depth_; }

  // --- lock profiling -----------------------------------------------------------
  // Attaches an hprof site table: every cluster's page-table coarse lock gets
  // a site ("cluster<i>/page-table"), and each program created *afterwards*
  // gets one site per region-lock replica ("program<p>/cluster<i>/region").
  // Cluster size is the site's procs_per_cluster, so the handoff matrix
  // follows the configured clustering.  Call before CreateProgram; pass
  // nullptr to stop profiling future programs (attached sites stay attached).
  void AttachLockProfiler(hprof::SiteTable* sites);

  // --- flight recording ---------------------------------------------------------
  // Attaches a flight recorder: every CpuKernel::Call opens a per-request
  // record (rpc phase = send-to-reply, with the per-call retransmit count)
  // and the handler side opens a causally linked child record whose inbox
  // phase starts at the initiator's send instant.  Records are stamped
  // directly in p.now() ticks -- the simulator interleaves coroutines on one
  // host thread, so no thread-local ledger is involved.  Pass nullptr to
  // detach; the recorder must outlive the attached window.
  void AttachFlightRecorder(hflight::FlightRecorder* recorder) { flight_ = recorder; }
  hflight::FlightRecorder* flight() { return flight_; }

  // Publishes the current counter values into the attached registry.  Call
  // once at the end of a run: counters are cumulative, so publishing deltas
  // mid-run would double-count.
  void PublishCounters() {
    if (metrics_ == nullptr) {
      return;
    }
    metrics_->counter("kernel.faults").Add(counters_.faults);
    metrics_->counter("kernel.replications").Add(counters_.replications);
    metrics_->counter("kernel.rpcs").Add(counters_.rpcs);
    metrics_->counter("kernel.rpc_would_deadlock").Add(counters_.rpc_would_deadlock);
    metrics_->counter("kernel.redundant_rpcs").Add(counters_.redundant_rpcs);
    metrics_->counter("kernel.reserve_waits").Add(counters_.reserve_waits);
    metrics_->counter("kernel.invalidations").Add(counters_.invalidations);
    metrics_->counter("kernel.unmaps").Add(counters_.unmaps);
    metrics_->counter("kernel.rpc_ops_applied").Add(counters_.rpc_ops_applied);
    metrics_->counter("kernel.rpc_retransmits").Add(counters_.rpc_retransmits);
    metrics_->counter("kernel.rpc_dup_requests").Add(counters_.rpc_dup_requests);
    metrics_->counter("kernel.rpc_dup_replies").Add(counters_.rpc_dup_replies);
    metrics_->counter("kernel.rpc_retry_storms").Add(counters_.rpc_retry_storms);
    metrics_->counter("kernel.rpc_pool_fallbacks").Add(counters_.rpc_pool_fallbacks);
  }

 private:
  hsim::Task<void> HandleGetPage(hsim::Processor& p, RpcRequest& request);
  hsim::Task<void> HandleInvalidate(hsim::Processor& p, RpcRequest& request);
  hsim::Task<void> HandleGlobalUpdate(hsim::Processor& p, RpcRequest& request);

  // Computes for `cycles`, taking interrupt points periodically (interrupts
  // are enabled whenever no coarse lock is held).
  hsim::Task<void> ComputeInterruptible(hsim::Processor& p, hsim::Tick cycles);

  hsim::Machine* machine_;
  KernelConfig config_;
  // Declared before clusters_: every cluster's page table borrows it.
  std::unique_ptr<DescriptorArena> arena_;
  std::unique_ptr<halloc::SlabAllocator<RpcPacket>> packet_pool_;
  std::vector<std::unique_ptr<ClusterKernel>> clusters_;
  std::vector<std::unique_ptr<CpuKernel>> cpus_;
  std::vector<std::unique_ptr<Program>> programs_;
  AuxHandler aux_handler_;
  // Two private per-processor PTE words written during fault processing.
  std::vector<std::vector<hsim::SimWord*>> pte_words_;
  Counters counters_;
  hmetrics::Registry* metrics_ = nullptr;
  hmetrics::LatencyHistogram* rpc_batch_depth_ = nullptr;
  hprof::SiteTable* lock_profiler_ = nullptr;
  hflight::FlightRecorder* flight_ = nullptr;
};

// Creates a coarse-grained lock of the configured kind, homed on `module`.
std::unique_ptr<hsim::SimLock> MakeCoarseLock(hsim::Machine* machine, hsim::ModuleId module,
                                              hsim::LockKind kind);

// Formats the retry-storm watchdog's diagnostic.  A storm used to be reported
// as a bare counter bump naming only the op code; in a multi-machine mesh
// that left "which machine is starving us?" unanswerable from the log.  The
// message names the destination machine, cluster, and processor alongside the
// op and the consecutive-refusal count.  Free function so tests can pin the
// format without provoking a live storm.
std::string StormDiagnostic(std::uint32_t machine_id, hsim::ProcId src, hsim::ProcId target,
                            std::uint32_t target_cluster, RpcOp op, int consecutive);

}  // namespace hkernel

#endif  // HKERNEL_KERNEL_H_
