#include "src/hkernel/desc_arena.h"

#include "src/hsim/locks/reserve_bit.h"

namespace hkernel {

namespace {

halloc::SlabConfig MakeConfig(std::uint32_t objects_per_cluster,
                              std::uint32_t magazine_size) {
  halloc::SlabConfig cfg;
  cfg.objects_per_cluster = objects_per_cluster;
  cfg.magazine_size = magazine_size;
  cfg.depot_home = 0;  // depot stack tops and cursors live on module 0
  return cfg;
}

}  // namespace

DescriptorArena::DescriptorArena(hsim::Machine* machine, std::uint32_t cluster_size,
                                 std::uint32_t objects_per_cluster,
                                 std::uint32_t magazine_size,
                                 std::vector<std::vector<hsim::ModuleId>> cluster_modules)
    : backend_(machine, cluster_size),
      core_(&backend_, MakeConfig(objects_per_cluster, magazine_size)) {
  Backend::Check(cluster_modules.size() >= backend_.NumClusters(),
                 "DescriptorArena: cluster_modules must cover every cluster");
  const std::uint64_t capacity = core_.capacity();
  descriptors_.reserve(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    // Descriptor i backs ref i+1: home it at its ref's cluster so the object a
    // cluster-local Alloc hands back is itself cluster-local (a depot-steal
    // deliberately keeps the donor's homing -- the ref records the truth).
    const std::uint32_t cluster = core_.HomeClusterOf(i + 1);
    const std::vector<hsim::ModuleId>& modules = cluster_modules[cluster];
    const hsim::ModuleId home =
        modules[(i % objects_per_cluster) % modules.size()];
    PageDescriptor d;
    d.page = &machine->AllocWord(home, 0);
    d.next = &machine->AllocWord(home, kNilDesc);
    d.reserve = &machine->AllocWord(home, hsim::SimReserve::kFree);
    d.flags = &machine->AllocWord(home, 0);
    d.ref_count = &machine->AllocWord(home, 0);
    d.replicas = &machine->AllocWord(home, 0);
    d.payload.reserve(KernelConfig::kPayloadWords);
    for (std::uint32_t w = 0; w < KernelConfig::kPayloadWords; ++w) {
      d.payload.push_back(&machine->AllocWord(home, 0));
    }
    descriptors_.push_back(std::move(d));
  }
}

hsim::Task<DescRef> DescriptorArena::Alloc(hsim::Processor& p) {
  const std::uint64_t ref = co_await core_.Alloc(p);
  co_return static_cast<DescRef>(ref);
}

hsim::Task<void> DescriptorArena::Free(hsim::Processor& p, DescRef ref) {
  co_await core_.Free(p, ref);
}

}  // namespace hkernel
