// Inter-processor RPC with soft interrupt masking (Section 3.2).
//
// HURRICANE invokes cross-cluster operations by interrupting a processor in
// the target cluster (the i-th processor of the source cluster always calls
// the i-th processor of the target cluster, balancing the RPC load).  Because
// the kernel runs with interrupts enabled, a handler could interrupt code
// that holds the very lock the handler needs.  The paper's resolution
// (adapted from Stodolsky et al.) is a per-processor software interrupt gate:
// the flag is set before any lock that could deadlock with a handler is
// acquired, handlers run only when the flag is clear, and work arriving while
// the flag is set is deferred to a per-processor queue that is drained when
// the flag clears.
//
// In this simulator interrupts are polled: kernel code calls IrqPoint() at
// the same program points where HURRICANE's handlers could run (idle loops,
// reserve-bit spins, RPC reply waits).  The gate semantics are identical.
//
// While a processor waits for an RPC reply it keeps servicing incoming
// requests: the processor itself is a lockable resource (Section 2.3), and
// refusing to service requests while blocked is exactly the deadlock the
// paper describes between processors P1 and P2.

#ifndef HKERNEL_RPC_H_
#define HKERNEL_RPC_H_

#include <array>
#include <cstdint>
#include <deque>

#include "src/hkernel/config.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

enum class RpcOp : std::uint8_t {
  kNull,          // measurement only
  kGetPage,       // fetch a page descriptor's payload from its home cluster
  kInvalidate,    // remove a replica of a page descriptor
  kGlobalUpdate,  // apply a broadcast update to a replica's payload
  // Process management (see process.h).
  kProcAddChild,     // link arg (child pid) under page (parent pid)
  kProcUnlinkChild,  // unlink arg (child pid) from page (parent pid)
  kProcDeposit,      // deposit a message into page (target pid)'s mailbox
};

inline const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kNull:
      return "null";
    case RpcOp::kGetPage:
      return "get_page";
    case RpcOp::kInvalidate:
      return "invalidate";
    case RpcOp::kGlobalUpdate:
      return "global_update";
    case RpcOp::kProcAddChild:
      return "proc_add_child";
    case RpcOp::kProcUnlinkChild:
      return "proc_unlink_child";
    case RpcOp::kProcDeposit:
      return "proc_deposit";
  }
  return "?";
}

enum class RpcStatus : std::uint8_t {
  kPending,
  kOk,
  kWouldDeadlock,  // a reserve bit was held; caller must back off and retry
  kNotFound,       // the descriptor is gone; caller must re-establish state
};

struct RpcRequest {
  RpcOp op = RpcOp::kNull;
  std::uint64_t page = 0;
  std::uint64_t arg = 0;
  hsim::ProcId src_proc = 0;
  std::uint32_t src_cluster = 0;

  RpcStatus status = RpcStatus::kPending;
  std::array<std::uint64_t, KernelConfig::kPayloadWords> payload{};
  hsim::Tick reply_visible_at = 0;  // reply transit modelling
};

class KernelSystem;

// Per-processor kernel state: the RPC inbox, the soft interrupt gate, and the
// deferred-work queue.
class CpuKernel {
 public:
  CpuKernel(KernelSystem* system, hsim::ProcId id) : system_(system), id_(id) {}
  CpuKernel(const CpuKernel&) = delete;
  CpuKernel& operator=(const CpuKernel&) = delete;

  hsim::ProcId id() const { return id_; }

  // --- soft interrupt gate ---------------------------------------------------
  // Nested masking is allowed (lock sites nest).
  void Mask() { ++mask_depth_; }
  bool masked() const { return mask_depth_ > 0; }

  // Clears one level of masking.  The caller must follow with IrqPoint() (or
  // use KernelSystem's lock wrappers, which do) so deferred work is drained
  // promptly.
  void Unmask() { --mask_depth_; }

  // A real processor has one program counter: at most one context can be in
  // the coarse-lock acquire/hold/release path at a time (per-processor MCS
  // queue nodes depend on it).  The simulator interleaves co-located
  // coroutines at awaits, so KernelSystem's lock wrappers serialize on this
  // flag.
  bool lock_path_busy() const { return lock_path_busy_; }
  void set_lock_path_busy(bool busy) { lock_path_busy_ = busy; }

  // Delivery (called by the RPC transport at the interrupt instant).
  void Deliver(RpcRequest* request) { inbox_.push_back(request); }

  // Services pending requests if the gate is open.  If the gate is closed,
  // requests are shunted (with the handler-entry cost) onto the deferred
  // queue, mirroring the paper's mechanism.
  hsim::Task<void> IrqPoint(hsim::Processor& p);

  // Sends `request` to `target` and waits for the reply, servicing our own
  // incoming requests while waiting.  Must be called with the gate open and
  // no coarse locks held.
  hsim::Task<void> Call(hsim::Processor& p, hsim::ProcId target, RpcRequest* request);

  // --- statistics -------------------------------------------------------------
  std::uint64_t handled() const { return handled_; }
  std::uint64_t deferred_count() const { return deferred_total_; }
  bool in_handler() const { return in_handler_; }

 private:
  hsim::Task<void> RunHandlers(hsim::Processor& p, std::deque<RpcRequest*>* queue, int budget);

  KernelSystem* system_;
  hsim::ProcId id_;
  int mask_depth_ = 0;
  bool in_handler_ = false;
  bool lock_path_busy_ = false;
  std::deque<RpcRequest*> inbox_;
  std::deque<RpcRequest*> deferred_;
  std::uint64_t handled_ = 0;
  std::uint64_t deferred_total_ = 0;
};

}  // namespace hkernel

#endif  // HKERNEL_RPC_H_
