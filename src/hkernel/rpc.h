// Inter-processor RPC with soft interrupt masking (Section 3.2).
//
// HURRICANE invokes cross-cluster operations by interrupting a processor in
// the target cluster (the i-th processor of the source cluster always calls
// the i-th processor of the target cluster, balancing the RPC load).  Because
// the kernel runs with interrupts enabled, a handler could interrupt code
// that holds the very lock the handler needs.  The paper's resolution
// (adapted from Stodolsky et al.) is a per-processor software interrupt gate:
// the flag is set before any lock that could deadlock with a handler is
// acquired, handlers run only when the flag is clear, and work arriving while
// the flag is set is deferred to a per-processor queue that is drained when
// the flag clears.
//
// In this simulator interrupts are polled: kernel code calls IrqPoint() at
// the same program points where HURRICANE's handlers could run (idle loops,
// reserve-bit spins, RPC reply waits).  The gate semantics are identical.
//
// While a processor waits for an RPC reply it keeps servicing incoming
// requests: the processor itself is a lockable resource (Section 2.3), and
// refusing to service requests while blocked is exactly the deadlock the
// paper describes between processors P1 and P2.
//
// --- transport fault tolerance ---
//
// The transport may be adversarial (hsim::FaultPlan): requests and replies
// can be dropped, duplicated, or delayed.  The protocol provides exact-once
// application semantics on top of it:
//
//   - every Call carries a per-initiator sequence number; the wire carries
//     self-contained RpcPacket copies, never pointers into the caller's frame;
//   - the initiator runs a stop-and-wait timeout-and-retransmit loop (one
//     outstanding RPC per processor -- enforced with a loud abort);
//   - the target remembers, per source processor, the last completed sequence
//     number and its cached reply: a retransmit or duplicate of a completed
//     request is not re-applied, the cached reply is retransmitted instead;
//   - stale replies (for an already-completed or superseded sequence number)
//     are counted and discarded at the initiator.
//
// Stop-and-wait per initiator is what makes the one-deep dedup window sound:
// the target can never receive sequence number n+1 from a source before that
// source has observed the reply to n.

#ifndef HKERNEL_RPC_H_
#define HKERNEL_RPC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/hkernel/config.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

enum class RpcOp : std::uint8_t {
  kNull,          // measurement only
  kGetPage,       // fetch a page descriptor's payload from its home cluster
  kInvalidate,    // remove a replica of a page descriptor
  kGlobalUpdate,  // apply a broadcast update to a replica's payload
  // Process management (see process.h).
  kProcAddChild,     // link arg (child pid) under page (parent pid)
  kProcUnlinkChild,  // unlink arg (child pid) from page (parent pid)
  kProcDeposit,      // deposit a message into page (target pid)'s mailbox
};

inline const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kNull:
      return "null";
    case RpcOp::kGetPage:
      return "get_page";
    case RpcOp::kInvalidate:
      return "invalidate";
    case RpcOp::kGlobalUpdate:
      return "global_update";
    case RpcOp::kProcAddChild:
      return "proc_add_child";
    case RpcOp::kProcUnlinkChild:
      return "proc_unlink_child";
    case RpcOp::kProcDeposit:
      return "proc_deposit";
  }
  return "?";
}

enum class RpcStatus : std::uint8_t {
  kPending,
  kOk,
  kWouldDeadlock,  // a reserve bit was held; caller must back off and retry
  kNotFound,       // the descriptor is gone; caller must re-establish state
};

// The handler-facing view of one RPC invocation.  Lives in the initiator's
// frame on the caller side and on the handler's stack on the target side; it
// never crosses the transport (RpcPacket does).
struct RpcRequest {
  RpcOp op = RpcOp::kNull;
  std::uint64_t page = 0;
  std::uint64_t arg = 0;
  hsim::ProcId src_proc = 0;
  std::uint32_t src_cluster = 0;

  RpcStatus status = RpcStatus::kPending;
  std::array<std::uint64_t, KernelConfig::kPayloadWords> payload{};
};

// The wire format: a self-contained copy of a request or reply.  The
// transport owns packets in transit; duplication is a plain copy, and a
// packet arriving after its call completed is simply discarded, so no
// lifetime ties the wire to the initiator's frame.
struct RpcPacket {
  bool is_reply = false;
  std::uint64_t seq = 0;  // per-initiator, monotonically increasing from 1
  RpcOp op = RpcOp::kNull;
  std::uint64_t page = 0;
  std::uint64_t arg = 0;
  hsim::ProcId src_proc = 0;      // the initiator (replies travel back to it)
  std::uint32_t src_cluster = 0;
  RpcStatus status = RpcStatus::kPending;
  // Flight-recorder causal link (0 = untracked): the initiator's record id
  // and the send instant travel with the request so the handler side can open
  // a child record whose inbox phase starts at the wire, not at delivery.
  std::uint64_t flight_id = 0;
  std::uint64_t flight_send = 0;
  std::array<std::uint64_t, KernelConfig::kPayloadWords> payload{};
};

class KernelSystem;

// Per-processor kernel state: the RPC inbox, the soft interrupt gate, the
// deferred-work queue, and the transport-recovery state (sequence numbers,
// per-source dedup, the pending-call slot).
class CpuKernel {
 public:
  CpuKernel(KernelSystem* system, hsim::ProcId id) : system_(system), id_(id) {}
  CpuKernel(const CpuKernel&) = delete;
  CpuKernel& operator=(const CpuKernel&) = delete;

  hsim::ProcId id() const { return id_; }

  // --- soft interrupt gate ---------------------------------------------------
  // Nested masking is allowed (lock sites nest).
  void Mask() { ++mask_depth_; }
  bool masked() const { return mask_depth_ > 0; }

  // Clears one level of masking.  The caller must follow with IrqPoint() (or
  // use KernelSystem's lock wrappers, which do) so deferred work is drained
  // promptly.  An unbalanced Unmask would leave the gate permanently ajar --
  // a later Mask() inside a critical section would "close" it to depth 0 and
  // let a handler interrupt a lock holder -- so it aborts loudly instead
  // (same convention as hlock's thread-id exhaustion).
  void Unmask();

  // A real processor has one program counter: at most one context can be in
  // the coarse-lock acquire/hold/release path at a time (per-processor MCS
  // queue nodes depend on it).  The simulator interleaves co-located
  // coroutines at awaits, so KernelSystem's lock wrappers serialize on this
  // flag.
  bool lock_path_busy() const { return lock_path_busy_; }
  void set_lock_path_busy(bool busy) { lock_path_busy_ = busy; }

  // Delivery (called by the RPC transport at the interrupt instant).
  void Deliver(const RpcPacket& packet) { inbox_.push_back(packet); }

  // Reply delivery at the initiator: matches the pending call's sequence
  // number; stale or duplicate replies are counted and discarded.
  void DeliverReply(const RpcPacket& packet);

  // Services pending requests if the gate is open.  If the gate is closed,
  // requests are shunted (with the handler-entry cost) onto the deferred
  // queue, mirroring the paper's mechanism.
  hsim::Task<void> IrqPoint(hsim::Processor& p);

  // Sends `request` to `target` and waits for the reply, servicing our own
  // incoming requests while waiting and retransmitting on timeout.  Must be
  // called with the gate open and no coarse locks held.  Stop-and-wait: a
  // processor has at most one outstanding call (enforced).
  hsim::Task<void> Call(hsim::Processor& p, hsim::ProcId target, RpcRequest* request);

  // --- statistics -------------------------------------------------------------
  std::uint64_t handled() const { return handled_; }
  std::uint64_t deferred_count() const { return deferred_total_; }
  bool in_handler() const { return in_handler_; }
  // Undrained inbox + deferred depth; at engine idle these are necessarily
  // tail duplicates/retransmits of already-completed calls (an initiator
  // never abandons an incomplete call).
  std::size_t backlog() const { return inbox_.size() + deferred_.size(); }

 private:
  // Per-source dedup window.  Sound because initiators are stop-and-wait.
  struct PeerState {
    std::uint64_t last_completed = 0;  // highest seq applied for this source
    std::uint64_t in_progress = 0;     // seq currently inside a handler (0 = none)
    bool has_reply = false;
    RpcPacket cached_reply;            // reply to last_completed, for retransmits
  };

  struct PendingCall {
    std::uint64_t seq = 0;
    RpcRequest* request = nullptr;
    bool done = false;
  };

  hsim::Task<void> RunHandlers(hsim::Processor& p, std::deque<RpcPacket>* queue, int budget);

  // Hands a packet to the transport: consults the machine's fault plan and
  // spawns the (possibly dropped/duplicated/delayed) delivery task(s).
  void SendPacket(hsim::Processor& p, hsim::ProcId target, const RpcPacket& packet);

  PeerState& peer(hsim::ProcId src) {
    if (peers_.size() <= src) {
      peers_.resize(src + 1);
    }
    return peers_[src];
  }

  KernelSystem* system_;
  hsim::ProcId id_;
  int mask_depth_ = 0;
  bool in_handler_ = false;
  bool lock_path_busy_ = false;
  std::deque<RpcPacket> inbox_;
  std::deque<RpcPacket> deferred_;
  std::uint64_t handled_ = 0;
  std::uint64_t deferred_total_ = 0;
  std::uint64_t next_seq_ = 0;
  PendingCall pending_;
  bool call_active_ = false;
  std::vector<PeerState> peers_;
};

}  // namespace hkernel

#endif  // HKERNEL_RPC_H_
