// Latency recording (alias of the hsim recorder).

#ifndef HKERNEL_STATS_H_
#define HKERNEL_STATS_H_

#include "src/hsim/stats.h"

namespace hkernel {

using LatencyRecorder = hsim::LatencyRecorder;

}  // namespace hkernel

#endif  // HKERNEL_STATS_H_
