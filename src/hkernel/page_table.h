// Per-cluster page descriptors and the chained hash table that holds them
// (Figure 1 / Figure 2 of the paper).
//
// Every cluster instantiates its own table, protected by one coarse-grained
// lock (owned by ClusterKernel, not by the table).  Descriptors come from the
// machine-wide DescriptorArena (src/hkernel/desc_arena.h): a halloc slab
// allocator whose refs are partitioned per cluster, so allocation is
// cluster-local on the fast path yet one cluster can borrow from the shared
// depot when its own range runs dry.  The arena is type-stable: memory used
// for a page descriptor is only ever reused for another page descriptor,
// which is what makes spinning on a freed descriptor's reserve word safe
// (paper footnote 2).
//
// All table operations must be called with the cluster's coarse lock held.
// They walk real simulated memory, so the time the coarse lock is held -- and
// the memory traffic the walk generates -- is an emergent property.

#ifndef HKERNEL_PAGE_TABLE_H_
#define HKERNEL_PAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hkernel/config.h"
#include "src/hkernel/desc_arena.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

inline constexpr std::uint64_t kFlagPresent = 1;  // payload is valid
inline constexpr std::uint64_t kFlagHome = 2;     // this cluster is the page's home

class PageHashTable {
 public:
  // Standalone table with a private single-cluster arena: `modules` are the
  // memory modules of the owning cluster; bins and descriptors are spread
  // round-robin across them.  Used by tests and single-cluster setups.
  PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                std::uint32_t num_bins, std::uint32_t capacity);

  // Table over a shared machine-wide arena (KernelSystem builds one arena and
  // every cluster's table draws from it).  The table owns only its bins.
  PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                std::uint32_t num_bins, DescriptorArena* arena);

  PageHashTable(const PageHashTable&) = delete;
  PageHashTable& operator=(const PageHashTable&) = delete;

  // Searches the hash chain for `page`.  Returns kNilDesc if absent.
  hsim::Task<DescRef> Lookup(hsim::Processor& p, std::uint64_t page);

  // Allocates a descriptor for `page` from the arena (near `p`'s cluster) and
  // links it at the head of its chain.  `page` must not already be present.
  // Returns kNilDesc if the arena is exhausted.
  hsim::Task<DescRef> Insert(hsim::Processor& p, std::uint64_t page);

  // Unlinks and frees the descriptor for `page`.  Returns false if absent.
  hsim::Task<bool> Remove(hsim::Processor& p, std::uint64_t page);

  PageDescriptor& desc(DescRef ref) { return arena_->desc(ref); }
  const PageDescriptor& desc(DescRef ref) const { return arena_->desc(ref); }

  // Descriptors available to this table's cluster before it has to lean on
  // the depot (the old per-table pool size).
  std::uint32_t capacity() const { return arena_->objects_per_cluster(); }
  std::uint32_t live() const { return live_; }

  DescriptorArena& arena() { return *arena_; }

 private:
  std::uint32_t BinOf(std::uint64_t page) const {
    // Multiplicative hash; bins are a power of two in practice but this does
    // not rely on it.
    return static_cast<std::uint32_t>((page * 0x9E3779B97F4A7C15ULL) >> 32) %
           static_cast<std::uint32_t>(bins_.size());
  }

  std::vector<hsim::SimWord*> bins_;  // each holds a DescRef
  std::unique_ptr<DescriptorArena> owned_arena_;  // standalone ctor only
  DescriptorArena* arena_;
  std::uint32_t live_ = 0;
};

}  // namespace hkernel

#endif  // HKERNEL_PAGE_TABLE_H_
