// Per-cluster page descriptors and the chained hash table that holds them
// (Figure 1 / Figure 2 of the paper).
//
// Every cluster instantiates its own table, protected by one coarse-grained
// lock (owned by ClusterKernel, not by the table).  Descriptors are allocated
// from a per-cluster, type-stable pool: memory used for a page descriptor is
// only ever reused for another page descriptor, which is what makes spinning
// on a freed descriptor's reserve word safe (paper footnote 2).
//
// All table operations must be called with the cluster's coarse lock held.
// They walk real simulated memory, so the time the coarse lock is held -- and
// the memory traffic the walk generates -- is an emergent property.

#ifndef HKERNEL_PAGE_TABLE_H_
#define HKERNEL_PAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/hkernel/config.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

// Index of a descriptor within a cluster pool, offset by one; 0 means nil.
using DescRef = std::uint32_t;
inline constexpr DescRef kNilDesc = 0;

struct PageDescriptor {
  hsim::SimWord* page;       // page identifier this descriptor describes
  hsim::SimWord* next;       // hash chain link (DescRef)
  hsim::SimWord* reserve;    // reserve word (see hsim::SimReserve)
  hsim::SimWord* flags;      // kFlagPresent | kFlagHome
  hsim::SimWord* ref_count;  // per-cluster mapping reference count
  hsim::SimWord* replicas;   // home only: bitmask of clusters holding replicas
  std::vector<hsim::SimWord*> payload;  // data copied on replication
};

inline constexpr std::uint64_t kFlagPresent = 1;  // payload is valid
inline constexpr std::uint64_t kFlagHome = 2;     // this cluster is the page's home

class PageHashTable {
 public:
  // `modules` are the memory modules of the owning cluster; bins and
  // descriptors are spread round-robin across them.
  PageHashTable(hsim::Machine* machine, std::vector<hsim::ModuleId> modules,
                std::uint32_t num_bins, std::uint32_t capacity);

  PageHashTable(const PageHashTable&) = delete;
  PageHashTable& operator=(const PageHashTable&) = delete;

  // Searches the hash chain for `page`.  Returns kNilDesc if absent.
  hsim::Task<DescRef> Lookup(hsim::Processor& p, std::uint64_t page);

  // Allocates a descriptor for `page` and links it at the head of its chain.
  // `page` must not already be present.  Returns kNilDesc if the pool is
  // exhausted.
  hsim::Task<DescRef> Insert(hsim::Processor& p, std::uint64_t page);

  // Unlinks and frees the descriptor for `page`.  Returns false if absent.
  hsim::Task<bool> Remove(hsim::Processor& p, std::uint64_t page);

  PageDescriptor& desc(DescRef ref) { return descriptors_[ref - 1]; }
  const PageDescriptor& desc(DescRef ref) const { return descriptors_[ref - 1]; }

  std::uint32_t capacity() const { return static_cast<std::uint32_t>(descriptors_.size()); }
  std::uint32_t live() const { return live_; }

 private:
  std::uint32_t BinOf(std::uint64_t page) const {
    // Multiplicative hash; bins are a power of two in practice but this does
    // not rely on it.
    return static_cast<std::uint32_t>((page * 0x9E3779B97F4A7C15ULL) >> 32) %
           static_cast<std::uint32_t>(bins_.size());
  }

  std::vector<hsim::SimWord*> bins_;  // each holds a DescRef
  std::vector<PageDescriptor> descriptors_;
  std::vector<DescRef> free_list_;
  std::uint32_t live_ = 0;
};

}  // namespace hkernel

#endif  // HKERNEL_PAGE_TABLE_H_
