#include "src/hkernel/rpc.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/hflight/flight.h"
#include "src/hkernel/kernel.h"
#include "src/hmetrics/trace.h"
#include "src/hsim/engine.h"
#include "src/hsim/fault.h"

namespace hkernel {

namespace {

// Terminal fate of a flight record for an RPC leg.  kWouldDeadlock is the
// optimistic protocol's back-off signal -- the caller retries, so the leg
// itself ended in rejection, not error.
hflight::Fate FateOf(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk:
      return hflight::Fate::kOk;
    case RpcStatus::kNotFound:
      return hflight::Fate::kNotFound;
    case RpcStatus::kWouldDeadlock:
      return hflight::Fate::kRejected;
    case RpcStatus::kPending:
      break;
  }
  return hflight::Fate::kError;
}

// Transports a packet to the target processor after the interrupt-delivery
// latency.  Runs as a detached engine task; the packet travels by value, so
// duplicates and late copies have no lifetime tie to the initiator's frame.
// Fallback path only: the pooled variant below is the normal wire.
hsim::Task<void> DeliverAfter(hsim::Engine* engine, hsim::Tick transit, CpuKernel* target,
                              RpcPacket packet) {
  co_await engine->Delay(transit);
  if (packet.is_reply) {
    target->DeliverReply(packet);
  } else {
    target->Deliver(packet);
  }
}

// Pooled wire buffer: the envelope was allocated from the packet pool at the
// sender's cluster and is returned to it at the receiver's, so every
// cross-cluster packet contributes alloc/free drift to the slab depot exactly
// as a real wire buffer would migrate between per-node caches.
hsim::Task<void> DeliverAfterPooled(hsim::Engine* engine, hsim::Tick transit, CpuKernel* target,
                                    halloc::SlabAllocator<RpcPacket>* pool,
                                    hsim::ProcId target_proc, RpcPacket* env) {
  co_await engine->Delay(transit);
  if (env->is_reply) {
    target->DeliverReply(*env);
  } else {
    target->Deliver(*env);
  }
  pool->FreeFor(target_proc, env);
}

}  // namespace

void CpuKernel::Unmask() {
  if (mask_depth_ <= 0) {
    std::fprintf(stderr,
                 "hkernel: unbalanced CpuKernel::Unmask on processor %u (mask depth %d); the "
                 "soft interrupt gate would stay open inside the next critical section\n",
                 id_, mask_depth_);
    std::abort();
  }
  --mask_depth_;
}

void CpuKernel::SendPacket(hsim::Processor& p, hsim::ProcId target, const RpcPacket& packet) {
  const KernelConfig& cfg = system_->config();
  hsim::Machine& machine = system_->machine();
  hsim::Engine& engine = machine.engine();
  CpuKernel& dest = system_->cpu(target);
  halloc::SlabAllocator<RpcPacket>& pool = system_->packet_pool();

  // Launches one delivery: envelope from the pool (allocated at this
  // processor's cluster, freed at the target's) or, if the pool is dry under
  // a fault storm, the by-value fallback.
  const auto launch = [&](hsim::Tick transit) {
    RpcPacket* env = pool.AllocFor(p.id());
    if (env != nullptr) {
      *env = packet;
      engine.Spawn(DeliverAfterPooled(&engine, transit, &dest, &pool, target, env));
    } else {
      ++system_->counters().rpc_pool_fallbacks;
      engine.Spawn(DeliverAfter(&engine, transit, &dest, packet));
    }
  };

  hsim::FaultPlan* plan = machine.fault_plan();
  if (plan == nullptr) {
    launch(cfg.rpc_transit);
    return;
  }
  const hsim::FaultLeg leg = packet.is_reply ? hsim::FaultLeg::kReply : hsim::FaultLeg::kRequest;
  const hsim::FaultPlan::Decision decision =
      plan->Decide(leg, p.id(), target, static_cast<std::uint8_t>(packet.op), p.now());
  if (machine.trace_enabled(hmetrics::kTraceRpc) && (decision.drop || decision.duplicate)) {
    machine.trace()->Instant(hmetrics::kTraceRpc,
                             decision.drop ? "rpc/fault_drop" : "rpc/fault_dup", p.id(),
                             p.now());
  }
  if (decision.drop) {
    return;
  }
  launch(cfg.rpc_transit + decision.extra_delay);
  if (decision.duplicate) {
    // A duplicate is its own wire buffer: two envelopes in flight.
    launch(cfg.rpc_transit + decision.dup_extra_delay);
  }
}

void CpuKernel::DeliverReply(const RpcPacket& packet) {
  if (!call_active_ || pending_.done || packet.seq != pending_.seq) {
    // A duplicate of a reply we already consumed, or a reply delayed past its
    // retransmit-satisfied call.  Exact-once: discard, count.
    ++system_->counters().rpc_dup_replies;
    return;
  }
  pending_.request->status = packet.status;
  pending_.request->payload = packet.payload;
  pending_.done = true;
}

hsim::Task<void> CpuKernel::RunHandlers(hsim::Processor& p, std::deque<RpcPacket>* queue,
                                        int budget) {
  const KernelConfig& cfg = system_->config();
  hsim::Machine& machine = system_->machine();
  std::uint64_t batch = 0;
  while (!queue->empty() && budget-- > 0) {
    RpcPacket packet = queue->front();
    queue->pop_front();
    ++batch;

    // Dedup: a retransmit of the in-flight request, or of anything already
    // completed, must not re-run the handler (exact-once).  For the last
    // completed request the cached reply is retransmitted -- the initiator is
    // still waiting iff the original reply was lost.
    PeerState& src = peer(packet.src_proc);
    if (packet.seq == src.in_progress || packet.seq <= src.last_completed) {
      ++system_->counters().rpc_dup_requests;
      co_await p.Compute(cfg.rpc_dispatch / 2);
      if (packet.seq == src.last_completed && src.has_reply) {
        co_await p.Compute(cfg.rpc_reply);
        SendPacket(p, packet.src_proc, src.cached_reply);
      }
      continue;
    }

    ++handled_;
    src.in_progress = packet.seq;
    in_handler_ = true;
    hmetrics::TraceSession* tr =
        machine.trace_enabled(hmetrics::kTraceRpc) ? machine.trace() : nullptr;
    hmetrics::TraceSession::SpanId span = 0;
    if (tr != nullptr) {
      span = tr->BeginSpan(hmetrics::kTraceRpc, "rpc/handle", p.id(), p.now());
      tr->AddArg(span, "op", RpcOpName(packet.op));
    }
    // Causally linked child record: its clock starts at the initiator's send
    // instant, so the inbox phase is the full wire + delivery-queue delay.
    // Only the first execution opens one -- dedup hits above never get here.
    hflight::FlightRecorder* flight = system_->flight();
    hflight::FlightRecord* frec = nullptr;
    if (flight != nullptr && packet.flight_id != 0) {
      frec = flight->Open(system_->cluster_of_proc(id_),
                          std::min<std::uint64_t>(packet.flight_send, p.now()),
                          packet.flight_id);
      frec->enqueue = frec->begin;
      frec->start = p.now();
      frec->exec = p.now();
    }
    RpcRequest request;
    request.op = packet.op;
    request.page = packet.page;
    request.arg = packet.arg;
    request.src_proc = packet.src_proc;
    request.src_cluster = packet.src_cluster;
    co_await p.Compute(cfg.rpc_dispatch);
    co_await system_->HandleRpc(p, request);
    co_await p.Compute(cfg.rpc_reply);
    in_handler_ = false;
    assert(request.status != RpcStatus::kPending);
    ++system_->counters().rpc_ops_applied;
    src.in_progress = 0;
    src.last_completed = packet.seq;
    src.cached_reply = RpcPacket{};
    src.cached_reply.is_reply = true;
    src.cached_reply.seq = packet.seq;
    src.cached_reply.op = packet.op;
    src.cached_reply.status = request.status;
    src.cached_reply.payload = request.payload;
    src.has_reply = true;
    if (frec != nullptr) {
      frec->done = p.now();
      flight->Close(frec, FateOf(request.status), p.now());
    }
    if (tr != nullptr) {
      tr->EndSpan(span, p.now());
    }
    // The reply travels back to the initiator through the (possibly faulty)
    // transport; if it is lost, the initiator's retransmit will hit the dedup
    // path above and resend the cached copy.
    SendPacket(p, packet.src_proc, src.cached_reply);
  }
  if (batch > 0 && system_->rpc_batch_depth_hist() != nullptr) {
    system_->rpc_batch_depth_hist()->Record(batch);
  }
}

hsim::Task<void> CpuKernel::IrqPoint(hsim::Processor& p) {
  if (in_handler_) {
    // Handlers are not re-entered; nested work waits for the outer handler.
    co_return;
  }
  if (masked()) {
    // The gate is closed: take the interrupts but defer the work, exactly as
    // the paper's per-processor work queue does.  The handler-entry cost is
    // paid now; the work itself runs when the gate opens.  The request is
    // popped *before* the await: co-located interrupt points interleave at
    // awaits, and two of them must never defer the same request.
    while (!inbox_.empty()) {
      RpcPacket packet = inbox_.front();
      inbox_.pop_front();
      co_await p.Compute(system_->config().rpc_dispatch / 2);
      deferred_.push_back(packet);
      ++deferred_total_;
    }
    co_return;
  }
  // Bound the work done per interrupt point: servicing at most a couple of
  // requests before returning control lets the interrupted kernel path make
  // progress even under a retry storm (otherwise a reserve-bit holder can be
  // livelocked into never clearing the bit the retries are waiting for).
  int budget = system_->config().irq_batch;
  if (!deferred_.empty()) {
    co_await RunHandlers(p, &deferred_, budget);
    budget = 0;
  }
  if (budget > 0 && !inbox_.empty()) {
    co_await RunHandlers(p, &inbox_, budget);
  }
}

hsim::Task<void> CpuKernel::Call(hsim::Processor& p, hsim::ProcId target, RpcRequest* request) {
  assert(!masked() && "RPCs must not be issued while holding coarse locks");
  assert(target != id_ && "RPC to self would deadlock");
  if (call_active_) {
    // The one-deep dedup window at the target depends on stop-and-wait; a
    // second in-flight call from this processor would break exact-once.
    std::fprintf(stderr,
                 "hkernel: overlapping CpuKernel::Call on processor %u (seq %llu still "
                 "pending); the RPC protocol is stop-and-wait per processor\n",
                 id_, static_cast<unsigned long long>(pending_.seq));
    std::abort();
  }
  const KernelConfig& cfg = system_->config();
  request->status = RpcStatus::kPending;
  request->src_proc = id_;
  request->src_cluster = system_->cluster_of_proc(id_);
  ++system_->counters().rpcs;

  RpcPacket packet;
  packet.seq = ++next_seq_;
  packet.op = request->op;
  packet.page = request->page;
  packet.arg = request->arg;
  packet.src_proc = id_;
  packet.src_cluster = request->src_cluster;
  // Caller-side flight record: the whole Call is one rpc-phase leg (the
  // pre-send stamps collapse to begin, so Finalize attributes the full span
  // to rpc).  The id and send instant travel on the wire for the child link.
  hflight::FlightRecorder* flight = system_->flight();
  hflight::FlightRecord* frec = nullptr;
  std::uint64_t call_retransmits = 0;
  if (flight != nullptr) {
    frec = flight->Open(request->src_cluster, p.now());
    frec->enqueue = frec->begin;
    frec->start = frec->begin;
    frec->exec = frec->begin;
    packet.flight_id = frec->id;
    packet.flight_send = p.now();
  }
  call_active_ = true;
  pending_.seq = packet.seq;
  pending_.request = request;
  pending_.done = false;

  hsim::Machine& machine = system_->machine();
  hmetrics::TraceSession* tr =
      machine.trace_enabled(hmetrics::kTraceRpc) ? machine.trace() : nullptr;
  hmetrics::TraceSession::SpanId span = 0;
  if (tr != nullptr) {
    span = tr->BeginSpan(hmetrics::kTraceRpc, "rpc/call", p.id(), p.now());
    tr->AddArg(span, "op", RpcOpName(request->op));
    tr->AddArg(span, "target", std::to_string(target));
  }

  co_await p.Compute(cfg.rpc_send);
  SendPacket(p, target, packet);

  // Wait for the reply.  The processor itself is a schedulable resource: keep
  // servicing our own incoming requests, otherwise two processors calling
  // each other deadlock (Section 2.3).  A lost request or reply surfaces as a
  // timeout; the retransmit reuses the sequence number, so the target either
  // re-delivers its cached reply or is still working on the original.
  hsim::Tick timeout = cfg.rpc_timeout;
  hsim::Tick deadline = p.now() + timeout;
  while (!pending_.done) {
    co_await IrqPoint(p);
    co_await p.Compute(cfg.rpc_poll);
    if (!pending_.done && p.now() >= deadline) {
      ++system_->counters().rpc_retransmits;
      ++call_retransmits;
      if (tr != nullptr) {
        hmetrics::TraceSession::SpanId rspan =
            tr->BeginSpan(hmetrics::kTraceRpc, "rpc/retransmit", p.id(), p.now());
        tr->AddArg(rspan, "op", RpcOpName(request->op));
        tr->AddArg(rspan, "seq", std::to_string(packet.seq));
        tr->EndSpan(rspan, p.now() + cfg.rpc_send);
      }
      co_await p.Compute(cfg.rpc_send);
      SendPacket(p, target, packet);
      // Exponential backoff with jitter: synchronized losers must not
      // retransmit in lockstep into the same congested target.
      timeout = std::min<hsim::Tick>(timeout * 2, cfg.rpc_timeout_cap);
      deadline = p.now() + timeout / 2 + p.rng().NextBelow(timeout / 2 + 1);
    }
  }
  call_active_ = false;
  co_await p.Compute(cfg.rpc_recv);
  assert(request->status != RpcStatus::kPending);
  if (frec != nullptr) {
    frec->AddRpc(p.now() - frec->begin, call_retransmits);
    frec->done = p.now();
    flight->Close(frec, FateOf(request->status), p.now());
  }
  if (tr != nullptr) {
    tr->EndSpan(span, p.now());
  }
}

}  // namespace hkernel
