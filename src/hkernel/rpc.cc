#include "src/hkernel/rpc.h"

#include <cassert>

#include "src/hkernel/kernel.h"
#include "src/hmetrics/trace.h"
#include "src/hsim/engine.h"

namespace hkernel {

namespace {

// Transports a request to the target processor after the interrupt-delivery
// latency.  Runs as a detached engine task.
hsim::Task<void> DeliverAfter(hsim::Engine* engine, hsim::Tick transit, CpuKernel* target,
                              RpcRequest* request) {
  co_await engine->Delay(transit);
  target->Deliver(request);
}

}  // namespace

hsim::Task<void> CpuKernel::RunHandlers(hsim::Processor& p, std::deque<RpcRequest*>* queue,
                                        int budget) {
  const KernelConfig& cfg = system_->config();
  hsim::Machine& machine = system_->machine();
  std::uint64_t batch = 0;
  while (!queue->empty() && budget-- > 0) {
    RpcRequest* request = queue->front();
    queue->pop_front();
    ++handled_;
    ++batch;
    in_handler_ = true;
    hmetrics::TraceSession* tr =
        machine.trace_enabled(hmetrics::kTraceRpc) ? machine.trace() : nullptr;
    hmetrics::TraceSession::SpanId span = 0;
    if (tr != nullptr) {
      span = tr->BeginSpan(hmetrics::kTraceRpc, "rpc/handle", p.id(), p.now());
      tr->AddArg(span, "op", RpcOpName(request->op));
    }
    co_await p.Compute(cfg.rpc_dispatch);
    co_await system_->HandleRpc(p, *request);
    co_await p.Compute(cfg.rpc_reply);
    in_handler_ = false;
    assert(request->status != RpcStatus::kPending);
    if (tr != nullptr) {
      tr->EndSpan(span, p.now());
    }
    // The reply travels back to the initiator.  This store is the completion
    // signal the initiator polls on, and it MUST be the last touch of the
    // request: the moment the initiator observes it, the request (which
    // lives in the initiator's frame) may cease to exist.
    request->reply_visible_at = p.now() + cfg.rpc_transit;
  }
  if (batch > 0 && system_->rpc_batch_depth_hist() != nullptr) {
    system_->rpc_batch_depth_hist()->Record(batch);
  }
}

hsim::Task<void> CpuKernel::IrqPoint(hsim::Processor& p) {
  if (in_handler_) {
    // Handlers are not re-entered; nested work waits for the outer handler.
    co_return;
  }
  if (masked()) {
    // The gate is closed: take the interrupts but defer the work, exactly as
    // the paper's per-processor work queue does.  The handler-entry cost is
    // paid now; the work itself runs when the gate opens.  The request is
    // popped *before* the await: co-located interrupt points interleave at
    // awaits, and two of them must never defer the same request.
    while (!inbox_.empty()) {
      RpcRequest* request = inbox_.front();
      inbox_.pop_front();
      co_await p.Compute(system_->config().rpc_dispatch / 2);
      deferred_.push_back(request);
      ++deferred_total_;
    }
    co_return;
  }
  // Bound the work done per interrupt point: servicing at most a couple of
  // requests before returning control lets the interrupted kernel path make
  // progress even under a retry storm (otherwise a reserve-bit holder can be
  // livelocked into never clearing the bit the retries are waiting for).
  int budget = system_->config().irq_batch;
  if (!deferred_.empty()) {
    co_await RunHandlers(p, &deferred_, budget);
    budget = 0;
  }
  if (budget > 0 && !inbox_.empty()) {
    co_await RunHandlers(p, &inbox_, budget);
  }
}

hsim::Task<void> CpuKernel::Call(hsim::Processor& p, hsim::ProcId target, RpcRequest* request) {
  assert(!masked() && "RPCs must not be issued while holding coarse locks");
  assert(target != id_ && "RPC to self would deadlock");
  const KernelConfig& cfg = system_->config();
  request->status = RpcStatus::kPending;
  request->reply_visible_at = 0;
  request->src_proc = id_;
  request->src_cluster = system_->cluster_of_proc(id_);

  hsim::Machine& machine = system_->machine();
  hmetrics::TraceSession* tr =
      machine.trace_enabled(hmetrics::kTraceRpc) ? machine.trace() : nullptr;
  hmetrics::TraceSession::SpanId span = 0;
  if (tr != nullptr) {
    span = tr->BeginSpan(hmetrics::kTraceRpc, "rpc/call", p.id(), p.now());
    tr->AddArg(span, "op", RpcOpName(request->op));
    tr->AddArg(span, "target", std::to_string(target));
  }

  co_await p.Compute(cfg.rpc_send);
  p.engine().Spawn(
      DeliverAfter(&p.engine(), cfg.rpc_transit, &system_->cpu(target), request));

  // Wait for the reply.  The processor itself is a schedulable resource: keep
  // servicing our own incoming requests, otherwise two processors calling
  // each other deadlock (Section 2.3).  reply_visible_at is the completion
  // signal; the handler writes it last.
  while (request->reply_visible_at == 0 || p.now() < request->reply_visible_at) {
    co_await IrqPoint(p);
    co_await p.Compute(cfg.rpc_poll);
  }
  co_await p.Compute(cfg.rpc_recv);
  assert(request->status != RpcStatus::kPending);
  if (tr != nullptr) {
    tr->EndSpan(span, p.now());
  }
}

}  // namespace hkernel
