// The synthetic stress tests of Section 4.2 and the calibration runs.
//
// Independent faults (Figure 6a / 7a / 7c): p processes repeatedly fault on a
// per-process private region of local memory.  The only lock contention is
// from unnecessary locking conflicts in the kernel.
//
// Shared faults (Figure 6b / 7b / 7d): p processes repeatedly (1) write to
// the same small number of shared pages, (2) barrier, (3) unmap the pages.
// Lock contention is implicit in the application demands.

#ifndef HKERNEL_WORKLOADS_H_
#define HKERNEL_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/hkernel/kernel.h"
#include "src/hmetrics/registry.h"
#include "src/hmetrics/trace.h"
#include "src/hsim/fault.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/stats.h"
#include "src/hsim/types.h"

namespace hkernel {

// A sense-reversing barrier over simulated processors.  Waiting processors
// keep their interrupt gate open and service RPCs (they must: the unmap
// broadcast arrives while everyone else sits in the barrier).
class SimBarrier {
 public:
  SimBarrier(KernelSystem* system, std::uint32_t parties)
      : system_(system), parties_(parties) {}

  hsim::Task<void> Wait(hsim::Processor& p);

 private:
  KernelSystem* system_;
  std::uint32_t parties_;
  std::uint32_t count_ = 0;
  std::uint64_t generation_ = 0;
};

struct FaultTestResult {
  hsim::LatencyRecorder latency;        // per-fault end-to-end latency
  hsim::LatencyRecorder lock_overhead;  // per-fault cycles inside locking primitives
  KernelSystem::Counters counters;
  // Independent test only: faults completed inside the measurement window and
  // the Little's-law response time W = p * window / completions, which unlike
  // the sample mean cannot be biased by an unfair lock starving some
  // processors out of the sample.
  std::uint64_t window_ops = 0;
  std::uint32_t active_procs = 0;
  hsim::Tick window = 0;
  double little_response_us() const {
    if (window_ops == 0) {
      return 0.0;
    }
    return static_cast<double>(active_procs) * hsim::TicksToUs(window) /
           static_cast<double>(window_ops);
  }
  hsim::Tick bus_wait = 0;   // aggregate queueing at station buses
  hsim::Tick mem_wait = 0;   // aggregate queueing at memory modules
  hsim::Tick ring_wait = 0;  // aggregate queueing at the ring
  // What the fault plan actually injected (all zero on a perfect transport),
  // plus any tail packets still undelivered at engine idle -- necessarily
  // duplicates/retransmits of completed calls, since no driver exits with a
  // call outstanding.
  hsim::FaultPlan::Counters transport;
  std::uint64_t backlog = 0;
  hsim::Tick duration = 0;   // measured-phase simulated time
  std::vector<double> module_utilization;  // per-module busy fraction
  std::vector<hsim::Tick> module_wait;     // per-module aggregate queueing
};

struct FaultTestParams {
  hsim::LockKind lock_kind = hsim::LockKind::kMcsH2;
  DeadlockProtocol protocol = DeadlockProtocol::kOptimistic;
  std::uint32_t cluster_size = 16;
  std::uint32_t active_procs = 16;
  // Independent test: private pages per process.  Shared test: shared pages.
  std::uint32_t pages = 8;
  // Shared test: measured rounds (each round faults every page once per
  // process, then unmaps) plus unrecorded warm-up rounds.
  std::uint32_t iterations = 32;
  std::uint32_t warmup = 4;
  // Independent test: processors fault continuously until the deadline;
  // faults that start after the warm-up and finish before the deadline are
  // recorded.  A deadline (not an iteration quota) is essential: an unfair
  // lock lets lucky processors finish a quota early, thinning the contention
  // they caused and biasing the recorded mean.
  hsim::Tick warmup_time = hsim::UsToTicks(2000);
  hsim::Tick measure_time = hsim::UsToTicks(25000);
  // Optional observability hooks: `trace` receives lock/memory/RPC spans from
  // the run; `metrics` receives the kernel counters ("kernel.*") and the RPC
  // batch-depth histogram.
  hmetrics::TraceSession* trace = nullptr;
  hmetrics::Registry* metrics = nullptr;
  // Adversarial transport: installed on the rig's machine when any() is true.
  // Deterministic under faults.seed -- same seed, same params, same result.
  hsim::FaultConfig faults;
};

// Runs the independent-fault stress test on a fresh 16-processor machine.
FaultTestResult RunIndependentFaultTest(const FaultTestParams& params);

// Runs the shared-fault stress test (fault / barrier / unmap rounds).
FaultTestResult RunSharedFaultTest(const FaultTestParams& params);

// Mixed workload (the paper's concluding scenario): half the processors run
// independent sequential programs, half run one SPMD program faulting on
// shared pages with periodic global unmaps.  The conclusion's claim: "with a
// mix of real applications having both independent and non-independent
// demands, a cluster size somewhere in the range of 4 to 16 processors would
// be optimal".  `pages` sets the private pages per independent process; the
// SPMD side uses 4 shared pages.  Runs until the shared side finishes
// `iterations` rounds; the recorded metric covers all faults of both kinds.
FaultTestResult RunMixedFaultTest(const FaultTestParams& params);

// Single-processor reference numbers (Section 1 and Section 4.2 footnote 6):
// the uncontended soft-fault latency with its lock overhead, the null RPC
// round trip, and the cost of a cluster-wide lookup + descriptor replication.
struct CalibrationResult {
  double fault_us = 0;        // paper: ~160 us
  double fault_lock_us = 0;   // paper: ~40 us
  double null_rpc_us = 0;     // paper: ~27 us
  double replicate_us = 0;    // paper: ~88 us (lookup + replicate)
};

CalibrationResult RunCalibration(hsim::LockKind lock_kind);

}  // namespace hkernel

#endif  // HKERNEL_WORKLOADS_H_
