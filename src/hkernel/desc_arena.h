// Machine-wide page-descriptor arena on the halloc slab allocator.
//
// Before this arena each PageHashTable kept a private host-side free list
// (free_list_ vector + a flat Exec charge), so descriptor allocation was
// uncosted, invisible to the profiler, and each cluster's pool was a hard
// silo: one cluster could exhaust its 2048 descriptors while a neighbour sat
// idle.  The arena replaces all of that with SlabAllocatorCore over the
// simulated machine:
//
//   - refs are partitioned per kernel cluster and each descriptor's SimWords
//     are homed at its ref's home cluster (first module of the cluster, where
//     the old per-table pools lived), so the hot alloc/free path touches only
//     cluster-local magazine words;
//   - allocation cost is real simulated memory traffic under the cluster's
//     cache lock, not a flat Exec charge;
//   - the shared depot absorbs drift between clusters (replica churn frees on
//     the faulting cluster what the home cluster allocated) and lets a busy
//     cluster steal never-used slabs from an idle one's range;
//   - the depot lock is an hprof site ("kernel/desc-depot" via
//     KernelSystem::AttachLockProfiler), so allocator contention shows up in
//     lockprof reports with per-cluster handoff attribution.
//
// The allocation clustering follows the KERNEL's clustering (config.
// cluster_size), not the machine's stations: the arena's backend shadows
// SimBackend's station-based topology the same way fig7's cluster sweep
// regroups processors.

#ifndef HKERNEL_DESC_ARENA_H_
#define HKERNEL_DESC_ARENA_H_

#include <cstdint>
#include <vector>

#include "src/halloc/slab_core.h"
#include "src/hkernel/config.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {

// Index of a descriptor within the arena, offset by one; 0 means nil.
using DescRef = std::uint32_t;
inline constexpr DescRef kNilDesc = 0;

struct PageDescriptor {
  hsim::SimWord* page;       // page identifier this descriptor describes
  hsim::SimWord* next;       // hash chain link (DescRef)
  hsim::SimWord* reserve;    // reserve word (see hsim::SimReserve)
  hsim::SimWord* flags;      // kFlagPresent | kFlagHome
  hsim::SimWord* ref_count;  // per-cluster mapping reference count
  hsim::SimWord* replicas;   // home only: bitmask of clusters holding replicas
  std::vector<hsim::SimWord*> payload;  // data copied on replication
};

class DescriptorArena {
 public:
  // SimBackend with the kernel's clustering (id / cluster_size) instead of
  // the machine's stations.  SlabAllocatorCore reaches topology through its
  // template parameter, so shadowing the three lookups is sufficient.
  class Backend : public hsim::SimBackend {
   public:
    Backend(hsim::Machine* machine, std::uint32_t cluster_size)
        : hsim::SimBackend(machine),
          cluster_size_(cluster_size == 0 ? 1 : cluster_size) {}
    std::uint32_t ClusterOfCtx(std::uint32_t id) const { return id / cluster_size_; }
    std::uint32_t NumClusters() const {
      return (machine()->config().num_processors() + cluster_size_ - 1) /
             cluster_size_;
    }

   private:
    std::uint32_t cluster_size_;
  };

  // `cluster_modules[c]` are the memory modules cluster c's descriptors are
  // spread over (round-robin), one entry per allocation cluster.
  // `objects_per_cluster` is the old per-table pool capacity.
  DescriptorArena(hsim::Machine* machine, std::uint32_t cluster_size,
                  std::uint32_t objects_per_cluster, std::uint32_t magazine_size,
                  std::vector<std::vector<hsim::ModuleId>> cluster_modules);
  DescriptorArena(const DescriptorArena&) = delete;
  DescriptorArena& operator=(const DescriptorArena&) = delete;

  // Allocates a descriptor near `p`'s cluster (kNilDesc when the whole
  // machine is out).  Costed: runs the magazine fast path or a depot trip in
  // simulated memory.  Caller must hold whatever serializes its table -- the
  // arena itself is safe under concurrent callers from different clusters.
  hsim::Task<DescRef> Alloc(hsim::Processor& p);
  hsim::Task<void> Free(hsim::Processor& p, DescRef ref);

  PageDescriptor& desc(DescRef ref) { return descriptors_[ref - 1]; }
  const PageDescriptor& desc(DescRef ref) const { return descriptors_[ref - 1]; }

  std::uint32_t objects_per_cluster() const {
    return static_cast<std::uint32_t>(core_.objects_per_cluster());
  }
  std::uint64_t capacity() const { return core_.capacity(); }

  halloc::SlabAllocatorCore<Backend>& core() { return core_; }
  const halloc::SlabAllocatorCore<Backend>& core() const { return core_; }
  void set_depot_site(hprof::LockSiteStats* site) { core_.set_depot_site(site); }

 private:
  Backend backend_;
  halloc::SlabAllocatorCore<Backend> core_;
  std::vector<PageDescriptor> descriptors_;
};

}  // namespace hkernel

#endif  // HKERNEL_DESC_ARENA_H_
