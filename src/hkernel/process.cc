#include "src/hkernel/process.h"

#include <algorithm>
#include <cassert>

#include "src/hsim/locks/reserve_bit.h"

namespace hkernel {

using hsim::SimReserve;

// ---------------------------------------------------------------------------
// ProcessTable: open addressing keyed by pid, double-hash-free linear probe.
// The table is sized generously, so probes are short; every probe is a real
// simulated memory access, charged like any other kernel structure walk.
// ---------------------------------------------------------------------------

ProcessTable::ProcessTable(hsim::Machine* machine, hsim::ModuleId home, std::uint32_t capacity) {
  descriptors_.reserve(capacity);
  slots_.reserve(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    ProcessDescriptor d;
    d.pid = &machine->AllocWord(home, 0);
    d.state = &machine->AllocWord(home, kProcFree);
    d.reserve = &machine->AllocWord(home, SimReserve::kFree);
    d.parent = &machine->AllocWord(home, kNoPid);
    d.children = &machine->AllocWord(home, 0);
    d.mailbox = &machine->AllocWord(home, 0);
    descriptors_.push_back(d);
    slots_.push_back(d.pid);  // the slot word *is* the descriptor's pid word
  }
}

hsim::Task<std::uint32_t> ProcessTable::Lookup(hsim::Processor& p, Pid pid) {
  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t start = static_cast<std::uint32_t>((pid * 0x9E3779B97F4A7C15ULL) >> 32) % n;
  co_await p.Exec(2, 0);
  for (std::uint32_t probe = 0; probe < n; ++probe) {
    const std::uint32_t i = (start + probe) % n;
    const std::uint64_t slot_pid = co_await p.Load(*slots_[i]);
    co_await p.Exec(0, 1);
    if (slot_pid == pid) {
      co_return i + 1;
    }
    if (slot_pid == kNoPid) {
      co_return 0;  // open addressing: an empty slot ends the probe chain
    }
  }
  co_return 0;
}

hsim::Task<std::uint32_t> ProcessTable::Insert(hsim::Processor& p, Pid pid) {
  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t start = static_cast<std::uint32_t>((pid * 0x9E3779B97F4A7C15ULL) >> 32) % n;
  co_await p.Exec(2, 0);
  for (std::uint32_t probe = 0; probe < n; ++probe) {
    const std::uint32_t i = (start + probe) % n;
    const std::uint64_t slot_pid = co_await p.Load(*slots_[i]);
    co_await p.Exec(0, 1);
    if (slot_pid == kNoPid) {
      ProcessDescriptor& d = descriptors_[i];
      co_await p.Store(*d.pid, pid);
      co_await p.Store(*d.state, kProcAlive);
      co_await p.Store(*d.parent, kNoPid);
      co_await p.Store(*d.children, 0);
      co_await p.Store(*d.mailbox, 0);
      ++live_;
      co_return i + 1;
    }
  }
  co_return 0;  // table full
}

hsim::Task<void> ProcessTable::Remove(hsim::Processor& p, std::uint32_t ref) {
  // NOTE: true open-addressing removal needs tombstones; since pids are never
  // reused within a run and probe chains are short, a tombstone is modelled
  // by leaving the slot marked dead-but-occupied.
  ProcessDescriptor& d = descriptors_[ref - 1];
  co_await p.Store(*d.state, kProcFree);
  co_await p.Store(*d.pid, ~0ULL);  // tombstone: occupied, matches no pid
  --live_;
}

// ---------------------------------------------------------------------------
// ProcessManager
// ---------------------------------------------------------------------------

ProcessManager::ProcessManager(KernelSystem* system, TreePolicy policy,
                               std::uint32_t capacity_per_cluster)
    : system_(system), policy_(policy) {
  hsim::Machine& machine = system_->machine();
  const std::uint32_t nclusters = system_->num_clusters();
  next_pid_.assign(nclusters, 1);
  for (std::uint32_t c = 0; c < nclusters; ++c) {
    auto state = std::make_unique<ClusterState>();
    // The process structures live on the cluster's *second* module when there
    // is one, keeping them off the memory-manager heap's module.
    const auto& procs = system_->cluster(c).procs();
    const hsim::ModuleId home = procs.size() > 1 ? procs[1] : procs[0];
    state->lock = MakeCoarseLock(&machine, home, system_->config().lock_kind);
    state->table = std::make_unique<ProcessTable>(&machine, home, capacity_per_cluster);
    state->links.reserve(capacity_per_cluster);
    for (std::uint32_t i = 0; i < capacity_per_cluster; ++i) {
      state->links.push_back(
          ChildLink{&machine.AllocWord(home, 0), &machine.AllocWord(home, 0)});
      state->free_links.push_back(capacity_per_cluster - i);
    }
    clusters_.push_back(std::move(state));
  }
  system_->set_aux_handler(
      [this](hsim::Processor& p, RpcRequest& request) { return HandleRpc(p, request); });
}

ProcessManager::~ProcessManager() { system_->set_aux_handler(nullptr); }

std::uint32_t ProcessManager::live(std::uint32_t cluster) const {
  return clusters_[cluster]->table->live();
}

std::uint32_t ProcessManager::AllocLink(std::uint32_t cluster) {
  ClusterState& c = *clusters_[cluster];
  assert(!c.free_links.empty() && "child-link pool exhausted");
  const std::uint32_t ref = c.free_links.back();
  c.free_links.pop_back();
  return ref;
}

void ProcessManager::FreeLink(std::uint32_t cluster, std::uint32_t ref) {
  clusters_[cluster]->free_links.push_back(ref);
}

hsim::Task<Pid> ProcessManager::Create(hsim::Processor& p, hsim::ProcId home_proc, Pid parent) {
  const std::uint32_t c = system_->cluster_of_proc(home_proc);
  assert(system_->cluster_of_proc(p.id()) == c && "Create must run in the home cluster");
  const Pid pid = MakePid(home_proc, next_pid_[c]++);
  ++stats_.creates;

  ClusterState& cs = cluster(c);
  co_await system_->LockAcquire(p, *cs.lock);
  const std::uint32_t ref = co_await cs.table->Insert(p, pid);
  assert(ref != 0 && "process table full");
  co_await p.Store(*cs.table->desc(ref).parent, parent);
  co_await system_->LockRelease(p, *cs.lock);

  if (parent != kNoPid) {
    const std::uint32_t pc = home_cluster_of(parent);
    if (pc == c) {
      co_await AddChildLocal(p, pc, parent, pid);
    } else {
      RpcRequest request;
      request.op = RpcOp::kProcAddChild;
      request.page = parent;
      request.arg = pid;
      co_await system_->CallWithRetry(p, system_->PeerOf(p.id(), pc), &request);
      assert(request.status == RpcStatus::kOk);
    }
  }
  co_return pid;
}

hsim::Task<void> ProcessManager::AddChildLocal(hsim::Processor& p, std::uint32_t c, Pid parent,
                                               Pid child) {
  ClusterState& cs = cluster(c);
  co_await system_->LockAcquire(p, *cs.lock);
  const std::uint32_t pref = co_await cs.table->Lookup(p, parent);
  if (pref != 0) {
    const std::uint32_t link = AllocLink(c);
    co_await p.Exec(3, 1);  // pool bookkeeping
    ChildLink& node = cs.links[link - 1];
    co_await p.Store(*node.child, child);
    const std::uint64_t head = co_await p.Load(*cs.table->desc(pref).children);
    co_await p.Store(*node.next, head);
    co_await p.Store(*cs.table->desc(pref).children, link);
  }
  co_await system_->LockRelease(p, *cs.lock);
}

hsim::Task<bool> ProcessManager::UnlinkChildLocal(hsim::Processor& p, std::uint32_t c,
                                                  Pid parent, Pid child, bool may_wait) {
  ClusterState& cs = cluster(c);
  while (true) {
    co_await system_->LockAcquire(p, *cs.lock);
    const std::uint32_t pref = co_await cs.table->Lookup(p, parent);
    if (pref == 0) {
      co_await system_->LockRelease(p, *cs.lock);
      co_return true;  // parent already gone; nothing to unlink
    }
    ProcessDescriptor& pd = cs.table->desc(pref);

    if (policy_ == TreePolicy::kCombined) {
      // The tree links live inside the descriptor that message passing also
      // reserves, so the unlink must take the descriptor's reserve bit.
      const bool reserved = co_await SimReserve::TrySetExclusive(p, *pd.reserve);
      if (!reserved) {
        co_await system_->LockRelease(p, *cs.lock);
        if (!may_wait) {
          co_return false;  // handler context: fail, initiator retries
        }
        co_await system_->WaitReserveFree(p, *pd.reserve);
        continue;
      }
    }
    // Separate-tree policy: the chain is a dedicated structure touched only
    // under this coarse lock, in parent-before-child order, so no reserve is
    // needed and handlers never have to fail.

    // Walk the chain and unlink.
    std::uint64_t link = co_await p.Load(*pd.children);
    hsim::SimWord* prev_next = pd.children;
    while (link != 0) {
      co_await p.Exec(0, 1);
      ChildLink& node = cs.links[link - 1];
      const std::uint64_t child_pid = co_await p.Load(*node.child);
      if (child_pid == child) {
        const std::uint64_t next = co_await p.Load(*node.next);
        co_await p.Store(*prev_next, next);
        FreeLink(c, static_cast<std::uint32_t>(link));
        co_await p.Exec(3, 1);
        break;
      }
      prev_next = node.next;
      link = co_await p.Load(*node.next);
    }

    if (policy_ == TreePolicy::kCombined) {
      co_await SimReserve::ClearExclusive(p, *pd.reserve);
    }
    co_await system_->LockRelease(p, *cs.lock);
    co_return true;
  }
}

hsim::Task<void> ProcessManager::Destroy(hsim::Processor& p, Pid pid) {
  const std::uint32_t c = home_cluster_of(pid);
  assert(system_->cluster_of_proc(p.id()) == c && "Destroy must run in the home cluster");
  ++stats_.destroys;
  ClusterState& cs = cluster(c);

  // 1. Reserve the descriptor and mark it dying so message deposits drain.
  std::uint32_t ref = 0;
  Pid parent = kNoPid;
  while (true) {
    co_await system_->LockAcquire(p, *cs.lock);
    ref = co_await cs.table->Lookup(p, pid);
    assert(ref != 0 && "destroying a non-existent process");
    ProcessDescriptor& d = cs.table->desc(ref);
    const bool reserved = co_await SimReserve::TrySetExclusive(p, *d.reserve);
    if (reserved) {
      co_await p.Store(*d.state, kProcDying);
      parent = co_await p.Load(*d.parent);
      co_await system_->LockRelease(p, *cs.lock);
      break;
    }
    co_await system_->LockRelease(p, *cs.lock);
    co_await system_->WaitReserveFree(p, *cs.table->desc(ref).reserve);
  }

  // 2. Unlink from the parent's child chain, possibly in another cluster.
  //    We still hold our own reserve bit -- the optimistic protocol: the
  //    remote side fails instead of waiting, we retry.
  if (parent != kNoPid) {
    const std::uint32_t pc = home_cluster_of(parent);
    if (pc == c) {
      const bool ok = co_await UnlinkChildLocal(p, pc, parent, pid, /*may_wait=*/true);
      assert(ok);
      (void)ok;
    } else {
      RpcRequest request;
      request.op = RpcOp::kProcUnlinkChild;
      request.page = parent;
      request.arg = pid;
      int retries = 0;
      co_await system_->CallWithRetry(p, system_->PeerOf(p.id(), pc), &request, &retries);
      stats_.unlink_retries += static_cast<std::uint64_t>(retries);
      assert(request.status == RpcStatus::kOk);
    }
  }

  // 3. Free the descriptor.
  co_await system_->LockAcquire(p, *cs.lock);
  co_await cs.table->Remove(p, ref);
  co_await system_->LockRelease(p, *cs.lock);
  // The reserve word is left kExclusive on a tombstoned slot; clear it so the
  // (type-stable) slot is reusable.
  co_await SimReserve::ClearExclusive(p, *cs.table->desc(ref).reserve);
}

hsim::Task<bool> ProcessManager::SendMessage(hsim::Processor& p, Pid to) {
  const std::uint32_t tc = home_cluster_of(to);
  ++stats_.messages;
  if (system_->cluster_of_proc(p.id()) == tc) {
    const DepositResult result = co_await DepositLocal(p, tc, to, /*may_wait=*/true);
    co_return result == DepositResult::kOk;
  }
  RpcRequest request;
  request.op = RpcOp::kProcDeposit;
  request.page = to;
  co_await system_->CallWithRetry(p, system_->PeerOf(p.id(), tc), &request);
  co_return request.status == RpcStatus::kOk;
}

hsim::Task<ProcessManager::DepositResult> ProcessManager::DepositLocal(hsim::Processor& p,
                                                                       std::uint32_t c, Pid to,
                                                                       bool may_wait) {
  ClusterState& cs = cluster(c);
  while (true) {
    co_await system_->LockAcquire(p, *cs.lock);
    const std::uint32_t ref = co_await cs.table->Lookup(p, to);
    if (ref == 0) {
      co_await system_->LockRelease(p, *cs.lock);
      co_return DepositResult::kGone;
    }
    ProcessDescriptor& d = cs.table->desc(ref);
    const std::uint64_t state = co_await p.Load(*d.state);
    if (state != kProcAlive) {
      co_await system_->LockRelease(p, *cs.lock);
      co_return DepositResult::kGone;  // dying: no new messages
    }
    const bool reserved = co_await SimReserve::TrySetExclusive(p, *d.reserve);
    if (!reserved) {
      co_await system_->LockRelease(p, *cs.lock);
      if (!may_wait) {
        co_return DepositResult::kBusy;
      }
      co_await system_->WaitReserveFree(p, *d.reserve);
      continue;
    }
    co_await system_->LockRelease(p, *cs.lock);
    // Transfer the message while holding the reserve bit (the long,
    // fine-grained hold the hybrid strategy is designed for).
    co_await p.Compute(160);  // copy a small message
    const std::uint64_t count = co_await p.Load(*d.mailbox);
    co_await p.Store(*d.mailbox, count + 1);
    co_await SimReserve::ClearExclusive(p, *d.reserve);
    co_return DepositResult::kOk;
  }
}

hsim::Task<std::uint64_t> ProcessManager::ReadMailbox(hsim::Processor& p, Pid pid) {
  const std::uint32_t c = home_cluster_of(pid);
  ClusterState& cs = cluster(c);
  co_await system_->LockAcquire(p, *cs.lock);
  const std::uint32_t ref = co_await cs.table->Lookup(p, pid);
  std::uint64_t count = 0;
  if (ref != 0) {
    count = co_await p.Load(*cs.table->desc(ref).mailbox);
  }
  co_await system_->LockRelease(p, *cs.lock);
  co_return count;
}

hsim::Task<void> ProcessManager::HandleRpc(hsim::Processor& p, RpcRequest& request) {
  switch (request.op) {
    case RpcOp::kProcAddChild:
      co_await AddChildLocal(p, system_->cluster_of_proc(p.id()), request.page, request.arg);
      request.status = RpcStatus::kOk;
      co_return;
    case RpcOp::kProcUnlinkChild: {
      const bool ok = co_await UnlinkChildLocal(p, system_->cluster_of_proc(p.id()),
                                                request.page, request.arg,
                                                /*may_wait=*/policy_ == TreePolicy::kSeparateTree);
      request.status = ok ? RpcStatus::kOk : RpcStatus::kWouldDeadlock;
      co_return;
    }
    case RpcOp::kProcDeposit: {
      const DepositResult result = co_await DepositLocal(
          p, system_->cluster_of_proc(p.id()), request.page, /*may_wait=*/false);
      // A missing or dying target is kNotFound (the sender gives up); a
      // reserved one is kWouldDeadlock (the sender retries).
      switch (result) {
        case DepositResult::kOk:
          request.status = RpcStatus::kOk;
          break;
        case DepositResult::kGone:
          request.status = RpcStatus::kNotFound;
          break;
        case DepositResult::kBusy:
          request.status = RpcStatus::kWouldDeadlock;
          break;
      }
      co_return;
    }
    default:
      assert(false && "not a process-manager op");
      co_return;
  }
}

}  // namespace hkernel
