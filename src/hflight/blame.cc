#include "src/hflight/blame.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hflight {
namespace {

std::uint64_t U64(const hmetrics::JsonValue& v) {
  return v.is_number() ? static_cast<std::uint64_t>(v.number) : 0;
}

std::string FormatUs(double ticks, double ticks_per_us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", ticks / (ticks_per_us > 0 ? ticks_per_us : 1.0));
  return buf;
}

std::string FormatPct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * frac);
  return buf;
}

}  // namespace

std::uint32_t BlameReport::InternSite(const std::string& name) {
  auto it = site_ids_.find(name);
  if (it != site_ids_.end()) {
    return it->second;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(site_names_.size());
  site_names_.push_back(name);
  site_ids_.emplace(name, id);
  return id;
}

bool BlameReport::AddFlight(const hmetrics::JsonValue& doc, std::string* error) {
  if (!doc.is_object() || doc["schema"].string_value != kFlightSchema) {
    if (error != nullptr) {
      *error = std::string("not a ") + kFlightSchema + " document";
    }
    return false;
  }
  ticks_per_us_ = doc["ticks_per_us"].is_number() ? doc["ticks_per_us"].number : 1.0;
  if (doc["tail_quantile"].is_number()) {
    tail_quantile_ = doc["tail_quantile"].number;
  }
  const hmetrics::JsonValue& promoted = doc["promoted"];
  if (!promoted.is_array()) {
    if (error != nullptr) {
      *error = "flight document has no promoted array";
    }
    return false;
  }
  for (const hmetrics::JsonValue& p : promoted.array) {
    TailRecord rec;
    rec.id = U64(p["id"]);
    rec.parent = U64(p["parent"]);
    rec.cluster = static_cast<std::uint32_t>(U64(p["cluster"]));
    rec.fate = p["fate"].string_value;
    rec.total = U64(p["total"]);
    rec.lock_wait_cross = U64(p["lock_wait_cross"]);
    rec.retries = static_cast<std::uint32_t>(U64(p["retries"]));
    rec.rpc_retransmits = static_cast<std::uint32_t>(U64(p["rpc_retransmits"]));
    const hmetrics::JsonValue& phases = p["phases"];
    for (int i = 0; i < kNumPhases; ++i) {
      rec.phase[i] = U64(phases[PhaseName(static_cast<Phase>(i))]);
    }
    const hmetrics::JsonValue& waits = p["site_waits"];
    if (waits.is_array()) {
      for (const hmetrics::JsonValue& sw : waits.array) {
        SiteWait w;
        w.site = InternSite(sw["site"].string_value);
        w.ticks = U64(sw["ticks"]);
        w.cross_ticks = U64(sw["cross_ticks"]);
        rec.site_waits.push_back(w);
      }
    }
    tail_.push_back(std::move(rec));
  }
  have_flight_ = true;
  return true;
}

bool BlameReport::AddLockProf(const hmetrics::JsonValue& doc, std::string* error) {
  if (!doc.is_object() || !doc.Has("sites") || !doc["sites"].is_array()) {
    if (error != nullptr) {
      *error = "not a hurricane-lockprof/1 document";
    }
    return false;
  }
  for (const hmetrics::JsonValue& s : doc["sites"].array) {
    LockProfRow row;
    row.acquisitions = U64(s["acquisitions"]);
    row.contended = U64(s["contended"]);
    const hmetrics::JsonValue& handoffs = s["handoffs"];
    const std::uint64_t same_p = U64(handoffs["same_processor"]);
    const std::uint64_t same_c = U64(handoffs["same_cluster"]);
    const std::uint64_t cross = U64(handoffs["cross_cluster"]);
    const std::uint64_t total = same_p + same_c + cross;
    row.remote_handoff_pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(cross) / static_cast<double>(total);
    lockprof_[s["name"].string_value] = row;
  }
  return true;
}

bool BlameReport::Analyze(std::string* error) {
  if (!have_flight_) {
    if (error != nullptr) {
      *error = "no flight document loaded";
    }
    return false;
  }
  tail_total_ = 0;
  cross_ticks_ = 0;
  max_reconcile_error_ = 0.0;
  for (int i = 0; i < kNumPhases; ++i) {
    phase_ticks_[i] = 0;
  }
  std::vector<std::uint64_t> site_ticks(site_names_.size(), 0);
  std::vector<std::uint64_t> site_cross(site_names_.size(), 0);

  for (const TailRecord& rec : tail_) {
    std::uint64_t phase_sum = 0;
    for (int i = 0; i < kNumPhases; ++i) {
      phase_ticks_[i] += rec.phase[i];
      phase_sum += rec.phase[i];
    }
    tail_total_ += rec.total;
    cross_ticks_ += rec.lock_wait_cross;
    // The 1% reconciliation gate: a record whose ledger does not re-add to
    // its measured latency is evidence of corruption, not of a slow phase.
    const double denom = rec.total == 0 ? 1.0 : static_cast<double>(rec.total);
    const double err =
        std::fabs(static_cast<double>(phase_sum) - static_cast<double>(rec.total)) / denom;
    max_reconcile_error_ = std::max(max_reconcile_error_, err);
    if (err > 0.01) {
      if (error != nullptr) {
        *error = "record " + std::to_string(rec.id) + ": phases sum to " +
                 std::to_string(phase_sum) + " ticks but total is " +
                 std::to_string(rec.total) + " (reconciliation error > 1%)";
      }
      return false;
    }
    for (const SiteWait& sw : rec.site_waits) {
      site_ticks[sw.site] += sw.ticks;
      site_cross[sw.site] += sw.cross_ticks;
    }
  }

  sites_.clear();
  for (std::size_t i = 0; i < site_names_.size(); ++i) {
    if (site_ticks[i] == 0) {
      continue;
    }
    SiteBlame b;
    b.name = site_names_[i];
    b.tail_wait_ticks = site_ticks[i];
    b.tail_cross_ticks = site_cross[i];
    auto it = lockprof_.find(b.name);
    if (it != lockprof_.end()) {
      b.have_lockprof = true;
      b.acquisitions = it->second.acquisitions;
      b.contended = it->second.contended;
      b.remote_handoff_pct = it->second.remote_handoff_pct;
    }
    sites_.push_back(std::move(b));
  }
  std::stable_sort(sites_.begin(), sites_.end(), [](const SiteBlame& a, const SiteBlame& b) {
    return a.tail_wait_ticks > b.tail_wait_ticks;
  });
  return true;
}

double BlameReport::cross_cluster_share() const {
  const std::uint64_t lw = phase_ticks_[static_cast<int>(Phase::kLockWait)];
  return lw == 0 ? 0.0 : static_cast<double>(cross_ticks_) / static_cast<double>(lw);
}

std::string BlameReport::RenderText(std::size_t top) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "hwhy: tail blame over %llu promoted records (q=%.4g, ticks_per_us=%.4g)\n",
                static_cast<unsigned long long>(tail_.size()), tail_quantile_, ticks_per_us_);
  out += line;
  if (tail_.empty()) {
    out += "  (no tail records: run longer or lower the warmup/quantile)\n";
    return out;
  }
  std::snprintf(line, sizeof(line),
                "  tail latency sum: %s us   max reconcile error: %.4f%%\n",
                FormatUs(static_cast<double>(tail_total_), ticks_per_us_).c_str(),
                100.0 * max_reconcile_error_);
  out += line;
  out += "\n  phase        share      us\n";
  out += "  -----------  ------  ----------\n";
  for (int i = 0; i < kNumPhases; ++i) {
    const Phase p = static_cast<Phase>(i);
    std::snprintf(line, sizeof(line), "  %-11s  %s  %10s\n", PhaseName(p),
                  FormatPct(phase_share(p)).c_str(),
                  FormatUs(static_cast<double>(phase_ticks_[i]), ticks_per_us_).c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "\n  cross-cluster share of tail lock_wait: %s\n",
                FormatPct(cross_cluster_share()).c_str());
  out += line;
  if (!sites_.empty()) {
    out += "\n  top lock sites by tail contribution\n";
    out += "  site                        tail us   cross%   sys acq  sys cont%  sys remote%\n";
    out += "  --------------------------  --------  -------  -------  ---------  -----------\n";
    std::size_t n = top == 0 ? sites_.size() : std::min(top, sites_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const SiteBlame& s = sites_[i];
      if (s.have_lockprof) {
        const double cont_pct =
            s.acquisitions == 0 ? 0.0
                                : 100.0 * static_cast<double>(s.contended) /
                                      static_cast<double>(s.acquisitions);
        std::snprintf(line, sizeof(line), "  %-26s  %8s  %6.1f%%  %7llu  %8.1f%%  %10.1f%%\n",
                      s.name.c_str(),
                      FormatUs(static_cast<double>(s.tail_wait_ticks), ticks_per_us_).c_str(),
                      s.cross_pct(), static_cast<unsigned long long>(s.acquisitions), cont_pct,
                      s.remote_handoff_pct);
      } else {
        std::snprintf(line, sizeof(line), "  %-26s  %8s  %6.1f%%        -          -            -\n",
                      s.name.c_str(),
                      FormatUs(static_cast<double>(s.tail_wait_ticks), ticks_per_us_).c_str(),
                      s.cross_pct());
      }
      out += line;
    }
  }
  return out;
}

std::string BlameReport::RenderJson() const {
  hmetrics::JsonWriter w;
  w.BeginObject();
  w.Field("schema", kBlameSchema);
  w.Field("ticks_per_us", ticks_per_us_);
  w.Field("tail_quantile", tail_quantile_);
  w.Field("tail_records", static_cast<std::uint64_t>(tail_.size()));
  w.Field("tail_total_ticks", tail_total_);
  w.Field("max_reconcile_error", max_reconcile_error_);
  w.Field("cross_cluster_share", cross_cluster_share());
  w.Key("phase_share");
  w.BeginObject();
  for (int i = 0; i < kNumPhases; ++i) {
    w.Field(PhaseName(static_cast<Phase>(i)), phase_share(static_cast<Phase>(i)));
  }
  w.EndObject();
  w.Key("phase_ticks");
  w.BeginObject();
  for (int i = 0; i < kNumPhases; ++i) {
    w.Field(PhaseName(static_cast<Phase>(i)), phase_ticks_[i]);
  }
  w.EndObject();
  w.Key("sites");
  w.BeginArray();
  for (const SiteBlame& s : sites_) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("tail_wait_ticks", s.tail_wait_ticks);
    w.Field("tail_cross_ticks", s.tail_cross_ticks);
    if (s.have_lockprof) {
      w.Field("acquisitions", s.acquisitions);
      w.Field("contended", s.contended);
      w.Field("remote_handoff_pct", s.remote_handoff_pct);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool BlameReport::SelfTest(std::string* error) {
  // A two-cluster run, recorded through the real recorder so the self-test
  // exercises Open/stamps/Close/promotion/export and the parser in one pass.
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ring_size = 64;
  cfg.ticks_per_us = 1.0;
  cfg.tail_quantile = 0.9;
  cfg.warmup_closes = 10;
  cfg.seed = 42;
  FlightRecorder rec(cfg);
  const std::uint32_t table_site = rec.InternSite("svc.table");
  const std::uint32_t depot_site = rec.InternSite("alloc/slab-depot");

  // 80 fast requests (total 100 ticks) and 20 slow ones (total 1000 ticks,
  // of which 400 lock_wait -- 300 on svc.table with 150 cross -- 100 hold,
  // 200 rpc).  At q90 the promotion threshold settles at 1000, so exactly
  // the slow cohort is promoted.
  for (int i = 0; i < 100; ++i) {
    const bool slow = i % 5 == 4;
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 10000;
    FlightRecord* r = rec.Open(static_cast<std::uint32_t>(i % 2), base);
    r->enqueue = base + (slow ? 50 : 10);
    r->start = base + (slow ? 100 : 20);
    r->exec = base + (slow ? 150 : 30);
    if (slow) {
      r->AddLockWait(table_site, 300, /*cross=*/false);
      r->site_waits[0].cross_ticks = 150;
      r->lock_wait_cross = 150;
      r->AddLockWait(depot_site, 100, /*cross=*/true);
      r->AddHold(100);
      r->AddRpc(200, /*retransmits=*/1);
      r->done = base + 950;
    } else {
      r->AddHold(20);
      r->done = base + 90;
    }
    rec.Close(r, Fate::kOk, base + (slow ? 1000 : 100));
  }

  hmetrics::JsonValue flight_doc;
  if (!hmetrics::JsonParser::Parse(rec.ToJson(), &flight_doc, error)) {
    return false;
  }

  // A matching lockprof doc, exercising the by-name merge.
  hmetrics::JsonValue lockprof_doc;
  const std::string lockprof_json =
      "{\"schema\":\"hurricane-lockprof/1\",\"ticks_per_us\":1,\"sites\":["
      "{\"name\":\"svc.table\",\"acquisitions\":1000,\"contended\":400,"
      "\"handoffs\":{\"same_processor\":100,\"same_cluster\":500,\"cross_cluster\":400}}]}";
  if (!hmetrics::JsonParser::Parse(lockprof_json, &lockprof_doc, error)) {
    return false;
  }

  BlameReport report;
  if (!report.AddFlight(flight_doc, error) || !report.AddLockProf(lockprof_doc, error) ||
      !report.Analyze(error)) {
    return false;
  }

  auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = "self-test: " + what;
    }
    return false;
  };
  if (report.tail_records() == 0) {
    return fail("no records promoted");
  }
  // Every promoted record is a slow one: 1000 ticks total, 400 lock_wait.
  const double lw = report.phase_share(Phase::kLockWait);
  if (std::fabs(lw - 0.4) > 1e-9) {
    return fail("lock_wait share " + std::to_string(lw) + " != 0.4");
  }
  if (std::fabs(report.phase_share(Phase::kHold) - 0.1) > 1e-9 ||
      std::fabs(report.phase_share(Phase::kRpc) - 0.2) > 1e-9) {
    return fail("hold/rpc shares off");
  }
  if (report.max_reconcile_error() > 1e-9) {
    return fail("reconciliation error nonzero");
  }
  if (report.sites().empty() || report.sites()[0].name != "svc.table") {
    return fail("svc.table not the top blamed site");
  }
  if (!report.sites()[0].have_lockprof || report.sites()[0].acquisitions != 1000) {
    return fail("lockprof merge missing");
  }
  // 150 cross of 300 on svc.table plus 100 cross of 100 on the depot:
  // cross share = 250 / 400.
  if (std::fabs(report.cross_cluster_share() - 0.625) > 1e-9) {
    return fail("cross-cluster share " + std::to_string(report.cross_cluster_share()) +
                " != 0.625");
  }
  // Text and JSON renderers must not crash and must mention the top site.
  if (report.RenderText(5).find("svc.table") == std::string::npos) {
    return fail("RenderText missing top site");
  }
  if (report.RenderJson().find(kBlameSchema) == std::string::npos) {
    return fail("RenderJson missing schema");
  }
  return true;
}

}  // namespace hflight
