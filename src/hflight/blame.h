// Offline "why is p99 slow" analysis: turns a hurricane-flight/1 document
// (optionally merged with a hurricane-lockprof/1 document) into a blame
// report for the tail of the latency distribution.
//
// The analysis works on the *promoted* records -- the tail sampler keeps
// exactly the requests at/above the configured quantile -- and answers three
// questions:
//   1. Where does tail time go?  Per-phase blame shares: each phase's ticks
//      summed over the tail records, divided by the tail's total latency.
//   2. Which locks?  Top lock sites ranked by their contribution to tail
//      lock_wait, with each site's cross-cluster share.
//   3. Is it NUMA?  The fraction of tail lock_wait granted via cross-cluster
//      handoffs; when a lockprof doc is merged, each blamed site also shows
//      its system-wide contention stats (acquisitions, contended %, remote
//      handoff %) so the reader can tell "this site is always hot" from
//      "this site only hurts the tail".
//
// Every report self-checks the recorder's core invariant: per tail record,
// the eight phases must sum to the record's measured end-to-end latency
// within 1% (they are constructed to match exactly; the check catches
// corrupted or hand-edited documents).  RenderText output is deterministic
// for golden-file testing.

#ifndef HFLIGHT_BLAME_H_
#define HFLIGHT_BLAME_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hmetrics/json.h"
#include "src/hflight/flight.h"

namespace hflight {

inline constexpr const char* kBlameSchema = "hurricane-hwhy-report/1";

// One tail record as parsed back from the flight doc.
struct TailRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t cluster = 0;
  std::string fate;
  std::uint64_t total = 0;
  std::uint64_t phase[kNumPhases] = {};
  std::uint64_t lock_wait_cross = 0;
  std::uint32_t retries = 0;
  std::uint32_t rpc_retransmits = 0;
  std::vector<SiteWait> site_waits;  // SiteWait::site indexes BlameReport::site_names_
};

// Per-site tail contribution plus (when a lockprof doc was merged) the
// site's system-wide contention row.
struct SiteBlame {
  std::string name;
  std::uint64_t tail_wait_ticks = 0;
  std::uint64_t tail_cross_ticks = 0;
  bool have_lockprof = false;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  double remote_handoff_pct = 0.0;

  double cross_pct() const {
    return tail_wait_ticks == 0 ? 0.0
                                : 100.0 * static_cast<double>(tail_cross_ticks) /
                                      static_cast<double>(tail_wait_ticks);
  }
};

class BlameReport {
 public:
  // Consumes a parsed hurricane-flight/1 document.
  bool AddFlight(const hmetrics::JsonValue& doc, std::string* error);

  // Consumes a parsed hurricane-lockprof/1 document; merged by site name
  // into the blamed sites.  Order-independent with AddFlight.
  bool AddLockProf(const hmetrics::JsonValue& doc, std::string* error);

  // Runs the analysis over the tail records loaded so far.  Returns false
  // (with *error) when any record's phases fail the 1% reconciliation check
  // or no flight document was loaded.
  bool Analyze(std::string* error);

  // -- results (valid after Analyze) ----------------------------------------
  std::uint64_t tail_records() const { return static_cast<std::uint64_t>(tail_.size()); }
  std::uint64_t tail_total_ticks() const { return tail_total_; }
  // Phase blame share in [0,1]: the phase's ticks over the tail, divided by
  // the tail's summed end-to-end latency.
  double phase_share(Phase p) const {
    return tail_total_ == 0 ? 0.0
                            : static_cast<double>(phase_ticks_[static_cast<int>(p)]) /
                                  static_cast<double>(tail_total_);
  }
  std::uint64_t phase_ticks(Phase p) const { return phase_ticks_[static_cast<int>(p)]; }
  // Cross-cluster share of tail lock_wait, in [0,1].
  double cross_cluster_share() const;
  // Sites ranked by tail_wait_ticks, descending.
  const std::vector<SiteBlame>& sites() const { return sites_; }
  const std::vector<TailRecord>& tail() const { return tail_; }
  double ticks_per_us() const { return ticks_per_us_; }
  // Worst relative reconciliation error over the tail records.
  double max_reconcile_error() const { return max_reconcile_error_; }

  // Deterministic fixed-width text report; `top` caps the site table
  // (0 = all).
  std::string RenderText(std::size_t top = 0) const;

  // hurricane-hwhy-report/1 JSON document.
  std::string RenderJson() const;

  // Builds a small synthetic flight+lockprof pair in memory, runs the full
  // pipeline on it, and verifies the known-by-construction blame shares.
  // Returns false with a diagnostic on any mismatch (the CI smoke entry).
  static bool SelfTest(std::string* error);

 private:
  std::uint32_t InternSite(const std::string& name);

  bool have_flight_ = false;
  double ticks_per_us_ = 1.0;
  double tail_quantile_ = 0.99;
  std::vector<TailRecord> tail_;
  std::vector<std::string> site_names_;
  std::map<std::string, std::uint32_t> site_ids_;
  struct LockProfRow {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    double remote_handoff_pct = 0.0;
  };
  std::map<std::string, LockProfRow> lockprof_;

  // Analyze() outputs.
  std::uint64_t tail_total_ = 0;
  std::uint64_t phase_ticks_[kNumPhases] = {};
  std::uint64_t cross_ticks_ = 0;
  double max_reconcile_error_ = 0.0;
  std::vector<SiteBlame> sites_;
};

}  // namespace hflight

#endif  // HFLIGHT_BLAME_H_
