#include "src/hflight/flight.h"

#include <algorithm>
#include <cstddef>

#include "src/halloc/slab_allocator.h"
#include "src/hprof/lock_site.h"

namespace hflight {
namespace {

std::uint32_t RoundUpPow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

// One ring per cluster: slot pointers carved from the halloc arena at
// construction (all of the cluster's slots come from its own per-cluster
// range, so record storage is homed with the requests that use it) plus a
// padded claim cursor.  Overwrite-oldest means Open can never fail and never
// takes the depot path after the initial carve.
struct FlightRecorder::Ring {
  std::vector<FlightRecord*> slots;
  alignas(64) std::atomic<std::uint64_t> cursor{0};
};

struct FlightRecorder::Arena {
  explicit Arena(std::uint32_t clusters, std::uint32_t per_cluster)
      : pool(clusters, MakeConfig(per_cluster)) {}

  static halloc::SlabConfig MakeConfig(std::uint32_t per_cluster) {
    halloc::SlabConfig cfg;
    cfg.objects_per_cluster = per_cluster;
    // The carve below empties every cluster range exactly once; the
    // double-alloc tracking has nothing left to catch afterwards.
    cfg.debug_checks = false;
    return cfg;
  }

  halloc::SlabAllocator<FlightRecord> pool;
};

FlightRecorder::FlightRecorder(const FlightConfig& cfg) : cfg_(cfg) {
  if (cfg_.clusters == 0) {
    cfg_.clusters = 1;
  }
  const std::uint32_t ring_size = RoundUpPow2(std::max<std::uint32_t>(cfg_.ring_size, 2));
  cfg_.ring_size = ring_size;
  ring_mask_ = ring_size - 1;
  if (cfg_.reservoir_size == 0) {
    cfg_.reservoir_size = 1;
  }
  rng_state_ = cfg_.seed;
  reservoir_.reserve(cfg_.reservoir_size);

  arena_ = std::make_unique<Arena>(cfg_.clusters, ring_size);
  rings_.reserve(cfg_.clusters);
  for (std::uint32_t c = 0; c < cfg_.clusters; ++c) {
    arena_->pool.RegisterCtx(c, c);
  }
  for (std::uint32_t c = 0; c < cfg_.clusters; ++c) {
    auto ring = std::make_unique<Ring>();
    ring->slots.reserve(ring_size);
    for (std::uint32_t i = 0; i < ring_size; ++i) {
      FlightRecord* rec = arena_->pool.AllocFor(c);
      // The arena was sized for exactly clusters * ring_size records, so the
      // carve cannot exhaust it.
      ring->slots.push_back(rec);
    }
    rings_.push_back(std::move(ring));
  }
}

FlightRecorder::~FlightRecorder() = default;

FlightRecord* FlightRecorder::Open(std::uint32_t cluster, std::uint64_t begin_ticks,
                                   std::uint64_t parent_id) {
  Ring& ring = *rings_[cluster < cfg_.clusters ? cluster : 0];
  const std::uint64_t slot = ring.cursor.fetch_add(1, std::memory_order_relaxed) & ring_mask_;
  FlightRecord* rec = ring.slots[slot];
  if (rec->open) {
    overwritten_open_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  opened_.fetch_add(1, std::memory_order_relaxed);
  rec->Reset(id, cluster < cfg_.clusters ? cluster : 0, begin_ticks, parent_id);
  return rec;
}

void FlightRecorder::Close(FlightRecord* rec, Fate fate, std::uint64_t end_ticks) {
  rec->fate = fate;
  rec->end = end_ticks;
  rec->Finalize();
  rec->open = false;
  const std::uint64_t total = rec->total();

  SpinGuard guard(&mu_);
  ++closed_;
  ++fates_[static_cast<int>(fate)];
  for (int p = 0; p < kNumPhases; ++p) {
    phase_hist_[p].Record(rec->phase[p]);
  }
  total_hist_.Record(total);
  for (std::uint32_t i = 0; i < rec->num_site_waits; ++i) {
    const SiteWait& sw = rec->site_waits[i];
    if (sw.site < sites_.size()) {
      SiteAgg& agg = sites_[sw.site];
      ++agg.waits;
      agg.ticks += sw.ticks;
      agg.cross_ticks += sw.cross_ticks;
    }
  }

  // Vitter reservoir over end-to-end totals; the promotion threshold is the
  // configured quantile of the reservoir, refreshed every 64 closes so the
  // nth_element cost amortizes away.
  if (reservoir_.size() < cfg_.reservoir_size) {
    reservoir_.push_back(total);
  } else {
    const std::uint64_t j = SplitMix64(&rng_state_) % closed_;
    if (j < reservoir_.size()) {
      reservoir_[j] = total;
    }
  }
  if (closed_ >= cfg_.warmup_closes && (!threshold_valid_ || closed_ % 64 == 0)) {
    RecomputeThreshold();
  }
  if (threshold_valid_ && total >= threshold_) {
    if (promoted_.size() < cfg_.max_promoted) {
      rec->was_promoted = true;
      promoted_.push_back(*rec);
    } else {
      ++promoted_dropped_;
    }
  }
}

void FlightRecorder::RecomputeThreshold() {
  if (reservoir_.empty()) {
    return;
  }
  std::vector<std::uint64_t> scratch = reservoir_;
  double q = cfg_.tail_quantile;
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const std::size_t k =
      static_cast<std::size_t>(q * static_cast<double>(scratch.size() - 1) + 0.5);
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(k),
                   scratch.end());
  threshold_ = scratch[k];
  threshold_valid_ = true;
}

std::uint32_t FlightRecorder::InternSite(const std::string& name) {
  SpinGuard guard(&mu_);
  auto it = site_ids_.find(name);
  if (it != site_ids_.end()) {
    return it->second;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(sites_.size());
  sites_.push_back(SiteAgg{name, 0, 0, 0});
  site_ids_.emplace(name, id);
  return id;
}

std::string FlightRecorder::SiteName(std::uint32_t id) const {
  SpinGuard guard(&mu_);
  return id < sites_.size() ? sites_[id].name : std::string("site#") + std::to_string(id);
}

std::uint64_t FlightRecorder::closed() const {
  SpinGuard guard(&mu_);
  return closed_;
}

std::uint64_t FlightRecorder::threshold_ticks() const {
  SpinGuard guard(&mu_);
  return threshold_valid_ ? threshold_ : 0;
}

std::uint64_t FlightRecorder::promoted_dropped() const {
  SpinGuard guard(&mu_);
  return promoted_dropped_;
}

std::vector<FlightRecord> FlightRecorder::promoted() const {
  SpinGuard guard(&mu_);
  return promoted_;
}

std::uint64_t FlightRecorder::fate_count(Fate f) const {
  SpinGuard guard(&mu_);
  return fates_[static_cast<int>(f)];
}

void FlightRecorder::ExportSpans(hmetrics::TraceSession* trace) const {
  if (trace == nullptr || !trace->enabled(hmetrics::kTraceFlight)) {
    return;
  }
  SpinGuard guard(&mu_);
  for (const FlightRecord& rec : promoted_) {
    const std::uint32_t tid = rec.origin_cluster;
    const auto total = trace->BeginSpan(hmetrics::kTraceFlight, "flight/total", tid, rec.begin);
    trace->EndSpan(total, rec.end);
    trace->AddArg(total, "id", std::to_string(rec.id));
    if (rec.parent != 0) {
      trace->AddArg(total, "parent", std::to_string(rec.parent));
    }
    trace->AddArg(total, "fate", FateName(rec.fate));
    if (rec.retries > 0) {
      trace->AddArg(total, "retries", std::to_string(rec.retries));
    }
    if (rec.rpc_retransmits > 0) {
      trace->AddArg(total, "rpc_retransmits", std::to_string(rec.rpc_retransmits));
    }
    std::uint64_t ts = rec.begin;
    for (int p = 0; p < kNumPhases; ++p) {
      const std::uint64_t dur = rec.phase[p];
      if (dur == 0) {
        continue;
      }
      const auto span = trace->BeginSpan(hmetrics::kTraceFlight,
                                         std::string("flight/") + PhaseName(static_cast<Phase>(p)),
                                         tid, ts);
      trace->EndSpan(span, ts + dur);
      trace->AddArg(span, "id", std::to_string(rec.id));
      ts += dur;
    }
  }
}

namespace {

void WriteHist(hmetrics::JsonWriter* w, const hmetrics::LatencyHistogram& h) {
  w->BeginObject();
  w->Field("count", h.count());
  w->Field("sum", h.sum());
  w->Field("min", h.min());
  w->Field("max", h.max());
  w->Field("mean", h.mean());
  w->Field("p50", h.percentile(50));
  w->Field("p95", h.percentile(95));
  w->Field("p99", h.percentile(99));
  w->EndObject();
}

}  // namespace

void FlightRecorder::WriteJson(hmetrics::JsonWriter* w) const {
  SpinGuard guard(&mu_);
  w->BeginObject();
  w->Field("schema", kFlightSchema);
  w->Field("ticks_per_us", cfg_.ticks_per_us);
  w->Field("clusters", std::uint64_t{cfg_.clusters});
  w->Field("ring_size", std::uint64_t{cfg_.ring_size});
  w->Field("tail_quantile", cfg_.tail_quantile);
  w->Field("seed", cfg_.seed);
  w->Field("opened", opened_.load(std::memory_order_relaxed));
  w->Field("closed", closed_);
  w->Field("overwritten_open", overwritten_open_.load(std::memory_order_relaxed));
  w->Field("threshold_ticks", threshold_valid_ ? threshold_ : 0);
  w->Field("promoted_dropped", promoted_dropped_);
  w->Key("fates");
  w->BeginObject();
  for (int f = 0; f < kNumFates; ++f) {
    if (fates_[f] > 0) {
      w->Field(FateName(static_cast<Fate>(f)), fates_[f]);
    }
  }
  w->EndObject();
  w->Key("phases");
  w->BeginObject();
  for (int p = 0; p < kNumPhases; ++p) {
    w->Key(PhaseName(static_cast<Phase>(p)));
    WriteHist(w, phase_hist_[p]);
  }
  w->EndObject();
  w->Key("total");
  WriteHist(w, total_hist_);
  w->Key("sites");
  w->BeginArray();
  for (const SiteAgg& s : sites_) {
    w->BeginObject();
    w->Field("name", s.name);
    w->Field("waits", s.waits);
    w->Field("wait_ticks", s.ticks);
    w->Field("cross_ticks", s.cross_ticks);
    w->EndObject();
  }
  w->EndArray();
  w->Key("promoted");
  w->BeginArray();
  for (const FlightRecord& rec : promoted_) {
    w->BeginObject();
    w->Field("id", rec.id);
    if (rec.parent != 0) {
      w->Field("parent", rec.parent);
    }
    w->Field("cluster", std::uint64_t{rec.origin_cluster});
    w->Field("fate", FateName(rec.fate));
    w->Field("begin", rec.begin);
    w->Field("end", rec.end);
    w->Field("total", rec.total());
    if (rec.retries > 0) {
      w->Field("retries", std::uint64_t{rec.retries});
    }
    if (rec.rpc_retransmits > 0) {
      w->Field("rpc_retransmits", std::uint64_t{rec.rpc_retransmits});
    }
    w->Field("lock_wait_cross", rec.lock_wait_cross);
    w->Key("phases");
    w->BeginObject();
    for (int p = 0; p < kNumPhases; ++p) {
      w->Field(PhaseName(static_cast<Phase>(p)), rec.phase[p]);
    }
    w->EndObject();
    if (rec.num_site_waits > 0) {
      w->Key("site_waits");
      w->BeginArray();
      for (std::uint32_t i = 0; i < rec.num_site_waits; ++i) {
        const SiteWait& sw = rec.site_waits[i];
        w->BeginObject();
        w->Field("site", sw.site < sites_.size() ? sites_[sw.site].name
                                                 : "site#" + std::to_string(sw.site));
        w->Field("ticks", sw.ticks);
        w->Field("cross_ticks", sw.cross_ticks);
        w->EndObject();
      }
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string FlightRecorder::ToJson() const {
  hmetrics::JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

// ---------------------------------------------------------------------------
// ScopedLedger: the native-thread bridge from hprof's WaitObserver hook to
// the armed record.  A single process-wide observer instance reads the
// calling thread's armed {recorder, record} pair; the per-site intern id is
// memoized by site address so the steady state is one TL load + two compares
// per lock event.

namespace {

struct TlLedger {
  FlightRecorder* recorder = nullptr;
  FlightRecord* record = nullptr;
  const hprof::LockSiteStats* memo_site = nullptr;
  std::uint32_t memo_id = 0;
};

thread_local TlLedger tls_ledger;

class LedgerObserver final : public hprof::WaitObserver {
 public:
  void OnLockWait(const hprof::LockSiteStats& site, std::uint64_t wait, bool contended,
                  hprof::Handoff handoff) override {
    (void)contended;
    TlLedger& tl = tls_ledger;
    if (tl.record == nullptr) {
      return;
    }
    if (tl.memo_site != &site) {
      tl.memo_id = tl.recorder->InternSite(site.name());
      tl.memo_site = &site;
    }
    tl.record->AddLockWait(tl.memo_id, wait, handoff == hprof::Handoff::kCrossCluster);
  }

  void OnLockHold(const hprof::LockSiteStats& site, std::uint64_t hold) override {
    (void)site;
    if (tls_ledger.record != nullptr) {
      tls_ledger.record->AddHold(hold);
    }
  }
};

LedgerObserver g_ledger_observer;

}  // namespace

ScopedLedger::ScopedLedger(FlightRecorder* recorder, FlightRecord* rec) {
  if (recorder == nullptr || rec == nullptr) {
    return;
  }
  installed_ = true;
  prev_observer_ = hprof::ThreadWaitObserver();
  prev_recorder_ = tls_ledger.recorder;
  prev_record_ = tls_ledger.record;
  tls_ledger.recorder = recorder;
  tls_ledger.record = rec;
  tls_ledger.memo_site = nullptr;
  hprof::ThreadWaitObserver() = &g_ledger_observer;
}

ScopedLedger::~ScopedLedger() {
  if (!installed_) {
    return;
  }
  hprof::ThreadWaitObserver() = static_cast<hprof::WaitObserver*>(prev_observer_);
  tls_ledger.recorder = prev_recorder_;
  tls_ledger.record = prev_record_;
  tls_ledger.memo_site = nullptr;
}

}  // namespace hflight
