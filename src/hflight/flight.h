// hflight: always-on per-request flight recorder with tail sampling.
//
// Every request carries a FlightRecord -- a fixed-size span context allocated
// from a per-cluster overwrite-oldest ring (halloc-backed, so record storage
// is homed at the request's origin cluster and the hot path never allocates).
// The record accumulates a *phase ledger*: raw stamps at the pipeline's
// boundary events (submit, admission, batch pull, execution, completion,
// client observation) plus accumulators filled during execution (lock wait
// per hprof site with a cross-cluster tag, lock hold, RPC time and
// retransmit count).  Close() derives the eight phases so that they sum to
// the record's end-to-end latency *exactly* -- the reconciliation property
// tools/hwhy verifies.
//
//   phase        interval                     meaning
//   -----------  ---------------------------  -------------------------------
//   admit        begin .. enqueue             admission control + retry backoff
//   inbox        enqueue .. start             waiting in the bounded MPSC inbox
//   batch        start .. exec                batch formation / deadline checks
//   lock_wait    (within exec .. done)        waiting on lock sites
//   hold         (within exec .. done)        critical sections held
//   rpc          (within exec .. done)        remote calls incl. retransmits
//   other        exec..done minus the above   service time proper
//   reply        done .. end                  completion delivery to the client
//
// Stamps are backend-clock ticks: steady_clock nanoseconds for native runs,
// simulator ticks (16/us) under hsim, so the recorder works unchanged under
// native, hcheck, and hsim.  Recording is a pure host-side observer and
// never advances simulated time.
//
// Tail sampling: a seeded Vitter reservoir of end-to-end latencies tracks a
// configurable quantile; requests at or above the current threshold are
// *promoted* -- a full copy is retained for Chrome-trace span export (with
// causal parent/child ids across RPC legs) and per-site tail attribution.
// Everything else contributes only to cheap per-phase histograms.  The
// sampler is deterministic: same seed + same close order = same promotions.
//
// Lock-wait capture has two paths:
//   - native threads arm a ScopedLedger around instrumented work; hprof lock
//     sites report grants/releases to the thread's WaitObserver and the
//     ledger charges them to the armed record;
//   - hsim harnesses (where coroutines interleave on one host thread and a
//     thread-local would misattribute) stamp records directly via
//     FlightRecord::AddLockWait/AddHold/AddRpc.

#ifndef HFLIGHT_FLIGHT_H_
#define HFLIGHT_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hmetrics/histogram.h"
#include "src/hmetrics/json.h"
#include "src/hmetrics/trace.h"

namespace hflight {

inline constexpr const char* kFlightSchema = "hurricane-flight/1";

enum class Phase : int {
  kAdmit = 0,
  kInbox,
  kBatch,
  kLockWait,
  kHold,
  kRpc,
  kOther,
  kReply,
};
inline constexpr int kNumPhases = 8;

inline const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kAdmit:
      return "admit";
    case Phase::kInbox:
      return "inbox";
    case Phase::kBatch:
      return "batch";
    case Phase::kLockWait:
      return "lock_wait";
    case Phase::kHold:
      return "hold";
    case Phase::kRpc:
      return "rpc";
    case Phase::kOther:
      return "other";
    case Phase::kReply:
      return "reply";
  }
  return "?";
}

// Terminal fate of a request, stamped at Close.
enum class Fate : int {
  kOpen = 0,  // still in flight (only ever observed on open records)
  kOk,
  kNotFound,
  kExpired,
  kRejected,
  kAbandoned,
  kError,
};
inline constexpr int kNumFates = 7;

inline const char* FateName(Fate f) {
  switch (f) {
    case Fate::kOpen:
      return "open";
    case Fate::kOk:
      return "ok";
    case Fate::kNotFound:
      return "notfound";
    case Fate::kExpired:
      return "expired";
    case Fate::kRejected:
      return "rejected";
    case Fate::kAbandoned:
      return "abandoned";
    case Fate::kError:
      return "error";
  }
  return "?";
}

// Per-lock-site wait accumulated by one request.  `site` is a FlightRecorder
// intern id (resolved to the hprof site name at export).
struct SiteWait {
  std::uint32_t site = 0;
  std::uint64_t ticks = 0;
  std::uint64_t cross_ticks = 0;  // portion granted via cross-cluster handoff
};

struct FlightRecord {
  static constexpr std::uint64_t kUnset = ~0ull;
  static constexpr int kMaxSiteWaits = 4;

  // -- identity / outcome ----------------------------------------------------
  std::uint64_t id = 0;      // unique per Open (1-based)
  std::uint64_t parent = 0;  // causal parent across RPC legs; 0 = root
  std::uint32_t origin_cluster = 0;
  std::uint32_t retries = 0;          // admission retries (hload)
  std::uint32_t rpc_retransmits = 0;  // transport retransmits charged to us
  Fate fate = Fate::kOpen;
  bool open = false;
  bool was_promoted = false;

  // -- raw stamps (backend-clock ticks; kUnset when a stage never ran) -------
  std::uint64_t begin = 0;
  std::uint64_t enqueue = kUnset;
  std::uint64_t start = kUnset;
  std::uint64_t exec = kUnset;
  std::uint64_t done = kUnset;
  std::uint64_t end = 0;

  // -- execution-time accumulators -------------------------------------------
  std::uint64_t lock_wait = 0;
  std::uint64_t lock_wait_cross = 0;
  std::uint64_t hold = 0;
  std::uint64_t rpc = 0;
  SiteWait site_waits[kMaxSiteWaits];
  std::uint32_t num_site_waits = 0;

  // -- derived ledger (filled by Finalize; sums exactly to total()) ----------
  std::uint64_t phase[kNumPhases] = {};

  void Reset(std::uint64_t new_id, std::uint32_t cluster, std::uint64_t begin_ticks,
             std::uint64_t parent_id) {
    *this = FlightRecord{};
    id = new_id;
    parent = parent_id;
    origin_cluster = cluster;
    begin = begin_ticks;
    open = true;
  }

  void AddLockWait(std::uint32_t site_id, std::uint64_t ticks, bool cross) {
    lock_wait += ticks;
    if (cross) {
      lock_wait_cross += ticks;
    }
    for (std::uint32_t i = 0; i < num_site_waits; ++i) {
      if (site_waits[i].site == site_id) {
        site_waits[i].ticks += ticks;
        if (cross) {
          site_waits[i].cross_ticks += ticks;
        }
        return;
      }
    }
    // Full slot table: fold the overflow into the last slot rather than
    // losing the ticks (records are fixed-size by design).
    std::uint32_t slot = kMaxSiteWaits - 1;
    if (num_site_waits < kMaxSiteWaits) {
      slot = num_site_waits++;
      site_waits[slot].site = site_id;
    }
    site_waits[slot].ticks += ticks;
    if (cross) {
      site_waits[slot].cross_ticks += ticks;
    }
  }

  void AddHold(std::uint64_t ticks) { hold += ticks; }

  void AddRpc(std::uint64_t ticks, std::uint32_t retransmits) {
    rpc += ticks;
    rpc_retransmits += retransmits;
  }

  std::uint64_t total() const { return end - begin; }

  // Derives the phase ledger from the raw stamps.  Unset stamps collapse to
  // the previous boundary (a rejected request has admit + reply only); out of
  // order stamps clamp monotonic.  The execution-time accumulators are capped
  // at the exec..done span in ledger order so the eight phases always sum to
  // total() exactly.
  void Finalize() {
    if (end < begin) {
      end = begin;
    }
    auto clamp = [](std::uint64_t v, std::uint64_t lo, std::uint64_t hi) {
      return v == kUnset ? lo : (v < lo ? lo : (v > hi ? hi : v));
    };
    const std::uint64_t enq = clamp(enqueue, begin, end);
    const std::uint64_t st = clamp(start, enq, end);
    const std::uint64_t ex = clamp(exec, st, end);
    const std::uint64_t dn = done == kUnset ? end : clamp(done, ex, end);
    phase[static_cast<int>(Phase::kAdmit)] = enq - begin;
    phase[static_cast<int>(Phase::kInbox)] = st - enq;
    phase[static_cast<int>(Phase::kBatch)] = ex - st;
    const std::uint64_t span = dn - ex;
    const std::uint64_t lw = lock_wait < span ? lock_wait : span;
    const std::uint64_t hd = hold < span - lw ? hold : span - lw;
    const std::uint64_t rp = rpc < span - lw - hd ? rpc : span - lw - hd;
    phase[static_cast<int>(Phase::kLockWait)] = lw;
    phase[static_cast<int>(Phase::kHold)] = hd;
    phase[static_cast<int>(Phase::kRpc)] = rp;
    phase[static_cast<int>(Phase::kOther)] = span - lw - hd - rp;
    phase[static_cast<int>(Phase::kReply)] = end - dn;
  }
};

struct FlightConfig {
  std::uint32_t clusters = 1;
  std::uint32_t ring_size = 1024;  // records per cluster; rounded up to 2^k
  double ticks_per_us = 1000.0;    // native steady_clock ns; 16 under hsim
  double tail_quantile = 0.99;     // promote totals at/above this quantile
  std::uint32_t reservoir_size = 512;
  std::uint32_t warmup_closes = 64;  // closes before promotion starts
  std::uint32_t max_promoted = 256;  // retained promoted copies
  std::uint64_t seed = 1;            // reservoir RNG seed (determinism)
};

// The recorder: per-cluster rings, the tail sampler, per-phase histograms,
// site interning, and the hurricane-flight/1 exporter.
//
// Thread-safety: Open is lock-free (one atomic fetch_add on the origin
// cluster's ring cursor); the opened record is owned by exactly one request
// at a time and travels with it over the service's existing release/acquire
// queue edges, so its fields need no atomics.  Close serializes aggregation
// under a small spin mutex.  Export/accessors are for quiescent readers.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightConfig& cfg);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  const FlightConfig& config() const { return cfg_; }
  double ticks_per_us() const { return cfg_.ticks_per_us; }

  // Claims the origin cluster's next ring slot (overwriting the oldest
  // record, open or not) and opens it.  Never fails, never allocates.
  FlightRecord* Open(std::uint32_t cluster, std::uint64_t begin_ticks,
                     std::uint64_t parent_id = 0);

  // Stamps the terminal fate and end time, derives the phase ledger, and
  // feeds the aggregation + tail sampler.  The record stays readable in its
  // ring slot until overwritten.
  void Close(FlightRecord* rec, Fate fate, std::uint64_t end_ticks);

  // Stable id for a lock-site name (used by SiteWait entries).
  std::uint32_t InternSite(const std::string& name);
  std::string SiteName(std::uint32_t id) const;

  // -- quiescent accessors ---------------------------------------------------
  std::uint64_t opened() const { return opened_.load(std::memory_order_relaxed); }
  std::uint64_t closed() const;
  std::uint64_t overwritten_open() const {
    return overwritten_open_.load(std::memory_order_relaxed);
  }
  // Current promotion threshold in ticks; 0 while the sampler is warming up.
  std::uint64_t threshold_ticks() const;
  std::uint64_t promoted_dropped() const;
  std::vector<FlightRecord> promoted() const;
  std::uint64_t fate_count(Fate f) const;
  const hmetrics::LatencyHistogram& phase_hist(Phase p) const {
    return phase_hist_[static_cast<int>(p)];
  }
  const hmetrics::LatencyHistogram& total_hist() const { return total_hist_; }

  // Emits the promoted records as Chrome spans (category "flight"): one
  // flight/total span per record carrying id/parent/fate args -- the causal
  // chain across RPC legs -- plus consecutive per-phase child spans.
  void ExportSpans(hmetrics::TraceSession* trace) const;

  // hurricane-flight/1 document.
  void WriteJson(hmetrics::JsonWriter* w) const;
  std::string ToJson() const;

 private:
  struct Ring;
  struct SiteAgg {
    std::string name;
    std::uint64_t waits = 0;  // closed records that waited on this site
    std::uint64_t ticks = 0;
    std::uint64_t cross_ticks = 0;
  };
  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag* f) : flag(f) {
      while (flag->test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag->clear(std::memory_order_release); }
    std::atomic_flag* flag;
  };

  void RecomputeThreshold();  // caller holds mu_

  FlightConfig cfg_;
  std::uint32_t ring_mask_ = 0;
  struct Arena;  // halloc-backed record storage
  std::unique_ptr<Arena> arena_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> opened_{0};
  std::atomic<std::uint64_t> overwritten_open_{0};

  mutable std::atomic_flag mu_ = ATOMIC_FLAG_INIT;
  std::uint64_t closed_ = 0;
  std::uint64_t fates_[kNumFates] = {};
  hmetrics::LatencyHistogram phase_hist_[kNumPhases];
  hmetrics::LatencyHistogram total_hist_;
  std::vector<std::uint64_t> reservoir_;
  std::uint64_t rng_state_ = 0;
  std::uint64_t threshold_ = 0;
  bool threshold_valid_ = false;
  std::vector<FlightRecord> promoted_;
  std::uint64_t promoted_dropped_ = 0;
  std::vector<SiteAgg> sites_;
  std::map<std::string, std::uint32_t> site_ids_;
};

// Arms the calling thread's hprof WaitObserver so lock-site grants and
// releases during its lifetime are charged to `rec`'s lock_wait / hold
// accumulators (native threads only; see the header comment).  Passing a
// null recorder or record is a cheap no-op, so call sites need no branches.
class ScopedLedger {
 public:
  ScopedLedger(FlightRecorder* recorder, FlightRecord* rec);
  ~ScopedLedger();
  ScopedLedger(const ScopedLedger&) = delete;
  ScopedLedger& operator=(const ScopedLedger&) = delete;

 private:
  bool installed_ = false;
  void* prev_observer_ = nullptr;
  FlightRecorder* prev_recorder_ = nullptr;
  FlightRecord* prev_record_ = nullptr;
};

}  // namespace hflight

#endif  // HFLIGHT_FLIGHT_H_
