// Open-loop load driver for one mesh member.
//
// One client per machine replays an hload-planned op stream (zipfian keys,
// Poisson arrivals, read/write mix) against the mesh, with the mesh's
// machines standing where hload's clusters normally stand: the plan's
// num_clusters is the machine count, so key construction (rank * N + c) and
// the hot-rank head line up with the mesh's replication policy.
//
// Open-loop discipline: each op fires at its *scheduled* tick regardless of
// how earlier ops are faring (a bounded in-flight window is the only brake,
// sized so it never binds below saturation), and latency is recorded against
// the scheduled instant -- a slow mesh cannot hide behind its own queueing
// (coordinated omission).  Every acked write is logged with the version the
// mesh assigned, which is what the chaos campaign audits against the mesh's
// apply ledger (exactly-once) and the surviving stores (zero lost ops).

#ifndef HMESH_CLIENT_H_
#define HMESH_CLIENT_H_

#include <cstdint>
#include <vector>

#include "src/hload/recorder.h"
#include "src/hload/workload.h"
#include "src/hmesh/mesh.h"

namespace hmesh {

struct ClientConfig {
  hload::WorkloadConfig workload;  // num_clusters must equal mesh machines
  std::uint64_t ops = 1000;
  double rate_per_s = 250'000;     // offered rate per machine
  std::uint32_t window = 8;        // max ops in flight per client
};

struct AckedWrite {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
  std::uint64_t op_id = 0;
};

struct ClientStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t forwarded_reads = 0;
  std::uint64_t failed = 0;  // ops abandoned because this machine died
  hload::LatencyRecorder latency;
  std::vector<AckedWrite> acked_writes;
  bool done = false;
};

// The op id a client on machine m assigns to its i-th planned op; unique
// mesh-wide (op id 0 is reserved for the preload).
inline std::uint64_t ClientOpId(std::uint32_t m, std::uint64_t index) {
  return (std::uint64_t{m} + 1) << 40 | index;
}

// Drives machine m's planned stream to completion (all ops acked or failed),
// then sets stats->done.  Runs on processor 1 of machine m; spawn on the
// mesh's engine.  `stats` must outlive the task.
hsim::Task<void> RunClient(Mesh* mesh, std::uint32_t m, const ClientConfig& config,
                           ClientStats* stats);

}  // namespace hmesh

#endif  // HMESH_CLIENT_H_
