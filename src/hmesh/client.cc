#include "src/hmesh/client.h"

#include <memory>

#include "src/hflight/flight.h"
#include "src/hsim/types.h"

namespace hmesh {

namespace {

inline Tick NsToTicks(std::uint64_t ns) { return ns * hsim::kCyclesPerMicrosecond / 1000; }

inline std::uint64_t TicksToNs(Tick ticks) {
  return ticks * 1000 / hsim::kCyclesPerMicrosecond;
}

struct OpContext {
  Mesh* mesh;
  std::uint32_t machine;
  ClientStats* stats;
  std::uint32_t in_flight = 0;
};

// One planned op, start to ack.  Captureless coroutine lambda equivalents
// don't compose well across translation units, so this is a plain task.
hsim::Task<void> RunOp(std::shared_ptr<OpContext> ctx, hload::PlannedOp op, Tick scheduled,
                       std::uint64_t op_id) {
  Mesh* mesh = ctx->mesh;
  const std::uint32_t m = ctx->machine;
  hsim::Processor& p = mesh->machine(m).processor(1);
  hflight::FlightRecord* rec = nullptr;
  if (mesh->flight() != nullptr) {
    rec = mesh->flight()->Open(m, scheduled);
    rec->enqueue = scheduled;
    rec->start = p.now();
    rec->exec = p.now();
  }
  MeshStatus status;
  if (op.is_write) {
    std::uint64_t version = 0;
    // The written value is the op id: globally unique, so the zero-lost-ops
    // audit can match surviving store entries back to acked client writes.
    status = co_await mesh->ClientWrite(p, m, op.key, op_id, op_id, &version, rec);
    if (status == MeshStatus::kOk) {
      ++ctx->stats->writes;
      ctx->stats->acked_writes.push_back(AckedWrite{op.key, op_id, version, op_id});
    }
  } else {
    std::uint64_t value = 0;
    bool served_locally = false;
    status = co_await mesh->ClientRead(p, m, op.key, &value, &served_locally, rec);
    if (status == MeshStatus::kOk) {
      ++ctx->stats->reads;
      ++(served_locally ? ctx->stats->local_reads : ctx->stats->forwarded_reads);
    }
  }
  const Tick end = mesh->engine().now();
  if (rec != nullptr) {
    rec->done = end;
    mesh->flight()->Close(
        rec, status == MeshStatus::kOk ? hflight::Fate::kOk : hflight::Fate::kAbandoned,
        end);
  }
  if (status == MeshStatus::kOk) {
    ++ctx->stats->completed;
    ctx->stats->latency.Record(TicksToNs(end > scheduled ? end - scheduled : 0));
  } else {
    ++ctx->stats->failed;
  }
  --ctx->in_flight;
}

}  // namespace

hsim::Task<void> RunClient(Mesh* mesh, std::uint32_t m, const ClientConfig& config,
                           ClientStats* stats) {
  const std::vector<hload::PlannedOp> plan =
      hload::PlanOps(config.workload, m, config.ops, config.rate_per_s);
  hsim::Processor& p = mesh->machine(m).processor(1);
  const Tick base = p.now();

  auto ctx = std::make_shared<OpContext>();
  ctx->mesh = mesh;
  ctx->machine = m;
  ctx->stats = stats;

  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    const Tick scheduled = base + NsToTicks(plan[i].at_ns);
    co_await mesh->engine().WaitUntil(scheduled);
    // The window is a memory brake, not a pacing device: sized so it only
    // binds when the mesh is far beyond saturation.
    while (ctx->in_flight >= config.window) {
      co_await p.BackoffDelay(64);
    }
    ++stats->issued;
    ++ctx->in_flight;
    mesh->engine().Spawn(RunOp(ctx, plan[i], scheduled, ClientOpId(m, i)));
  }
  while (ctx->in_flight > 0) {
    co_await p.BackoffDelay(256);
  }
  stats->done = true;
}

}  // namespace hmesh
