// Consistent-hash ring: routes 64-bit keys to owner machines.
//
// The mesh's analogue of the kernel's "page id encodes its home cluster"
// rule, one level up: a key's home *machine* is a deterministic function of
// the key and the current membership, and adding or removing one machine
// moves only the keys whose arc changed hands -- O(1/N) of the keyspace per
// vnode-weighted share, not a full reshuffle.
//
// Each machine contributes `vnodes` points on a 2^64 ring, placed by a seeded
// splitmix64 hash of (seed, machine, vnode); a key is owned by the machine
// whose point is the first at or clockwise of hash(key).  The replica set for
// a key walks further clockwise collecting *distinct* machines, so replicas
// land on different failure domains by construction and the first replica is
// always the owner -- the failover owner after a crash is a machine that
// already holds the data.
//
// Determinism: placement depends only on (seed, membership); two rings built
// with the same seed and the same member set route identically regardless of
// join order.  Digest() folds the whole point table into one value for
// bit-identical-replay checks.

#ifndef HMESH_RING_H_
#define HMESH_RING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hmesh {

class HashRing {
 public:
  explicit HashRing(std::uint32_t vnodes = 64, std::uint64_t seed = 0x5eedULL)
      : vnodes_(vnodes), seed_(seed) {}

  std::uint32_t vnodes() const { return vnodes_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t num_machines() const { return members_.size(); }
  const std::vector<std::uint32_t>& members() const { return members_; }

  bool Contains(std::uint32_t machine) const {
    return std::find(members_.begin(), members_.end(), machine) != members_.end();
  }

  void AddMachine(std::uint32_t machine) {
    if (Contains(machine)) {
      return;
    }
    members_.push_back(machine);
    std::sort(members_.begin(), members_.end());
    for (std::uint32_t v = 0; v < vnodes_; ++v) {
      points_.push_back(Point{PlaceVnode(machine, v), machine});
    }
    std::sort(points_.begin(), points_.end());
  }

  void RemoveMachine(std::uint32_t machine) {
    members_.erase(std::remove(members_.begin(), members_.end(), machine), members_.end());
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [machine](const Point& p) { return p.machine == machine; }),
                  points_.end());
  }

  // The machine owning `key`.  Ring must be non-empty.
  std::uint32_t OwnerOf(std::uint64_t key) const {
    return points_[FirstAtOrAfter(HashKey(key))].machine;
  }

  // The first `replicas` distinct machines clockwise from hash(key); the
  // owner is always element 0.  Returns fewer when the ring has fewer
  // members.
  std::vector<std::uint32_t> ReplicaSet(std::uint64_t key, std::uint32_t replicas) const {
    std::vector<std::uint32_t> out;
    if (points_.empty() || replicas == 0) {
      return out;
    }
    std::size_t i = FirstAtOrAfter(HashKey(key));
    for (std::size_t walked = 0; walked < points_.size() && out.size() < replicas; ++walked) {
      const std::uint32_t m = points_[(i + walked) % points_.size()].machine;
      if (std::find(out.begin(), out.end(), m) == out.end()) {
        out.push_back(m);
      }
    }
    return out;
  }

  // Order-independent fold of the point table: two rings with equal digests
  // place every vnode identically.
  std::uint64_t Digest() const {
    std::uint64_t d = Mix(seed_ ^ (std::uint64_t{vnodes_} << 32));
    for (const Point& p : points_) {
      d += Mix(p.position ^ (std::uint64_t{p.machine} << 1));
    }
    return d;
  }

  static std::uint64_t Mix(std::uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t machine;
    bool operator<(const Point& o) const {
      return position != o.position ? position < o.position
                                    : machine < o.machine;  // total order: ties can't flap
    }
  };

  std::uint64_t PlaceVnode(std::uint32_t machine, std::uint32_t vnode) const {
    return Mix(seed_ ^ (std::uint64_t{machine} << 32) ^ vnode);
  }

  std::uint64_t HashKey(std::uint64_t key) const { return Mix(key ^ Mix(seed_)); }

  std::size_t FirstAtOrAfter(std::uint64_t position) const {
    auto it = std::lower_bound(points_.begin(), points_.end(), Point{position, 0});
    if (it == points_.end()) {
      it = points_.begin();  // wrap: the ring is circular
    }
    return static_cast<std::size_t>(it - points_.begin());
  }

  std::uint32_t vnodes_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> members_;
  std::vector<Point> points_;  // sorted by position
};

}  // namespace hmesh

#endif  // HMESH_RING_H_
