// hmesh: a multi-machine service mesh under one deterministic engine.
//
// The paper's hierarchical-clustering argument, taken one level up: N
// simulated HECTOR machines (hsim::Machine instances sharing one Engine) form
// a mesh.  A consistent-hash ring (ring.h) routes each key to an owner
// machine; read-mostly hot keys are replicated on every member and cold keys
// on a small replica set, maintained by the paper's broadcast-update protocol
// (Section 2.2's replicated read-mostly data): reads are served machine-local
// wherever a replica exists, writes go to the owner, which pushes a versioned
// update to every replica holder *before* applying and acking -- the ordering
// that keeps retried writes exactly-once across an owner crash (see below).
//
// Transport.  Machines exchange host-side MeshPackets over a latency-only
// interconnect (net_transit ticks each way) with the PR-3 exact-once
// discipline rebuilt at mesh scope: per-lane stop-and-wait channels with
// monotonic sequence numbers, jittered-doubling timeout retransmit, per-source
// dedup windows with cached-reply resend, and stale-reply discard.  Every leg
// consults the mesh's own hsim::FaultPlan with *machine ids* as the node ids,
// so FaultPlan::PartitionNode partitions a whole machine and chaos scenarios
// need no per-link plumbing.
//
// Membership.  A host-side directory (standing in for an external consensus
// service; the engine is single-threaded so it is trivially linearizable)
// tracks each member: kUp, kDown (crashed: store wiped, tasks fenced off by
// an incarnation counter), kSyncing (recovering).  Callers that time out
// suspect_after times in a row report the destination; the directory commits
// a failover -- ring removal, epoch bump -- only if the node is actually
// down, so a partitioned-but-alive machine is never evicted.  Recovery syncs
// in two rounds: a bulk pull of every live peer's entries (version-gated),
// then an atomic rejoin (ring add + kUp), then a catch-up round that closes
// the window in which a write could have committed without the rejoiner.
//
// Exact-once across owner death.  An owner applies a write in this order:
// dedup check against a bounded per-node table of recently applied ops
// (op id -> key/value/version, FIFO-evicted past dedup_window; a single
// per-key slot would be wiped by the next writer to the same key and let a
// late retry re-execute) -> broadcast to the *failover owner first* (the
// next distinct machine on the ring, which by construction already
// replicates the key), await its ack -> broadcast to the remaining holders
// in parallel -> apply locally -> ack the client.  If the owner dies
// anywhere before the ack, the client's retry lands on the failover owner,
// which either has the op recorded (dedup -> ack) or -- only possible when
// no replica got it -- re-executes it fresh.  Recovery transfers the dedup
// table alongside the store (kSyncOps next to kSyncPull) so a rejoined
// owner still recognises retries of ops it never saw.  The host-side apply
// ledger (op_versions) records every distinct version an op was applied at;
// the chaos gate is that every acked op maps to exactly one version.

#ifndef HMESH_MESH_H_
#define HMESH_MESH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/hmesh/ring.h"
#include "src/hsim/engine.h"
#include "src/hsim/fault.h"
#include "src/hsim/machine.h"
#include "src/hsim/resource.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hflight {
class FlightRecorder;
struct FlightRecord;
}  // namespace hflight
namespace hmetrics {
class Registry;
}  // namespace hmetrics
namespace hprof {
class SiteTable;
class LockSiteStats;
}  // namespace hprof

namespace hmesh {

using hsim::Tick;

enum class MeshOp : std::uint8_t { kGet, kPut, kUpdate, kSyncPull, kSyncOps };
const char* MeshOpName(MeshOp op);

enum class MeshStatus : std::uint8_t {
  kPending,
  kOk,
  kWrongOwner,    // routed to a machine the current ring does not make owner
  kUnavailable,   // destination left the ring (failover committed) mid-call
  kNotFound,      // owner does not store the key: data loss, never a zero read
};

enum class NodeState : std::uint8_t { kUp, kDown, kSyncing };

struct MeshConfig {
  std::uint32_t machines = 4;
  std::uint32_t vnodes = 64;
  std::uint32_t replicas = 2;       // cold-key replica set size, owner included
  std::uint64_t hot_ranks = 16;     // zipf ranks replicated on every member
  std::uint64_t keys_per_machine = 32;  // keyspace = keys_per_machine * machines
  std::uint64_t seed = 0x5eedULL;
  hsim::MachineConfig member;       // per-member machine (default 1 station x 4)

  // Inter-machine transport timing (ticks; 16 ticks = 1 us).
  Tick net_send = 96;
  Tick net_transit = 320;           // one-way wire latency (20 us)
  Tick net_recv = 48;
  Tick net_poll = 48;               // reply/inbox poll granularity
  Tick net_timeout = hsim::UsToTicks(120);
  Tick net_timeout_cap = hsim::UsToTicks(1920);
  int suspect_after = 4;            // consecutive timeouts before reporting

  // Store service costs (ticks at the node's store resource).
  Tick get_service = 40;
  Tick put_service = 56;
  Tick update_service = 16;
  Tick sync_entry_service = 8;
  // Entries per kSyncPull/kSyncOps reply.  Recovery transfers the dedup
  // table as well as the store, so pulls are round-trip-bound: the batch is
  // sized to keep a full re-sync (two rounds over every peer) well inside
  // the chaos unavailability budget.
  std::uint32_t sync_batch = 64;
  // Applied-op dedup records retained per node (FIFO-evicted).  Bounds the
  // window in which a retried put is recognised after unrelated writes; far
  // larger than any plausible retry horizon at these timeouts.
  std::uint32_t dedup_window = 1024;

  // Host-side channel lanes per machine (bounds concurrent outbound calls).
  std::uint32_t lanes = 32;

  MeshConfig() {
    member.stations = 1;
    member.modules_per_station = 4;
  }

  std::uint64_t keys() const { return keys_per_machine * machines; }
};

struct SyncEntry {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
  std::uint64_t writer_op = 0;
};

// Host-side wire format; never touches simulated memory (timing comes from
// the transit delay and the store resources at both ends).
struct MeshPacket {
  bool is_reply = false;
  std::uint32_t channel = 0;  // src * lanes + lane
  std::uint64_t seq = 0;      // per-channel, monotonic for the mesh's lifetime
  MeshOp op = MeshOp::kGet;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
  std::uint64_t op_id = 0;   // client-op id (put dedup across owner failover)
  std::uint64_t cursor = 0;  // kSyncPull/kSyncOps resume point: first key (or
                             // op id) to serve; replies carry last + 1
  MeshStatus status = MeshStatus::kPending;
  std::uint64_t flight_id = 0;    // causal parent for the handler-side record
  std::uint64_t flight_send = 0;  // initiator's send instant
  std::vector<SyncEntry> sync;    // kSyncPull reply batch
};

// Result of one mesh RPC as seen by the initiator.
struct CallOutcome {
  MeshStatus status = MeshStatus::kUnavailable;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
  std::uint32_t retransmits = 0;
  std::vector<SyncEntry> sync;
};

struct PutResult {
  MeshStatus status = MeshStatus::kUnavailable;
  std::uint64_t version = 0;
};

class Mesh {
 public:
  Mesh(hsim::Engine* engine, const MeshConfig& config);
  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;
  ~Mesh();

  hsim::Engine& engine() { return *engine_; }
  const MeshConfig& config() const { return config_; }
  const HashRing& ring() const { return ring_; }
  std::uint64_t epoch() const { return epoch_; }
  hsim::Machine& machine(std::uint32_t m) { return *nodes_[m]->machine; }
  NodeState node_state(std::uint32_t m) const { return nodes_[m]->state; }

  // Seeds every key on its current holders (version 1) and spawns the server
  // loops.  Call once before driving load.
  void Start();
  // Stops the server loops; in-flight handler tasks drain first (see
  // Quiescent).
  void Shutdown();
  // True when no channel is busy, no inbox holds packets, and no write is in
  // flight -- the point at which Shutdown leaves nothing behind.
  bool Quiescent() const;

  // --- fault injection / chaos ----------------------------------------------
  // Installs the mesh-level fault plan (node ids = machine ids).
  void set_fault_plan(const hsim::FaultConfig& config) {
    fault_plan_ = std::make_unique<hsim::FaultPlan>(config);
  }
  hsim::FaultPlan* fault_plan() { return fault_plan_.get(); }

  // Crashes machine m at the current instant: store wiped, inbox dropped,
  // every task of the old incarnation fenced off.  The ring does NOT change
  // here -- failover commits when a caller's timeouts report the death
  // (Suspect), which is what the chaos gate's detection window measures.
  void Kill(std::uint32_t m);
  // Begins recovery of a killed machine: server restarts, the resync task
  // pulls state from live peers, then the machine rejoins the ring.
  void Recover(std::uint32_t m);
  // Schedulable wrappers (host tasks; spawn on the engine).
  hsim::Task<void> KillAt(Tick at, std::uint32_t m);
  hsim::Task<void> RecoverAt(Tick at, std::uint32_t m);

  // Caller-side failure report: commits failover iff m is actually down.
  void Suspect(std::uint32_t m);

  // --- routing ----------------------------------------------------------------
  bool HoldsLocally(std::uint32_t m, std::uint64_t key) const;
  std::vector<std::uint32_t> HoldersOf(std::uint64_t key) const;

  // --- client operations ------------------------------------------------------
  // Run on a processor of machine m; retry internally across kWrongOwner /
  // kUnavailable (re-routing via the current ring) until served.  `rec` is an
  // optional flight record to charge rpc time to (may be null).
  hsim::Task<MeshStatus> ClientRead(hsim::Processor& p, std::uint32_t m, std::uint64_t key,
                                    std::uint64_t* value, bool* served_locally,
                                    hflight::FlightRecord* rec);
  hsim::Task<MeshStatus> ClientWrite(hsim::Processor& p, std::uint32_t m, std::uint64_t key,
                                     std::uint64_t value, std::uint64_t op_id,
                                     std::uint64_t* version, hflight::FlightRecord* rec);

  // --- verification ----------------------------------------------------------
  struct Entry {
    std::uint64_t value = 0;
    std::uint64_t version = 0;
    std::uint64_t writer_op = 0;
  };
  // nullptr when machine m does not currently store `key`.
  const Entry* Lookup(std::uint32_t m, std::uint64_t key) const;
  // Host-side apply ledger: every distinct version each client op was applied
  // at, mesh-wide.  Exactly-once == every acked op maps to exactly one entry.
  const std::map<std::uint64_t, std::vector<std::uint64_t>>& op_versions() const {
    return op_versions_;
  }
  // Deterministic fold of ring, stores, counters, ledger, and traffic --
  // equal digests mean bit-identical replay.
  std::uint64_t Digest() const;

  // --- counters / metrics -----------------------------------------------------
  struct NodeCounters {
    std::uint64_t local_reads = 0;       // client reads served from the local replica
    std::uint64_t forwarded_reads = 0;   // client reads sent to a remote owner
    std::uint64_t gets_served = 0;       // owner-side gets executed
    std::uint64_t puts_served = 0;       // owner-side puts executed (fresh)
    std::uint64_t put_dedups = 0;        // retried puts answered from the writer-op record
    std::uint64_t updates_applied = 0;   // replica updates applied (fresh version)
    std::uint64_t updates_stale = 0;     // replica updates dropped by the version gate
    std::uint64_t sync_entries_out = 0;  // entries served to a recovering peer
    std::uint64_t sync_entries_in = 0;   // entries applied during resync
    std::uint64_t sync_ops_out = 0;      // dedup records served to a recovering peer
    std::uint64_t sync_ops_in = 0;       // dedup records received during resync
    std::uint64_t get_misses = 0;        // owner gets on a key it does not store
    std::uint64_t wrong_owner = 0;       // requests refused: not the owner
    std::uint64_t dup_requests = 0;      // dedup-window hits (cached resend or discard)
    std::uint64_t rpcs_out = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t unavailable = 0;       // calls abandoned: destination left the ring
  };
  const NodeCounters& node_counters(std::uint32_t m) const { return nodes_[m]->counters; }
  std::uint64_t traffic(std::uint32_t src, std::uint32_t dst) const {
    return traffic_[src * config_.machines + dst];
  }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t resyncs() const { return resyncs_; }
  std::uint64_t stale_replies() const { return stale_replies_; }

  struct Timeline {
    Tick killed_at = 0;
    Tick failover_at = 0;   // ring removal committed
    Tick recover_at = 0;    // Recover() called
    Tick synced_at = 0;     // catch-up round complete
  };
  const Timeline& timeline(std::uint32_t m) const { return nodes_[m]->timeline; }

  // Publishes per-machine counters ("mesh.machine<i>.<name>"), the
  // cross-machine traffic matrix ("mesh.traffic.<i>_<j>"), and mesh-wide
  // membership counters into an hmetrics registry.
  void PublishCounters(hmetrics::Registry* registry) const;
  // Attaches an hprof site per machine ("machine<i>/store"): the store
  // resource's queueing shows up as lock wait, its service as hold.
  void AttachLockProfiler(hprof::SiteTable* sites);
  // Attaches a flight recorder: client ops open root records, and every
  // cross-machine request executes under a causally linked child record
  // (parent = the initiator's record, begin = the send instant).
  void AttachFlightRecorder(hflight::FlightRecorder* recorder) { flight_ = recorder; }
  hflight::FlightRecorder* flight() { return flight_; }

 private:
  friend struct MeshTestPeer;

  struct Channel {
    bool busy = false;
    std::uint64_t next_seq = 0;
    std::uint64_t pending_seq = 0;
    bool reply_ready = false;
    MeshPacket reply;
  };

  struct SrcWindow {
    std::uint64_t last_completed = 0;
    std::uint64_t active = 0;  // seq currently executing (retransmits discard)
    bool has_cached = false;
    MeshPacket cached_reply;
  };

  // One applied client op, remembered for put dedup.  Keyed by op id in a
  // per-node table so a later write to the same key cannot erase the record
  // (the single writer_op slot in Entry is a per-key convenience, not the
  // dedup source of truth).
  struct AppliedOp {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint64_t version = 0;
  };

  struct Node {
    std::unique_ptr<hsim::Machine> machine;
    std::unique_ptr<hsim::Resource> store_service;
    std::vector<hsim::SimWord*> store_words;
    NodeState state = NodeState::kUp;
    std::uint64_t incarnation = 1;
    std::map<std::uint64_t, Entry> store;  // ordered: deterministic iteration
    std::map<std::uint64_t, AppliedOp> applied_ops;  // op id -> dedup record
    std::deque<std::uint64_t> applied_fifo;          // insertion order: eviction
    std::deque<MeshPacket> inbox;
    std::vector<SrcWindow> windows;        // by sender channel id
    std::set<std::uint64_t> write_busy;    // keys with a put in flight
    std::vector<std::uint32_t> free_lanes;
    NodeCounters counters;
    Timeline timeline;
    hprof::LockSiteStats* site = nullptr;
  };

  // --- transport --------------------------------------------------------------
  void SendPacket(const MeshPacket& packet, Tick now);
  hsim::Task<void> DeliverAfter(MeshPacket packet, Tick delay);
  void DeliverNow(const MeshPacket& packet);
  hsim::Task<CallOutcome> Call(hsim::Processor& p, std::uint32_t src, std::uint32_t lane,
                               std::uint32_t dst, MeshPacket packet,
                               hflight::FlightRecord* rec);

  // --- lanes ------------------------------------------------------------------
  hsim::Task<std::uint32_t> AcquireLane(hsim::Processor& p, std::uint32_t m,
                                        std::uint64_t inc);
  void ReleaseLane(std::uint32_t m, std::uint32_t lane);

  // --- server -----------------------------------------------------------------
  hsim::Task<void> ServerLoop(std::uint32_t m, std::uint64_t inc);
  hsim::Task<void> HandleInline(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                                MeshPacket packet);
  hsim::Task<void> HandlePutTask(std::uint32_t m, std::uint64_t inc, MeshPacket packet);
  void CompleteRequest(Node& node, const MeshPacket& request, MeshPacket reply, Tick now);

  // --- store ------------------------------------------------------------------
  // Queues at the node's store resource for `service` ticks and touches the
  // key's stripe word (real interconnect traffic on the member machine).
  hsim::Task<void> StoreService(hsim::Processor& p, std::uint32_t m, std::uint64_t key,
                                Tick service);
  void ApplyEntry(Node& node, std::uint64_t key, std::uint64_t value, std::uint64_t version,
                  std::uint64_t op_id, bool log);
  // Remembers op_id in the node's dedup table (no-op for op id 0 or an
  // already-recorded op); evicts the oldest records past dedup_window.
  void RecordAppliedOp(Node& node, std::uint64_t op_id, std::uint64_t key,
                       std::uint64_t value, std::uint64_t version);
  hsim::Task<PutResult> ApplyPut(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                                 std::uint64_t key, std::uint64_t value, std::uint64_t op_id,
                                 hflight::FlightRecord* rec);

  // --- recovery ---------------------------------------------------------------
  hsim::Task<void> ResyncTask(std::uint32_t m, std::uint64_t inc);
  hsim::Task<bool> PullRound(hsim::Processor& p, std::uint32_t m, std::uint64_t inc);
  // Cursor-batched pull of one peer's store (kSyncPull) or dedup table
  // (kSyncOps).  Returns false only when machine m died mid-pull.
  hsim::Task<bool> PullFrom(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                            std::uint32_t peer, MeshOp op);

  hsim::Engine* engine_;
  MeshConfig config_;
  HashRing ring_;
  std::uint64_t epoch_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t stale_replies_ = 0;
  std::uint64_t discarded_to_down_ = 0;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Channel> channels_;          // machines x lanes
  std::vector<std::uint64_t> traffic_;     // machines x machines send counts
  std::map<std::uint64_t, std::vector<std::uint64_t>> op_versions_;
  std::unique_ptr<hsim::FaultPlan> fault_plan_;
  hflight::FlightRecorder* flight_ = nullptr;
};

}  // namespace hmesh

#endif  // HMESH_MESH_H_
