#include "src/hmesh/mesh.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "src/hflight/flight.h"
#include "src/hmetrics/registry.h"
#include "src/hprof/lock_site.h"

namespace hmesh {

namespace {
constexpr std::uint32_t kStripeWords = 4;
}  // namespace

const char* MeshOpName(MeshOp op) {
  switch (op) {
    case MeshOp::kGet:
      return "get";
    case MeshOp::kPut:
      return "put";
    case MeshOp::kUpdate:
      return "update";
    case MeshOp::kSyncPull:
      return "sync_pull";
    case MeshOp::kSyncOps:
      return "sync_ops";
  }
  return "?";
}

Mesh::Mesh(hsim::Engine* engine, const MeshConfig& config)
    : engine_(engine), config_(config), ring_(config.vnodes, config.seed) {
  nodes_.reserve(config_.machines);
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    auto node = std::make_unique<Node>();
    node->machine = std::make_unique<hsim::Machine>(engine_, config_.member);
    node->store_service = std::make_unique<hsim::Resource>(
        engine_, "mesh.store" + std::to_string(m));
    for (std::uint32_t w = 0; w < kStripeWords; ++w) {
      node->store_words.push_back(
          &node->machine->AllocWord(w % config_.member.num_processors()));
    }
    node->windows.resize(config_.machines * config_.lanes);
    for (std::uint32_t lane = config_.lanes; lane-- > 0;) {
      node->free_lanes.push_back(lane);
    }
    nodes_.push_back(std::move(node));
    ring_.AddMachine(m);
  }
  channels_.resize(config_.machines * config_.lanes);
  traffic_.assign(std::size_t{config_.machines} * config_.machines, 0);
}

Mesh::~Mesh() = default;

void Mesh::Start() {
  // Seed every key on its holders directly (the preload is host-side setup,
  // not measured traffic): version 1, writer op 0 (excluded from the ledger).
  for (std::uint64_t key = 0; key < config_.keys(); ++key) {
    for (std::uint32_t m : HoldersOf(key)) {
      nodes_[m]->store[key] = Entry{key * 7 + 1, 1, 0};
    }
  }
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    engine_->Spawn(ServerLoop(m, nodes_[m]->incarnation));
  }
}

void Mesh::Shutdown() { stopped_ = true; }

bool Mesh::Quiescent() const {
  for (const Channel& ch : channels_) {
    if (ch.busy) {
      return false;
    }
  }
  for (const auto& node : nodes_) {
    if (!node->inbox.empty() || !node->write_busy.empty()) {
      return false;
    }
  }
  return true;
}

// --- routing ------------------------------------------------------------------

std::vector<std::uint32_t> Mesh::HoldersOf(std::uint64_t key) const {
  const bool hot = key / config_.machines < config_.hot_ranks;
  return ring_.ReplicaSet(key, hot ? static_cast<std::uint32_t>(ring_.num_machines())
                                   : config_.replicas);
}

bool Mesh::HoldsLocally(std::uint32_t m, std::uint64_t key) const {
  if (nodes_[m]->state != NodeState::kUp || !ring_.Contains(m)) {
    return false;
  }
  // Policy membership is not possession: after a failover the ring can make
  // this machine a *new* replica for a key whose data it has never received
  // (it only catches up on the next write).  Local reads require the data.
  if (nodes_[m]->store.count(key) == 0) {
    return false;
  }
  const std::vector<std::uint32_t> holders = HoldersOf(key);
  return std::find(holders.begin(), holders.end(), m) != holders.end();
}

// --- transport ----------------------------------------------------------------

void Mesh::SendPacket(const MeshPacket& packet, Tick now) {
  ++traffic_[packet.src * config_.machines + packet.dst];
  Tick extra = 0;
  bool duplicate = false;
  Tick dup_extra = 0;
  if (fault_plan_ != nullptr) {
    const hsim::FaultPlan::Decision d = fault_plan_->Decide(
        packet.is_reply ? hsim::FaultLeg::kReply : hsim::FaultLeg::kRequest, packet.src,
        packet.dst, static_cast<std::uint8_t>(packet.op), now);
    if (d.drop) {
      return;
    }
    extra = d.extra_delay;
    duplicate = d.duplicate;
    dup_extra = d.dup_extra_delay;
  }
  engine_->Spawn(DeliverAfter(packet, config_.net_transit + extra));
  if (duplicate) {
    engine_->Spawn(DeliverAfter(packet, config_.net_transit + dup_extra));
  }
}

hsim::Task<void> Mesh::DeliverAfter(MeshPacket packet, Tick delay) {
  co_await engine_->Delay(delay);
  DeliverNow(packet);
}

void Mesh::DeliverNow(const MeshPacket& packet) {
  if (packet.is_reply) {
    // Replies route straight to the initiating channel; the channel id names
    // the source machine, whose death voids all its pending calls.
    const std::uint32_t src_machine = packet.channel / config_.lanes;
    if (nodes_[src_machine]->state == NodeState::kDown) {
      ++discarded_to_down_;
      return;
    }
    Channel& ch = channels_[packet.channel];
    if (ch.busy && ch.pending_seq == packet.seq && !ch.reply_ready) {
      ch.reply = packet;
      ch.reply_ready = true;
    } else {
      ++stale_replies_;
    }
    return;
  }
  if (nodes_[packet.dst]->state == NodeState::kDown) {
    ++discarded_to_down_;
    return;
  }
  nodes_[packet.dst]->inbox.push_back(packet);
}

hsim::Task<CallOutcome> Mesh::Call(hsim::Processor& p, std::uint32_t src, std::uint32_t lane,
                                   std::uint32_t dst, MeshPacket packet,
                                   hflight::FlightRecord* rec) {
  Node& node = *nodes_[src];
  const std::uint64_t inc = node.incarnation;
  Channel& ch = channels_[src * config_.lanes + lane];
  assert(!ch.busy && "lane handed to two concurrent calls");
  ch.busy = true;
  packet.is_reply = false;
  packet.channel = src * config_.lanes + lane;
  packet.seq = ++ch.next_seq;
  packet.src = src;
  packet.dst = dst;
  ch.pending_seq = packet.seq;
  ch.reply_ready = false;

  CallOutcome out;
  std::uint32_t retransmits = 0;
  int consecutive_timeouts = 0;
  Tick timeout = config_.net_timeout;
  const Tick call_begin = p.now();
  co_await p.Compute(config_.net_send);
  if (node.incarnation != inc) {
    co_return out;  // crashed during marshal; Kill already reset the channel
  }
  if (rec != nullptr) {
    packet.flight_id = rec->id;
  }
  packet.flight_send = p.now();
  ++node.counters.rpcs_out;
  SendPacket(packet, p.now());
  Tick deadline = p.now() + timeout;
  while (!ch.reply_ready) {
    co_await p.BackoffDelay(config_.net_poll);
    if (node.incarnation != inc) {
      co_return out;  // crashed mid-call; channel was reset by Kill
    }
    if (!ring_.Contains(dst)) {
      // Failover committed: the destination is gone for good (a partitioned
      // but live machine stays in the ring and we keep retransmitting).
      ++node.counters.unavailable;
      ch.busy = false;
      out.status = MeshStatus::kUnavailable;
      co_return out;
    }
    if (p.now() >= deadline) {
      ++retransmits;
      ++node.counters.retransmits;
      if (++consecutive_timeouts >= config_.suspect_after) {
        Suspect(dst);
      }
      const Tick jitter = p.rng().NextBelow(timeout / 4 + 1);
      timeout = std::min(timeout * 2 + jitter, config_.net_timeout_cap);
      co_await p.Compute(config_.net_send);
      if (node.incarnation != inc) {
        co_return out;
      }
      packet.flight_send = p.now();
      SendPacket(packet, p.now());
      deadline = p.now() + timeout;
    }
  }
  co_await p.Compute(config_.net_recv);
  if (node.incarnation != inc) {
    co_return out;
  }
  out.status = ch.reply.status;
  out.value = ch.reply.value;
  out.version = ch.reply.version;
  out.sync = std::move(ch.reply.sync);
  out.retransmits = retransmits;
  if (rec != nullptr) {
    rec->AddRpc(p.now() - call_begin, retransmits);
  }
  ch.busy = false;
  co_return out;
}

// --- lanes --------------------------------------------------------------------

hsim::Task<std::uint32_t> Mesh::AcquireLane(hsim::Processor& p, std::uint32_t m,
                                            std::uint64_t inc) {
  Node& node = *nodes_[m];
  while (node.free_lanes.empty()) {
    co_await p.BackoffDelay(config_.net_poll);
    if (node.incarnation != inc) {
      co_return ~0u;
    }
  }
  const std::uint32_t lane = node.free_lanes.back();
  node.free_lanes.pop_back();
  co_return lane;
}

void Mesh::ReleaseLane(std::uint32_t m, std::uint32_t lane) {
  nodes_[m]->free_lanes.push_back(lane);
}

// --- store --------------------------------------------------------------------

hsim::Task<void> Mesh::StoreService(hsim::Processor& p, std::uint32_t m, std::uint64_t key,
                                    Tick service) {
  Node& node = *nodes_[m];
  const Tick requested = p.now();
  const Tick start = node.store_service->Reserve(service);
  if (node.site != nullptr) {
    node.site->RecordAcquire(p.id(), start - requested, start > requested);
  }
  co_await engine_->WaitUntil(start + service);
  if (node.site != nullptr) {
    node.site->RecordRelease(service);
  }
  // One touch of the key's stripe word: real traffic on the member machine's
  // interconnect, homed by key so hot keys contend at their module.
  co_await p.Load(*node.store_words[key % kStripeWords]);
}

void Mesh::ApplyEntry(Node& node, std::uint64_t key, std::uint64_t value,
                      std::uint64_t version, std::uint64_t op_id, bool log) {
  node.store[key] = Entry{value, version, op_id};
  RecordAppliedOp(node, op_id, key, value, version);
  if (log && op_id != 0) {
    std::vector<std::uint64_t>& versions = op_versions_[op_id];
    if (std::find(versions.begin(), versions.end(), version) == versions.end()) {
      versions.push_back(version);
    }
  }
}

void Mesh::RecordAppliedOp(Node& node, std::uint64_t op_id, std::uint64_t key,
                           std::uint64_t value, std::uint64_t version) {
  if (op_id == 0) {
    return;  // preload / resync of seeded entries: nothing to dedup against
  }
  const auto [it, inserted] = node.applied_ops.emplace(op_id, AppliedOp{key, value, version});
  if (!inserted) {
    return;  // version-gated repairs re-apply known ops; keep the original record
  }
  node.applied_fifo.push_back(op_id);
  while (node.applied_fifo.size() > config_.dedup_window) {
    node.applied_ops.erase(node.applied_fifo.front());
    node.applied_fifo.pop_front();
  }
}

// --- server -------------------------------------------------------------------

hsim::Task<void> Mesh::ServerLoop(std::uint32_t m, std::uint64_t inc) {
  Node& node = *nodes_[m];
  hsim::Processor& p = node.machine->processor(0);
  while (node.incarnation == inc && !stopped_) {
    if (node.inbox.empty()) {
      co_await p.BackoffDelay(config_.net_poll);
      continue;
    }
    MeshPacket packet = node.inbox.front();
    node.inbox.pop_front();
    SrcWindow& w = node.windows[packet.channel];
    if (packet.seq <= w.last_completed) {
      ++node.counters.dup_requests;
      if (packet.seq == w.last_completed && w.has_cached) {
        MeshPacket resend = w.cached_reply;
        SendPacket(resend, p.now());
      }
      continue;
    }
    if (packet.seq == w.active) {
      ++node.counters.dup_requests;  // retransmit of the op we are executing
      continue;
    }
    w.active = packet.seq;
    if (packet.op == MeshOp::kPut) {
      // Puts broadcast to replicas and must not block the inbox (two owners
      // updating each other's replicas would deadlock their server loops).
      engine_->Spawn(HandlePutTask(m, inc, packet));
    } else {
      co_await HandleInline(p, m, inc, packet);
    }
  }
}

void Mesh::CompleteRequest(Node& node, const MeshPacket& request, MeshPacket reply,
                           Tick now) {
  reply.is_reply = true;
  reply.channel = request.channel;
  reply.seq = request.seq;
  reply.op = request.op;
  reply.src = request.dst;
  reply.dst = request.src;
  SrcWindow& w = node.windows[request.channel];
  w.last_completed = request.seq;
  w.cached_reply = reply;
  w.has_cached = true;
  SendPacket(reply, now);
}

hsim::Task<void> Mesh::HandleInline(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                                    MeshPacket packet) {
  Node& node = *nodes_[m];
  hflight::FlightRecord* rec = nullptr;
  if (flight_ != nullptr && packet.flight_id != 0) {
    rec = flight_->Open(m, packet.flight_send, packet.flight_id);
    rec->enqueue = packet.flight_send;
    rec->start = p.now();
    rec->exec = p.now();
  }
  MeshPacket reply;
  switch (packet.op) {
    case MeshOp::kGet: {
      // A syncing node refuses gets: its store may predate writes the mesh
      // already acked, and serving them would un-happen committed data.
      if (node.state != NodeState::kUp || ring_.OwnerOf(packet.key) != m) {
        ++node.counters.wrong_owner;
        reply.status = MeshStatus::kWrongOwner;
        break;
      }
      co_await StoreService(p, m, packet.key, config_.get_service);
      if (node.incarnation != inc) {
        co_return;
      }
      const auto it = node.store.find(packet.key);
      if (it == node.store.end()) {
        // An up owner stores every key it serves (seeded at Start, restored
        // by resync); a miss here is data loss.  Surface it -- a fabricated
        // value=0/version=0 would read as a legitimate stored zero.
        ++node.counters.get_misses;
        reply.status = MeshStatus::kNotFound;
        reply.key = packet.key;
        break;
      }
      ++node.counters.gets_served;
      reply.status = MeshStatus::kOk;
      reply.key = packet.key;
      reply.value = it->second.value;
      reply.version = it->second.version;
      break;
    }
    case MeshOp::kUpdate: {
      co_await StoreService(p, m, packet.key, config_.update_service);
      if (node.incarnation != inc) {
        co_return;
      }
      Entry& e = node.store[packet.key];
      if (packet.version > e.version) {
        ApplyEntry(node, packet.key, packet.value, packet.version, packet.op_id,
                   /*log=*/true);
        ++node.counters.updates_applied;
      } else {
        ++node.counters.updates_stale;
      }
      reply.status = MeshStatus::kOk;
      reply.key = packet.key;
      reply.version = packet.version;
      break;
    }
    case MeshOp::kSyncPull: {
      // Serve every entry at or above the cursor (the *first* key to serve,
      // so the initial pull at cursor 0 includes key 0), up to a batch: the
      // recovering peer applies version-gated, so over-serving is harmless.
      reply.status = MeshStatus::kOk;
      auto it = node.store.lower_bound(packet.cursor);
      Tick service = 0;
      while (it != node.store.end() && reply.sync.size() < config_.sync_batch) {
        reply.sync.push_back(
            SyncEntry{it->first, it->second.value, it->second.version, it->second.writer_op});
        service += config_.sync_entry_service;
        ++it;
      }
      if (!reply.sync.empty()) {
        co_await StoreService(p, m, reply.sync.back().key, service);
        if (node.incarnation != inc) {
          co_return;
        }
        node.counters.sync_entries_out += reply.sync.size();
        reply.cursor = reply.sync.back().key + 1;
      }
      break;
    }
    case MeshOp::kSyncOps: {
      // Same cursor discipline over the dedup table: op id -> record, so a
      // rejoined owner recognises retries of puts it never saw (the store's
      // per-key writer_op only carries the *last* writer of each key).
      reply.status = MeshStatus::kOk;
      auto it = node.applied_ops.lower_bound(packet.cursor);
      Tick service = 0;
      while (it != node.applied_ops.end() && reply.sync.size() < config_.sync_batch) {
        reply.sync.push_back(
            SyncEntry{it->second.key, it->second.value, it->second.version, it->first});
        service += config_.sync_entry_service;
        ++it;
      }
      if (!reply.sync.empty()) {
        co_await StoreService(p, m, reply.sync.back().key, service);
        if (node.incarnation != inc) {
          co_return;
        }
        node.counters.sync_ops_out += reply.sync.size();
        reply.cursor = reply.sync.back().writer_op + 1;
      }
      break;
    }
    case MeshOp::kPut:
      assert(false && "puts are handled by HandlePutTask");
      break;
  }
  if (rec != nullptr) {
    rec->done = p.now();
    flight_->Close(rec, hflight::Fate::kOk, p.now());
  }
  CompleteRequest(node, packet, std::move(reply), p.now());
}

hsim::Task<void> Mesh::HandlePutTask(std::uint32_t m, std::uint64_t inc, MeshPacket packet) {
  Node& node = *nodes_[m];
  hsim::Processor& p = node.machine->processor(0);
  hflight::FlightRecord* rec = nullptr;
  if (flight_ != nullptr && packet.flight_id != 0) {
    rec = flight_->Open(m, packet.flight_send, packet.flight_id);
    rec->enqueue = packet.flight_send;
    rec->start = p.now();
    rec->exec = p.now();
  }
  MeshPacket reply;
  if (node.state != NodeState::kUp || ring_.OwnerOf(packet.key) != m) {
    // Refuse puts while syncing: a version assigned off a half-synced store
    // could collide with one the mesh already handed out.
    ++node.counters.wrong_owner;
    reply.status = MeshStatus::kWrongOwner;
  } else {
    const PutResult r = co_await ApplyPut(p, m, inc, packet.key, packet.value, packet.op_id,
                                          rec);
    if (node.incarnation != inc) {
      co_return;  // crashed mid-put: no reply, the client retries elsewhere
    }
    if (r.status == MeshStatus::kUnavailable) {
      co_return;  // shutting down mid-broadcast; drop silently
    }
    reply.status = r.status;
    reply.key = packet.key;
    reply.version = r.version;
  }
  if (rec != nullptr) {
    rec->done = p.now();
    flight_->Close(rec, hflight::Fate::kOk, p.now());
  }
  CompleteRequest(node, packet, std::move(reply), p.now());
}

hsim::Task<PutResult> Mesh::ApplyPut(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                                     std::uint64_t key, std::uint64_t value,
                                     std::uint64_t op_id, hflight::FlightRecord* rec) {
  Node& node = *nodes_[m];
  PutResult result;
  // Serialize writers per key: versions are assigned under this flag.
  while (node.write_busy.count(key) != 0) {
    co_await p.BackoffDelay(config_.net_poll);
    if (node.incarnation != inc) {
      co_return result;
    }
  }
  node.write_busy.insert(key);
  const auto dedup_it = op_id != 0 ? node.applied_ops.find(op_id) : node.applied_ops.end();
  if (dedup_it != node.applied_ops.end()) {
    // A retry of an op this node already applied: the original owner died
    // after replicating here but before acking the client.  The record lives
    // in the per-node applied-op table, not the store's per-key writer slot
    // -- a later write to the same key must not erase it, or the retry would
    // re-execute and be applied at two distinct versions.  The owner may
    // also have died before reaching the *other* holders, so before acking
    // we repair -- re-broadcast the recorded version (idempotent: every
    // replica applies version-gated).  Dedup hits only happen on
    // owner-failover retries, so the repair traffic is off the hot path.
    const AppliedOp recorded = dedup_it->second;  // copy: the table can move under awaits
    ++node.counters.put_dedups;
    for (std::uint32_t t : HoldersOf(key)) {
      if (t == m) {
        continue;
      }
      MeshPacket repair;
      repair.op = MeshOp::kUpdate;
      repair.key = key;
      repair.value = recorded.value;
      repair.version = recorded.version;
      repair.op_id = op_id;
      const std::uint32_t lane = co_await AcquireLane(p, m, inc);
      if (lane == ~0u) {
        co_return result;
      }
      co_await Call(p, m, lane, t, repair, rec);
      if (node.incarnation != inc) {
        co_return result;
      }
      ReleaseLane(m, lane);
    }
    node.write_busy.erase(key);
    result.status = MeshStatus::kOk;
    result.version = recorded.version;
    co_return result;
  }
  const auto cur_it = node.store.find(key);
  const std::uint64_t version =
      (cur_it != node.store.end() ? cur_it->second.version : 0) + 1;

  // Broadcast before the local apply, failover owner strictly first: if this
  // machine dies anywhere in here, either no replica has the op (it is as if
  // it never ran) or the failover owner does (the retry dedups there) --
  // never a state where the op must re-execute after a replica applied it.
  const std::vector<std::uint32_t> holders = HoldersOf(key);
  // Shared fan-out state: heap-owned so spawned subtasks can finish safely
  // even if this frame returns early on a crash of machine m.
  struct Fanout {
    std::uint32_t pending = 0;
    std::uint32_t abandoned = 0;
  };
  auto fan = std::make_shared<Fanout>();
  bool first = true;
  for (std::uint32_t t : holders) {
    if (t == m) {
      continue;
    }
    MeshPacket update;
    update.op = MeshOp::kUpdate;
    update.key = key;
    update.value = value;
    update.version = version;
    update.op_id = op_id;
    if (first) {
      first = false;
      const std::uint32_t lane = co_await AcquireLane(p, m, inc);
      if (lane == ~0u) {
        co_return result;
      }
      co_await Call(p, m, lane, t, update, rec);
      if (node.incarnation != inc) {
        co_return result;  // lane was reset by Kill; nothing to release
      }
      ReleaseLane(m, lane);
    } else {
      // Remaining holders in parallel, each on its own lane.
      ++fan->pending;
      engine_->Spawn([](Mesh* mesh, std::uint32_t src, std::uint64_t my_inc,
                        std::uint32_t dst, MeshPacket pkt,
                        std::shared_ptr<Fanout> state) -> hsim::Task<void> {
        hsim::Processor& pp = mesh->nodes_[src]->machine->processor(0);
        const std::uint32_t lane = co_await mesh->AcquireLane(pp, src, my_inc);
        if (lane == ~0u) {
          ++state->abandoned;
          co_return;
        }
        co_await mesh->Call(pp, src, lane, dst, pkt, nullptr);
        if (mesh->nodes_[src]->incarnation != my_inc) {
          ++state->abandoned;
          co_return;
        }
        mesh->ReleaseLane(src, lane);
        --state->pending;
      }(this, m, inc, t, update, fan));
    }
  }
  while (fan->pending > 0 && fan->abandoned == 0) {
    co_await p.BackoffDelay(config_.net_poll);
    if (node.incarnation != inc) {
      co_return result;
    }
  }
  if (fan->abandoned != 0 || node.incarnation != inc) {
    co_return result;
  }

  co_await StoreService(p, m, key, config_.put_service);
  if (node.incarnation != inc) {
    co_return result;
  }
  ApplyEntry(node, key, value, version, op_id, /*log=*/true);
  ++node.counters.puts_served;
  node.write_busy.erase(key);
  result.status = MeshStatus::kOk;
  result.version = version;
  co_return result;
}

// --- client operations --------------------------------------------------------

hsim::Task<MeshStatus> Mesh::ClientRead(hsim::Processor& p, std::uint32_t m,
                                        std::uint64_t key, std::uint64_t* value,
                                        bool* served_locally, hflight::FlightRecord* rec) {
  Node& node = *nodes_[m];
  const std::uint64_t inc = node.incarnation;
  while (true) {
    if (node.incarnation != inc) {
      co_return MeshStatus::kUnavailable;
    }
    if (HoldsLocally(m, key)) {
      co_await StoreService(p, m, key, config_.get_service);
      if (node.incarnation != inc) {
        co_return MeshStatus::kUnavailable;
      }
      const auto it = node.store.find(key);
      *value = it != node.store.end() ? it->second.value : 0;
      ++node.counters.local_reads;
      if (served_locally != nullptr) {
        *served_locally = true;
      }
      co_return MeshStatus::kOk;
    }
    const std::uint32_t dst = ring_.OwnerOf(key);
    if (dst == m) {
      // Own machine is the owner but not serving (syncing after recovery);
      // wait for the catch-up round to flip it kUp.
      co_await p.BackoffDelay(config_.net_poll);
      continue;
    }
    const std::uint32_t lane = co_await AcquireLane(p, m, inc);
    if (lane == ~0u) {
      co_return MeshStatus::kUnavailable;
    }
    MeshPacket get;
    get.op = MeshOp::kGet;
    get.key = key;
    const CallOutcome out = co_await Call(p, m, lane, dst, get, rec);
    if (node.incarnation != inc) {
      co_return MeshStatus::kUnavailable;
    }
    ReleaseLane(m, lane);
    if (out.status == MeshStatus::kOk) {
      *value = out.value;
      ++node.counters.forwarded_reads;
      if (served_locally != nullptr) {
        *served_locally = false;
      }
      co_return MeshStatus::kOk;
    }
    // kWrongOwner / kUnavailable: membership moved under us; re-route.
    co_await p.BackoffDelay(config_.net_poll);
  }
}

hsim::Task<MeshStatus> Mesh::ClientWrite(hsim::Processor& p, std::uint32_t m,
                                         std::uint64_t key, std::uint64_t value,
                                         std::uint64_t op_id, std::uint64_t* version,
                                         hflight::FlightRecord* rec) {
  Node& node = *nodes_[m];
  const std::uint64_t inc = node.incarnation;
  while (true) {
    if (node.incarnation != inc) {
      co_return MeshStatus::kUnavailable;
    }
    const std::uint32_t dst = ring_.OwnerOf(key);
    if (dst == m && node.state != NodeState::kUp) {
      co_await p.BackoffDelay(config_.net_poll);
      continue;  // own store is syncing; wait for the catch-up round
    }
    if (dst == m) {
      const PutResult r = co_await ApplyPut(p, m, inc, key, value, op_id, rec);
      if (node.incarnation != inc) {
        co_return MeshStatus::kUnavailable;
      }
      if (r.status == MeshStatus::kOk) {
        *version = r.version;
        co_return MeshStatus::kOk;
      }
    } else {
      const std::uint32_t lane = co_await AcquireLane(p, m, inc);
      if (lane == ~0u) {
        co_return MeshStatus::kUnavailable;
      }
      MeshPacket put;
      put.op = MeshOp::kPut;
      put.key = key;
      put.value = value;
      put.op_id = op_id;
      const CallOutcome out = co_await Call(p, m, lane, dst, put, rec);
      if (node.incarnation != inc) {
        co_return MeshStatus::kUnavailable;
      }
      ReleaseLane(m, lane);
      if (out.status == MeshStatus::kOk) {
        *version = out.version;
        co_return MeshStatus::kOk;
      }
    }
    co_await p.BackoffDelay(config_.net_poll);
  }
}

// --- membership / chaos -------------------------------------------------------

void Mesh::Suspect(std::uint32_t m) {
  if (!ring_.Contains(m)) {
    return;
  }
  if (nodes_[m]->state != NodeState::kDown) {
    return;  // alive (possibly partitioned): never evicted on suspicion alone
  }
  ring_.RemoveMachine(m);
  ++epoch_;
  ++failovers_;
  nodes_[m]->timeline.failover_at = engine_->now();
}

void Mesh::Kill(std::uint32_t m) {
  Node& node = *nodes_[m];
  node.state = NodeState::kDown;
  ++node.incarnation;  // fences every task of the old incarnation
  node.store.clear();
  node.applied_ops.clear();
  node.applied_fifo.clear();
  node.inbox.clear();
  node.write_busy.clear();
  for (SrcWindow& w : node.windows) {
    w = SrcWindow{};
  }
  // Reset the node's outbound channels but keep each lane's sequence counter:
  // seq numbers name the transport endpoint, not the incarnation, so stale
  // replies from the previous life can never match a post-recovery call.
  node.free_lanes.clear();
  for (std::uint32_t lane = config_.lanes; lane-- > 0;) {
    Channel& ch = channels_[m * config_.lanes + lane];
    const std::uint64_t seq = ch.next_seq;
    ch = Channel{};
    ch.next_seq = seq;
    node.free_lanes.push_back(lane);
  }
  node.timeline.killed_at = engine_->now();
}

void Mesh::Recover(std::uint32_t m) {
  Node& node = *nodes_[m];
  assert(node.state == NodeState::kDown && "recover requires a killed machine");
  node.state = NodeState::kSyncing;
  node.timeline.recover_at = engine_->now();
  engine_->Spawn(ServerLoop(m, node.incarnation));
  engine_->Spawn(ResyncTask(m, node.incarnation));
}

hsim::Task<void> Mesh::KillAt(Tick at, std::uint32_t m) {
  co_await engine_->WaitUntil(at);
  Kill(m);
}

hsim::Task<void> Mesh::RecoverAt(Tick at, std::uint32_t m) {
  co_await engine_->WaitUntil(at);
  Recover(m);
}

hsim::Task<bool> Mesh::PullFrom(hsim::Processor& p, std::uint32_t m, std::uint64_t inc,
                                std::uint32_t peer, MeshOp op) {
  Node& node = *nodes_[m];
  std::uint64_t cursor = 0;  // first key (kSyncPull) or op id (kSyncOps) to serve
  while (true) {
    if (node.incarnation != inc) {
      co_return false;
    }
    if (!ring_.Contains(peer)) {
      co_return true;  // peer died mid-sync; its keys are covered by other holders
    }
    const std::uint32_t lane = co_await AcquireLane(p, m, inc);
    if (lane == ~0u) {
      co_return false;
    }
    MeshPacket pull;
    pull.op = op;
    pull.cursor = cursor;
    const CallOutcome out = co_await Call(p, m, lane, peer, pull, nullptr);
    if (node.incarnation != inc) {
      co_return false;
    }
    ReleaseLane(m, lane);
    if (out.status != MeshStatus::kOk || out.sync.empty()) {
      co_return true;
    }
    Tick service = 0;
    for (const SyncEntry& e : out.sync) {
      service += config_.sync_entry_service;
      if (op == MeshOp::kSyncPull) {
        Entry& mine = node.store[e.key];
        if (e.version > mine.version) {
          // Resync replicates an apply the ledger already recorded at its
          // origin; log=false keeps the exact-once ledger fresh-applies-only.
          ApplyEntry(node, e.key, e.value, e.version, e.writer_op, /*log=*/false);
          ++node.counters.sync_entries_in;
        }
      } else {
        RecordAppliedOp(node, e.writer_op, e.key, e.value, e.version);
        ++node.counters.sync_ops_in;
      }
    }
    co_await StoreService(p, m, out.sync.back().key, service);
    if (node.incarnation != inc) {
      co_return false;
    }
    cursor = (op == MeshOp::kSyncPull ? out.sync.back().key : out.sync.back().writer_op) + 1;
  }
}

hsim::Task<bool> Mesh::PullRound(hsim::Processor& p, std::uint32_t m, std::uint64_t inc) {
  // Pull everything every live peer holds -- store entries (version-gated on
  // apply) and the dedup table (so retries of puts the dead owner never saw
  // still dedup here after rejoin).  The union over peers covers every key
  // this machine will hold after rejoin (each key has at least one live
  // holder; the chaos model is single-failure).
  const std::vector<std::uint32_t> peers = ring_.members();
  for (std::uint32_t peer : peers) {
    if (peer == m) {
      continue;
    }
    if (!co_await PullFrom(p, m, inc, peer, MeshOp::kSyncPull)) {
      co_return false;
    }
    if (!co_await PullFrom(p, m, inc, peer, MeshOp::kSyncOps)) {
      co_return false;
    }
  }
  co_return true;
}

hsim::Task<void> Mesh::ResyncTask(std::uint32_t m, std::uint64_t inc) {
  Node& node = *nodes_[m];
  hsim::Processor& p = node.machine->processor(2);
  // Round 1: bulk state transfer while still outside the ring (no traffic is
  // routed here, so the pull window costs the mesh nothing but sync RPCs).
  if (!co_await PullRound(p, m, inc)) {
    co_return;
  }
  // Rejoin: ring add + kUp commit at one host instant, so every write
  // broadcast from now on includes this machine.
  ring_.AddMachine(m);
  ++epoch_;
  node.state = NodeState::kUp;
  // Round 2: catch-up.  A write that committed at a surviving owner between
  // round 1 reading its store and the rejoin above is closed here; writes
  // after the rejoin reach us directly via broadcast.
  if (!co_await PullRound(p, m, inc)) {
    co_return;
  }
  node.timeline.synced_at = p.now();
  ++resyncs_;
}

// --- verification / metrics ---------------------------------------------------

const Mesh::Entry* Mesh::Lookup(std::uint32_t m, std::uint64_t key) const {
  const auto it = nodes_[m]->store.find(key);
  return it == nodes_[m]->store.end() ? nullptr : &it->second;
}

std::uint64_t Mesh::Digest() const {
  std::uint64_t d = ring_.Digest() + HashRing::Mix(epoch_ * 31 + failovers_ * 7 + resyncs_);
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    const Node& node = *nodes_[m];
    for (const auto& [key, e] : node.store) {
      d += HashRing::Mix(key ^ e.value ^ (e.version << 32) ^ e.writer_op);
    }
    for (const auto& [op, rec] : node.applied_ops) {
      d += HashRing::Mix(op ^ (rec.key << 4) ^ (rec.value << 8) ^ (rec.version << 44));
    }
    const NodeCounters& c = node.counters;
    d += HashRing::Mix((std::uint64_t{m} << 48) ^ c.local_reads ^ (c.forwarded_reads << 8) ^
                       (c.gets_served << 16) ^ (c.puts_served << 24) ^
                       (c.updates_applied << 32) ^ (c.retransmits << 40) ^ c.dup_requests);
  }
  for (std::uint64_t t : traffic_) {
    d = d * 1099511628211ULL + t;
  }
  for (const auto& [op, versions] : op_versions_) {
    for (std::uint64_t v : versions) {
      d += HashRing::Mix(op ^ (v << 20));
    }
  }
  return d;
}

void Mesh::PublishCounters(hmetrics::Registry* registry) const {
  if (registry == nullptr) {
    return;
  }
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    const std::string prefix = "mesh.machine" + std::to_string(m) + ".";
    const NodeCounters& c = nodes_[m]->counters;
    registry->counter(prefix + "local_reads").Add(c.local_reads);
    registry->counter(prefix + "forwarded_reads").Add(c.forwarded_reads);
    registry->counter(prefix + "gets_served").Add(c.gets_served);
    registry->counter(prefix + "puts_served").Add(c.puts_served);
    registry->counter(prefix + "put_dedups").Add(c.put_dedups);
    registry->counter(prefix + "updates_applied").Add(c.updates_applied);
    registry->counter(prefix + "updates_stale").Add(c.updates_stale);
    registry->counter(prefix + "sync_entries_in").Add(c.sync_entries_in);
    registry->counter(prefix + "sync_entries_out").Add(c.sync_entries_out);
    registry->counter(prefix + "sync_ops_in").Add(c.sync_ops_in);
    registry->counter(prefix + "sync_ops_out").Add(c.sync_ops_out);
    registry->counter(prefix + "get_misses").Add(c.get_misses);
    registry->counter(prefix + "wrong_owner").Add(c.wrong_owner);
    registry->counter(prefix + "dup_requests").Add(c.dup_requests);
    registry->counter(prefix + "rpcs_out").Add(c.rpcs_out);
    registry->counter(prefix + "retransmits").Add(c.retransmits);
    registry->counter(prefix + "unavailable").Add(c.unavailable);
  }
  for (std::uint32_t s = 0; s < config_.machines; ++s) {
    for (std::uint32_t t = 0; t < config_.machines; ++t) {
      const std::uint64_t n = traffic(s, t);
      if (n != 0) {
        registry
            ->counter("mesh.traffic." + std::to_string(s) + "_" + std::to_string(t))
            .Add(n);
      }
    }
  }
  registry->counter("mesh.epochs").Add(epoch_);
  registry->counter("mesh.failovers").Add(failovers_);
  registry->counter("mesh.resyncs").Add(resyncs_);
  registry->counter("mesh.stale_replies").Add(stale_replies_);
  if (fault_plan_ != nullptr) {
    registry->counter("mesh.transport_dropped").Add(fault_plan_->counters().dropped());
    registry->counter("mesh.transport_partitioned")
        .Add(fault_plan_->counters().partitioned());
  }
}

void Mesh::AttachLockProfiler(hprof::SiteTable* sites) {
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    nodes_[m]->site =
        sites == nullptr
            ? nullptr
            : &sites->AddSite("machine" + std::to_string(m) + "/store",
                              config_.member.num_processors());
  }
}

}  // namespace hmesh
