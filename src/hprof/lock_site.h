// Per-lock-site contention statistics -- the lockstat analogue for this repo.
//
// A "lock site" is one lock instance worth attributing contention to: a
// cluster's page-table coarse lock, a program's per-cluster region lock, the
// shared lock of a Figure-5 stress run, or a native hlock primitive.  Every
// instrumentable lock carries an optional LockSiteStats* (null by default);
// when null the hook is a pointer test and the lock's behaviour -- including
// every simulated instruction and memory access -- is bit-identical to the
// uninstrumented build.  Recording is a pure host-side observer: it never
// advances simulated time.
//
// What a site records (the paper's Section 4.1 / Figures 4-5 signals):
//   - acquisitions and contended acquisitions (the acquirer had to wait),
//   - wait-time and hold-time histograms (ticks; the owner converts via the
//     table's ticks_per_us),
//   - maximum queue depth observed (concurrent waiters),
//   - a handoff matrix counting owner transitions by NUMA distance:
//     same-processor, same-cluster, cross-cluster -- the signal NUMA-aware
//     locks (Dice & Kogan's compact NUMA-aware locks, RMA locks) are built
//     around.
//
// Thread-safety: the under-lock calls (RecordAcquire by the new owner,
// RecordRelease by the current owner) are already serialized by the profiled
// lock for exclusive locks, but shared users (the hybrid table's reserve
// sites, where multiple entries are held concurrently) are not; a tiny
// internal spin mutex makes recording safe either way.  EnterQueue/LeaveQueue
// happen while *waiting*, concurrently by design, and use atomics only.
// Under hcheck the internal mutex is never contended (exactly one virtual
// thread runs between schedule points, and recording contains no schedule
// points), so instrumentation cannot mask or add interleavings.

#ifndef HPROF_LOCK_SITE_H_
#define HPROF_LOCK_SITE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "src/hmetrics/histogram.h"
#include "src/hmetrics/json.h"

namespace hprof {

inline constexpr const char* kLockProfSchema = "hurricane-lockprof/1";

// NUMA distance of an owner-to-owner transition.
enum class Handoff : int {
  kSameProcessor = 0,  // the previous owner re-acquired
  kSameCluster = 1,    // new owner in the previous owner's cluster
  kCrossCluster = 2,   // handoff crossed a cluster (station/ring) boundary
};

class LockSiteStats;

// Per-thread observer of lock-site events, for request-scoped attribution
// (hflight's phase ledger).  A site calls the installed observer *after* its
// own bookkeeping, outside the internal spin mutex, on the acquiring /
// releasing thread itself -- so a thread that armed an observer sees exactly
// the waits and holds it personally incurred.  When no observer is armed the
// hook is a thread-local load and a branch.
//
// This is a native-threads facility: under hsim many coroutines interleave on
// one host thread, so sim harnesses stamp their flight records directly
// instead of arming an observer.
class WaitObserver {
 public:
  virtual ~WaitObserver() = default;
  // The calling thread was granted `site` after waiting `wait` ticks.
  // `handoff` classifies the transition from the previous owner
  // (kSameProcessor when there was no previous owner).
  virtual void OnLockWait(const LockSiteStats& site, std::uint64_t wait,
                          bool contended, Handoff handoff) = 0;
  // The calling thread released `site` after holding it `hold` ticks.
  virtual void OnLockHold(const LockSiteStats& site, std::uint64_t hold) = 0;
};

inline WaitObserver*& ThreadWaitObserver() {
  thread_local WaitObserver* observer = nullptr;
  return observer;
}

class LockSiteStats {
 public:
  // `procs_per_cluster` maps owner ids to clusters for handoff
  // classification: HECTOR stations group 4 processor-memory modules; the
  // kernel's clusters group config.cluster_size processors; native locks
  // group dense thread ids (1 = every handoff that changes owner is
  // cross-cluster, the conservative default).
  explicit LockSiteStats(std::string name, std::uint32_t procs_per_cluster = 1)
      : name_(std::move(name)),
        procs_per_cluster_(procs_per_cluster == 0 ? 1 : procs_per_cluster) {
    // Wait/hold retention stays modest per site: profiled campaigns create
    // one site per lock and run for millions of acquisitions.
    wait_.set_sample_cap(1u << 16);
    hold_.set_sample_cap(1u << 16);
  }
  LockSiteStats(const LockSiteStats&) = delete;
  LockSiteStats& operator=(const LockSiteStats&) = delete;

  static Handoff Classify(std::uint32_t prev_owner, std::uint32_t new_owner,
                          std::uint32_t procs_per_cluster) {
    if (prev_owner == new_owner) {
      return Handoff::kSameProcessor;
    }
    if (procs_per_cluster == 0) {
      procs_per_cluster = 1;
    }
    return prev_owner / procs_per_cluster == new_owner / procs_per_cluster
               ? Handoff::kSameCluster
               : Handoff::kCrossCluster;
  }

  // Monotonic host clock in nanoseconds, for native (non-simulated) locks
  // whose wait/hold intervals are wall time.  Simulated locks pass ticks of
  // simulated time instead and never call this.
  static std::uint64_t NowTicks() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // Called by the new owner the moment it holds the lock.  `wait` is the
  // acquire latency in ticks; `contended` whether the acquirer had to wait
  // (spin retry, queue predecessor, reserved entry).  This overload derives
  // the owner's cluster from the id-division convention; hierarchical locks
  // (whose queue nodes carry real topology) use the explicit-cluster
  // overload below for exact handoff attribution.
  void RecordAcquire(std::uint32_t owner, std::uint64_t wait, bool contended) {
    RecordAcquire(owner, wait, contended, owner / procs_per_cluster_);
  }

  // Exact-attribution overload: `cluster` is the acquirer's cluster as the
  // *lock* knows it -- captured at enqueue time from the backend topology,
  // not re-derived from grant order.  Handoff classification compares the
  // recorded clusters of consecutive owners.
  void RecordAcquire(std::uint32_t owner, std::uint64_t wait, bool contended,
                     std::uint32_t cluster) {
    // No previous owner means no handoff: report kSameProcessor (not cross)
    // to the observer below.
    Handoff handoff = Handoff::kSameProcessor;
    {
      SpinGuard guard(&mu_);
      ++acquisitions_;
      if (contended) {
        ++contended_;
      }
      wait_.Record(wait);
      if (has_last_owner_) {
        Handoff h = Handoff::kCrossCluster;
        if (last_owner_ == owner) {
          h = Handoff::kSameProcessor;
        } else if (last_owner_cluster_ == cluster) {
          h = Handoff::kSameCluster;
        }
        ++handoffs_[static_cast<int>(h)];
        handoff = h;
      }
      last_owner_ = owner;
      last_owner_cluster_ = cluster;
      has_last_owner_ = true;
      ClusterShare& share = by_cluster_[cluster];
      ++share.acquisitions;
      share.wait_ticks += wait;
    }
    if (WaitObserver* obs = ThreadWaitObserver()) {
      obs->OnLockWait(*this, wait, contended, handoff);
    }
  }

  // Called by the owner at release; `hold` is the critical-section length in
  // ticks (the caller timed its own hold -- sites with concurrent holders,
  // like reserve bits, cannot share one start-timestamp slot).
  void RecordRelease(std::uint64_t hold) {
    {
      SpinGuard guard(&mu_);
      hold_.Record(hold);
    }
    if (WaitObserver* obs = ThreadWaitObserver()) {
      obs->OnLockHold(*this, hold);
    }
  }

  // Waiter-side queue-depth tracking: call EnterQueue when starting to wait,
  // LeaveQueue once granted (or on abandoning the attempt).
  void EnterQueue() {
    const std::uint32_t depth = 1 + queue_depth_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_queue_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
    }
  }
  // Enqueue-time cluster capture: in addition to depth tracking, counts the
  // waiter against its cluster the moment it joins the queue -- the exact
  // signal hierarchical locks reorder (a CNA secondary queue defers exactly
  // these waiters), so reports can compare offered vs granted mix.
  void EnterQueue(std::uint32_t cluster) {
    EnterQueue();
    SpinGuard guard(&mu_);
    ++by_cluster_[cluster].enqueues;
  }
  void LeaveQueue() { queue_depth_.fetch_sub(1, std::memory_order_relaxed); }

  // --- accessors (quiescent reads; tests and exporters) -----------------------
  const std::string& name() const { return name_; }
  std::uint32_t procs_per_cluster() const { return procs_per_cluster_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended() const { return contended_; }
  std::uint64_t uncontended() const { return acquisitions_ - contended_; }
  std::uint64_t handoffs(Handoff h) const { return handoffs_[static_cast<int>(h)]; }
  std::uint32_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }
  const hmetrics::LatencyHistogram& wait() const { return wait_; }
  const hmetrics::LatencyHistogram& hold() const { return hold_; }
  std::uint64_t total_wait_ticks() const { return wait_.sum(); }

  // Which clusters acquired this lock, and how long each waited in aggregate.
  struct ClusterShare {
    std::uint64_t acquisitions = 0;
    std::uint64_t wait_ticks = 0;
    std::uint64_t enqueues = 0;  // contended waits recorded at enqueue time
  };
  const std::map<std::uint32_t, ClusterShare>& by_cluster() const { return by_cluster_; }

  void WriteJson(hmetrics::JsonWriter* w) const {
    w->BeginObject();
    w->Field("name", name_);
    w->Field("procs_per_cluster", std::uint64_t{procs_per_cluster_});
    w->Field("acquisitions", acquisitions_);
    w->Field("contended", contended_);
    w->Field("max_queue_depth", std::uint64_t{max_queue_depth()});
    w->Key("wait");
    WriteHistogram(w, wait_);
    w->Key("hold");
    WriteHistogram(w, hold_);
    w->Key("handoffs");
    w->BeginObject();
    w->Field("same_processor", handoffs(Handoff::kSameProcessor));
    w->Field("same_cluster", handoffs(Handoff::kSameCluster));
    w->Field("cross_cluster", handoffs(Handoff::kCrossCluster));
    w->EndObject();
    w->Key("by_cluster");
    w->BeginObject();
    for (const auto& [cluster, share] : by_cluster_) {
      w->Key(std::to_string(cluster));
      w->BeginObject();
      w->Field("acquisitions", share.acquisitions);
      w->Field("wait_sum", share.wait_ticks);
      w->Field("enqueues", share.enqueues);
      w->EndObject();
    }
    w->EndObject();
    w->EndObject();
  }

 private:
  // Minimal TTAS mutex on a std::atomic_flag: hprof sits below hlock in the
  // dependency order, so it cannot borrow hlock's spin locks.
  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag* f) : flag(f) {
      while (flag->test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag->clear(std::memory_order_release); }
    std::atomic_flag* flag;
  };

  static void WriteHistogram(hmetrics::JsonWriter* w, const hmetrics::LatencyHistogram& h) {
    w->BeginObject();
    w->Field("count", h.count());
    w->Field("sum", h.sum());
    w->Field("min", h.min());
    w->Field("max", h.max());
    w->Field("mean", h.mean());
    w->Field("p50", h.percentile(50));
    w->Field("p95", h.percentile(95));
    w->Field("p99", h.percentile(99));
    w->EndObject();
  }

  std::string name_;
  std::uint32_t procs_per_cluster_;
  std::atomic_flag mu_ = ATOMIC_FLAG_INIT;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  std::uint64_t handoffs_[3] = {0, 0, 0};
  std::uint32_t last_owner_ = 0;
  std::uint32_t last_owner_cluster_ = 0;
  bool has_last_owner_ = false;
  hmetrics::LatencyHistogram wait_;
  hmetrics::LatencyHistogram hold_;
  std::map<std::uint32_t, ClusterShare> by_cluster_;
  std::atomic<std::uint32_t> queue_depth_{0};
  std::atomic<std::uint32_t> max_queue_depth_{0};
};

// The profiling session: a named collection of lock sites with stable
// addresses (locks cache the LockSiteStats* they are handed).  Exported as a
// hurricane-lockprof/1 JSON document, the input format of the hprof CLI.
class SiteTable {
 public:
  // `ticks_per_us` converts the sites' tick histograms for reporting: 16 for
  // the HECTOR simulator, 1000 for native locks timed in nanoseconds.
  explicit SiteTable(double ticks_per_us = 1.0) : ticks_per_us_(ticks_per_us) {}
  SiteTable(const SiteTable&) = delete;
  SiteTable& operator=(const SiteTable&) = delete;

  LockSiteStats& AddSite(std::string name, std::uint32_t procs_per_cluster = 1) {
    sites_.emplace_back(std::move(name), procs_per_cluster);
    return sites_.back();
  }

  double ticks_per_us() const { return ticks_per_us_; }
  std::size_t size() const { return sites_.size(); }
  const LockSiteStats& site(std::size_t i) const { return sites_[i]; }
  LockSiteStats& site(std::size_t i) { return sites_[i]; }

  void WriteJson(hmetrics::JsonWriter* w) const {
    w->BeginObject();
    w->Field("schema", kLockProfSchema);
    w->Field("ticks_per_us", ticks_per_us_);
    w->Key("sites");
    w->BeginArray();
    for (const LockSiteStats& s : sites_) {
      s.WriteJson(w);
    }
    w->EndArray();
    w->EndObject();
  }

  std::string ToJson() const {
    hmetrics::JsonWriter w;
    WriteJson(&w);
    return w.Take();
  }

 private:
  double ticks_per_us_;
  std::deque<LockSiteStats> sites_;  // deque: stable addresses across AddSite
};

}  // namespace hprof

#endif  // HPROF_LOCK_SITE_H_
