#include "src/hprof/report.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hprof {
namespace {

using hmetrics::JsonValue;

// Nearest-rank percentile with LatencyHistogram's rounding, over a sorted
// vector of doubles (trace timestamps are already in microseconds).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  p = std::min(std::max(p, 0.0), 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

HistStats StatsFromSamples(std::vector<double> samples) {
  HistStats s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  for (double v : samples) {
    s.sum_us += v;
  }
  s.min_us = samples.front();
  s.max_us = samples.back();
  s.mean_us = s.sum_us / static_cast<double>(samples.size());
  s.p50_us = Percentile(samples, 50);
  s.p95_us = Percentile(samples, 95);
  s.p99_us = Percentile(samples, 99);
  return s;
}

// Reads a lockprof histogram object ({count,sum,min,max,mean,p50,p95,p99} in
// ticks) into microseconds.
HistStats StatsFromJson(const JsonValue& h, double ticks_per_us) {
  HistStats s;
  const double scale = ticks_per_us > 0 ? 1.0 / ticks_per_us : 1.0;
  s.count = static_cast<std::uint64_t>(h["count"].number);
  s.sum_us = h["sum"].number * scale;
  s.min_us = h["min"].number * scale;
  s.max_us = h["max"].number * scale;
  s.mean_us = h["mean"].number * scale;
  s.p50_us = h["p50"].number * scale;
  s.p95_us = h["p95"].number * scale;
  s.p99_us = h["p99"].number * scale;
  return s;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

// One parsed lock/acquire span from a Chrome trace.
struct AcquireEvent {
  std::uint32_t tid = 0;
  double ts_us = 0;     // wait started
  double wait_us = 0;   // span duration
  double grant_us = 0;  // ts + dur: the moment the lock was granted
};

}  // namespace

bool ProfileReport::AddLockProf(const JsonValue& doc, std::string* error) {
  if (!doc.is_object() || doc["schema"].string_value != kLockProfSchema) {
    if (error != nullptr) {
      *error = std::string("not a ") + kLockProfSchema + " document";
    }
    return false;
  }
  const double ticks_per_us = doc["ticks_per_us"].is_number() && doc["ticks_per_us"].number > 0
                                  ? doc["ticks_per_us"].number
                                  : 1.0;
  for (const JsonValue& s : doc["sites"].array) {
    SiteReport r;
    r.name = s["name"].string_value;
    r.procs_per_cluster = static_cast<std::uint32_t>(s["procs_per_cluster"].number);
    r.acquisitions = static_cast<std::uint64_t>(s["acquisitions"].number);
    r.contended = static_cast<std::uint64_t>(s["contended"].number);
    r.max_queue_depth = static_cast<std::uint32_t>(s["max_queue_depth"].number);
    r.wait = StatsFromJson(s["wait"], ticks_per_us);
    r.hold = StatsFromJson(s["hold"], ticks_per_us);
    const JsonValue& h = s["handoffs"];
    r.handoff_same_processor = static_cast<std::uint64_t>(h["same_processor"].number);
    r.handoff_same_cluster = static_cast<std::uint64_t>(h["same_cluster"].number);
    r.handoff_cross_cluster = static_cast<std::uint64_t>(h["cross_cluster"].number);
    r.ticks_per_us = ticks_per_us;
    for (const auto& [key, share] : s["by_cluster"].object) {
      LockSiteStats::ClusterShare cs;
      cs.acquisitions = static_cast<std::uint64_t>(share["acquisitions"].number);
      cs.wait_ticks = static_cast<std::uint64_t>(share["wait_sum"].number);
      r.by_cluster[static_cast<std::uint32_t>(std::stoul(key))] = cs;
    }
    sites_.push_back(std::move(r));
  }
  return true;
}

bool ProfileReport::AddTrace(const JsonValue& doc, const TraceBuildOptions& opts,
                             std::string* error) {
  if (!doc.is_object() || !doc["traceEvents"].is_array()) {
    if (error != nullptr) {
      *error = "not a Chrome trace document (no traceEvents array)";
    }
    return false;
  }
  const std::uint32_t ppc = opts.procs_per_cluster == 0 ? 1 : opts.procs_per_cluster;

  // Re-attribute events to lock sites.  Acquire spans carry the lock name in
  // args.lock; release instants do too (older traces without the arg fall
  // into one "unknown" bucket).
  std::map<std::string, std::vector<AcquireEvent>> acquires;
  std::map<std::string, std::vector<double>> truncated_waits;
  std::map<std::pair<std::string, std::uint32_t>, std::vector<double>> releases;
  for (const JsonValue& e : doc["traceEvents"].array) {
    const std::string& name = e["name"].string_value;
    const std::uint32_t tid = static_cast<std::uint32_t>(e["tid"].number);
    const std::string lock =
        e["args"]["lock"].is_string() ? e["args"]["lock"].string_value : "unknown";
    if (name == "lock/acquire" && e["ph"].string_value == "X") {
      if (e["args"]["truncated"].bool_value) {
        // The run ended mid-wait: no grant, so no wait sample -- but the
        // waiter held a queue slot from its arrival to the end of the trace,
        // so it still counts for queue depth below.
        truncated_waits[lock].push_back(e["ts"].number);
        continue;
      }
      AcquireEvent a;
      a.tid = tid;
      a.ts_us = e["ts"].number;
      a.wait_us = e["dur"].number;
      a.grant_us = a.ts_us + a.wait_us;
      acquires[lock].push_back(a);
    } else if (name == "lock/release" && e["ph"].string_value == "i") {
      releases[{lock, tid}].push_back(e["ts"].number);
    }
  }
  for (auto& [key, rel] : releases) {
    std::sort(rel.begin(), rel.end());
  }

  for (auto& [lock, events] : acquires) {
    SiteReport r;
    r.name = lock;
    r.procs_per_cluster = ppc;
    r.acquisitions = events.size();
    r.ticks_per_us = 1.0;  // trace-derived shares are already microseconds

    // Grant order drives the handoff matrix (ownership passes grant to
    // grant); span overlap drives queue depth.
    std::sort(events.begin(), events.end(),
              [](const AcquireEvent& a, const AcquireEvent& b) {
                return a.grant_us != b.grant_us ? a.grant_us < b.grant_us
                                                : a.ts_us < b.ts_us;
              });
    bool have_prev = false;
    std::uint32_t prev_tid = 0;
    std::vector<double> waits;
    waits.reserve(events.size());
    for (const AcquireEvent& a : events) {
      waits.push_back(a.wait_us);
      if (a.wait_us > opts.contended_threshold_us) {
        ++r.contended;
      }
      if (have_prev) {
        switch (LockSiteStats::Classify(prev_tid, a.tid, ppc)) {
          case Handoff::kSameProcessor:
            ++r.handoff_same_processor;
            break;
          case Handoff::kSameCluster:
            ++r.handoff_same_cluster;
            break;
          case Handoff::kCrossCluster:
            ++r.handoff_cross_cluster;
            break;
        }
      }
      prev_tid = a.tid;
      have_prev = true;
      LockSiteStats::ClusterShare& share = r.by_cluster[a.tid / ppc];
      ++share.acquisitions;
      share.wait_ticks += static_cast<std::uint64_t>(std::llround(a.wait_us));
    }
    r.wait = StatsFromSamples(std::move(waits));

    // Queue depth: maximum number of simultaneously-open acquire spans.  A
    // two-pointer walk over the sorted arrival and departure times keeps the
    // running depth non-negative by construction -- the event-delta sweep it
    // replaces dipped negative on zero-length spans, whose departure sorted
    // ahead of the matching arrival at the same timestamp.  Only departures
    // strictly before an arrival clear a slot (a grant and the next waiter
    // arriving at the same tick did coexist at that instant; with `<` the
    // count of cleared slots also provably never exceeds i, so the depth
    // cannot underflow even when many zero-length spans share one tick).
    // Truncated spans are arrivals that never depart.
    std::vector<double> starts;
    std::vector<double> ends;
    starts.reserve(events.size());
    ends.reserve(events.size());
    for (const AcquireEvent& a : events) {
      starts.push_back(a.ts_us);
      ends.push_back(a.grant_us);
    }
    if (auto t_it = truncated_waits.find(lock); t_it != truncated_waits.end()) {
      starts.insert(starts.end(), t_it->second.begin(), t_it->second.end());
    }
    std::sort(starts.begin(), starts.end());
    std::sort(ends.begin(), ends.end());
    std::size_t max_depth = 0;
    std::size_t departed = 0;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      while (departed < ends.size() && ends[departed] < starts[i]) {
        ++departed;
      }
      max_depth = std::max(max_depth, i + 1 - departed);
    }
    r.max_queue_depth = static_cast<std::uint32_t>(max_depth);

    // Critical sections: per (lock, tid), each grant pairs with the next
    // release at or after it.  Grants with no following release (run ended
    // mid-hold) are skipped.
    std::vector<double> holds;
    std::map<std::uint32_t, std::vector<const AcquireEvent*>> per_tid;
    for (const AcquireEvent& a : events) {
      per_tid[a.tid].push_back(&a);
    }
    for (const auto& [tid, grants] : per_tid) {
      auto it = releases.find({lock, tid});
      if (it == releases.end()) {
        continue;
      }
      const std::vector<double>& rel = it->second;
      std::size_t ri = 0;
      for (const AcquireEvent* a : grants) {  // already grant-sorted
        while (ri < rel.size() && rel[ri] < a->grant_us - 1e-9) {
          ++ri;
        }
        if (ri == rel.size()) {
          break;
        }
        holds.push_back(rel[ri] - a->grant_us);
        ++ri;
      }
    }
    r.hold = StatsFromSamples(std::move(holds));
    sites_.push_back(std::move(r));
  }
  return true;
}

bool ProfileReport::AddSites(const SiteTable& table, std::string* error) {
  JsonValue doc;
  std::string parse_error;
  if (!hmetrics::JsonParser::Parse(table.ToJson(), &doc, &parse_error)) {
    if (error != nullptr) {
      *error = "SiteTable serialization round-trip failed: " + parse_error;
    }
    return false;
  }
  return AddLockProf(doc, error);
}

void ProfileReport::Rank() {
  std::stable_sort(sites_.begin(), sites_.end(), [](const SiteReport& a, const SiteReport& b) {
    return a.total_wait_us() > b.total_wait_us();
  });
}

std::map<std::uint32_t, ProfileReport::ClusterTotal> ProfileReport::ClusterTotals() const {
  std::map<std::uint32_t, ClusterTotal> totals;
  for (const SiteReport& s : sites_) {
    const double scale = s.ticks_per_us > 0 ? 1.0 / s.ticks_per_us : 1.0;
    for (const auto& [cluster, share] : s.by_cluster) {
      ClusterTotal& t = totals[cluster];
      t.acquisitions += share.acquisitions;
      t.wait_us += static_cast<double>(share.wait_ticks) * scale;
    }
  }
  return totals;
}

std::string ProfileReport::RenderText(std::size_t top) const {
  std::string out;
  std::uint64_t total_acq = 0;
  for (const SiteReport& s : sites_) {
    total_acq += s.acquisitions;
  }
  Append(&out, "hprof contention report: %zu site%s, %llu acquisitions\n\n", sites_.size(),
         sites_.size() == 1 ? "" : "s", static_cast<unsigned long long>(total_acq));

  Append(&out, "RANKED BY TOTAL WAIT TIME\n");
  Append(&out, "%4s  %-34s %10s %10s %7s %5s %12s %12s %14s\n", "rank", "lock", "acq", "cont",
         "cont%", "maxq", "wait-mean", "wait-p95", "total-wait");
  const std::size_t limit = top == 0 ? sites_.size() : std::min(top, sites_.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const SiteReport& s = sites_[i];
    Append(&out, "%4zu  %-34s %10llu %10llu %6.1f%% %5u %10.2fus %10.2fus %12.1fus\n", i + 1,
           s.name.c_str(), static_cast<unsigned long long>(s.acquisitions),
           static_cast<unsigned long long>(s.contended), s.contended_pct(), s.max_queue_depth,
           s.wait.mean_us, s.wait.p95_us, s.total_wait_us());
  }
  if (limit < sites_.size()) {
    Append(&out, "      ... %zu more site%s\n", sites_.size() - limit,
           sites_.size() - limit == 1 ? "" : "s");
  }

  Append(&out, "\nNUMA HANDOFFS (owner transitions)\n");
  Append(&out, "%-40s %11s %13s %14s %8s\n", "lock", "same-proc", "same-cluster", "cross-cluster",
         "remote%");
  for (std::size_t i = 0; i < limit; ++i) {
    const SiteReport& s = sites_[i];
    Append(&out, "%-40s %11llu %13llu %14llu %7.1f%%\n", s.name.c_str(),
           static_cast<unsigned long long>(s.handoff_same_processor),
           static_cast<unsigned long long>(s.handoff_same_cluster),
           static_cast<unsigned long long>(s.handoff_cross_cluster), s.remote_handoff_pct());
  }

  const auto clusters = ClusterTotals();
  double cluster_wait_total = 0;
  for (const auto& [cluster, t] : clusters) {
    cluster_wait_total += t.wait_us;
  }
  Append(&out, "\nPER-CLUSTER CONTENTION\n");
  Append(&out, "%-8s %13s %16s %12s\n", "cluster", "acquisitions", "total-wait", "wait-share");
  for (const auto& [cluster, t] : clusters) {
    Append(&out, "%-8u %13llu %14.1fus %11.1f%%\n", cluster,
           static_cast<unsigned long long>(t.acquisitions), t.wait_us,
           cluster_wait_total > 0 ? 100.0 * t.wait_us / cluster_wait_total : 0.0);
  }

  Append(&out, "\nCRITICAL SECTIONS\n");
  Append(&out, "%-40s %10s %10s %10s %10s %10s\n", "lock", "count", "mean", "p50", "p95", "max");
  for (std::size_t i = 0; i < limit; ++i) {
    const SiteReport& s = sites_[i];
    Append(&out, "%-40s %10llu %8.2fus %8.2fus %8.2fus %8.2fus\n", s.name.c_str(),
           static_cast<unsigned long long>(s.hold.count), s.hold.mean_us, s.hold.p50_us,
           s.hold.p95_us, s.hold.max_us);
  }
  return out;
}

namespace {

void WriteHistStats(hmetrics::JsonWriter* w, const HistStats& s) {
  w->BeginObject();
  w->Field("count", s.count);
  w->Field("sum_us", s.sum_us);
  w->Field("min_us", s.min_us);
  w->Field("max_us", s.max_us);
  w->Field("mean_us", s.mean_us);
  w->Field("p50_us", s.p50_us);
  w->Field("p95_us", s.p95_us);
  w->Field("p99_us", s.p99_us);
  w->EndObject();
}

}  // namespace

std::string ProfileReport::RenderJson() const {
  hmetrics::JsonWriter w;
  w.BeginObject();
  w.Field("schema", kReportSchema);
  w.Key("sites");
  w.BeginArray();
  for (const SiteReport& s : sites_) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("procs_per_cluster", std::uint64_t{s.procs_per_cluster});
    w.Field("acquisitions", s.acquisitions);
    w.Field("contended", s.contended);
    w.Field("contended_pct", s.contended_pct());
    w.Field("max_queue_depth", std::uint64_t{s.max_queue_depth});
    w.Field("total_wait_us", s.total_wait_us());
    w.Key("wait");
    WriteHistStats(&w, s.wait);
    w.Key("hold");
    WriteHistStats(&w, s.hold);
    w.Key("handoffs");
    w.BeginObject();
    w.Field("same_processor", s.handoff_same_processor);
    w.Field("same_cluster", s.handoff_same_cluster);
    w.Field("cross_cluster", s.handoff_cross_cluster);
    w.Field("remote_pct", s.remote_handoff_pct());
    w.EndObject();
    w.Key("by_cluster");
    w.BeginObject();
    const double scale = s.ticks_per_us > 0 ? 1.0 / s.ticks_per_us : 1.0;
    for (const auto& [cluster, share] : s.by_cluster) {
      w.Key(std::to_string(cluster));
      w.BeginObject();
      w.Field("acquisitions", share.acquisitions);
      w.Field("wait_us", static_cast<double>(share.wait_ticks) * scale);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("clusters");
  w.BeginObject();
  for (const auto& [cluster, t] : ClusterTotals()) {
    w.Key(std::to_string(cluster));
    w.BeginObject();
    w.Field("acquisitions", t.acquisitions);
    w.Field("wait_us", t.wait_us);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace hprof
