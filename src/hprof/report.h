// Offline analysis: turns raw profiling data into the ranked contention
// report the hprof CLI prints.
//
// Two input formats feed the same report:
//   - hurricane-lockprof/1 documents (SiteTable::ToJson), the in-process
//     aggregation path -- cheap, always exact, no trace needed;
//   - Chrome trace_event documents (TraceSession::WriteChromeTrace), the
//     trace-analysis path: lock/acquire spans and lock/release instants are
//     re-attributed to lock sites, wait times come from span durations,
//     critical-section lengths from grant-to-release gaps, handoffs from the
//     per-lock grant order, and queue depths from span overlap.
//
// The report ranks sites by total wait time (the cost a lock imposed on the
// rest of the system, the paper's Figure 5 criterion), breaks contention down
// per cluster, and profiles critical-section lengths.  RenderText output is
// fully deterministic for golden-file testing.

#ifndef HPROF_REPORT_H_
#define HPROF_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hmetrics/json.h"
#include "src/hprof/lock_site.h"

namespace hprof {

inline constexpr const char* kReportSchema = "hurricane-hprof-report/1";

// Summary statistics of one latency distribution, in microseconds.
struct HistStats {
  std::uint64_t count = 0;
  double sum_us = 0;
  double min_us = 0;
  double max_us = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

// One lock site's row in the report.
struct SiteReport {
  std::string name;
  std::uint32_t procs_per_cluster = 1;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint32_t max_queue_depth = 0;
  HistStats wait;
  HistStats hold;
  std::uint64_t handoff_same_processor = 0;
  std::uint64_t handoff_same_cluster = 0;
  std::uint64_t handoff_cross_cluster = 0;
  // cluster id -> this cluster's share of the site's traffic
  std::map<std::uint32_t, LockSiteStats::ClusterShare> by_cluster;
  double ticks_per_us = 1.0;  // scale of by_cluster wait_ticks

  double contended_pct() const {
    return acquisitions == 0
               ? 0.0
               : 100.0 * static_cast<double>(contended) / static_cast<double>(acquisitions);
  }
  double total_wait_us() const { return wait.sum_us; }
  std::uint64_t handoffs_total() const {
    return handoff_same_processor + handoff_same_cluster + handoff_cross_cluster;
  }
  // Fraction of owner transitions that left the cluster -- the NUMA signal.
  double remote_handoff_pct() const {
    const std::uint64_t total = handoffs_total();
    return total == 0
               ? 0.0
               : 100.0 * static_cast<double>(handoff_cross_cluster) / static_cast<double>(total);
  }
};

struct TraceBuildOptions {
  std::uint32_t procs_per_cluster = 4;  // HECTOR: 4 processors per station
  // Acquire spans longer than this count as contended.  The uncontended
  // remote lock/unlock pairs of Section 4.1.1 finish in ~1 us of acquire
  // latency; 5 us cleanly separates them from real waiting.
  double contended_threshold_us = 5.0;
};

class ProfileReport {
 public:
  // Consumes a parsed hurricane-lockprof/1 document.  Appends to any rows
  // already present (multi-file merges keep each file's sites distinct).
  bool AddLockProf(const hmetrics::JsonValue& doc, std::string* error);

  // Consumes a parsed Chrome trace document (an object with "traceEvents").
  bool AddTrace(const hmetrics::JsonValue& doc, const TraceBuildOptions& opts,
                std::string* error);

  // Convenience: profile an in-memory SiteTable (serializes through the
  // lockprof schema so both producers exercise one code path).
  bool AddSites(const SiteTable& table, std::string* error);

  // Sorts sites by total wait, descending (stable; ties keep input order).
  void Rank();

  const std::vector<SiteReport>& sites() const { return sites_; }
  std::vector<SiteReport>& sites() { return sites_; }

  // Aggregate per-cluster contention across every site (unit-normalized).
  struct ClusterTotal {
    std::uint64_t acquisitions = 0;
    double wait_us = 0;
  };
  std::map<std::uint32_t, ClusterTotal> ClusterTotals() const;

  // Deterministic fixed-width text report; `top` caps the ranked table
  // (0 = all sites).
  std::string RenderText(std::size_t top = 0) const;

  // hurricane-hprof-report/1 JSON document.
  std::string RenderJson() const;

 private:
  std::vector<SiteReport> sites_;
};

}  // namespace hprof

#endif  // HPROF_REPORT_H_
