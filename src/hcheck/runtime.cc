#include "src/hcheck/runtime.h"

#include <cstdio>
#include <sstream>

namespace hcheck {
namespace detail {

namespace {

thread_local Runtime* tls_runtime = nullptr;
thread_local std::uint32_t tls_tid = 0;

// Reusable OS threads.  A checker run executes thousands of schedules, each
// with its own Runtime and virtual threads; creating and joining real threads
// per execution would dominate the runtime, so workers are parked between
// executions and handed the next virtual thread's main function.  The pool is
// process-global and intentionally leaked (workers are detached and park
// forever at exit).
class WorkerPool {
 public:
  static WorkerPool& Get() {
    static WorkerPool* pool = new WorkerPool;
    return *pool;
  }

  void Run(std::function<void()> fn) {
    Worker* w = nullptr;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (!idle_.empty()) {
        w = idle_.back();
        idle_.pop_back();
      }
    }
    if (w == nullptr) {
      w = new Worker;
      std::thread([this, w] { Loop(w); }).detach();
    }
    {
      std::lock_guard<std::mutex> lk(w->m);
      w->fn = std::move(fn);
      w->has_fn = true;
    }
    w->cv.notify_one();
  }

 private:
  struct Worker {
    std::mutex m;
    std::condition_variable cv;
    std::function<void()> fn;
    bool has_fn = false;
  };

  void Loop(Worker* w) {
    while (true) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> lk(w->m);
        w->cv.wait(lk, [&] { return w->has_fn; });
        fn = std::move(w->fn);
        w->has_fn = false;
      }
      fn();
      std::lock_guard<std::mutex> lk(m_);
      idle_.push_back(w);
    }
  }

  std::mutex m_;
  std::vector<Worker*> idle_;
};

const char* MoName(int mo) {
  switch (mo) {
    case static_cast<int>(std::memory_order_relaxed): return "rlx";
    case static_cast<int>(std::memory_order_consume): return "csm";
    case static_cast<int>(std::memory_order_acquire): return "acq";
    case static_cast<int>(std::memory_order_release): return "rel";
    case static_cast<int>(std::memory_order_acq_rel): return "ar";
    case static_cast<int>(std::memory_order_seq_cst): return "sc";
    default: return "?";
  }
}

bool IsAcquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

bool IsRelease(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace

Runtime::Runtime(const Config& cfg, Chooser choose)
    : cfg_(cfg), choose_(std::move(choose)), preemptions_left_(cfg.preemption_bound) {
  trace_.reserve(kTraceCap);
}

Runtime::~Runtime() = default;

Runtime* Runtime::Current() { return tls_runtime; }

VThread& Runtime::Self() { return *threads_[tls_tid]; }

void Runtime::Run(const std::function<void()>& body) {
  {
    std::lock_guard<std::mutex> lk(done_m_);
    created_count_ = 1;
  }
  threads_.push_back(std::make_unique<VThread>());
  VThread& t0 = *threads_[0];
  t0.id = 0;
  t0.body = body;
  WorkerPool::Get().Run([this] { ThreadMain(0); });
  ResumeInitial(t0);
  {
    std::unique_lock<std::mutex> lk(done_m_);
    done_cv_.wait(lk, [&] { return done_count_ == created_count_; });
  }
  // Every virtual thread has passed its final done-handshake (which holds
  // done_m_ while notifying), so no worker touches this Runtime anymore.
}

void Runtime::ResumeInitial(VThread& t0) {
  {
    std::lock_guard<std::mutex> lk(t0.m);
    t0.go = true;
  }
  t0.cv.notify_one();
}

void Runtime::ThreadMain(std::uint32_t tid) {
  tls_runtime = this;
  tls_tid = tid;
  VThread& self = *threads_[tid];
  try {
    WaitForGo(self);
    self.body();
  } catch (AbortExecution&) {
    // Unwound by a failure elsewhere (or our own FailNow); nothing to do.
  } catch (const std::exception& e) {
    try {
      FailNow("exception", std::string("uncaught exception in checked code: ") + e.what());
    } catch (AbortExecution&) {
    }
  } catch (...) {
    try {
      FailNow("exception", "uncaught non-std exception in checked code");
    } catch (AbortExecution&) {
    }
  }
  OnThreadDone(self);
  // This OS thread returns to the worker pool; scrub the execution TLS.
  tls_runtime = nullptr;
  tls_tid = 0;
}

void Runtime::WaitForGo(VThread& self) {
  std::unique_lock<std::mutex> lk(self.m);
  self.cv.wait(lk, [&] { return self.go || aborting(); });
  self.go = false;
  if (aborting()) {
    lk.unlock();
    throw AbortExecution{};
  }
}

void Runtime::SwitchFromTo(VThread& self, VThread& next) {
  next.yielded = false;
  current_ = next.id;
  {
    std::lock_guard<std::mutex> lk(next.m);
    next.go = true;
  }
  next.cv.notify_one();
  if (self.state == ThreadState::kDone) {
    return;  // a finished thread hands off and exits; nothing resumes it
  }
  WaitForGo(self);
}

std::vector<VThread*> Runtime::RunnableOthers(std::uint32_t self_id) {
  std::vector<VThread*> out;
  for (auto& t : threads_) {
    if (t->id != self_id && t->state == ThreadState::kRunnable) {
      out.push_back(t.get());
    }
  }
  return out;
}

bool Runtime::AllDone() const {
  for (const auto& t : threads_) {
    if (t->state != ThreadState::kDone) {
      return false;
    }
  }
  return true;
}

std::size_t Runtime::Choose(std::size_t n, ChoiceKind kind) {
  if (n <= 1) {
    return 0;
  }
  std::size_t k = choose_(kind, n);
  return k < n ? k : n - 1;
}

void Runtime::CheckOpBudget() {
  if (++ops_ > cfg_.max_ops) {
    FailNow("op-budget",
            "operation budget exceeded (" + std::to_string(cfg_.max_ops) +
                " shim ops) — livelock, or raise Options::max_ops_per_exec");
  }
}

void Runtime::SchedulePoint(const char* what) {
  if (aborting()) {
    throw AbortExecution{};
  }
  (void)what;
  CheckOpBudget();
  VThread& self = Self();
  std::vector<VThread*> others = RunnableOthers(self.id);
  if (others.empty() || preemptions_left_ <= 0) {
    return;
  }
  std::size_t k = Choose(1 + others.size());
  if (k == 0) {
    return;  // keep running (the common, depth-first-first branch)
  }
  --preemptions_left_;
  Trace("preempt");
  SwitchFromTo(self, *others[k - 1]);
}

void Runtime::YieldPoint() {
  if (aborting()) {
    throw AbortExecution{};
  }
  CheckOpBudget();
  VThread& self = Self();
  self.yielded = true;
  std::vector<VThread*> others = RunnableOthers(self.id);
  if (others.empty()) {
    self.yielded = false;
    return;  // nothing else can run; keep spinning
  }
  // Prefer threads that have not themselves yielded: a spinner must let the
  // holder make progress, or DFS could ping-pong two spinners forever.
  std::vector<VThread*> fresh;
  for (VThread* t : others) {
    if (!t->yielded) {
      fresh.push_back(t);
    }
  }
  std::vector<VThread*>& cands = fresh.empty() ? others : fresh;
  std::size_t k = Choose(cands.size());
  SwitchFromTo(self, *cands[k]);  // yields are free: no preemption charge
}

void Runtime::BlockSelf(const void* obj, const char* what) {
  if (aborting()) {
    throw AbortExecution{};
  }
  VThread& self = Self();
  self.state = ThreadState::kBlocked;
  self.block_obj = obj;
  self.block_what = what;
  Trace("block");
  std::vector<VThread*> cands = RunnableOthers(self.id);
  if (cands.empty()) {
    DeadlockFail();
  }
  std::size_t k = Choose(cands.size());
  SwitchFromTo(self, *cands[k]);
  // Resumed: MakeRunnable set us kRunnable and a scheduler decision picked us.
  self.block_obj = nullptr;
  self.block_what = nullptr;
}

void Runtime::MakeRunnable(std::uint32_t tid) {
  VThread& t = *threads_[tid];
  if (t.state == ThreadState::kBlocked) {
    t.state = ThreadState::kRunnable;
  }
}

[[noreturn]] void Runtime::DeadlockFail() {
  bool any_cv = false;
  std::ostringstream os;
  os << "no runnable thread:";
  for (const auto& t : threads_) {
    if (t->state == ThreadState::kBlocked) {
      os << " T" << t->id << "=" << (t->block_what ? t->block_what : "?");
      if (t->block_what != nullptr && std::string(t->block_what).find("condvar") != std::string::npos) {
        any_cv = true;
      }
    }
  }
  FailNow(any_cv ? "lost-signal" : "deadlock",
          std::string(any_cv ? "lost signal / deadlock — a thread waits on a condvar no one "
                               "will notify; " : "deadlock; ") + os.str());
  // FailNow throws for non-done threads; BlockSelf callers are never done.
  throw AbortExecution{};
}

void Runtime::FailNow(const std::string& kind, const std::string& msg) {
  if (!failed_) {
    failed_ = true;
    fail_kind_ = kind;
    fail_message_ = msg;
    fail_trace_ = RenderTrace();
  }
  aborting_.store(true, std::memory_order_release);
  VThread& self = Self();
  for (auto& t : threads_) {
    if (t.get() == &self) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(t->m);
      t->go = true;
    }
    t->cv.notify_all();
  }
  if (self.state != ThreadState::kDone) {
    throw AbortExecution{};
  }
}

void Runtime::OnThreadDone(VThread& self) {
  self.state = ThreadState::kDone;
  if (!aborting()) {
    // Wake joiners.
    for (auto& t : threads_) {
      if (t->state == ThreadState::kBlocked && t->block_obj == &self) {
        t->state = ThreadState::kRunnable;
      }
    }
    std::vector<VThread*> cands = RunnableOthers(self.id);
    if (!cands.empty()) {
      std::size_t k = Choose(cands.size());
      SwitchFromTo(self, *cands[k]);
    } else if (!AllDone()) {
      try {
        DeadlockFail();
      } catch (AbortExecution&) {
        // Already done; fall through to signal completion.
      }
    }
  }
  {
    // Last touch of the Runtime by this virtual thread.  Notify while holding
    // done_m_: the host cannot observe the final count (and destroy the
    // Runtime) until this thread has released the mutex.
    std::lock_guard<std::mutex> lk(done_m_);
    ++done_count_;
    done_cv_.notify_all();
  }
}

std::uint32_t Runtime::SpawnThread(std::function<void()> body) {
  SchedulePoint("spawn");
  if (threads_.size() >= kMaxModelThreads) {
    FailNow("too-many-threads",
            "more than " + std::to_string(kMaxModelThreads) + " virtual threads spawned");
  }
  VThread& self = Self();
  const std::uint32_t id = static_cast<std::uint32_t>(threads_.size());
  {
    std::lock_guard<std::mutex> lk(done_m_);
    ++created_count_;
  }
  threads_.push_back(std::make_unique<VThread>());
  VThread& child = *threads_[id];
  child.id = id;
  child.body = std::move(body);
  child.clock.Join(self.clock);  // fork edge
  Trace("spawn");
  WorkerPool::Get().Run([this, id] { ThreadMain(id); });
  return id;
}

void Runtime::JoinThread(std::uint32_t tid) {
  SchedulePoint("join");
  VThread& target = *threads_[tid];
  while (target.state != ThreadState::kDone) {
    BlockSelf(&target, "join");
  }
  Self().clock.Join(target.clock);  // join edge
}

// --- memory model --------------------------------------------------------------

detail::Location* Runtime::NewLocation() {
  auto loc = std::make_unique<Location>();
  loc->id = static_cast<std::uint32_t>(locations_.size());
  for (std::uint32_t i = 0; i < kMaxModelThreads; ++i) {
    loc->stale_left[i] = cfg_.stale_read_budget;
  }
  // The initial value is a store by the creating thread; its message carries
  // the creator's clock so initialization is visible wherever the object is.
  VThread& self = Self();
  StoreMeta init;
  init.tid = self.id;
  init.ts = self.clock.c[self.id];
  init.msg = self.clock;
  loc->stores.push_back(init);
  locations_.push_back(std::move(loc));
  return locations_.back().get();
}

detail::MutexState* Runtime::NewMutex() {
  auto m = std::make_unique<MutexState>();
  m->id = static_cast<std::uint32_t>(mutexes_.size());
  m->clk = Self().clock;  // construction happens-before first lock
  mutexes_.push_back(std::move(m));
  return mutexes_.back().get();
}

detail::CondVarState* Runtime::NewCondVar() {
  auto cv = std::make_unique<CondVarState>();
  cv->id = static_cast<std::uint32_t>(condvars_.size());
  condvars_.push_back(std::move(cv));
  return condvars_.back().get();
}

void Runtime::ReadAt(Location& loc, std::size_t idx, std::memory_order mo) {
  VThread& t = Self();
  const StoreMeta& sm = loc.stores[idx];
  if (idx > loc.floor[t.id]) {
    loc.floor[t.id] = static_cast<std::uint32_t>(idx);
  }
  t.acq_pending.Join(sm.msg);
  if (IsAcquire(mo)) {
    t.clock.Join(sm.msg);
  }
  if (mo == std::memory_order_seq_cst) {
    sc_clock_.Join(t.clock);
  }
}

std::size_t Runtime::PickLoadIndex(Location& loc, std::memory_order mo) {
  VThread& t = Self();
  if (mo == std::memory_order_seq_cst) {
    // seq_cst loads are serialized against all earlier seq_cst ops.
    t.clock.Join(sc_clock_);
  }
  const std::size_t latest = loc.stores.size() - 1;
  // Coherence floor: the newest store whose *event* this thread already knows
  // about.  Reading anything older would violate read-read coherence.
  std::size_t f = loc.floor[t.id];
  for (std::size_t j = latest; j > f; --j) {
    const StoreMeta& sm = loc.stores[j];
    if (t.clock.Covers(sm.tid, sm.ts)) {
      f = j;
      break;
    }
  }
  std::size_t pick = latest;
  if (f < latest && loc.stale_left[t.id] > 0) {
    // Branch point: this load may legally return a stale value.  Choice 0 is
    // the freshest store so the common path is explored first.
    const std::size_t k = Choose(latest - f + 1, ChoiceKind::kLoad);
    pick = latest - k;
  }
  if (pick < latest) {
    --loc.stale_left[t.id];
  } else {
    loc.stale_left[t.id] = cfg_.stale_read_budget;
  }
  ReadAt(loc, pick, mo);
  return pick;
}

std::size_t Runtime::RmwReadLatest(Location& loc, std::memory_order mo) {
  VThread& t = Self();
  if (mo == std::memory_order_seq_cst) {
    t.clock.Join(sc_clock_);
  }
  const std::size_t latest = loc.stores.size() - 1;
  ReadAt(loc, latest, mo);
  return latest;
}

void Runtime::CommitStore(Location& loc, std::memory_order mo, std::size_t rmw_read_idx) {
  VThread& t = Self();
  if (mo == std::memory_order_seq_cst) {
    t.clock.Join(sc_clock_);
  }
  ++t.clock.c[t.id];
  StoreMeta sm;
  sm.tid = t.id;
  sm.ts = t.clock.c[t.id];
  sm.msg = IsRelease(mo) ? t.clock : t.rel_fence;
  if (rmw_read_idx != static_cast<std::size_t>(-1)) {
    // C++20 release sequence: an RMW passes along the message of the store it
    // replaced, so acquire loads of the RMW still synchronize with the head.
    sm.msg.Join(loc.stores[rmw_read_idx].msg);
  }
  loc.stores.push_back(sm);
  loc.floor[t.id] = static_cast<std::uint32_t>(loc.stores.size() - 1);
  if (mo == std::memory_order_seq_cst) {
    sc_clock_.Join(t.clock);
  }
}

void Runtime::Fence(std::memory_order mo) {
  VThread& t = Self();
  if (IsAcquire(mo)) {
    t.clock.Join(t.acq_pending);
  }
  if (mo == std::memory_order_seq_cst) {
    t.clock.Join(sc_clock_);
    sc_clock_.Join(t.clock);
  }
  if (IsRelease(mo)) {
    t.rel_fence = t.clock;
  }
  Trace("fence", ' ', 0, false, 0, static_cast<int>(mo));
}

// --- mutex / condvar -----------------------------------------------------------

void Runtime::MutexLock(MutexState& m) {
  VThread& self = Self();
  while (m.owner != -1) {
    BlockSelf(&m, "mutex lock");
  }
  m.owner = static_cast<int>(self.id);
  self.clock.Join(m.clk);
  Trace("mtx.lock", 'm', m.id);
}

bool Runtime::MutexTryLock(MutexState& m) {
  VThread& self = Self();
  if (m.owner != -1) {
    Trace("mtx.trylock!", 'm', m.id);
    return false;
  }
  m.owner = static_cast<int>(self.id);
  self.clock.Join(m.clk);
  Trace("mtx.trylock", 'm', m.id);
  return true;
}

void Runtime::MutexUnlock(MutexState& m, bool internal) {
  VThread& self = Self();
  if (m.owner != static_cast<int>(self.id)) {
    FailNow("mutex-misuse", "unlock of a mutex not held by this thread");
  }
  ++self.clock.c[self.id];
  m.clk.Join(self.clock);
  m.owner = -1;
  if (!internal) {
    Trace("mtx.unlock", 'm', m.id);
  }
  for (auto& t : threads_) {
    if (t->state == ThreadState::kBlocked && t->block_obj == &m) {
      t->state = ThreadState::kRunnable;  // wake-all; they re-compete
    }
  }
}

void Runtime::CvWait(CondVarState& cv, MutexState& m) {
  VThread& self = Self();
  Trace("cv.wait", 'c', cv.id);
  // Atomically: release the mutex and enter the wait set (no schedule point
  // in between, matching std::condition_variable).
  MutexUnlock(m, /*internal=*/true);
  cv.waiters.push_back(self.id);
  BlockSelf(&cv, "condvar wait");
  // A notifier removed us from the wait set and joined its clock into ours.
  // The caller re-acquires the mutex (with its own schedule points).
}

void Runtime::CvNotify(CondVarState& cv, bool all) {
  VThread& self = Self();
  Trace(all ? "cv.notify_all" : "cv.notify_one", 'c', cv.id);
  ++self.clock.c[self.id];
  while (!cv.waiters.empty()) {
    const std::uint32_t tid = cv.waiters.front();
    cv.waiters.erase(cv.waiters.begin());
    VThread& target = *threads_[tid];
    target.clock.Join(self.clock);  // notify happens-before wakeup
    MakeRunnable(tid);
    if (!all) {
      break;
    }
  }
}

// --- tracing -------------------------------------------------------------------

void Runtime::Trace(const char* op, char obj_kind, std::uint32_t obj_id, bool has_value,
                    std::uint64_t value, int mo) {
  TraceEvent ev;
  ev.tid = static_cast<std::uint8_t>(current_);
  ev.op = op;
  ev.obj_kind = obj_kind;
  ev.obj_id = obj_id;
  ev.has_value = has_value;
  ev.value = value;
  ev.mo = static_cast<std::uint8_t>(mo);
  if (trace_.size() < kTraceCap) {
    trace_.push_back(ev);
  } else {
    trace_[trace_next_ % kTraceCap] = ev;
  }
  ++trace_next_;
}

std::string Runtime::RenderTrace() const {
  std::ostringstream os;
  os << "last events (oldest first):\n";
  const std::size_t n = trace_.size();
  const std::size_t start = trace_next_ > n ? trace_next_ - n : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = trace_[(start + i) % kTraceCap];
    os << "  T" << static_cast<int>(ev.tid) << " " << ev.op;
    if (ev.obj_kind != ' ') {
      os << " " << ev.obj_kind << ev.obj_id;
    }
    if (ev.has_value) {
      os << " val=0x" << std::hex << ev.value << std::dec;
    }
    if (ev.mo != 0xff) {
      os << " [" << MoName(ev.mo) << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace detail
}  // namespace hcheck
