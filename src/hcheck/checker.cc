#include "src/hcheck/checker.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/hcheck/atomic.h"  // detail::RequireRuntime

namespace hcheck {

namespace {

// DFS over the decision tree.  Each execution replays the recorded prefix,
// then extends it with first-choice (0) decisions; Advance() backtracks to
// the deepest node with an untried sibling.
struct DfsStrategy {
  struct Node {
    std::size_t n;       // arity observed at this decision
    std::size_t chosen;  // branch taken
  };
  std::vector<Node> path;
  std::size_t depth = 0;
  bool nondeterministic = false;

  std::size_t Choose(std::size_t n) {
    if (depth < path.size()) {
      Node& node = path[depth++];
      if (node.n != n) {
        // The program made different choices than last time with the same
        // decisions replayed — it consulted something outside the model
        // (time, host randomness, real thread ids...).  Clamp so the
        // execution still terminates, and report after the run.
        nondeterministic = true;
        node.n = n;
        node.chosen = std::min(node.chosen, n - 1);
      }
      return node.chosen;
    }
    path.push_back({n, 0});
    ++depth;
    return 0;
  }

  void BeginExecution() { depth = 0; }

  // Moves to the next unexplored schedule; false when the space is exhausted.
  bool Advance() {
    while (!path.empty() && path.back().chosen + 1 >= path.back().n) {
      path.pop_back();
    }
    if (path.empty()) {
      return false;
    }
    ++path.back().chosen;
    return true;
  }

  std::string PathString() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i > 0) os << ",";
      os << path[i].chosen;
    }
    return os.str();
  }
};

struct XorShift64 {
  std::uint64_t s;
  // Consecutive integer seeds (the normal case: opts.seed + i) are run
  // through a splitmix64 finalizer first — raw xorshift states that differ
  // in one bit produce highly correlated streams, which makes thousands of
  // "distinct" schedules explore nearly the same interleaving.
  explicit XorShift64(std::uint64_t seed) : s(Mix(seed)) {}
  static std::uint64_t Mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

Options ApplyEnv(Options opts) {
  if (EnvU64("HCHECK_EXHAUSTIVE", 0) != 0) {
    opts.preemption_bound = std::max(opts.preemption_bound, 3);
    opts.max_schedules = std::max<std::uint64_t>(opts.max_schedules, 500000);
    if (opts.random_schedules > 0) {
      opts.random_schedules = std::max<std::uint64_t>(opts.random_schedules, 200000);
    }
  }
  opts.preemption_bound = static_cast<int>(
      EnvU64("HCHECK_PREEMPTIONS", static_cast<std::uint64_t>(opts.preemption_bound)));
  const std::uint64_t sched = EnvU64("HCHECK_SCHEDULES", 0);
  if (sched != 0) {
    opts.max_schedules = sched;
    if (opts.random_schedules > 0) {
      opts.random_schedules = sched;
    }
  }
  opts.seed = EnvU64("HCHECK_SEED", opts.seed);
  return opts;
}

detail::Runtime::Config RuntimeConfig(const Options& opts) {
  detail::Runtime::Config cfg;
  cfg.preemption_bound = opts.preemption_bound;
  cfg.max_ops = opts.max_ops_per_exec;
  cfg.stale_read_budget = opts.stale_read_budget;
  return cfg;
}

void FillFailure(Result& res, const detail::Runtime& rt) {
  res.failed = true;
  res.kind = rt.fail_kind();
  res.message = rt.fail_message();
  res.trace = rt.fail_trace();
}

}  // namespace

Result Check(const Options& user_opts, const std::function<void()>& body) {
  const Options opts = ApplyEnv(user_opts);
  Result res;

  if (opts.random_schedules > 0) {
    for (std::uint64_t i = 0; i < opts.random_schedules; ++i) {
      const std::uint64_t seed = opts.seed + i;
      XorShift64 rng(seed);
      // Scheduling decisions are biased toward choice 0 (keep running): most
      // concurrency bugs need one ill-timed preemption followed by a long
      // uninterrupted run, which a uniform chooser almost never produces.
      // Weak-memory load decisions are uniform — a stale read is the whole
      // point of exploring them, so it must not be starved by the same bias.
      detail::Runtime rt(
          RuntimeConfig(opts),
          [&rng](detail::Runtime::ChoiceKind kind, std::size_t n) -> std::size_t {
            const std::uint64_t r = rng.Next();
            if (kind == detail::Runtime::ChoiceKind::kLoad) {
              return static_cast<std::size_t>(r % n);
            }
            if ((r & 7) != 0) {
              return 0;
            }
            return 1 + static_cast<std::size_t>((r >> 3) % (n - 1));
          });
      rt.Run(body);
      ++res.schedules_run;
      if (rt.failed()) {
        FillFailure(res, rt);
        res.seed = seed;
        std::ostringstream os;
        os << res.message << "\n[hcheck] kind=" << res.kind << " schedule="
           << res.schedules_run << " seed=" << seed
           << " (replay: HCHECK_SEED=" << seed << " HCHECK_SCHEDULES=1)";
        res.message = os.str();
        return res;
      }
    }
    return res;
  }

  DfsStrategy dfs;
  while (res.schedules_run < opts.max_schedules) {
    dfs.BeginExecution();
    detail::Runtime rt(RuntimeConfig(opts),
                       [&dfs](detail::Runtime::ChoiceKind, std::size_t n) {
                         return dfs.Choose(n);
                       });
    rt.Run(body);
    ++res.schedules_run;
    if (rt.failed()) {
      FillFailure(res, rt);
      res.choice_path = dfs.PathString();
      std::ostringstream os;
      os << res.message << "\n[hcheck] kind=" << res.kind << " schedule="
         << res.schedules_run << " preemption_bound=" << opts.preemption_bound
         << " path=[" << res.choice_path << "]";
      res.message = os.str();
      return res;
    }
    if (dfs.nondeterministic) {
      res.failed = true;
      res.kind = "nondeterminism";
      res.message =
          "checked body is nondeterministic: replaying the same decisions "
          "produced different choice points (it must not consult time, host "
          "randomness, or real thread identity)";
      res.choice_path = dfs.PathString();
      return res;
    }
    if (!dfs.Advance()) {
      res.exhausted = true;
      return res;
    }
  }
  return res;
}

// --- in-body primitives --------------------------------------------------------

Thread Spawn(std::function<void()> body) {
  auto& rt = detail::RequireRuntime("Spawn called");
  Thread t;
  t.id_ = rt.SpawnThread(std::move(body));
  t.valid_ = true;
  return t;
}

void Thread::Join() {
  if (!valid_) {
    return;
  }
  auto* rt = detail::Runtime::Current();
  if (rt == nullptr || rt->aborting()) {
    return;
  }
  rt->JoinThread(id_);
  valid_ = false;
}

void Yield() {
  auto* rt = detail::Runtime::Current();
  if (rt == nullptr) {
    return;
  }
  rt->YieldPoint();
}

void Interleave() {
  auto* rt = detail::Runtime::Current();
  if (rt == nullptr) {
    return;
  }
  rt->SchedulePoint("interleave");
}

std::uint32_t CurrentTestThreadId() {
  auto* rt = detail::Runtime::Current();
  return rt == nullptr ? 0 : rt->current_thread();
}

void FailCheck(const std::string& msg) {
  auto& rt = detail::RequireRuntime("FailCheck called");
  rt.FailNow("assert", msg);
}

}  // namespace hcheck
