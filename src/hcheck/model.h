// hcheck memory model primitives (see DESIGN.md, "hcheck" section).
//
// The model is a loom/relacy-style operational weak-memory model:
//
//   - Every atomic location keeps its full *modification order*: the list of
//     all stores ever performed, in execution order.  A load does not have to
//     read the newest store; it may read any store that coherence and
//     happens-before still allow, and the schedule explorer branches on that
//     choice.  This is how Dekker-style store-load races are found on an x86
//     host whose hardware would hide them.
//   - Happens-before is tracked with per-thread vector clocks.  A release
//     store attaches the storing thread's clock as a "message"; an acquire
//     load that reads it joins the message into its own clock.  Fences and
//     read-modify-writes follow the C++20 rules (release sequences are the
//     RMW-only C++20 kind).
//   - seq_cst operations additionally synchronize through one global clock,
//     which serializes them in execution order.  This is slightly *stronger*
//     than the C++ total order S (every seq_cst op acts like it is fenced),
//     so a program the checker passes may still have seq_cst-only bugs that
//     need the weaker axiomatic model; every bug it reports is real.
//
// What is deliberately not modeled: non-atomic data races (use TSan for
// those), consume ordering (treated as acquire), spurious CAS failures
// (compare_exchange_weak behaves like _strong), and out-of-thin-air values.

#ifndef HCHECK_MODEL_H_
#define HCHECK_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hcheck {

// Virtual threads per checked program.  Small on purpose: exploration is
// exponential in the thread count and the paper's protocols need 2-4.
inline constexpr std::uint32_t kMaxModelThreads = 8;

struct VectorClock {
  std::uint32_t c[kMaxModelThreads] = {};

  void Join(const VectorClock& o) {
    for (std::uint32_t i = 0; i < kMaxModelThreads; ++i) {
      if (o.c[i] > c[i]) {
        c[i] = o.c[i];
      }
    }
  }

  // Does this clock know about event `ts` of thread `tid`?
  bool Covers(std::uint32_t tid, std::uint32_t ts) const { return c[tid] >= ts; }
};

namespace detail {

// One store in a location's modification order.  The stored value itself
// lives in the typed hcheck::Atomic<T> wrapper, index-parallel to this.
struct StoreMeta {
  std::uint32_t tid = 0;  // storing thread
  std::uint32_t ts = 0;   // that thread's clock component at the store
  VectorClock msg;        // what an acquire load of this store learns
};

struct Location {
  std::vector<StoreMeta> stores;                    // modification order
  std::uint32_t floor[kMaxModelThreads] = {};       // per-thread coherence floor
  std::uint32_t stale_left[kMaxModelThreads] = {};  // bounded-staleness budget
  std::uint32_t id = 0;                             // for traces ("a<id>")
};

struct MutexState {
  int owner = -1;  // virtual thread id, -1 when free
  VectorClock clk;  // accumulated release clocks
  std::uint32_t id = 0;  // for traces ("m<id>")
};

struct CondVarState {
  std::vector<std::uint32_t> waiters;  // FIFO; notify wakes the head
  std::uint32_t id = 0;                // for traces ("cv<id>")
};

}  // namespace detail
}  // namespace hcheck

#endif  // HCHECK_MODEL_H_
