// hcheck::Mutex / hcheck::CondVar — std::mutex / std::condition_variable
// stand-ins on the hcheck scheduler.
//
// Modeling scope (DESIGN.md): a mutex is mutual exclusion plus a
// happens-before edge from each unlock to the next lock — nothing more.  The
// condition variable has *no spurious wakeups*: a wait ends only when a
// notify targets it.  That is deliberate: a real condvar may spuriously wake
// and paper over a lost signal; the model keeps the program honest, so a
// missing notify deterministically becomes a deadlock the checker reports.

#ifndef HCHECK_SYNC_H_
#define HCHECK_SYNC_H_

#include <mutex>

#include "src/hcheck/atomic.h"
#include "src/hcheck/runtime.h"

namespace hcheck {

class Mutex {
 public:
  Mutex() { s_ = detail::RequireRuntime("Mutex constructed").NewMutex(); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;
    }
    rt->SchedulePoint("mutex.lock");
    rt->MutexLock(*s_);
  }

  bool try_lock() {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return false;
    }
    rt->SchedulePoint("mutex.try_lock");
    return rt->MutexTryLock(*s_);
  }

  void unlock() {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;
    }
    rt->SchedulePoint("mutex.unlock");
    rt->MutexUnlock(*s_);
  }

  detail::MutexState* state() { return s_; }

 private:
  detail::MutexState* s_;
};

class CondVar {
 public:
  CondVar() { s_ = detail::RequireRuntime("CondVar constructed").NewCondVar(); }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(std::unique_lock<Mutex>& lk) {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;
    }
    rt->SchedulePoint("cv.wait");
    Mutex* m = lk.mutex();
    rt->CvWait(*s_, *m->state());
    m->lock();  // re-acquire before returning, like std::condition_variable
  }

  void notify_one() {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;
    }
    rt->SchedulePoint("cv.notify_one");
    rt->CvNotify(*s_, /*all=*/false);
  }

  void notify_all() {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;
    }
    rt->SchedulePoint("cv.notify_all");
    rt->CvNotify(*s_, /*all=*/true);
  }

 private:
  detail::CondVarState* s_;
};

}  // namespace hcheck

#endif  // HCHECK_SYNC_H_
