// hcheck public API: deterministic schedule exploration for concurrent code.
//
//   hcheck::Options opts;
//   hcheck::Result res = hcheck::Check(opts, [] {
//     auto lock = std::make_shared<SomeLock>();     // fresh state per schedule
//     hcheck::Thread t = hcheck::Spawn([lock] { lock->lock(); lock->unlock(); });
//     lock->lock();
//     lock->unlock();
//     t.Join();
//     HCHECK_ASSERT(...);                           // quiescence invariants
//   });
//   ASSERT_FALSE(res.failed) << res.message << "\n" << res.trace;
//
// The body runs once per explored schedule, as virtual thread 0.  Exploration
// is DFS over every decision (which thread runs at each preemption point,
// which visible store each load reads), preemption-bounded so the tree stays
// polynomial; with `random_schedules > 0` it instead samples seeded-random
// schedules and reports a replayable failing seed.
//
// The body must be deterministic (no time, no host randomness): a failure is
// replayed from its decision path / seed alone.

#ifndef HCHECK_CHECKER_H_
#define HCHECK_CHECKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/hcheck/runtime.h"

namespace hcheck {

struct Options {
  // DFS mode (the default): explore every schedule with at most this many
  // preemptions (CHESS-style context bounding; most concurrency bugs need 2).
  int preemption_bound = 2;
  // Stop DFS after this many schedules even if the space is not exhausted.
  std::uint64_t max_schedules = 20000;
  // Random mode: if > 0, run this many seeded-random schedules instead of
  // DFS.  A failure reports the seed; rerunning with {seed, 1} replays it.
  std::uint64_t random_schedules = 0;
  std::uint64_t seed = 1;
  // Safety rails per execution.
  std::uint64_t max_ops_per_exec = 50000;
  // How many consecutive stale (non-newest) values one thread may read from
  // one location.  Models "stores become visible in finite time" and keeps
  // spin loops terminating.
  std::uint32_t stale_read_budget = 2;

  // Environment overrides, applied by Check():
  //   HCHECK_EXHAUSTIVE=1   raise preemption_bound/max_schedules for a sweep
  //   HCHECK_SCHEDULES=N    override max_schedules (and random_schedules)
  //   HCHECK_PREEMPTIONS=N  override preemption_bound
  //   HCHECK_SEED=N         override seed
};

struct Result {
  bool failed = false;
  std::string kind;     // "lost-signal", "deadlock", "assert", ...
  std::string message;  // human-readable failure + replay info
  std::string trace;    // last events of the failing schedule
  std::uint64_t schedules_run = 0;
  bool exhausted = false;      // DFS explored the whole (bounded) space
  std::uint64_t seed = 0;      // failing seed (random mode)
  std::string choice_path;     // failing decision path (DFS mode)
};

Result Check(const Options& opts, const std::function<void()>& body);

// --- in-body primitives --------------------------------------------------------

class Thread {
 public:
  Thread() = default;
  void Join();

 private:
  friend Thread Spawn(std::function<void()> body);
  std::uint32_t id_ = 0;
  bool valid_ = false;
};

// Spawns a virtual thread. Must be called from inside a Check() body.
Thread Spawn(std::function<void()> body);

// Spin-loop hint: deprioritizes the caller so the thread it waits on can run.
void Yield();

// Plain preemption point, for widening windows in test harness code.
void Interleave();

// Dense id of the calling virtual thread (0 = the Check body).
std::uint32_t CurrentTestThreadId();

// Reports a model-checker failure (records the schedule and unwinds the
// execution).  Aborts the process if called outside a Check body.
void FailCheck(const std::string& msg);

// --- invariant helpers ---------------------------------------------------------

#define HCHECK_STR_INNER(x) #x
#define HCHECK_STR(x) HCHECK_STR_INNER(x)
#define HCHECK_ASSERT(cond)                                                      \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::hcheck::FailCheck("HCHECK_ASSERT failed: " #cond " at " __FILE__         \
                          ":" HCHECK_STR(__LINE__));                             \
    }                                                                            \
  } while (0)

// Mutual exclusion: wrap each critical section in Enter()/Exit().  The
// surrounding preemption points give a second thread every chance to enter.
class MutualExclusion {
 public:
  void Enter() {
    Interleave();
    if (++inside_ != 1) {
      FailCheck("mutual exclusion violated: two threads in the critical section");
    }
    ++entries_counted_;
    Interleave();
  }
  void Exit() {
    Interleave();
    if (inside_-- != 1) {
      FailCheck("mutual exclusion violated: Exit without matching Enter");
    }
    Interleave();
  }
  int entries() const { return entries_counted_; }

 private:
  int inside_ = 0;
  int entries_counted_ = 0;
};

// FIFO handover: Granted(id) must occur in Enqueued(id) order.
class FifoOrder {
 public:
  void Enqueued(int id) { q_.push_back(id); }
  void Granted(int id) {
    if (q_.empty() || q_.front() != id) {
      FailCheck("FIFO order violated: grant out of enqueue order");
    }
    q_.pop_front();
  }
  bool quiesced() const { return q_.empty(); }

 private:
  std::deque<int> q_;
};

}  // namespace hcheck

#endif  // HCHECK_CHECKER_H_
