// hcheck::Atomic<T> — a std::atomic<T> stand-in that runs on the hcheck
// weak-memory model (model.h) instead of the host hardware, so acquire/
// release/relaxed visibility bugs are found on any machine.
//
// Interface subset: the operations the hlock primitives use (load, store,
// exchange, compare_exchange_{strong,weak}, fetch_add, fetch_sub).  Model
// simplifications (documented in DESIGN.md): compare_exchange_weak never
// fails spuriously, CAS reads the newest store even on failure, and seq_cst
// is modeled slightly stronger than the C++ total order.

#ifndef HCHECK_ATOMIC_H_
#define HCHECK_ATOMIC_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/hcheck/runtime.h"

namespace hcheck {

namespace detail {

template <class T>
std::uint64_t ValueBits(const T& v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T) < sizeof(bits) ? sizeof(T) : sizeof(bits));
  return bits;
}

template <class T>
bool BitsEqual(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

inline Runtime& RequireRuntime(const char* what) {
  Runtime* rt = Runtime::Current();
  if (rt == nullptr) {
    std::fprintf(stderr, "hcheck: %s outside an hcheck::Check execution\n", what);
    std::abort();
  }
  return *rt;
}

}  // namespace detail

template <class T>
class Atomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "hcheck::Atomic requires a trivially copyable T (like std::atomic)");

 public:
  Atomic() : Atomic(T{}) {}
  Atomic(T v) {  // NOLINT(google-explicit-constructor): mirrors std::atomic
    loc_ = detail::RequireRuntime("Atomic constructed").NewLocation();
    values_.push_back(v);
  }
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return values_.back();  // benign: only reached while unwinding
    }
    rt->SchedulePoint("load");
    const std::size_t idx = rt->PickLoadIndex(*loc_, mo);
    T v = values_[idx];
    rt->Trace("load", 'a', loc_->id, true, detail::ValueBits(v), static_cast<int>(mo));
    return v;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return;  // dropped during teardown; no thread will look again
    }
    rt->SchedulePoint("store");
    rt->CommitStore(*loc_, mo);
    values_.push_back(v);
    rt->Trace("store", 'a', loc_->id, true, detail::ValueBits(v), static_cast<int>(mo));
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return values_.back();
    }
    rt->SchedulePoint("xchg");
    const std::size_t r = rt->RmwReadLatest(*loc_, mo);
    T old = values_[r];
    rt->CommitStore(*loc_, mo, r);
    values_.push_back(v);
    rt->Trace("xchg", 'a', loc_->id, true, detail::ValueBits(v), static_cast<int>(mo));
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order success,
                               std::memory_order failure) {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      expected = values_.back();
      return false;
    }
    rt->SchedulePoint("cas");
    const std::size_t latest = loc_->stores.size() - 1;
    const T latest_value = values_[latest];  // copy: vector<bool> proxies
    if (detail::BitsEqual(latest_value, expected)) {
      rt->RmwReadLatest(*loc_, success);
      rt->CommitStore(*loc_, success, latest);
      values_.push_back(desired);
      rt->Trace("cas", 'a', loc_->id, true, detail::ValueBits(desired),
                static_cast<int>(success));
      return true;
    }
    // Failure: a plain load of the newest store with the failure ordering.
    rt->RmwReadLatest(*loc_, failure);
    expected = latest_value;
    rt->Trace("cas!", 'a', loc_->id, true, detail::ValueBits(expected),
              static_cast<int>(failure));
    return false;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, FailureOrder(mo));
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo);
  }

  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return Rmw([delta](T old) { return static_cast<T>(old + delta); }, mo, "fadd");
  }

  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return Rmw([delta](T old) { return static_cast<T>(old - delta); }, mo, "fsub");
  }

 private:
  static std::memory_order FailureOrder(std::memory_order mo) {
    if (mo == std::memory_order_acq_rel) return std::memory_order_acquire;
    if (mo == std::memory_order_release) return std::memory_order_relaxed;
    return mo;
  }

  template <class Fn>
  T Rmw(Fn fn, std::memory_order mo, const char* what) {
    auto* rt = detail::Runtime::Current();
    if (rt == nullptr || rt->aborting()) {
      return values_.back();
    }
    rt->SchedulePoint(what);
    const std::size_t r = rt->RmwReadLatest(*loc_, mo);
    T old = values_[r];
    rt->CommitStore(*loc_, mo, r);
    values_.push_back(fn(old));
    rt->Trace(what, 'a', loc_->id, true, detail::ValueBits(values_.back()),
              static_cast<int>(mo));
    return old;
  }

  detail::Location* loc_ = nullptr;
  std::vector<T> values_;  // index-parallel to loc_->stores
};

// std::atomic_thread_fence for the model.
inline void ThreadFence(std::memory_order mo) {
  auto* rt = detail::Runtime::Current();
  if (rt == nullptr || rt->aborting()) {
    return;
  }
  rt->SchedulePoint("fence");
  rt->Fence(mo);
}

}  // namespace hcheck

#endif  // HCHECK_ATOMIC_H_
