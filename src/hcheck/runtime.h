// hcheck execution runtime: virtual threads under a controlled scheduler.
//
// One Runtime object is one *execution*: a single deterministic interleaving
// of the checked program.  The checker (checker.h) constructs a fresh Runtime
// per schedule and drives the choice points through a strategy (DFS over the
// decision tree, or a seeded PRNG).
//
// Execution mechanics: every virtual thread is an OS thread, but exactly one
// runs at a time; control is handed off explicitly at *schedule points* (every
// shim operation).  Preemption at a schedule point is a recorded decision, so
// replaying the same decision sequence replays the execution bit-for-bit.
// Blocking (mutex, condvar, join) parks the virtual thread; if no thread is
// runnable the execution is declared deadlocked — which is exactly how a lost
// wakeup manifests.

#ifndef HCHECK_RUNTIME_H_
#define HCHECK_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/hcheck/model.h"

namespace hcheck {

namespace detail {

// Thrown through a virtual thread to unwind it when the execution aborts
// (failure found, or teardown).  Never escapes the runtime.
struct AbortExecution {};

enum class ThreadState { kRunnable, kBlocked, kDone };

struct VThread {
  std::uint32_t id = 0;
  std::function<void()> body;

  // Handshake with the scheduler: `go` is set when this thread is selected.
  // The backing OS thread comes from a process-wide worker pool (runtime.cc).
  std::mutex m;
  std::condition_variable cv;
  bool go = false;

  // Scheduling state.  Touched only by the currently-running thread (or
  // during abort teardown, when threads only unwind).
  ThreadState state = ThreadState::kRunnable;
  const void* block_obj = nullptr;
  const char* block_what = nullptr;
  bool yielded = false;

  // Memory-model state.
  VectorClock clock;        // happens-before knowledge
  VectorClock acq_pending;  // joined messages of all loads (for acquire fences)
  VectorClock rel_fence;    // clock at the last release fence
};

// Compact trace event; formatted only when a failure is reported.
struct TraceEvent {
  std::uint8_t tid = 0;
  const char* op = nullptr;      // static strings only
  std::uint32_t obj_id = 0;      // location / mutex / condvar id
  char obj_kind = ' ';           // 'a', 'm', 'c', or ' ' (none)
  std::uint64_t value = 0;       // low 8 bytes of the value, if any
  bool has_value = false;
  std::uint8_t mo = 0;           // std::memory_order as int, 0xff = none
};

class Runtime {
 public:
  struct Config {
    int preemption_bound = 2;
    std::uint64_t max_ops = 50000;
    std::uint32_t stale_read_budget = 2;
  };
  // What a choice point decides — lets the random strategy bias scheduling
  // decisions (long uninterrupted runs) differently from weak-memory load
  // decisions (stale values).  DFS ignores the kind.
  enum class ChoiceKind { kSchedule, kLoad };
  using Chooser = std::function<std::size_t(ChoiceKind, std::size_t)>;

  Runtime(const Config& cfg, Chooser choose);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs `body` as virtual thread 0 to completion (or failure).  Called on
  // the host (test) thread; returns when every virtual thread has finished.
  void Run(const std::function<void()>& body);

  bool failed() const { return failed_; }
  const std::string& fail_kind() const { return fail_kind_; }
  const std::string& fail_message() const { return fail_message_; }
  const std::string& fail_trace() const { return fail_trace_; }

  // The runtime of the execution the calling OS thread belongs to (nullptr on
  // the host thread / outside any execution).
  static Runtime* Current();

  bool aborting() const { return aborting_.load(std::memory_order_acquire); }

  // --- scheduling (called from virtual threads) ------------------------------
  std::uint32_t SpawnThread(std::function<void()> body);
  void JoinThread(std::uint32_t tid);
  void SchedulePoint(const char* what);  // possible preemption
  void YieldPoint();                     // spin-loop hint: prefer running others
  void BlockSelf(const void* obj, const char* what);
  void MakeRunnable(std::uint32_t tid);
  std::size_t Choose(std::size_t n, ChoiceKind kind = ChoiceKind::kSchedule);
  std::uint32_t current_thread() const { return current_; }
  // Records a failure and aborts the execution.  Throws AbortExecution unless
  // the calling virtual thread is already done.
  void FailNow(const std::string& kind, const std::string& msg);

  // --- memory model (called from the shims; no internal schedule points) -----
  detail::Location* NewLocation();
  detail::MutexState* NewMutex();
  detail::CondVarState* NewCondVar();

  // Applies the read-side clock effects of reading store `idx`.
  void ReadAt(detail::Location& loc, std::size_t idx, std::memory_order mo);
  // Chooses which store a load reads (branch point) and applies ReadAt.
  std::size_t PickLoadIndex(detail::Location& loc, std::memory_order mo);
  // Read half of an RMW: always the newest store.
  std::size_t RmwReadLatest(detail::Location& loc, std::memory_order mo);
  // Appends a store to the modification order.  `rmw_read_idx` is the index
  // the RMW read half consumed (for release-sequence continuation), or
  // SIZE_MAX for a plain store.
  void CommitStore(detail::Location& loc, std::memory_order mo,
                   std::size_t rmw_read_idx = static_cast<std::size_t>(-1));
  void Fence(std::memory_order mo);

  // --- mutex / condvar support ----------------------------------------------
  void MutexLock(detail::MutexState& m);
  bool MutexTryLock(detail::MutexState& m);
  void MutexUnlock(detail::MutexState& m, bool internal = false);
  void CvWait(detail::CondVarState& cv, detail::MutexState& m);
  void CvNotify(detail::CondVarState& cv, bool all);

  void Trace(const char* op, char obj_kind = ' ', std::uint32_t obj_id = 0,
             bool has_value = false, std::uint64_t value = 0, int mo = 0xff);

 private:
  void ThreadMain(std::uint32_t tid);
  void OnThreadDone(detail::VThread& self);
  void WaitForGo(detail::VThread& self);
  void SwitchFromTo(detail::VThread& self, detail::VThread& next);
  void ResumeInitial(detail::VThread& t0);
  detail::VThread& Self();
  std::vector<detail::VThread*> RunnableOthers(std::uint32_t self_id);
  bool AllDone() const;
  [[noreturn]] void DeadlockFail();
  std::string RenderTrace() const;
  void CheckOpBudget();

  Config cfg_;
  Chooser choose_;
  std::vector<std::unique_ptr<detail::VThread>> threads_;
  std::vector<std::unique_ptr<detail::Location>> locations_;
  std::vector<std::unique_ptr<detail::MutexState>> mutexes_;
  std::vector<std::unique_ptr<detail::CondVarState>> condvars_;
  VectorClock sc_clock_;
  int preemptions_left_ = 0;
  std::uint64_t ops_ = 0;
  std::uint32_t current_ = 0;

  std::atomic<bool> aborting_{false};
  bool failed_ = false;
  std::string fail_kind_;
  std::string fail_message_;
  std::string fail_trace_;

  // Execution-completion handshake with the host thread.
  std::mutex done_m_;
  std::condition_variable done_cv_;
  std::size_t created_count_ = 0;
  std::size_t done_count_ = 0;

  // Trace ring buffer (structured; formatted lazily on failure).
  std::vector<detail::TraceEvent> trace_;
  std::size_t trace_next_ = 0;
  static constexpr std::size_t kTraceCap = 256;
};

}  // namespace detail
}  // namespace hcheck

#endif  // HCHECK_RUNTIME_H_
