// hcheck::Platform — the model-checker side of the hlock platform policy
// (src/hlock/platform.h).  Instantiating an hlock primitive with this policy
// reroutes every atomic, mutex, condvar, fence, and thread id through the
// hcheck runtime, so the primitive executes on the simulated weak-memory
// model under the controlled scheduler:
//
//   using Lock = hlock::BasicSpinThenBlockLock<hcheck::Platform>;
//   hcheck::Check(opts, [] { auto l = std::make_shared<Lock>(0); ... });
//
// Backoff/Pause become scheduler yields (a model "spin" must hand the virtual
// CPU to the thread it is waiting on), and Check() failures become reported
// schedule violations instead of process aborts.

#ifndef HCHECK_PLATFORM_H_
#define HCHECK_PLATFORM_H_

#include <atomic>
#include <cstdint>

#include "src/hcheck/atomic.h"
#include "src/hcheck/checker.h"
#include "src/hcheck/model.h"
#include "src/hcheck/sync.h"

namespace hcheck {

struct Platform {
  static constexpr std::uint32_t kMaxThreads = kMaxModelThreads;
  // Tells backoff-aware code (src/hlock/algo/native_backend.h) that delay
  // magnitudes are meaningless here: one Yield is a complete backoff.
  static constexpr bool kModelChecked = true;

  template <typename T>
  using Atomic = hcheck::Atomic<T>;
  using Mutex = hcheck::Mutex;
  using CondVar = hcheck::CondVar;
  using PoolLock = hcheck::Mutex;

  // Spin loops must yield the virtual CPU or the waited-on thread never runs.
  class Backoff {
   public:
    explicit Backoff(std::uint32_t = 0, std::uint32_t = 0) {}
    void Pause() {
      hcheck::Yield();
      ++rounds_;
    }
    std::uint64_t rounds() const { return rounds_; }

   private:
    std::uint64_t rounds_ = 0;
  };

  static std::uint32_t ThreadId() { return CurrentTestThreadId(); }
  static void Fence(std::memory_order mo) { hcheck::ThreadFence(mo); }
  static void Pause() { hcheck::Yield(); }
  static void Check(bool cond, const char* msg) {
    if (!cond) {
      FailCheck(msg);
    }
  }
};

}  // namespace hcheck

#endif  // HCHECK_PLATFORM_H_
