// Basic time and identifier types for the HECTOR discrete-event simulator.
//
// The simulated machine is a 16 MHz MC88100-based NUMA multiprocessor, so one
// simulated cycle is 62.5 ns and one microsecond is exactly 16 cycles.  All
// simulator time is kept in integral cycles ("ticks"); conversions to and from
// microseconds are provided for reporting in the paper's units.

#ifndef HSIM_TYPES_H_
#define HSIM_TYPES_H_

#include <cstdint>

namespace hsim {

// Simulated time, in processor cycles.
using Tick = std::uint64_t;

// Processor / memory-module / station identifiers.
using ProcId = std::uint32_t;
using ModuleId = std::uint32_t;
using StationId = std::uint32_t;

// Clock rate of the simulated machine (HECTOR prototype: 16 MHz MC88100).
inline constexpr std::uint64_t kCyclesPerMicrosecond = 16;

// Converts microseconds of simulated time to cycles.
constexpr Tick UsToTicks(double microseconds) {
  return static_cast<Tick>(microseconds * static_cast<double>(kCyclesPerMicrosecond));
}

// Converts cycles of simulated time to microseconds.
constexpr double TicksToUs(Tick ticks) {
  return static_cast<double>(ticks) / static_cast<double>(kCyclesPerMicrosecond);
}

}  // namespace hsim

#endif  // HSIM_TYPES_H_
