// Small deterministic PRNG (xorshift64*), one instance per simulated
// processor, used to jitter exponential backoff.  Determinism matters: the
// whole simulation must replay identically for a given seed.

#ifndef HSIM_RANDOM_H_
#define HSIM_RANDOM_H_

#include <cstdint>

namespace hsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace hsim

#endif  // HSIM_RANDOM_H_
