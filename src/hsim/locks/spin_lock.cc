#include "src/hsim/locks/spin_lock.h"

#include <algorithm>

#include "src/hsim/types.h"

namespace hsim {

namespace {
constexpr std::uint64_t kUnlocked = 0;
constexpr std::uint64_t kLocked = 1;
}  // namespace

SimSpinLock::SimSpinLock(Machine* machine, ModuleId home, Tick max_backoff, Tick base_backoff)
    : machine_(machine),
      word_(machine->AllocWord(home, kUnlocked)),
      max_backoff_(max_backoff),
      base_backoff_(base_backoff) {}

Task<void> SimSpinLock::Acquire(Processor& p) {
  hmetrics::TraceSession* tr =
      machine_->trace_enabled(hmetrics::kTraceLocks) ? machine_->trace() : nullptr;
  hmetrics::TraceSession::SpanId span = 0;
  if (tr != nullptr) {
    span = tr->BeginSpan(hmetrics::kTraceLocks, "lock/acquire", p.id(), p.now());
    tr->AddArg(span, "lock", name());
  }
  const Tick wait_start = p.now();
  bool queued = false;
  // First attempt: test_and_set; then the uncontended exit charges the
  // delay-register init, the test branch and the return (Figure 4: Spin row,
  // acquire half).
  std::uint64_t old = co_await p.FetchStore(word_, kLocked);
  co_await p.Exec(1, 2);
  Tick delay = base_backoff_;
  if (site_ != nullptr && old == kLocked) {
    site_->EnterQueue();
    queued = true;
  }
  while (old == kLocked) {
    // Back off without generating memory traffic, then retry the swap.  As in
    // Figure 3c the delay doubles deterministically from a small base: fresh
    // contenders retry rapidly, which is precisely what floods the lock's
    // memory module and station bus under bursty demand.
    ++retries_;
    co_await p.BackoffDelay(delay);
    delay = std::min(delay * 2, max_backoff_);
    old = co_await p.FetchStore(word_, kLocked);
    co_await p.Exec(1, 1);
  }
  ++acquisitions_;
  if (site_ != nullptr) {
    if (queued) {
      site_->LeaveQueue();
    }
    site_->RecordAcquire(p.id(), p.now() - wait_start, queued);
    hold_start_ = p.now();
  }
  if (tr != nullptr) {
    tr->EndSpan(span, p.now());
  }
}

Task<void> SimSpinLock::Release(Processor& p) {
  if (site_ != nullptr) {
    site_->RecordRelease(p.now() - hold_start_);
  }
  // HECTOR has no plain way to order an uncached store after the critical
  // section's accesses, so the release is also a swap (counted atomic).
  co_await p.FetchStore(word_, kUnlocked);
  co_await p.Exec(0, 1);
  if (machine_->trace_enabled(hmetrics::kTraceLocks)) {
    hmetrics::TraceSession* tr = machine_->trace();
    const hmetrics::TraceSession::SpanId id =
        tr->Instant(hmetrics::kTraceLocks, "lock/release", p.id(), p.now());
    tr->AddArg(id, "lock", name());
  }
}

std::string SimSpinLock::name() const {
  return "spin(backoff<=" + std::to_string(TicksToUs(max_backoff_)) + "us)";
}

}  // namespace hsim
