// Simulated NUMA-aware locks: CNA, HMCS-T, Fissile, and the distributed
// reader-writer lock.
//
// The algorithm bodies live in src/hlock/algo/{cna,hmcs,fissile,drwlock}.h,
// written once over the memory-backend concept; these adapters bind them to
// SimBackend (costed Processor accesses, NUMA word homes, station-of-module
// cluster topology).  On HECTOR the cluster of a processor is its station,
// so CNA's secondary queue parks off-station waiters, HMCS-T runs one local
// level per station, and the drw lock homes one reader counter per station.

#ifndef HSIM_LOCKS_NUMA_LOCK_H_
#define HSIM_LOCKS_NUMA_LOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/hlock/algo/cna.h"
#include "src/hlock/algo/drwlock.h"
#include "src/hlock/algo/fissile.h"
#include "src/hlock/algo/hmcs.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

class SimCnaLock : public SimLock {
 public:
  SimCnaLock(Machine* machine, ModuleId home,
             std::uint64_t max_streak =
                 hlock::algo::CnaCore<SimBackend>::kDefaultMaxStreak)
      : backend_(machine), core_(&backend_, home, max_streak) {}

  Task<void> Acquire(Processor& p) override { return core_.Acquire(p); }
  Task<void> Release(Processor& p) override { return core_.Release(p); }
  std::string name() const override { return core_.name(); }

  std::uint64_t max_streak() const { return core_.max_streak(); }

  void set_site(hprof::LockSiteStats* site) override { core_.set_site(site); }
  hprof::LockSiteStats* site() const override { return core_.site(); }

 private:
  SimBackend backend_;
  hlock::algo::CnaCore<SimBackend> core_;
};

class SimHmcsTLock : public SimLock {
 public:
  SimHmcsTLock(Machine* machine, ModuleId home,
               std::uint64_t threshold =
                   hlock::algo::HmcsTCore<SimBackend>::kDefaultThreshold)
      : backend_(machine), core_(&backend_, home, threshold) {}

  Task<void> Acquire(Processor& p) override {
    co_await core_.AcquireBlocking(p);
  }
  Task<void> Release(Processor& p) override { return core_.Release(p); }
  std::string name() const override { return core_.name(); }

  // Timed acquire: gives up after `budget` simulated ticks.  Returns false
  // without holding the lock or leaving a queue node behind.
  Task<bool> AcquireFor(Processor& p, Tick budget) {
    SimBackend::Deadline deadline = backend_.MakeDeadline(p, budget);
    co_return co_await core_.Acquire(p, deadline);
  }

  std::uint64_t threshold() const { return core_.threshold(); }
  std::uint64_t abandoned_nodes_reclaimed() {
    std::uint64_t n = core_.global_level().abandoned_nodes_reclaimed();
    for (std::uint32_t c = 0; c < backend_.NumClusters(); ++c) {
      n += core_.local_level(c).abandoned_nodes_reclaimed();
    }
    return n;
  }

  void set_site(hprof::LockSiteStats* site) override { core_.set_site(site); }
  hprof::LockSiteStats* site() const override { return core_.site(); }

 private:
  SimBackend backend_;
  hlock::algo::HmcsTCore<SimBackend> core_;
};

class SimFissileLock : public SimLock {
 public:
  SimFissileLock(Machine* machine, ModuleId home,
                 std::uint32_t fast_attempts =
                     hlock::algo::FissileCore<SimBackend>::kDefaultFastAttempts)
      : backend_(machine), core_(&backend_, home, fast_attempts) {}

  Task<void> Acquire(Processor& p) override { return core_.Acquire(p); }
  Task<void> Release(Processor& p) override { return core_.Release(p); }
  std::string name() const override { return core_.name(); }

  std::uint32_t fast_attempts() const { return core_.fast_attempts(); }

  void set_site(hprof::LockSiteStats* site) override { core_.set_site(site); }
  hprof::LockSiteStats* site() const override { return core_.site(); }

 private:
  SimBackend backend_;
  hlock::algo::FissileCore<SimBackend> core_;
};

// Distributed RW lock over simulated NUMA memory: one padded reader counter
// per station, homed at that station, so an uncontended reader entry is a
// local CAS + one (remote) flag load.  The SimLock interface drives the
// *writer* side (RunLockStress races exclusive holders like any other kind);
// reader traffic goes through AcquireShared/ReleaseShared, which the RW
// stress harness calls directly.
class SimDrwLock : public SimLock {
 public:
  SimDrwLock(Machine* machine, ModuleId home,
             hlock::algo::DrwPreference preference = hlock::algo::DrwPreference::kWriters)
      : backend_(machine), core_(&backend_, home, preference) {}

  Task<void> Acquire(Processor& p) override { return core_.AcquireExclusive(p); }
  Task<void> Release(Processor& p) override { return core_.ReleaseExclusive(p); }
  std::string name() const override { return core_.name(); }

  Task<void> AcquireShared(Processor& p) { return core_.AcquireShared(p); }
  Task<void> ReleaseShared(Processor& p) { return core_.ReleaseShared(p); }
  Task<bool> TryUpgrade(Processor& p) { return core_.TryUpgrade(p); }
  Task<void> Downgrade(Processor& p) { return core_.Downgrade(p); }

  // SimLock's single site profiles the writer side; attach the reader-hold
  // site separately (reader and writer holds are different histograms).
  void set_site(hprof::LockSiteStats* site) override {
    core_.set_sites(core_.reader_site(), site);
  }
  hprof::LockSiteStats* site() const override { return core_.writer_site(); }
  void set_reader_site(hprof::LockSiteStats* site) {
    core_.set_sites(site, core_.writer_site());
  }

 private:
  SimBackend backend_;
  hlock::algo::DrwLockCore<SimBackend> core_;
};

// Central factory over LockKind: every harness that races the lock family
// (kernel coarse locks, stress drivers, benches, property tests) builds its
// lock here, so a new algorithm lands everywhere at once.
std::unique_ptr<SimLock> MakeSimLock(Machine* machine, LockKind kind, ModuleId home);

}  // namespace hsim

#endif  // HSIM_LOCKS_NUMA_LOCK_H_
