// Test-and-set spin lock with exponential backoff (Figure 3c).
//
// acquire:  while test_and_set(L) == locked: delay; delay *= 2 (capped)
// release:  swap(L, 0)
//
// HECTOR's only atomic primitive is swap, so both the test-and-set and the
// release are atomic swaps (two memory accesses each at the lock's home
// module).  Uncontended instruction cost matches Figure 4's "Spin" row:
// 2 atomic, 0 memory, 1 register, 3 branch instructions per lock/unlock pair.
//
// Under contention every retry crosses the interconnect, which is precisely
// the source of the second-order effects the Distributed Locks avoid.

#ifndef HSIM_LOCKS_SPIN_LOCK_H_
#define HSIM_LOCKS_SPIN_LOCK_H_

#include <string>

#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/types.h"

namespace hsim {

class SimSpinLock : public SimLock {
 public:
  // `home` is the memory module holding the lock word.  `max_backoff` caps the
  // exponential backoff (the paper evaluates 35 us and 2 ms caps).
  SimSpinLock(Machine* machine, ModuleId home, Tick max_backoff,
              Tick base_backoff = kDefaultBaseBackoff);

  Task<void> Acquire(Processor& p) override;
  Task<void> Release(Processor& p) override;
  std::string name() const override;

  Tick max_backoff() const { return max_backoff_; }

  // Contention statistics.
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t retries() const { return retries_; }

  static constexpr Tick kDefaultBaseBackoff = 4;  // a handful of instructions

 private:
  Machine* machine_;
  SimWord& word_;
  Tick max_backoff_;
  Tick base_backoff_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace hsim

#endif  // HSIM_LOCKS_SPIN_LOCK_H_
