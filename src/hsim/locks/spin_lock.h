// Test-and-set spin lock with exponential backoff (Figure 3c).
//
// The algorithm body lives in src/hlock/algo/spin.h, written once over the
// memory-backend concept; this is the simulator adapter binding it to
// SimBackend.  Uncontended instruction cost matches Figure 4's "Spin" row --
// see the core's header.

#ifndef HSIM_LOCKS_SPIN_LOCK_H_
#define HSIM_LOCKS_SPIN_LOCK_H_

#include <string>

#include "src/hlock/algo/spin.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/types.h"

namespace hsim {

class SimSpinLock : public SimLock {
 public:
  // `home` is the memory module holding the lock word.  `max_backoff` caps the
  // exponential backoff (the paper evaluates 35 us and 2 ms caps).
  SimSpinLock(Machine* machine, ModuleId home, Tick max_backoff,
              Tick base_backoff = kDefaultBaseBackoff)
      : backend_(machine),
        core_(&backend_, home, max_backoff, base_backoff,
              "spin(backoff<=" + std::to_string(TicksToUs(max_backoff)) + "us)") {}

  Task<void> Acquire(Processor& p) override { return core_.Acquire(p); }
  Task<void> Release(Processor& p) override { return core_.Release(p); }
  std::string name() const override { return core_.name(); }

  Tick max_backoff() const { return core_.max_backoff(); }

  // Contention statistics.
  std::uint64_t acquisitions() const { return core_.acquisitions(); }
  std::uint64_t retries() const { return core_.retries(); }

  void set_site(hprof::LockSiteStats* site) override { core_.set_site(site); }
  hprof::LockSiteStats* site() const override { return core_.site(); }

  static constexpr Tick kDefaultBaseBackoff =
      hlock::algo::SpinCore<SimBackend>::kDefaultBaseBackoff;

 private:
  SimBackend backend_;
  hlock::algo::SpinCore<SimBackend> core_;
};

}  // namespace hsim

#endif  // HSIM_LOCKS_SPIN_LOCK_H_
