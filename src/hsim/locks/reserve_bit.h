// Reserve "bits": the fine-grained half of the hybrid locking strategy.
//
// A reserve bit is set under the protection of a coarse-grained lock using
// ordinary loads and stores (no atomic operations), may be held for a long
// time, and is cleared by its holder with a plain store.  Waiters release the
// coarse lock and spin on the reserve word with exponential backoff, then
// re-acquire the coarse lock and retry (Figure 1b).
//
// Depending on the data it protects a reserve word acts as an exclusive lock
// or as a reader-writer lock (Section 2.3): value 0 means free, kExclusive
// means exclusively reserved, any other value is a reader count.  All state
// transitions except the exclusive holder's clear happen under the coarse
// lock, so plain read-modify-write sequences are safe.
//
// NOTE: the paper co-locates the bit with other status information in one
// word; we give the reserve state its own word so that the holder's unlocked
// clear cannot race with locked updates of unrelated bits.  The paper's
// type-stable-memory requirement (footnote 2) still applies and is preserved
// by the kernel's per-type descriptor pools.

#ifndef HSIM_LOCKS_RESERVE_BIT_H_
#define HSIM_LOCKS_RESERVE_BIT_H_

#include <cstdint>
#include <limits>

#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

class SimReserve {
 public:
  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kExclusive = std::numeric_limits<std::uint64_t>::max();

  // --- operations that require the protecting coarse lock to be held ---

  // Attempts to reserve exclusively.  Returns false if already reserved
  // (exclusively or by readers).
  static Task<bool> TrySetExclusive(Processor& p, SimWord& word);

  // Attempts to add a reader.  Returns false if exclusively reserved.
  static Task<bool> TryAddReader(Processor& p, SimWord& word);

  // Drops a reader (also requires the coarse lock: reader counts are shared
  // state with no atomic update primitive).
  static Task<void> RemoveReader(Processor& p, SimWord& word);

  // Reads the current state (for handlers that must fail rather than spin).
  static Task<std::uint64_t> Read(Processor& p, SimWord& word);

  // --- operations performed without the coarse lock ---

  // The exclusive holder clears its reservation with a plain store.
  static Task<void> ClearExclusive(Processor& p, SimWord& word);

  // Spins (with exponential backoff capped at `max_backoff`) until the word
  // is observed free.  The caller then re-acquires the coarse lock and
  // re-checks; this helper alone guarantees nothing.
  static Task<void> SpinUntilFree(Processor& p, SimWord& word, Tick max_backoff);
};

}  // namespace hsim

#endif  // HSIM_LOCKS_RESERVE_BIT_H_
