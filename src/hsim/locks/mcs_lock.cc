#include "src/hsim/locks/mcs_lock.h"

#include "src/hsim/locks/sim_lock.h"

namespace hsim {

const char* LockKindName(LockKind kind) {
  switch (kind) {
    case LockKind::kSpin35us:
      return "spin-35us";
    case LockKind::kSpin2ms:
      return "spin-2ms";
    case LockKind::kMcs:
      return "mcs";
    case LockKind::kMcsH1:
      return "h1-mcs";
    case LockKind::kMcsH2:
      return "h2-mcs";
    case LockKind::kCna:
      return "cna";
    case LockKind::kHmcsT:
      return "hmcs-t";
    case LockKind::kFissile:
      return "fissile";
    case LockKind::kDrw:
      return "drwlock";
  }
  return "?";
}

}  // namespace hsim
