#include "src/hsim/locks/mcs_lock.h"

namespace hsim {

SimMcsLock::SimMcsLock(Machine* machine, ModuleId home, McsVariant variant)
    : machine_(machine), tail_(machine->AllocWord(home, kNil)), variant_(variant) {
  const std::uint32_t nprocs = machine->num_processors();
  qnodes_.reserve(nprocs);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    // Queue nodes live in the owning processor's local memory.  For H1/H2 the
    // rest state is pre-initialized: next == nil, locked == 1 (ready to
    // wait); the contended paths below restore this invariant whenever they
    // modify a node.  The original algorithm initializes next in acquire.
    qnodes_.push_back(QNode{&machine->AllocWord(p, kNil), &machine->AllocWord(p, 1)});
  }
}

Task<void> SimMcsLock::Acquire(Processor& p) {
  const std::uint64_t me = p.id() + 1;
  QNode& node = qnodes_[p.id()];
  hmetrics::TraceSession* tr =
      machine_->trace_enabled(hmetrics::kTraceLocks) ? machine_->trace() : nullptr;
  hmetrics::TraceSession::SpanId span = 0;
  if (tr != nullptr) {
    span = tr->BeginSpan(hmetrics::kTraceLocks, "lock/acquire", p.id(), p.now());
    tr->AddArg(span, "lock", name());
  }
  const Tick wait_start = p.now();

  if (variant_ == McsVariant::kOriginal) {
    // I->next := nil  -- hoisted out of the critical path by modification H1.
    co_await p.Store(*node.next, kNil);
  }

  const std::uint64_t pred = co_await p.FetchStore(tail_, me);
  // Compare predecessor against nil, branch, return (uncontended exit).
  co_await p.Exec(1, 2);
  if (pred == kNil) {
    if (site_ != nullptr) {
      site_->RecordAcquire(p.id(), p.now() - wait_start, /*contended=*/false);
      hold_start_ = p.now();
    }
    if (tr != nullptr) {
      tr->EndSpan(span, p.now());
    }
    co_return;
  }

  // Contended path: link behind the predecessor and spin on our own node.
  if (site_ != nullptr) {
    site_->EnterQueue();
  }
  if (variant_ == McsVariant::kOriginal) {
    // I->locked := true.  H1/H2 keep the flag pre-set at rest.
    co_await p.Store(*node.locked, 1);
  }
  co_await p.Store(*qnodes_[pred - 1].next, me);
  while (true) {
    const std::uint64_t locked = co_await p.Load(*node.locked);
    co_await p.Exec(0, 1);
    if (locked == 0) {
      break;
    }
    // Pace the spin: kernel data is distributed across all modules, so a
    // back-to-back load loop would monopolize this processor's own memory
    // module and stall remote accesses to the data that happens to live here.
    // The pause costs at most a microsecond of handoff latency.
    co_await p.BackoffDelay(kLocalSpinPause);
  }
  if (variant_ != McsVariant::kOriginal) {
    // Re-establish the rest-state invariant: the releaser cleared our flag.
    // The store is absorbed by the write buffer (local word, nothing reads it
    // until our next acquire), so modification 1 does not lengthen the
    // handoff chain under contention.
    p.PostStore(*node.locked, 1);
  }
  if (site_ != nullptr) {
    site_->LeaveQueue();
    site_->RecordAcquire(p.id(), p.now() - wait_start, /*contended=*/true);
    hold_start_ = p.now();
  }
  if (tr != nullptr) {
    tr->EndSpan(span, p.now());
  }
}

Task<void> SimMcsLock::HandOff(Processor& p, std::uint64_t successor_id1) {
  co_await p.Store(*qnodes_[successor_id1 - 1].locked, 0);
}

Task<void> SimMcsLock::Release(Processor& p) {
  const std::uint64_t me = p.id() + 1;
  QNode& node = qnodes_[p.id()];
  if (site_ != nullptr) {
    site_->RecordRelease(p.now() - hold_start_);
  }
  if (machine_->trace_enabled(hmetrics::kTraceLocks)) {
    hmetrics::TraceSession* tr = machine_->trace();
    const hmetrics::TraceSession::SpanId id =
        tr->Instant(hmetrics::kTraceLocks, "lock/release", p.id(), p.now());
    tr->AddArg(id, "lock", name());
  }

  std::uint64_t succ = kNil;
  if (variant_ != McsVariant::kH2) {
    // Original / H1: check for a known successor first.
    succ = co_await p.Load(*node.next);
    co_await p.Exec(0, 1);
    if (succ != kNil) {
      if (variant_ == McsVariant::kH1) {
        p.PostStore(*node.next, kNil);  // re-init (contended path, write-buffered)
      }
      co_await HandOff(p, succ);
      co_await p.Exec(1, 2);
      co_return;
    }
  }

  // Swap nil into the lock word.  If we were the tail, the lock is free and
  // we are done -- this is the whole uncontended release for H2.
  const std::uint64_t old_tail = co_await p.FetchStore(tail_, kNil);
  co_await p.Exec(2, 2);
  if (old_tail == me) {
    co_return;
  }

  // Someone enqueued behind us (and under H2 possibly long ago): we have
  // wrongly freed the lock, so repair the queue.  Any processor that swapped
  // itself onto the nil lock word in the window believes it holds the lock
  // (the "usurper"); restore the real tail and splice our waiters after it.
  ++repairs_;
  const std::uint64_t usurper = co_await p.FetchStore(tail_, old_tail);
  while (succ == kNil) {
    succ = co_await p.Load(*node.next);
    co_await p.Exec(0, 1);
    if (succ == kNil) {
      co_await p.BackoffDelay(kLocalSpinPause);
    }
  }
  if (variant_ != McsVariant::kOriginal) {
    p.PostStore(*node.next, kNil);  // re-init (contended path, write-buffered)
  }
  co_await p.Exec(0, 1);
  if (usurper != kNil) {
    // The usurper chain runs first; append our waiters after its tail.
    co_await p.Store(*qnodes_[usurper - 1].next, succ);
  } else {
    co_await HandOff(p, succ);
  }
  co_await p.Exec(1, 1);
}

std::string SimMcsLock::name() const {
  switch (variant_) {
    case McsVariant::kOriginal:
      return "mcs";
    case McsVariant::kH1:
      return "h1-mcs";
    case McsVariant::kH2:
      return "h2-mcs";
  }
  return "mcs?";
}

const char* LockKindName(LockKind kind) {
  switch (kind) {
    case LockKind::kSpin35us:
      return "spin-35us";
    case LockKind::kSpin2ms:
      return "spin-2ms";
    case LockKind::kMcs:
      return "mcs";
    case LockKind::kMcsH1:
      return "h1-mcs";
    case LockKind::kMcsH2:
      return "h2-mcs";
  }
  return "?";
}

}  // namespace hsim
