#include "src/hsim/locks/numa_lock.h"

#include <memory>

#include "src/hsim/locks/mcs_lock.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/types.h"

namespace hsim {

std::unique_ptr<SimLock> MakeSimLock(Machine* machine, LockKind kind, ModuleId home) {
  switch (kind) {
    case LockKind::kSpin35us:
      return std::make_unique<SimSpinLock>(machine, home, UsToTicks(35));
    case LockKind::kSpin2ms:
      return std::make_unique<SimSpinLock>(machine, home, UsToTicks(2000));
    case LockKind::kMcs:
      return std::make_unique<SimMcsLock>(machine, home, McsVariant::kOriginal);
    case LockKind::kMcsH1:
      return std::make_unique<SimMcsLock>(machine, home, McsVariant::kH1);
    case LockKind::kMcsH2:
      return std::make_unique<SimMcsLock>(machine, home, McsVariant::kH2);
    case LockKind::kCna:
      return std::make_unique<SimCnaLock>(machine, home);
    case LockKind::kHmcsT:
      return std::make_unique<SimHmcsTLock>(machine, home);
    case LockKind::kFissile:
      return std::make_unique<SimFissileLock>(machine, home);
    case LockKind::kDrw:
      return std::make_unique<SimDrwLock>(machine, home);
  }
  return nullptr;
}

}  // namespace hsim
