// Common interface for the simulated lock algorithms of Figure 3.
//
// All four algorithms (exponential-backoff spin lock, original MCS
// Distributed Lock, and the paper's H1/H2 modifications) implement this
// interface so that the kernel and the benchmark harnesses can be
// parameterized over the coarse-grained lock kind.

#ifndef HSIM_LOCKS_SIM_LOCK_H_
#define HSIM_LOCKS_SIM_LOCK_H_

#include <string>

#include "src/hprof/lock_site.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hsim {

class SimLock {
 public:
  virtual ~SimLock() = default;

  // Acquires the lock on behalf of processor `p`, spinning as the algorithm
  // dictates.  Every instruction and memory access is charged to `p`.
  virtual Task<void> Acquire(Processor& p) = 0;

  // Releases the lock.  Must be called by the current holder.
  virtual Task<void> Release(Processor& p) = 0;

  virtual std::string name() const = 0;

  // Attaches a profiling site (null detaches).  Recording observes simulated
  // time but never advances it: a profiled run is tick-identical to an
  // unprofiled one.  Wait/hold samples are in ticks.  Virtual so adapters
  // over the shared algorithm cores (src/hlock/algo/) can forward the site
  // into the core.
  virtual void set_site(hprof::LockSiteStats* site) { site_ = site; }
  virtual hprof::LockSiteStats* site() const { return site_; }

 protected:
  hprof::LockSiteStats* site_ = nullptr;
  Tick hold_start_ = 0;  // grant time of the current owner (site_ attached only)
};

// Which coarse-grained lock algorithm a simulated kernel uses.
enum class LockKind {
  kSpin35us,   // exponential backoff capped at 35 us (the kernel's value)
  kSpin2ms,    // exponential backoff capped at 2 ms (optimal for the stress tests)
  kMcs,        // unmodified Mellor-Crummey & Scott
  kMcsH1,      // MCS + modification 1 (no qnode init on the acquire path)
  kMcsH2,      // H1 + modification 2 (no successor check in release)
  kCna,        // compact NUMA-aware MCS (secondary queue of remote waiters)
  kHmcsT,      // hierarchical MCS (per-station level) with timeout
  kFissile,    // fast-path TAS over an MCS slow path
  kDrw,        // distributed RW lock (per-station reader counters + sweep);
               // Acquire/Release drive the writer side, the reader side is
               // SimDrwLock's own AcquireShared/ReleaseShared
};

const char* LockKindName(LockKind kind);

}  // namespace hsim

#endif  // HSIM_LOCKS_SIM_LOCK_H_
