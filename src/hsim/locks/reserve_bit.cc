#include "src/hsim/locks/reserve_bit.h"

#include <algorithm>

namespace hsim {

Task<bool> SimReserve::TrySetExclusive(Processor& p, SimWord& word) {
  const std::uint64_t state = co_await p.Load(word);
  co_await p.Exec(0, 1);
  if (state != kFree) {
    co_return false;
  }
  co_await p.Store(word, kExclusive);
  co_return true;
}

Task<bool> SimReserve::TryAddReader(Processor& p, SimWord& word) {
  const std::uint64_t state = co_await p.Load(word);
  co_await p.Exec(1, 1);
  if (state == kExclusive) {
    co_return false;
  }
  co_await p.Store(word, state + 1);
  co_return true;
}

Task<void> SimReserve::RemoveReader(Processor& p, SimWord& word) {
  const std::uint64_t state = co_await p.Load(word);
  co_await p.Exec(1, 0);
  co_await p.Store(word, state - 1);
}

Task<std::uint64_t> SimReserve::Read(Processor& p, SimWord& word) { return p.Load(word); }

Task<void> SimReserve::ClearExclusive(Processor& p, SimWord& word) {
  co_await p.Store(word, kFree);
}

Task<void> SimReserve::SpinUntilFree(Processor& p, SimWord& word, Tick max_backoff) {
  Tick delay = 8;
  while (true) {
    const std::uint64_t state = co_await p.Load(word);
    co_await p.Exec(0, 1);
    if (state == kFree) {
      co_return;
    }
    const Tick jittered = delay / 2 + p.rng().NextBelow(delay / 2 + 1);
    co_await p.BackoffDelay(jittered);
    delay = std::min(delay * 2, max_backoff);
  }
}

}  // namespace hsim
