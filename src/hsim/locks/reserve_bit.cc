#include "src/hsim/locks/reserve_bit.h"

#include "src/hlock/algo/reserve.h"
#include "src/hsim/locks/sim_backend.h"

namespace hsim {

// The state machine lives in src/hlock/algo/reserve.h, shared with the
// native HybridTable; these wrappers bind it to raw SimWords embedded in
// kernel descriptors.  The reserve operations never consult the Machine
// (no allocation, no topology, no tracing), so a word-only backend view
// suffices.
namespace {
using Core = hlock::algo::ReserveCore<SimBackend>;

SimBackend WordOnlyBackend() { return SimBackend(nullptr); }
}  // namespace

Task<bool> SimReserve::TrySetExclusive(Processor& p, SimWord& word) {
  SimBackend b = WordOnlyBackend();
  SimBackend::Word w = SimBackend::FromRaw(word);
  co_return co_await Core::TrySetExclusive(b, p, w);
}

Task<bool> SimReserve::TryAddReader(Processor& p, SimWord& word) {
  SimBackend b = WordOnlyBackend();
  SimBackend::Word w = SimBackend::FromRaw(word);
  co_return co_await Core::TryAddReader(b, p, w);
}

Task<void> SimReserve::RemoveReader(Processor& p, SimWord& word) {
  SimBackend b = WordOnlyBackend();
  SimBackend::Word w = SimBackend::FromRaw(word);
  co_await Core::RemoveReader(b, p, w);
}

Task<std::uint64_t> SimReserve::Read(Processor& p, SimWord& word) { return p.Load(word); }

Task<void> SimReserve::ClearExclusive(Processor& p, SimWord& word) {
  SimBackend b = WordOnlyBackend();
  SimBackend::Word w = SimBackend::FromRaw(word);
  co_await Core::ClearExclusive(b, p, w);
}

Task<void> SimReserve::SpinUntilFree(Processor& p, SimWord& word, Tick max_backoff) {
  SimBackend b = WordOnlyBackend();
  SimBackend::Word w = SimBackend::FromRaw(word);
  co_await Core::SpinUntilFree(b, p, w, max_backoff);
}

}  // namespace hsim
