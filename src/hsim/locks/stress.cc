#include "src/hsim/locks/stress.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/hsim/engine.h"
#include "src/hsim/locks/mcs_lock.h"
#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hsim {
namespace {

struct Shared {
  SimLock* lock;
  LatencyRecorder* recorder;
  std::uint64_t acquisitions = 0;
  std::uint64_t window_ops = 0;
  Tick warm_end;
  Tick deadline;
  Tick hold;
  Tick think;
};

Task<void> StressDriver(Processor* p, Shared* shared) {
  while (p->now() < shared->deadline) {
    const Tick t0 = p->now();
    co_await shared->lock->Acquire(*p);
    const Tick t1 = p->now();
    ++shared->acquisitions;
    if (t1 >= shared->warm_end && t1 <= shared->deadline) {
      ++shared->window_ops;
    }
    if (t0 >= shared->warm_end && t1 <= shared->deadline) {
      shared->recorder->Record(t1 - t0);
    }
    co_await p->Compute(shared->hold);
    co_await shared->lock->Release(*p);
    if (shared->think > 0) {
      co_await p->Compute(shared->think);
    }
  }
}

}  // namespace

LockStressResult RunLockStress(const LockStressParams& params) {
  Engine engine;
  Machine machine(&engine, params.machine);
  machine.set_trace(params.trace);
  std::unique_ptr<SimLock> lock = MakeSimLock(&machine, params.kind, params.lock_home);
  lock->set_site(params.site);

  LockStressResult result;
  Shared shared;
  shared.lock = lock.get();
  shared.recorder = &result.acquire_latency;
  shared.warm_end = params.warmup;
  shared.deadline = params.warmup + params.duration;
  shared.hold = params.hold;
  shared.think = params.think;

  for (std::uint32_t p = 0; p < params.processors; ++p) {
    engine.Spawn(StressDriver(&machine.processor(p), &shared));
  }
  engine.RunUntilIdle();

  result.acquisitions = shared.acquisitions;
  result.window_ops = shared.window_ops;
  result.processors = params.processors;
  result.window = params.duration;
  if (auto* spin = dynamic_cast<SimSpinLock*>(lock.get())) {
    result.spin_retries = spin->retries();
  }
  if (auto* mcs = dynamic_cast<SimMcsLock*>(lock.get())) {
    result.mcs_repairs = mcs->repairs();
  }
  const Tick end = engine.now();
  result.lock_module_utilization =
      end > 0 ? static_cast<double>(machine.memory(params.lock_home).total_busy()) /
                    static_cast<double>(end)
              : 0.0;
  result.bus_wait = machine.total_bus_wait();
  result.mem_wait = machine.total_memory_wait();

  if (params.metrics != nullptr) {
    // Charge the run's instruction mix and lock counters into the registry,
    // labeled by lock kind: the per-phase breakdown view of the run.
    const hmetrics::Labels labels{{"lock", LockKindName(params.kind)}};
    OpStats total;
    for (std::uint32_t p = 0; p < params.processors; ++p) {
      total += machine.processor(p).stats();
    }
    ChargeOpStats(params.metrics, total, labels);
    params.metrics->counter("lock.acquisitions", labels).Add(result.acquisitions);
    params.metrics->counter("lock.spin_retries", labels).Add(result.spin_retries);
    params.metrics->counter("lock.mcs_repairs", labels).Add(result.mcs_repairs);
    params.metrics->counter("machine.bus_wait_ticks", labels).Add(result.bus_wait);
    params.metrics->counter("machine.mem_wait_ticks", labels).Add(result.mem_wait);
    auto& h = params.metrics->histogram("lock.acquire_ticks", labels);
    h.Merge(result.acquire_latency);
  }
  return result;
}

namespace {

struct RwShared {
  SimLock* lock;
  SimDrwLock* drw;  // non-null iff the kind routes shared ops to the RW path
  RwStressResult* result;
  std::uint32_t write_every;
  Tick warm_end;
  Tick deadline;
  Tick hold_read;
  Tick hold_write;
  Tick think;
};

// One processor's deterministic read/write mix.  The op counter starts at the
// processor index so the exclusive ops are staggered instead of every
// processor writing in lockstep.
Task<void> RwDriver(Processor* p, RwShared* shared, std::uint32_t index) {
  std::uint64_t op = index;
  while (p->now() < shared->deadline) {
    const bool write =
        shared->write_every != 0 && op % shared->write_every == 0;
    ++op;
    const Tick t0 = p->now();
    if (write || shared->drw == nullptr) {
      co_await shared->lock->Acquire(*p);
    } else {
      co_await shared->drw->AcquireShared(*p);
    }
    const Tick t1 = p->now();
    if (t1 >= shared->warm_end && t1 <= shared->deadline) {
      if (write) {
        ++shared->result->write_ops;
      } else {
        ++shared->result->read_ops;
      }
      if (t0 >= shared->warm_end) {
        (write ? shared->result->write_latency : shared->result->read_latency)
            .Record(t1 - t0);
      }
    }
    co_await p->Compute(write ? shared->hold_write : shared->hold_read);
    if (write || shared->drw == nullptr) {
      co_await shared->lock->Release(*p);
    } else {
      co_await shared->drw->ReleaseShared(*p);
    }
    if (shared->think > 0) {
      co_await p->Compute(shared->think);
    }
  }
}

}  // namespace

RwStressResult RunRwLockStress(const RwStressParams& params) {
  Engine engine;
  Machine machine(&engine, params.machine);
  std::unique_ptr<SimLock> lock =
      MakeSimLock(&machine, params.kind, params.lock_home);
  if (params.writer_site != nullptr) {
    lock->set_site(params.writer_site);
  }
  auto* drw = dynamic_cast<SimDrwLock*>(lock.get());
  if (drw != nullptr && params.reader_site != nullptr) {
    drw->set_reader_site(params.reader_site);
  }

  RwStressResult result;
  RwShared shared;
  shared.lock = lock.get();
  shared.drw = drw;
  shared.result = &result;
  shared.write_every = params.write_every;
  shared.warm_end = params.warmup;
  shared.deadline = params.warmup + params.duration;
  shared.hold_read = params.hold_read;
  shared.hold_write = params.hold_write;
  shared.think = params.think;

  for (std::uint32_t p = 0; p < params.processors; ++p) {
    engine.Spawn(RwDriver(&machine.processor(p), &shared, p));
  }
  engine.RunUntilIdle();
  result.processors = params.processors;
  result.window = params.duration;
  return result;
}

namespace {

// One processor's life in the profiled contention scenario: a globally shared
// critical section followed by a station-local one, forever.
Task<void> ContentionDriver(Processor* p, SimLock* shared, SimLock* local,
                            const ProfiledContentionParams* params,
                            ProfiledContentionResult* result, Tick deadline) {
  while (p->now() < deadline) {
    co_await shared->Acquire(*p);
    ++result->shared_acquisitions;
    co_await p->Compute(params->hold_shared);
    co_await shared->Release(*p);
    if (params->think > 0) {
      co_await p->Compute(params->think);
    }
    co_await local->Acquire(*p);
    ++result->local_acquisitions;
    co_await p->Compute(params->hold_local);
    co_await local->Release(*p);
    if (params->think > 0) {
      co_await p->Compute(params->think);
    }
  }
}

}  // namespace

ProfiledContentionResult RunProfiledContention(const ProfiledContentionParams& params,
                                               hprof::SiteTable* sites) {
  Engine engine;
  Machine machine(&engine, params.machine);
  machine.set_trace(params.trace);
  const std::uint32_t ppc = params.machine.modules_per_station;

  // The shared lock lives on module 0 (cluster 0's memory): every other
  // cluster pays ring crossings to reach it, exactly the Figure 5 setup.
  std::unique_ptr<SimLock> shared = MakeSimLock(&machine, params.kind, /*home=*/0);
  if (sites != nullptr) {
    shared->set_site(&sites->AddSite("kernel/shared", ppc));
  }
  std::vector<std::unique_ptr<SimLock>> locals;
  for (std::uint32_t s = 0; s < params.machine.stations; ++s) {
    locals.push_back(MakeSimLock(&machine, params.kind, /*home=*/s * ppc));
    if (sites != nullptr) {
      locals.back()->set_site(
          &sites->AddSite("cluster" + std::to_string(s) + "/local", ppc));
    }
  }

  ProfiledContentionResult result;
  const Tick deadline = params.warmup + params.duration;
  const std::uint32_t nprocs =
      std::min(params.processors, params.machine.num_processors());
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    engine.Spawn(ContentionDriver(&machine.processor(p), shared.get(),
                                  locals[p / ppc].get(), &params, &result, deadline));
  }
  engine.RunUntilIdle();
  return result;
}

double UncontendedPairLatencyUs(LockKind kind, int rounds) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  // Kernel locks are rarely local to the requester: place the lock word one
  // ring hop away from the measuring processor.
  std::unique_ptr<SimLock> lock = MakeSimLock(&machine, kind, /*home=*/4);
  Tick total = 0;
  engine.Spawn([](Processor* p, SimLock* l, int n, Tick* out) -> Task<void> {
    // Warm-up pair.
    co_await l->Acquire(*p);
    co_await l->Release(*p);
    for (int i = 0; i < n; ++i) {
      // Measurement-loop overhead between pairs lets in-flight store halves
      // drain, so each pair is timed cold as the paper's numbers are.
      co_await p->Compute(64);
      const Tick t0 = p->now();
      co_await l->Acquire(*p);
      co_await l->Release(*p);
      *out += p->now() - t0;
    }
  }(&machine.processor(0), lock.get(), rounds, &total));
  engine.RunUntilIdle();
  return TicksToUs(total) / rounds;
}

}  // namespace hsim
