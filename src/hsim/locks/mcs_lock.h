// Distributed (queue) locks: the original Mellor-Crummey & Scott algorithm
// and the paper's two HURRICANE modifications (Figure 3a/3b).
//
// The algorithm bodies live in src/hlock/algo/mcs.h, written once over the
// memory-backend concept; this is the simulator adapter binding them to
// SimBackend (costed Processor accesses, NUMA word homes).  Uncontended
// instruction counts match Figure 4 exactly -- see the core's header.

#ifndef HSIM_LOCKS_MCS_LOCK_H_
#define HSIM_LOCKS_MCS_LOCK_H_

#include <string>

#include "src/hlock/algo/mcs.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/types.h"

namespace hsim {

// The simulator spells the variant enum the same way the core does.
using McsVariant = hlock::algo::McsVariant;

class SimMcsLock : public SimLock {
 public:
  // `home` is the module holding the lock (tail) word.  One queue node per
  // processor is allocated on that processor's local module.
  SimMcsLock(Machine* machine, ModuleId home, McsVariant variant)
      : backend_(machine), core_(&backend_, variant, home) {}

  Task<void> Acquire(Processor& p) override { return core_.Acquire(p); }
  Task<void> Release(Processor& p) override { return core_.Release(p); }
  std::string name() const override { return core_.name(); }

  McsVariant variant() const { return core_.variant(); }

  // Number of times release had to repair the queue (swap-only release wrote
  // nil while a successor existed, or H2 skipped the successor check).
  std::uint64_t repairs() const { return core_.repairs(); }

  void set_site(hprof::LockSiteStats* site) override { core_.set_site(site); }
  hprof::LockSiteStats* site() const override { return core_.site(); }

 private:
  SimBackend backend_;
  hlock::algo::McsCore<SimBackend> core_;
};

}  // namespace hsim

#endif  // HSIM_LOCKS_MCS_LOCK_H_
