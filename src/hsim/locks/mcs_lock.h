// Distributed (queue) locks: the original Mellor-Crummey & Scott algorithm
// and the paper's two HURRICANE modifications (Figure 3a/3b).
//
// HECTOR supports only atomic swap (fetch_and_store), so the release path is
// the swap-only MCS variant: releasing may store nil into the lock word even
// though a successor exists, in which case the queue must be repaired (the
// "usurper" dance).  The paper's modifications:
//
//   H1: the per-processor queue node is initialized once, before first use,
//       and re-initialized on the *contended* path whenever it is modified.
//       This removes the `I->next := nil` store from the uncontended acquire.
//
//   H2: the `if I->next != nil` successor check is removed from release; the
//       release always swaps nil into the lock word.  This removes a load
//       and a branch from the uncontended release at the cost of a constant
//       queue-repair overhead whenever there *is* a successor.
//
// Uncontended instruction counts match Figure 4 exactly:
//   MCS    2 atomic / 2 mem / 3 reg / 5 br
//   H1-MCS 2 atomic / 1 mem / 3 reg / 5 br
//   H2-MCS 2 atomic / 0 mem / 3 reg / 4 br
//
// Waiters spin on the `locked` flag in their own queue node, which lives on
// their local memory module: spinning generates no bus or ring traffic, which
// is the whole point of Distributed Locks on a NUMA machine.

#ifndef HSIM_LOCKS_MCS_LOCK_H_
#define HSIM_LOCKS_MCS_LOCK_H_

#include <string>
#include <vector>

#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/types.h"

namespace hsim {

enum class McsVariant {
  kOriginal,  // Figure 3a
  kH1,        // first modification only
  kH2,        // both modifications (Figure 3b)
};

class SimMcsLock : public SimLock {
 public:
  // `home` is the module holding the lock (tail) word.  One queue node per
  // processor is allocated on that processor's local module.
  SimMcsLock(Machine* machine, ModuleId home, McsVariant variant);

  Task<void> Acquire(Processor& p) override;
  Task<void> Release(Processor& p) override;
  std::string name() const override;

  McsVariant variant() const { return variant_; }

  // Number of times release had to repair the queue (swap-only release wrote
  // nil while a successor existed, or H2 skipped the successor check).
  std::uint64_t repairs() const { return repairs_; }

 private:
  struct QNode {
    SimWord* next;    // successor's processor id + 1, or 0 (nil)
    SimWord* locked;  // 1 while the owner must wait
  };

  static constexpr std::uint64_t kNil = 0;
  // Pause between local spin loads, leaving most of the local memory
  // module's bandwidth to remote requesters of co-located kernel data.
  static constexpr Tick kLocalSpinPause = 16;

  Task<void> HandOff(Processor& p, std::uint64_t successor_id1);

  Machine* machine_;
  SimWord& tail_;  // processor id + 1 of the queue tail, or 0 (free)
  std::vector<QNode> qnodes_;
  McsVariant variant_;
  std::uint64_t repairs_ = 0;
};

}  // namespace hsim

#endif  // HSIM_LOCKS_MCS_LOCK_H_
