// The lock stress test of Section 4.1.2 (Figure 5): p processors continuously
// acquire and release the same lock, holding it for a configurable time.
//
// Processors run until a simulated deadline and the harness records only
// acquisitions that start after the warm-up and complete before the deadline.
// Running to a deadline (rather than for a fixed number of iterations) is
// essential: unfair locks let lucky processors finish a fixed quota early,
// which thins out the contention they caused and biases the mean downwards.

#ifndef HSIM_LOCKS_STRESS_H_
#define HSIM_LOCKS_STRESS_H_

#include <cstdint>

#include "src/hmetrics/registry.h"
#include "src/hmetrics/trace.h"
#include "src/hprof/lock_site.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/stats.h"
#include "src/hsim/types.h"

namespace hsim {

struct LockStressParams {
  LockKind kind = LockKind::kMcsH2;
  std::uint32_t processors = 16;
  Tick hold = 0;   // critical-section length
  Tick think = 48; // loop/measurement overhead between release and re-acquire
  ModuleId lock_home = 0;              // module holding the lock word
  Tick warmup = UsToTicks(1000);       // unrecorded start-up window
  Tick duration = UsToTicks(20000);    // recorded window after warm-up
  MachineConfig machine;               // e.g. cache_coherent for Section 5.2
  // Optional observability hooks.  `trace` receives lock-acquire/release (and,
  // category permitting, memory-access) spans; `metrics` receives the run's
  // aggregate OpStats and lock counters as labeled series; `site` receives
  // per-acquisition wait/hold/handoff samples for the stressed lock.
  hmetrics::TraceSession* trace = nullptr;
  hmetrics::Registry* metrics = nullptr;
  hprof::LockSiteStats* site = nullptr;
};

struct LockStressResult {
  LatencyRecorder acquire_latency;  // response time of recorded acquisitions
  std::uint64_t acquisitions = 0;   // total (including unrecorded)
  std::uint64_t window_ops = 0;     // acquisitions completed inside the window
  std::uint32_t processors = 0;
  Tick window = 0;

  // System response time by Little's law: with p processors continuously
  // requesting, the number in system is p, so W = p / throughput.  Unlike the
  // sample mean this is immune to unfair locks starving some processors out
  // of the sample.
  double little_response_us() const {
    if (window_ops == 0) {
      return 0.0;
    }
    return static_cast<double>(processors) * TicksToUs(window) /
           static_cast<double>(window_ops);
  }
  std::uint64_t spin_retries = 0;   // failed test-and-set attempts (spin locks)
  std::uint64_t mcs_repairs = 0;    // queue repairs (Distributed Locks)
  double lock_module_utilization = 0.0;  // busy fraction of the lock's module
  Tick bus_wait = 0;                // aggregate queueing at station buses
  Tick mem_wait = 0;                // aggregate queueing at memory modules
};

LockStressResult RunLockStress(const LockStressParams& params);

// Reader-writer stress: p processors run a deterministic op mix against one
// lock — every `write_every`-th op per processor is exclusive, the rest are
// shared.  When the kind is kDrw the shared ops go through the distributed
// reader path (per-station counters); for every other kind shared ops fall
// back to plain Acquire/Release, which makes the same mix a coarse-lock
// baseline the RW numbers can be raced against.
struct RwStressParams {
  LockKind kind = LockKind::kDrw;
  std::uint32_t processors = 16;
  std::uint32_t write_every = 20;  // 1-in-N ops are exclusive; 0 = read-only
  Tick hold_read = 0;              // shared-hold length
  Tick hold_write = 0;             // exclusive-hold length
  Tick think = 48;                 // loop overhead between ops
  ModuleId lock_home = 0;
  Tick warmup = UsToTicks(1000);
  Tick duration = UsToTicks(20000);
  MachineConfig machine;
  // Optional split profiling sites (reader holds and writer holds are
  // different histograms).  reader_site is honoured only for kDrw.
  hprof::LockSiteStats* reader_site = nullptr;
  hprof::LockSiteStats* writer_site = nullptr;
};

struct RwStressResult {
  LatencyRecorder read_latency;   // shared-acquire response, in-window
  LatencyRecorder write_latency;  // exclusive-acquire response, in-window
  std::uint64_t read_ops = 0;     // shared ops completed inside the window
  std::uint64_t write_ops = 0;    // exclusive ops completed inside the window
  std::uint32_t processors = 0;
  Tick window = 0;

  // Aggregate system response time by Little's law over the whole mix.
  double little_response_us() const {
    const std::uint64_t ops = read_ops + write_ops;
    if (ops == 0) {
      return 0.0;
    }
    return static_cast<double>(processors) * TicksToUs(window) /
           static_cast<double>(ops);
  }
  // Window throughput in completed ops per simulated microsecond.
  double ops_per_us() const {
    if (window == 0) {
      return 0.0;
    }
    return static_cast<double>(read_ops + write_ops) / TicksToUs(window);
  }
};

RwStressResult RunRwLockStress(const RwStressParams& params);

// The profiled contention scenario behind `fig5_lock_contention --profile`:
// every processor alternates between one machine-wide shared lock (the
// paper's worst case: a global kernel lock with a ~2 us critical section) and
// its own station's lock (the clustered alternative HURRICANE argues for).
// With profiling sites attached, the shared lock must dominate the hprof
// ranking and show cross-cluster handoffs; the per-station locks stay cheap
// and cluster-local.
struct ProfiledContentionParams {
  LockKind kind = LockKind::kMcsH2;
  std::uint32_t processors = 16;
  Tick hold_shared = UsToTicks(2);  // critical section under the shared lock
  Tick hold_local = UsToTicks(1);   // critical section under the station lock
  Tick think = UsToTicks(1);        // gap between sections
  Tick warmup = UsToTicks(200);
  Tick duration = UsToTicks(5000);
  MachineConfig machine;
  hmetrics::TraceSession* trace = nullptr;
};

struct ProfiledContentionResult {
  std::uint64_t shared_acquisitions = 0;
  std::uint64_t local_acquisitions = 0;
};

// Runs the scenario with one site per lock added to `sites` (which must
// outlive the call): "kernel/shared" plus one "cluster<s>/local" per station.
// Pass sites == nullptr for an unprofiled (bit-identical baseline) run.
ProfiledContentionResult RunProfiledContention(const ProfiledContentionParams& params,
                                               hprof::SiteTable* sites);

// Uncontended lock/unlock pair latency for the Section 4.1.1 table.  The lock
// word is placed on a remote station (kernel locks are rarely local), and the
// pair is averaged over `rounds` iterations by a single processor, with
// enough loop overhead between pairs that one pair's trailing store traffic
// cannot hide the next pair's memory accesses.
double UncontendedPairLatencyUs(LockKind kind, int rounds = 64);

}  // namespace hsim

#endif  // HSIM_LOCKS_STRESS_H_
