// HECTOR memory backend: the algorithm layer (src/hlock/algo/backend.h) on
// the simulated machine.  Each Word is a Machine::AllocWord location with a
// NUMA home module, every operation is a costed co_await through the
// Processor API (buses, ring, module occupancy), and the task type is the
// simulator's lazy hsim::Task -- so one algorithm body, written once in
// src/hlock/algo/, reproduces the paper's fig4 instruction counts and fig5
// contention curves exactly as the hand-written sim locks did.
//
// Memory orders are accepted and ignored: HECTOR is sequentially consistent
// with an explicit write buffer, which the cores reach through PostStore.

#ifndef HSIM_LOCKS_SIM_BACKEND_H_
#define HSIM_LOCKS_SIM_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/hlock/algo/backend.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

class SimBackend {
 public:
  explicit SimBackend(Machine* machine) : machine_(machine) {}

  using Ctx = Processor;

  struct Word {
    SimWord* w = nullptr;
  };

  template <typename T>
  using TaskT = Task<T>;

  struct SpinWait {};

  struct Deadline {
    Tick deadline = 0;
    bool infinite = true;
  };

  // Pause between local spin loads, leaving most of the local memory
  // module's bandwidth to remote requesters of co-located kernel data (the
  // same constant the hand-written sim locks used).
  static constexpr Tick kLocalSpinPause = 16;

  // --- word lifecycle -------------------------------------------------------
  void InitWord(Word& w, std::uint32_t home_module, std::uint64_t init) {
    w.w = &machine_->AllocWord(home_module, init);
  }
  // Wraps an existing simulated word (kernel descriptors own their reserve
  // words; the reserve algorithm runs on them in place).
  static Word FromRaw(SimWord& raw) { return Word{&raw}; }

  // --- memory operations (costed; orders ignored) ---------------------------
  Task<std::uint64_t> Load(Processor& p, Word& w, std::memory_order) { return p.Load(*w.w); }
  Task<void> Store(Processor& p, Word& w, std::uint64_t v, std::memory_order) {
    return p.Store(*w.w, v);
  }
  void PostStore(Processor& p, Word& w, std::uint64_t v) { p.PostStore(*w.w, v); }
  Task<std::uint64_t> FetchStore(Processor& p, Word& w, std::uint64_t v, std::memory_order) {
    return p.FetchStore(*w.w, v);
  }
  Task<bool> CompareSwap(Processor& p, Word& w, std::uint64_t expected, std::uint64_t desired,
                         std::memory_order, std::memory_order) {
    return p.CompareSwap(*w.w, expected, desired);
  }

  // --- costing / pacing -----------------------------------------------------
  Task<void> Exec(Processor& p, std::uint32_t reg, std::uint32_t branches) {
    return p.Exec(reg, branches);
  }
  SpinWait MakeSpinWait() { return SpinWait{}; }
  Task<void> SpinPause(Processor& p, SpinWait&) { return p.BackoffDelay(kLocalSpinPause); }
  Task<void> BackoffUnits(Processor& p, std::uint64_t units, bool /*at_cap*/) {
    return p.BackoffDelay(units);
  }

  // --- identity / topology (host-side, free) --------------------------------
  std::uint32_t CtxId(Processor& p) const { return p.id(); }
  std::uint32_t NumCtxs() const { return machine_->config().num_processors(); }
  std::uint32_t ClusterOfCtx(std::uint32_t id) const { return machine_->station_of(id); }
  std::uint32_t NumClusters() const { return machine_->config().stations; }
  // One processor per processor-memory module: a caller's local module is its
  // own id, which is where its queue nodes belong.
  std::uint32_t HomeOf(std::uint32_t ctx_id) const { return ctx_id; }

  std::uint64_t Now(Processor& p) const { return p.now(); }
  std::uint64_t RandomBelow(Processor& p, std::uint64_t bound) const {
    return p.rng().NextBelow(bound);
  }

  Deadline MakeDeadline(Processor& p, std::uint64_t budget) const {
    if (budget == hlock::algo::kInfiniteBudget) {
      return Deadline{0, true};
    }
    return Deadline{p.now() + static_cast<Tick>(budget), false};
  }
  bool Expired(Processor& p, Deadline& d) const {
    return !d.infinite && p.now() >= d.deadline;
  }

  static void Check(bool cond, const char* msg) {
    if (!cond) {
      std::fprintf(stderr, "hsim lock invariant violated: %s\n", msg);
      std::abort();
    }
  }

  // The simulated host is single-threaded; pool bookkeeping needs no guard.
  template <class F>
  void WithPool(F&& f) {
    f();
  }

  // --- trace hooks ----------------------------------------------------------
  struct Span {
    hmetrics::TraceSession* tr = nullptr;
    hmetrics::TraceSession::SpanId id = 0;
  };
  Span AcquireSpan(Processor& p, const std::string& lock_name) {
    Span span;
    if (machine_->trace_enabled(hmetrics::kTraceLocks)) {
      span.tr = machine_->trace();
      span.id = span.tr->BeginSpan(hmetrics::kTraceLocks, "lock/acquire", p.id(), p.now());
      span.tr->AddArg(span.id, "lock", lock_name);
    }
    return span;
  }
  void EndSpan(Processor& p, Span& span) {
    if (span.tr != nullptr) {
      span.tr->EndSpan(span.id, p.now());
    }
  }
  void ReleaseInstant(Processor& p, const std::string& lock_name) {
    if (machine_->trace_enabled(hmetrics::kTraceLocks)) {
      hmetrics::TraceSession* tr = machine_->trace();
      const hmetrics::TraceSession::SpanId id =
          tr->Instant(hmetrics::kTraceLocks, "lock/release", p.id(), p.now());
      tr->AddArg(id, "lock", lock_name);
    }
  }

  Machine* machine() const { return machine_; }

 private:
  Machine* machine_;
};

}  // namespace hsim

#endif  // HSIM_LOCKS_SIM_BACKEND_H_
