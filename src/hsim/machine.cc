#include "src/hsim/machine.h"

#include <string>

namespace hsim {
namespace {

// Background occupancy of the one-way path taken by the store half of a
// remote atomic swap.  Nobody waits on this; it just consumes bandwidth.
Task<void> TrailingStoreLegs(Machine* m, StationId src_station, StationId dst_station) {
  const MachineConfig& cfg = m->config();
  if (src_station == dst_station) {
    co_await m->bus(src_station).Use(cfg.bus_request);
    co_return;
  }
  co_await m->bus(src_station).Use(cfg.ring_bus_hold);
  co_await m->ring().Use(cfg.ring_hold);
  co_await m->bus(dst_station).Use(cfg.ring_bus_hold);
}

}  // namespace

Processor::Processor(Machine* machine, ProcId id)
    : machine_(machine), id_(id), rng_(0xC0FFEE ^ (static_cast<std::uint64_t>(id) * 0x9E3779B9)) {}

StationId Processor::station() const { return machine_->station_of(module()); }

Engine& Processor::engine() { return machine_->engine(); }

Tick Processor::now() { return engine().now(); }

Task<std::uint64_t> Processor::Load(SimWord& word) {
  ++stats_.mem_loads;
  if (machine_->trace_enabled(hmetrics::kTraceMemory)) {
    return TracedAccess(word, AccessKind::kLoad, 0, 0, nullptr, "mem/load");
  }
  return Access(word, AccessKind::kLoad, 0, 0, nullptr);
}

Task<void> Processor::Store(SimWord& word, std::uint64_t value) {
  ++stats_.mem_stores;
  if (machine_->trace_enabled(hmetrics::kTraceMemory)) {
    co_await TracedAccess(word, AccessKind::kStore, value, 0, nullptr, "mem/store");
  } else {
    co_await Access(word, AccessKind::kStore, value, 0, nullptr);
  }
}

void Processor::PostStore(SimWord& word, std::uint64_t value) {
  ++stats_.mem_stores;
  // Write-buffered, but the store still lands at the home module: classify
  // its locality by the same route Access would have taken.
  if (word.home == module()) {
    ++stats_.loc_local;
  } else if (machine_->station_of(module()) == machine_->station_of(word.home)) {
    ++stats_.loc_station;
  } else {
    ++stats_.loc_ring;
  }
  word.value = value;
  machine_->memory(word.home).Reserve(machine_->config().mem_service);
}

Task<std::uint64_t> Processor::FetchStore(SimWord& word, std::uint64_t value) {
  ++stats_.atomic_ops;
  if (machine_->trace_enabled(hmetrics::kTraceMemory)) {
    return TracedAccess(word, AccessKind::kSwap, value, 0, nullptr, "mem/swap");
  }
  return Access(word, AccessKind::kSwap, value, 0, nullptr);
}

Task<bool> Processor::CompareSwap(SimWord& word, std::uint64_t expected, std::uint64_t desired) {
  ++stats_.atomic_ops;
  bool ok = false;
  co_await Access(word, AccessKind::kCas, desired, expected, &ok);
  co_return ok;
}

Task<std::uint64_t> Processor::FetchAdd(SimWord& word, std::uint64_t delta) {
  ++stats_.atomic_ops;
  return Access(word, AccessKind::kFetchAdd, delta, 0, nullptr);
}

Task<void> Processor::Exec(std::uint32_t reg, std::uint32_t branches) {
  stats_.reg_instrs += reg;
  stats_.branches += branches;
  if (reg + branches > 0) {
    co_await engine().Delay(reg + branches);
  }
}

Task<void> Processor::Compute(Tick cycles) {
  if (cycles > 0) {
    co_await engine().Delay(cycles);
  }
}

Task<void> Processor::BackoffDelay(Tick cycles) {
  stats_.idle_cycles += cycles;
  if (cycles > 0) {
    co_await engine().Delay(cycles);
  }
}

Task<std::uint64_t> Processor::TracedAccess(SimWord& word, AccessKind kind,
                                            std::uint64_t operand, std::uint64_t expected,
                                            bool* cas_ok, const char* name) {
  hmetrics::TraceSession* tr = machine_->trace();
  const auto span = tr->BeginSpan(hmetrics::kTraceMemory, name, id_, now());
  tr->AddArg(span, "home", std::to_string(word.home));
  const std::uint64_t old = co_await Access(word, kind, operand, expected, cas_ok);
  tr->EndSpan(span, now());
  co_return old;
}

Task<std::uint64_t> Processor::Access(SimWord& word, AccessKind kind, std::uint64_t operand,
                                      std::uint64_t expected, bool* cas_ok) {
  Machine& m = *machine_;
  const MachineConfig& cfg = m.config();
  const ModuleId target = word.home;
  const ModuleId source = module();
  Resource& mem = m.memory(target);

  if (cfg.cache_coherent) {
    co_return co_await CoherentAccess(word, kind, operand, expected, cas_ok);
  }

  const bool is_rmw =
      kind == AccessKind::kSwap || kind == AccessKind::kCas || kind == AccessKind::kFetchAdd;
  // An atomic read-modify-write is two memory accesses, and the module stays
  // locked from the fetch until the store half arrives back from the
  // processor -- for a remote access that includes a one-way trip across the
  // interconnect.  This is what makes remote test-and-set spinning so much
  // more expensive for the system than its visible latency suggests.
  const StationId src_station_pre = m.station_of(source);
  const StationId dst_station_pre = m.station_of(target);
  Tick rmw_gap = 0;
  if (target != source) {
    rmw_gap = (src_station_pre == dst_station_pre)
                  ? cfg.bus_request + cfg.bus_response + cfg.remote_pad
                  : 2 * (cfg.ring_bus_hold + cfg.ring_hold) + 2 * cfg.ring_bus_hold +
                        cfg.remote_pad;
  }
  const Tick mem_hold =
      is_rmw ? cfg.mem_service * cfg.atomic_accesses + rmw_gap : cfg.mem_service;
  // The processor observes the value once the fetch half of the access
  // completes; for an RMW the module remains busy through the store half.
  const Tick mem_visible = cfg.mem_service;

  // Applies the value operation.  Called at the module's ordering point
  // (reservation time): transactions are serviced in reservation order, so
  // reads and writes interleave exactly as the module would see them.
  auto apply = [&]() -> std::uint64_t {
    std::uint64_t old = word.value;
    switch (kind) {
      case AccessKind::kLoad:
        break;
      case AccessKind::kStore:
      case AccessKind::kSwap:
        word.value = operand;
        break;
      case AccessKind::kCas:
        if (old == expected) {
          word.value = operand;
          *cas_ok = true;
        } else {
          *cas_ok = false;
        }
        break;
      case AccessKind::kFetchAdd:
        word.value = old + operand;
        break;
    }
    return old;
  };

  if (target == source) {
    // Local access: memory module only, no bus or ring traffic.
    ++stats_.loc_local;
    std::uint64_t old = apply();
    co_await mem.UseOverlapped(mem_visible, mem_hold);
    co_return old;
  }

  const StationId src_station = m.station_of(source);
  const StationId dst_station = m.station_of(target);

  if (src_station == dst_station) {
    // On-station access: request over the bus, memory service, response over
    // the bus.
    ++stats_.loc_station;
    co_await m.bus(src_station).Use(cfg.bus_request);
    std::uint64_t old = apply();
    co_await mem.UseOverlapped(mem_visible, mem_hold);
    co_await m.bus(src_station).Use(cfg.bus_response);
    co_await engine().Delay(cfg.remote_pad);
    if (is_rmw && cfg.rmw_trailing_store_traffic) {
      m.engine().Spawn(TrailingStoreLegs(&m, src_station, dst_station));
    }
    co_return old;
  }

  // Cross-ring access: source bus -> ring -> destination bus -> memory and
  // back along the same path.
  ++stats_.loc_ring;
  co_await m.bus(src_station).Use(cfg.ring_bus_hold);
  co_await m.ring().Use(cfg.ring_hold);
  co_await m.bus(dst_station).Use(cfg.ring_bus_hold);
  std::uint64_t old = apply();
  co_await mem.UseOverlapped(mem_visible, mem_hold);
  co_await m.bus(dst_station).Use(cfg.ring_bus_hold);
  co_await m.ring().Use(cfg.ring_hold);
  co_await m.bus(src_station).Use(cfg.ring_bus_hold);
  co_await engine().Delay(cfg.remote_pad);
  if (is_rmw && cfg.rmw_trailing_store_traffic) {
    m.engine().Spawn(TrailingStoreLegs(&m, src_station, dst_station));
  }
  co_return old;
}

Task<std::uint64_t> Processor::CoherentAccess(SimWord& word, AccessKind kind,
                                              std::uint64_t operand, std::uint64_t expected,
                                              bool* cas_ok) {
  Machine& m = *machine_;
  const MachineConfig& cfg = m.config();
  const std::uint32_t me = 1u << id_;
  const bool is_rmw =
      kind == AccessKind::kSwap || kind == AccessKind::kCas || kind == AccessKind::kFetchAdd;
  const bool is_write = is_rmw || kind == AccessKind::kStore;

  auto apply = [&]() -> std::uint64_t {
    std::uint64_t old = word.value;
    switch (kind) {
      case AccessKind::kLoad:
        break;
      case AccessKind::kStore:
      case AccessKind::kSwap:
        word.value = operand;
        break;
      case AccessKind::kCas:
        if (old == expected) {
          word.value = operand;
          *cas_ok = true;
        } else {
          *cas_ok = false;
        }
        break;
      case AccessKind::kFetchAdd:
        word.value = old + operand;
        break;
    }
    return old;
  };

  // Cache hits: a shared line satisfies loads; an exclusively-owned line
  // satisfies everything, including cache-based atomics (the Section 5.2
  // primitives that "permit a lock to be acquired without going to memory").
  if (!is_write && (word.sharers & me) != 0) {
    ++stats_.loc_local;  // cache hit: no interconnect traffic
    std::uint64_t old = apply();
    co_await engine().Delay(cfg.cache_hit_cycles);
    co_return old;
  }
  if (is_write && word.owner == id_ && word.sharers == me) {
    ++stats_.loc_local;
    std::uint64_t old = apply();
    co_await engine().Delay(is_rmw ? cfg.cached_rmw_cycles : cfg.cache_hit_cycles);
    co_return old;
  }

  // Miss / ownership transfer: take the uncached path to the home module.
  // Writes that must invalidate other caches hold the module for an extra
  // service period (the directory's invalidation round).
  const StationId src_station = m.station_of(module());
  const StationId dst_station = m.station_of(word.home);
  Tick mem_hold = cfg.mem_service;
  if (is_write && (word.sharers & ~me) != 0) {
    mem_hold += cfg.mem_service;
  }
  std::uint64_t old;
  if (word.home == module()) {
    ++stats_.loc_local;
    old = apply();
    co_await m.memory(word.home).UseOverlapped(cfg.mem_service, mem_hold);
  } else if (src_station == dst_station) {
    ++stats_.loc_station;
    co_await m.bus(src_station).Use(cfg.bus_request);
    old = apply();
    co_await m.memory(word.home).UseOverlapped(cfg.mem_service, mem_hold);
    co_await m.bus(src_station).Use(cfg.bus_response);
    co_await engine().Delay(cfg.remote_pad);
  } else {
    ++stats_.loc_ring;
    co_await m.bus(src_station).Use(cfg.ring_bus_hold);
    co_await m.ring().Use(cfg.ring_hold);
    co_await m.bus(dst_station).Use(cfg.ring_bus_hold);
    old = apply();
    co_await m.memory(word.home).UseOverlapped(cfg.mem_service, mem_hold);
    co_await m.bus(dst_station).Use(cfg.ring_bus_hold);
    co_await m.ring().Use(cfg.ring_hold);
    co_await m.bus(src_station).Use(cfg.ring_bus_hold);
    co_await engine().Delay(cfg.remote_pad);
  }
  if (is_write) {
    word.sharers = me;
    word.owner = id_;
  } else {
    word.sharers |= me;
    if (word.owner != id_) {
      word.owner = SimWord::kNoOwner;
    }
  }
  co_return old;
}

Machine::Machine(Engine* engine, const MachineConfig& config) : engine_(engine), config_(config) {
  const std::uint32_t nprocs = config_.num_processors();
  memories_.reserve(nprocs);
  for (std::uint32_t i = 0; i < nprocs; ++i) {
    memories_.push_back(std::make_unique<Resource>(engine_, "mem" + std::to_string(i)));
  }
  buses_.reserve(config_.stations);
  for (std::uint32_t s = 0; s < config_.stations; ++s) {
    buses_.push_back(std::make_unique<Resource>(engine_, "bus" + std::to_string(s)));
  }
  ring_ = std::make_unique<Resource>(engine_, "ring");
  processors_.reserve(nprocs);
  for (std::uint32_t i = 0; i < nprocs; ++i) {
    processors_.push_back(std::make_unique<Processor>(this, i));
  }
}

SimWord& Machine::AllocWord(ModuleId module, std::uint64_t initial) {
  words_.push_back(SimWord{initial, module});
  return words_.back();
}

Tick Machine::total_bus_wait() const {
  Tick total = 0;
  for (const auto& bus : buses_) {
    total += bus->total_wait();
  }
  return total;
}

Tick Machine::total_memory_wait() const {
  Tick total = 0;
  for (const auto& mem : memories_) {
    total += mem->total_wait();
  }
  return total;
}

void Machine::ResetResourceStats() {
  for (auto& mem : memories_) {
    mem->ResetStats();
  }
  for (auto& bus : buses_) {
    bus->ResetStats();
  }
  ring_->ResetStats();
}

}  // namespace hsim
