// A lazy, continuation-passing coroutine task for the discrete-event
// simulator.
//
// Simulated code (kernel paths, lock algorithms, workload drivers) is written
// as ordinary-looking C++ coroutines that `co_await` memory accesses and
// delays.  Awaiting a Task starts it immediately on the awaiter's simulated
// processor; when the inner task completes, control transfers back to the
// awaiter via symmetric transfer, so arbitrarily deep call chains cost no
// simulated time by themselves.
//
// Top-level tasks are launched with Engine::Spawn (see engine.h), which wraps
// them in a self-destroying detached frame.  All workloads in this repository
// are written to terminate, so the engine never needs to tear down suspended
// coroutines.

#ifndef HSIM_TASK_H_
#define HSIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace hsim {

template <typename T>
class Task;

namespace internal {

// Resumes the awaiting coroutine (if any) when a task finishes.
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> handle) noexcept {
    std::coroutine_handle<> continuation = handle.promise().continuation;
    if (continuation) {
      return continuation;
    }
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace internal

// A lazily-started coroutine returning T.  Move-only; owns its frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> continuation) noexcept {
        handle.promise().continuation = continuation;
        return handle;
      }
      T await_resume() {
        promise_type& promise = handle.promise();
        if (promise.exception) {
          std::rethrow_exception(promise.exception);
        }
        return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_ = nullptr;
};

// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> continuation) noexcept {
        handle.promise().continuation = continuation;
        return handle;
      }
      void await_resume() {
        promise_type& promise = handle.promise();
        if (promise.exception) {
          std::rethrow_exception(promise.exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace hsim

#endif  // HSIM_TASK_H_
