#include "src/hsim/engine.h"

#include <utility>

namespace hsim {
namespace {

// Self-destroying wrapper frame for top-level tasks.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

DetachedTask RunDetached(Engine* engine, Task<void> task, std::uint64_t* live_counter) {
  // The moved-in task lives in this frame and is destroyed with it.
  co_await task;
  --*live_counter;
  (void)engine;
}

}  // namespace

void Engine::ScheduleAt(Tick at, std::coroutine_handle<> handle) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, next_seq_++, handle});
}

void Engine::Spawn(Task<void> task) {
  ++live_tasks_;
  // The detached frame starts eagerly: it runs the task inline until the task
  // first suspends on an engine awaitable.  This is equivalent to starting at
  // the current tick.
  RunDetached(this, std::move(task), &live_tasks_);
}

Tick Engine::RunUntilIdle() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    ++events_processed_;
    event.handle.resume();
  }
  return now_;
}

bool Engine::RunUntil(Tick until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    ++events_processed_;
    event.handle.resume();
  }
  if (queue_.empty()) {
    return true;
  }
  now_ = until;
  return false;
}

}  // namespace hsim
