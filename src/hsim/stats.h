// Latency recording for the experiment harnesses.

#ifndef HSIM_STATS_H_
#define HSIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/hsim/types.h"

namespace hsim {

class LatencyRecorder {
 public:
  void Record(Tick t) {
    samples_.push_back(t);
    sum_ += t;
  }

  std::uint64_t count() const { return samples_.size(); }
  double mean() const {
    return samples_.empty() ? 0.0
                            : static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }
  double mean_us() const { return mean() / static_cast<double>(kCyclesPerMicrosecond); }

  Tick max() const {
    return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }
  Tick min() const {
    return samples_.empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
  }

  // p in [0,100].
  Tick percentile(double p) const {
    if (samples_.empty()) {
      return 0;
    }
    std::vector<Tick> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
  }

  // Fraction of samples strictly above `threshold` ticks.
  double fraction_above(Tick threshold) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::uint64_t n = 0;
    for (Tick s : samples_) {
      if (s > threshold) {
        ++n;
      }
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
  }

  const std::vector<Tick>& samples() const { return samples_; }

 private:
  std::vector<Tick> samples_;
  std::uint64_t sum_ = 0;
};

}  // namespace hsim

#endif  // HSIM_STATS_H_
