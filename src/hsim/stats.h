// Latency recording for the experiment harnesses.
//
// LatencyRecorder is the simulator-facing view of hmetrics::LatencyHistogram:
// the same streaming, sorted-cache histogram (sort once, invalidate on
// insert) plus the tick<->microsecond conversions of the 16 MHz HECTOR model.

#ifndef HSIM_STATS_H_
#define HSIM_STATS_H_

#include <cstdint>

#include "src/hmetrics/histogram.h"
#include "src/hsim/types.h"

namespace hsim {

class LatencyRecorder : public hmetrics::LatencyHistogram {
 public:
  double mean_us() const { return mean() / static_cast<double>(kCyclesPerMicrosecond); }
  double percentile_us(double p) const { return TicksToUs(percentile(p)); }
};

}  // namespace hsim

#endif  // HSIM_STATS_H_
