// Deterministic fault injection for the simulated RPC transport.
//
// The HECTOR interconnect itself never loses a transaction, but the paper's
// cross-cluster protocols are written as if it could: the optimistic protocol
// (Section 2.3) leans entirely on "the remote side fails and the initiator
// retries".  A FaultPlan gives the simulator an adversarial transport so those
// recovery paths can be exercised and measured: each RPC request or reply leg
// may be dropped, duplicated, or delayed according to configured
// probabilities, drawn from the plan's own seeded PRNG.
//
// Determinism: the engine is single threaded and resumes events in a total
// (tick, sequence) order, so Decide() is called in the same order on every run
// with the same seed -- a faulted run replays bit-identically.
//
// Exactly one fault is injected per send: a message is dropped XOR duplicated
// XOR delayed.  A duplicate's extra copy is delivered verbatim (it is not
// itself re-faulted), so the plan's counters reconcile exactly against the
// dedup counters of the protocol under test.
//
// The force_* knobs inject the fault on the first N sends of a leg
// unconditionally -- unit tests use them to script one precise loss instead of
// fishing for it with probabilities.
//
// Whole-node partitions: PartitionNode(node, from, until) drops every leg
// whose source OR destination id equals `node` while the send instant lies in
// [from, until) -- the "unplug one machine's network cable for a window" knob
// chaos scenarios need, without plumbing per-link overrides for every peer.
// The id space is whatever the transport passes as src/dst (processor ids for
// the kernel's intra-machine RPC, machine ids for hmesh's inter-machine
// transport).  Partition drops are decided before any force knob or
// probability draw and consume no PRNG state, so adding a partition window
// perturbs nothing outside it.  HealNode(node, now) ends every active or
// future window for the node at `now` -- the cable is plugged back in early.

#ifndef HSIM_FAULT_H_
#define HSIM_FAULT_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/hsim/random.h"
#include "src/hsim/types.h"

namespace hsim {

// Which transit leg of an RPC a message is on.
enum class FaultLeg : std::uint8_t { kRequest, kReply };

struct FaultConfig {
  // Per-send probabilities, evaluated in this order (mutually exclusive).
  double drop_request = 0.0;
  double drop_reply = 0.0;
  double dup_request = 0.0;
  double dup_reply = 0.0;
  double delay_request = 0.0;
  double delay_reply = 0.0;
  // A delayed message (and the second copy of a duplicate) is held back by a
  // uniform 1..max_extra_delay extra ticks.
  Tick max_extra_delay = 512;
  std::uint64_t seed = 0x5eedULL;

  // Scripted faults: the first N sends of the leg fault deterministically,
  // before any probability is consulted.
  std::uint32_t force_drop_requests = 0;
  std::uint32_t force_drop_replies = 0;
  std::uint32_t force_dup_requests = 0;
  std::uint32_t force_dup_replies = 0;

  bool any() const {
    return drop_request > 0 || drop_reply > 0 || dup_request > 0 || dup_reply > 0 ||
           delay_request > 0 || delay_reply > 0 || force_drop_requests > 0 ||
           force_drop_replies > 0 || force_dup_requests > 0 || force_dup_replies > 0;
  }
};

class FaultPlan {
 public:
  // What the transport must do with one send.  At most one of drop/duplicate
  // is set; extra_delay applies to the primary copy, dup_extra_delay to the
  // duplicate's second copy.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    Tick extra_delay = 0;
    Tick dup_extra_delay = 0;
  };

  struct Counters {
    std::uint64_t requests_seen = 0;
    std::uint64_t replies_seen = 0;
    std::uint64_t requests_dropped = 0;
    std::uint64_t replies_dropped = 0;
    std::uint64_t requests_duplicated = 0;
    std::uint64_t replies_duplicated = 0;
    std::uint64_t requests_delayed = 0;
    std::uint64_t replies_delayed = 0;
    // Partition-window drops, counted separately from the probabilistic ones
    // (they are also included in requests_dropped/replies_dropped so the
    // transport reconciliation "seen == delivered + dropped" stays exact).
    std::uint64_t requests_partitioned = 0;
    std::uint64_t replies_partitioned = 0;

    std::uint64_t dropped() const { return requests_dropped + replies_dropped; }
    std::uint64_t duplicated() const { return requests_duplicated + replies_duplicated; }
    std::uint64_t partitioned() const { return requests_partitioned + replies_partitioned; }
  };

  explicit FaultPlan(const FaultConfig& config) : config_(config), rng_(config.seed) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultConfig& config() const { return config_; }
  const Counters& counters() const { return counters_; }

  // Overrides the base config for one directed link (src processor -> dst
  // processor) or for one operation kind (the transport passes its own opaque
  // op tag).  Link overrides win over op overrides win over the base config.
  void SetLinkConfig(ProcId src, ProcId dst, const FaultConfig& config) {
    link_configs_[{src, dst}] = config;
  }
  void SetOpConfig(std::uint8_t op, const FaultConfig& config) { op_configs_[op] = config; }

  // --- whole-node partitions --------------------------------------------------
  static constexpr Tick kNeverHeals = ~Tick{0};

  // Drops every leg to or from `node` while the send instant is in
  // [from, until).  Windows may overlap; `until = kNeverHeals` partitions the
  // node until an explicit HealNode.
  void PartitionNode(std::uint32_t node, Tick from, Tick until = kNeverHeals) {
    partitions_[node].push_back(Window{from, until});
  }

  // Ends every active or future partition window for `node` at `now`.
  void HealNode(std::uint32_t node, Tick now) {
    auto it = partitions_.find(node);
    if (it == partitions_.end()) {
      return;
    }
    for (Window& w : it->second) {
      if (w.until > now) {
        w.until = w.from > now ? w.from : now;
      }
    }
  }

  bool NodePartitioned(std::uint32_t node, Tick now) const {
    auto it = partitions_.find(node);
    if (it == partitions_.end()) {
      return false;
    }
    for (const Window& w : it->second) {
      if (w.from <= now && now < w.until) {
        return true;
      }
    }
    return false;
  }

  // `now` is the send instant; it only matters when partition windows are
  // installed (the probabilistic faults are time-free).
  Decision Decide(FaultLeg leg, ProcId src, ProcId dst, std::uint8_t op, Tick now = 0) {
    const FaultConfig& cfg = Select(src, dst, op);
    const bool request = leg == FaultLeg::kRequest;
    Decision decision;
    (request ? counters_.requests_seen : counters_.replies_seen)++;

    if (!partitions_.empty() && (NodePartitioned(src, now) || NodePartitioned(dst, now))) {
      (request ? counters_.requests_partitioned : counters_.replies_partitioned)++;
      return Drop(request, &decision);
    }

    std::uint32_t& force_drop = request ? forced_.drop_requests : forced_.drop_replies;
    std::uint32_t& force_dup = request ? forced_.dup_requests : forced_.dup_replies;
    const std::uint32_t force_drop_limit =
        request ? cfg.force_drop_requests : cfg.force_drop_replies;
    const std::uint32_t force_dup_limit =
        request ? cfg.force_dup_requests : cfg.force_dup_replies;
    if (force_drop < force_drop_limit) {
      ++force_drop;
      return Drop(request, &decision);
    }
    if (force_dup < force_dup_limit) {
      ++force_dup;
      return Duplicate(request, cfg, &decision);
    }

    const double p_drop = request ? cfg.drop_request : cfg.drop_reply;
    const double p_dup = request ? cfg.dup_request : cfg.dup_reply;
    const double p_delay = request ? cfg.delay_request : cfg.delay_reply;
    if (p_drop + p_dup + p_delay <= 0.0) {
      return decision;
    }
    const double u = NextUnit();
    if (u < p_drop) {
      return Drop(request, &decision);
    }
    if (u < p_drop + p_dup) {
      return Duplicate(request, cfg, &decision);
    }
    if (u < p_drop + p_dup + p_delay) {
      (request ? counters_.requests_delayed : counters_.replies_delayed)++;
      decision.extra_delay = ExtraDelay(cfg);
    }
    return decision;
  }

 private:
  struct Window {
    Tick from = 0;
    Tick until = kNeverHeals;
  };

  struct ForcedState {
    std::uint32_t drop_requests = 0;
    std::uint32_t drop_replies = 0;
    std::uint32_t dup_requests = 0;
    std::uint32_t dup_replies = 0;
  };

  const FaultConfig& Select(ProcId src, ProcId dst, std::uint8_t op) const {
    auto link = link_configs_.find({src, dst});
    if (link != link_configs_.end()) {
      return link->second;
    }
    auto per_op = op_configs_.find(op);
    if (per_op != op_configs_.end()) {
      return per_op->second;
    }
    return config_;
  }

  Decision Drop(bool request, Decision* decision) {
    (request ? counters_.requests_dropped : counters_.replies_dropped)++;
    decision->drop = true;
    return *decision;
  }

  Decision Duplicate(bool request, const FaultConfig& cfg, Decision* decision) {
    (request ? counters_.requests_duplicated : counters_.replies_duplicated)++;
    decision->duplicate = true;
    decision->dup_extra_delay = ExtraDelay(cfg);
    return *decision;
  }

  Tick ExtraDelay(const FaultConfig& cfg) {
    if (cfg.max_extra_delay == 0) {
      return 0;
    }
    return 1 + rng_.NextBelow(cfg.max_extra_delay);
  }

  double NextUnit() { return static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53; }

  FaultConfig config_;
  Rng rng_;
  Counters counters_;
  ForcedState forced_;
  std::map<std::pair<ProcId, ProcId>, FaultConfig> link_configs_;
  std::map<std::uint8_t, FaultConfig> op_configs_;
  std::map<std::uint32_t, std::vector<Window>> partitions_;
};

}  // namespace hsim

#endif  // HSIM_FAULT_H_
