// FIFO-served hardware resources (memory modules, station buses, the ring).
//
// A resource is modelled with reservation semantics: a transaction arriving at
// tick T reserves the first free interval at or after T and waits until its
// service completes.  Because the engine processes events in time order,
// reservation order equals service order, which makes each resource an exact
// FIFO queue without an explicit waiter list.  Queueing delay under load is
// what produces the paper's "second order" contention effects.

#ifndef HSIM_RESOURCE_H_
#define HSIM_RESOURCE_H_

#include <cstdint>
#include <string>

#include "src/hsim/engine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

class Resource {
 public:
  Resource(Engine* engine, std::string name) : engine_(engine), name_(std::move(name)) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  Resource(Resource&&) = default;

  const std::string& name() const { return name_; }

  // Reserves the resource for `hold` ticks starting at the first free instant
  // >= now.  Returns the service start tick.  The caller is responsible for
  // waiting (see Use / UseOverlapped).
  Tick Reserve(Tick hold) {
    Tick start = busy_until_ > engine_->now() ? busy_until_ : engine_->now();
    busy_until_ = start + hold;
    total_busy_ += hold;
    total_wait_ += start - engine_->now();
    ++transactions_;
    return start;
  }

  // Occupies the resource for `hold` ticks; resumes when service completes.
  Task<void> Use(Tick hold) {
    Tick start = Reserve(hold);
    co_await engine_->WaitUntil(start + hold);
  }

  // Occupies the resource for `hold` ticks but resumes the caller after only
  // `visible` ticks of service.  Used for atomic swap: the MC88100 proceeds as
  // soon as the fetch half completes while the memory module finishes the
  // store half in the background.
  Task<void> UseOverlapped(Tick visible, Tick hold) {
    Tick start = Reserve(hold);
    co_await engine_->WaitUntil(start + visible);
  }

  // --- statistics -----------------------------------------------------------
  // Total ticks of service delivered.
  Tick total_busy() const { return total_busy_; }
  // Total ticks transactions spent queued behind earlier transactions.
  Tick total_wait() const { return total_wait_; }
  std::uint64_t transactions() const { return transactions_; }
  Tick busy_until() const { return busy_until_; }

  void ResetStats() {
    total_busy_ = 0;
    total_wait_ = 0;
    transactions_ = 0;
  }

 private:
  Engine* engine_;
  std::string name_;
  Tick busy_until_ = 0;
  Tick total_busy_ = 0;
  Tick total_wait_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace hsim

#endif  // HSIM_RESOURCE_H_
