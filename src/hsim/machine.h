// Model of the HECTOR multiprocessor.
//
// HECTOR (Vranesic et al.) is a NUMA shared-memory multiprocessor without
// hardware cache coherence: processor-memory modules share a station bus, and
// stations are connected by a ring.  The paper's prototype is 4 stations of 4
// modules (16 processors) with uncontended access times of 10 cycles (local,
// on-module), 19 cycles (on-station) and 23 cycles (cross-ring), and an
// atomic-swap primitive that costs two memory accesses, of which the
// requesting processor only waits for the first (the MC88100 continues as
// soon as the fetch half completes).
//
// Every shared word of simulated kernel memory is a SimWord homed on one
// module.  Loads, stores and atomic swaps traverse the route between the
// requesting processor's module and the word's home module, occupying the
// station buses, the ring, and the target memory module.  Contention between
// transactions therefore produces exactly the queueing behaviour whose
// second-order effects the paper measures: processors spinning over the
// network slow down both bystanders and the lock holder itself.

#ifndef HSIM_MACHINE_H_
#define HSIM_MACHINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/hmetrics/trace.h"
#include "src/hsim/engine.h"
#include "src/hsim/fault.h"
#include "src/hsim/opstats.h"
#include "src/hsim/random.h"
#include "src/hsim/resource.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

// One word of simulated shared memory, homed on a memory module.  Values are
// held natively (the engine is single threaded); timing and ordering come
// from routing every access through the machine's resources.
//
// When the machine runs in cache-coherent mode (Section 5.2's hypothetical),
// each word also tracks which processors hold it cached: `sharers` is a
// bitmask, `owner` the processor holding it exclusively (or kNoOwner).
struct SimWord {
  static constexpr std::uint32_t kNoOwner = ~0u;

  std::uint64_t value = 0;
  ModuleId home = 0;
  std::uint32_t sharers = 0;
  std::uint32_t owner = kNoOwner;
};

struct MachineConfig {
  std::uint32_t stations = 4;
  std::uint32_t modules_per_station = 4;

  // Service times, chosen so that uncontended access latencies match the
  // paper: local 10, on-station 4+10+4+1 = 19, cross-ring 2+2+2+10+2+2+2+1
  // = 23 cycles.
  Tick mem_service = 10;     // memory module hold per access
  Tick bus_request = 4;      // station bus hold, request leg (on-station)
  Tick bus_response = 4;     // station bus hold, response leg (on-station)
  Tick ring_bus_hold = 2;    // station bus hold per leg when transiting to/from the ring
  Tick ring_hold = 2;        // ring hold per direction
  Tick remote_pad = 1;       // fixed interface latency for any off-module access
  std::uint32_t atomic_accesses = 2;  // an atomic swap performs two memory accesses
  // The store half of a remote atomic swap travels the interconnect after the
  // processor has resumed (it only waits for the fetch half).  Modelling that
  // trailing one-way transfer is what gives remote test-and-set spinning its
  // outsized second-order footprint.
  bool rmw_trailing_store_traffic = true;
  // Section 5.2 what-if: hardware cache coherence with cache-based atomics.
  // Loads of a shared line and stores/RMWs to an exclusively-held line cost
  // `cache_hit_cycles` and touch no shared resource; misses and ownership
  // transfers take the normal uncached path (plus an invalidation hold at the
  // home module when other processors cache the line).
  bool cache_coherent = false;
  Tick cache_hit_cycles = 1;
  Tick cached_rmw_cycles = 3;

  std::uint32_t num_processors() const { return stations * modules_per_station; }
};

class Machine;

// A simulated CPU.  All simulated code runs "on" a Processor and charges its
// instruction and memory operations here.
class Processor {
 public:
  Processor(Machine* machine, ProcId id);
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  ProcId id() const { return id_; }
  ModuleId module() const { return id_; }  // one processor per processor-memory module
  StationId station() const;

  Machine& machine() { return *machine_; }
  Engine& engine();
  Tick now();
  OpStats& stats() { return stats_; }
  Rng& rng() { return rng_; }

  // --- memory operations ----------------------------------------------------
  Task<std::uint64_t> Load(SimWord& word);
  Task<void> Store(SimWord& word, std::uint64_t value);
  // A store absorbed by the processor's write buffer: the value is applied
  // and the target module is occupied as usual, but the processor does not
  // wait.  Only valid for words on the processor's own module (the MC88100
  // write buffer hides local stores whose result nothing reads immediately).
  void PostStore(SimWord& word, std::uint64_t value);
  // Atomic swap: the only read-modify-write HECTOR supports.  Returns the old
  // value.  Costs two memory accesses at the module; the processor resumes
  // after the fetch half.
  Task<std::uint64_t> FetchStore(SimWord& word, std::uint64_t value);
  // Compare-and-swap.  Not available on HECTOR; provided for the paper's
  // "if compare_and_swap were available" comparison points.
  Task<bool> CompareSwap(SimWord& word, std::uint64_t expected, std::uint64_t desired);
  // Atomic fetch-and-add; harness-level convenience (barriers, counters).
  Task<std::uint64_t> FetchAdd(SimWord& word, std::uint64_t delta);

  // --- instruction execution -------------------------------------------------
  // Charges `reg` register-to-register instructions and `branches` branch
  // instructions, one cycle each (single-issue MC88100).
  Task<void> Exec(std::uint32_t reg, std::uint32_t branches);
  // Pure time: processor is busy computing for `cycles` (no shared-memory
  // traffic).  Used for fixed-cost kernel work.
  Task<void> Compute(Tick cycles);
  // Pure time with no work: backoff delay (counted as idle).
  Task<void> BackoffDelay(Tick cycles);

 private:
  enum class AccessKind { kLoad, kStore, kSwap, kCas, kFetchAdd };

  // Access wrapped in an hmetrics span (only instantiated when the machine's
  // trace session has the memory category enabled): the span covers the whole
  // access including its queueing time at buses/ring/module, so contention is
  // directly visible in the trace viewer.
  Task<std::uint64_t> TracedAccess(SimWord& word, AccessKind kind, std::uint64_t operand,
                                   std::uint64_t expected, bool* cas_ok, const char* name);

  // Routes an access to `word`'s home module and applies the value operation
  // at the module's ordering point.  Returns the value read (old value for
  // RMW ops; for kCas the returned value is the old value and `*cas_ok`
  // reports success).
  Task<std::uint64_t> Access(SimWord& word, AccessKind kind, std::uint64_t operand,
                             std::uint64_t expected, bool* cas_ok);

  // The cache-coherent variant of Access (MachineConfig::cache_coherent).
  Task<std::uint64_t> CoherentAccess(SimWord& word, AccessKind kind, std::uint64_t operand,
                                     std::uint64_t expected, bool* cas_ok);

  Machine* machine_;
  ProcId id_;
  OpStats stats_;
  Rng rng_;
};

class Machine {
 public:
  Machine(Engine* engine, const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  Engine& engine() { return *engine_; }

  // --- tracing ----------------------------------------------------------------
  // Attaches an hmetrics trace session.  Producers (locks, the memory system,
  // the kernel's RPC layer) emit spans onto it; recording never advances
  // simulated time, so a traced run is bit-identical to an untraced one.
  void set_trace(hmetrics::TraceSession* trace) {
    trace_ = trace;
    if (trace_ != nullptr) {
      trace_->set_ticks_per_us(static_cast<double>(kCyclesPerMicrosecond));
    }
  }
  hmetrics::TraceSession* trace() { return trace_; }
  bool trace_enabled(hmetrics::TraceCategory cat) const {
    return trace_ != nullptr && trace_->enabled(cat);
  }

  // --- fault injection --------------------------------------------------------
  // Installs an adversarial transport plan.  The RPC layer consults it on
  // every request/reply send; without a plan the transport is perfect.  The
  // plan's PRNG is independent of the processors' backoff PRNGs, so enabling
  // faults perturbs only the transport.
  void set_fault_plan(const FaultConfig& config) {
    fault_plan_ = std::make_unique<FaultPlan>(config);
  }
  void clear_fault_plan() { fault_plan_.reset(); }
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  std::uint32_t num_processors() const { return config_.num_processors(); }
  Processor& processor(ProcId id) { return *processors_[id]; }

  StationId station_of(ModuleId module) const { return module / config_.modules_per_station; }

  Resource& memory(ModuleId module) { return *memories_[module]; }
  Resource& bus(StationId station) { return *buses_[station]; }
  Resource& ring() { return *ring_; }

  // Allocates one word of simulated memory homed on `module`.  Words are
  // stable in memory for the life of the Machine.
  SimWord& AllocWord(ModuleId module, std::uint64_t initial = 0);

  // Aggregate interconnect statistics (for reporting contention).
  Tick total_bus_wait() const;
  Tick total_memory_wait() const;
  Tick total_ring_wait() const { return ring_->total_wait(); }
  void ResetResourceStats();

 private:
  Engine* engine_;
  MachineConfig config_;
  hmetrics::TraceSession* trace_ = nullptr;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<std::unique_ptr<Resource>> memories_;
  std::vector<std::unique_ptr<Resource>> buses_;
  std::unique_ptr<Resource> ring_;
  std::vector<std::unique_ptr<Processor>> processors_;
  std::deque<SimWord> words_;
};

}  // namespace hsim

#endif  // HSIM_MACHINE_H_
