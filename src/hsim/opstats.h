// Per-processor operation counters.
//
// These mirror the categories of Figure 4 in the paper: atomic read-modify-
// write instructions, plain memory loads/stores, single-cycle register-to-
// register instructions, and branches.  The simulated lock algorithms charge
// every instruction they execute to these counters, so the Figure 4 table can
// be regenerated exactly by differencing counters around a lock/unlock pair.

#ifndef HSIM_OPSTATS_H_
#define HSIM_OPSTATS_H_

#include <cstdint>

#include "src/hmetrics/registry.h"

namespace hsim {

struct OpStats {
  std::uint64_t atomic_ops = 0;   // atomic swap / compare-and-swap
  std::uint64_t mem_loads = 0;    // plain loads
  std::uint64_t mem_stores = 0;   // plain stores
  std::uint64_t reg_instrs = 0;   // register-to-register instructions
  std::uint64_t branches = 0;     // branches, including returns
  std::uint64_t idle_cycles = 0;  // backoff delay cycles (no memory traffic)

  // NUMA locality of completed memory references (loads, stores, atomics),
  // classified by the route the access took: the processor's own module, a
  // sibling module on the same station, or across the ring.  These are the
  // per-processor version of the paper's traffic argument -- an allocator or
  // lock is NUMA-friendly exactly when its loc_ring share is small -- and
  // what bench/alloc_scaling gates.  Pure observers: incrementing them never
  // changes timing, so every pre-existing series is bit-identical.
  std::uint64_t loc_local = 0;    // served by the local module (or cache hit)
  std::uint64_t loc_station = 0;  // same-station remote module
  std::uint64_t loc_ring = 0;     // crossed the inter-station ring

  std::uint64_t mem_accesses() const { return mem_loads + mem_stores; }
  std::uint64_t loc_total() const { return loc_local + loc_station + loc_ring; }

  OpStats operator-(const OpStats& other) const {
    OpStats d;
    d.atomic_ops = atomic_ops - other.atomic_ops;
    d.mem_loads = mem_loads - other.mem_loads;
    d.mem_stores = mem_stores - other.mem_stores;
    d.reg_instrs = reg_instrs - other.reg_instrs;
    d.branches = branches - other.branches;
    d.idle_cycles = idle_cycles - other.idle_cycles;
    d.loc_local = loc_local - other.loc_local;
    d.loc_station = loc_station - other.loc_station;
    d.loc_ring = loc_ring - other.loc_ring;
    return d;
  }

  OpStats& operator+=(const OpStats& other) {
    atomic_ops += other.atomic_ops;
    mem_loads += other.mem_loads;
    mem_stores += other.mem_stores;
    reg_instrs += other.reg_instrs;
    branches += other.branches;
    idle_cycles += other.idle_cycles;
    loc_local += other.loc_local;
    loc_station += other.loc_station;
    loc_ring += other.loc_ring;
    return *this;
  }
};

// Charges an OpStats delta into an hmetrics registry, one counter series per
// Figure-4 category.  OpStats itself stays the hot-path accumulator (a plain
// struct the simulated locks bump inline, preserving exact Figure-4 counts);
// this is the bridge that makes the same numbers visible as labeled series.
inline void ChargeOpStats(hmetrics::Registry* registry, const OpStats& stats,
                          const hmetrics::Labels& labels) {
  registry->counter("sim.atomic_ops", labels).Add(stats.atomic_ops);
  registry->counter("sim.mem_loads", labels).Add(stats.mem_loads);
  registry->counter("sim.mem_stores", labels).Add(stats.mem_stores);
  registry->counter("sim.reg_instrs", labels).Add(stats.reg_instrs);
  registry->counter("sim.branches", labels).Add(stats.branches);
  registry->counter("sim.idle_cycles", labels).Add(stats.idle_cycles);
  registry->counter("sim.loc_local", labels).Add(stats.loc_local);
  registry->counter("sim.loc_station", labels).Add(stats.loc_station);
  registry->counter("sim.loc_ring", labels).Add(stats.loc_ring);
}

}  // namespace hsim

#endif  // HSIM_OPSTATS_H_
