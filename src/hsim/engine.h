// Discrete-event engine.
//
// The engine owns a time-ordered queue of pending coroutine resumptions.
// Simulated code suspends on awaitables that schedule their own resumption at
// a future tick; the engine pops events in (tick, sequence) order, so runs are
// fully deterministic.  Ties at the same tick resume in scheduling order.

#ifndef HSIM_ENGINE_H_
#define HSIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Tick now() const { return now_; }

  // Number of top-level tasks spawned and still running.
  std::uint64_t live_tasks() const { return live_tasks_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // Schedules `handle` to be resumed at absolute tick `at` (clamped to now).
  void ScheduleAt(Tick at, std::coroutine_handle<> handle);

  // Awaitable: suspend until absolute tick `at`.
  auto WaitUntil(Tick at) {
    struct Awaiter {
      Engine* engine;
      Tick at;
      bool await_ready() const noexcept { return at <= engine->now(); }
      void await_suspend(std::coroutine_handle<> handle) { engine->ScheduleAt(at, handle); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, at};
  }

  // Awaitable: suspend for `delta` ticks.
  auto Delay(Tick delta) { return WaitUntil(now_ + delta); }

  // Launches a top-level task.  The task starts at the current tick and its
  // frame is destroyed when it completes.  The task must terminate.
  void Spawn(Task<void> task);

  // Runs events until the queue is empty.  Returns the final tick.
  Tick RunUntilIdle();

  // Runs events with tick <= `until`.  Events after `until` remain queued.
  // Returns true if the queue drained.
  bool RunUntil(Tick until);

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    // priority_queue is a max-heap; invert so the earliest event wins.
    bool operator<(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t live_tasks_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event> queue_;
};

}  // namespace hsim

#endif  // HSIM_ENGINE_H_
