// Minimal JSON support for the metrics layer: a streaming writer and a small
// recursive-descent parser.
//
// The writer produces compact (single-line) RFC 8259 output and is the one
// place where string escaping and float formatting live, so every exporter
// (BenchReport, TraceSession, Registry) serializes identically.  The parser
// exists so that tests and tooling can read our own output back -- it is not a
// general-purpose JSON library (no \uXXXX surrogate pairs, 64-bit doubles
// only), which is exactly enough for data we ourselves produced.

#ifndef HMETRICS_JSON_H_
#define HMETRICS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hmetrics {

// Appends `s` to `out` with JSON string escaping (quotes not included).
inline void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Formats a double the way JSON requires: no inf/nan (clamped to 0), integral
// values without a trailing ".0" mantissa soup, everything else round-trip
// precise via %.17g.
inline void JsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "0";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// A streaming writer for compact JSON.  The caller is responsible for
// structural correctness (the writer only tracks when a comma is needed).
class JsonWriter {
 public:
  void BeginObject() {
    Comma();
    out_ += '{';
    fresh_ = true;
  }
  void EndObject() {
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray() {
    Comma();
    out_ += '[';
    fresh_ = true;
  }
  void EndArray() {
    out_ += ']';
    fresh_ = false;
  }
  void Key(const std::string& k) {
    Comma();
    out_ += '"';
    JsonEscape(k, &out_);
    out_ += "\":";
    fresh_ = true;  // the upcoming value must not emit a comma
  }
  void String(const std::string& v) {
    Comma();
    out_ += '"';
    JsonEscape(v, &out_);
    out_ += '"';
  }
  void Number(double v) {
    Comma();
    JsonNumber(v, &out_);
  }
  void Uint(std::uint64_t v) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }
  void Null() {
    Comma();
    out_ += "null";
  }
  // Convenience: key + value in one call.
  void Field(const std::string& k, const std::string& v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, const char* v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, double v) {
    Key(k);
    Number(v);
  }
  void Field(const std::string& k, std::uint64_t v) {
    Key(k);
    Uint(v);
  }
  void Field(const std::string& k, bool v) {
    Key(k);
    Bool(v);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma() {
    if (!fresh_) {
      out_ += ',';
    }
    fresh_ = false;
  }
  std::string out_;
  bool fresh_ = true;
};

// A parsed JSON value.  Objects keep insertion-order-insensitive std::map
// semantics; numbers are doubles (all numbers we emit fit).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  // Lookup that returns a null value on any miss, so chained access is safe.
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue kNull;
    auto it = object.find(key);
    return it == object.end() ? kNull : it->second;
  }
  const JsonValue& at(std::size_t i) const {
    static const JsonValue kNull;
    return i < array.size() ? array[i] : kNull;
  }
};

// Parses `text`; returns false (and sets *error when provided) on malformed
// input or trailing garbage.
class JsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out, std::string* error = nullptr) {
    JsonParser p(text);
    if (!p.ParseValue(out)) {
      if (error != nullptr) {
        *error = p.error_;
      }
      return false;
    }
    p.SkipWs();
    if (p.pos_ != text.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(p.pos_);
      }
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Fail("dangling escape");
        }
        char e = text_[++pos_];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return Fail("short \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + 1 + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // We only ever emit \u00xx control escapes; decode as Latin-1.
            *out += static_cast<char>(code & 0xFF);
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
      } else {
        *out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        out->object.emplace(std::move(key), std::move(v));
        SkipWs();
        if (pos_ >= text_.size()) {
          return Fail("unterminated object");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        out->array.push_back(std::move(v));
        SkipWs();
        if (pos_ >= text_.size()) {
          return Fail("unterminated array");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    std::size_t start = pos_;
    if (text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace hmetrics

#endif  // HMETRICS_JSON_H_
