// Streaming latency histogram with a sorted-sample cache.
//
// The previous harness recorder copied and sorted the full sample vector on
// EVERY percentile query -- O(n log n) per call, and benches query several
// percentiles per table row.  LatencyHistogram sorts once, lazily, and
// invalidates the cache on insert, so a burst of percentile/min/max/fraction
// queries after a run costs one sort total.  Sum, min and max are maintained
// streaming so they never touch the cache at all.
//
// Raw-sample retention is capped (set_sample_cap): once the cap is reached
// further samples still update the streaming statistics (count, sum, min,
// max, mean) but are not retained, and samples_dropped() counts them.  Order
// statistics (percentile, fraction_above) are then computed over the retained
// prefix -- exact below the cap, a prefix approximation above it.  The
// default cap is high enough that every existing test and bench stays exact;
// long profiled runs stay bounded at cap * 8 bytes.
//
// Samples are unsigned 64-bit (simulator ticks or nanoseconds); all derived
// statistics are doubles.  Merge() combines per-processor (or per-thread)
// shards into one distribution, which is how sharded harnesses aggregate.

#ifndef HMETRICS_HISTOGRAM_H_
#define HMETRICS_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace hmetrics {

class LatencyHistogram {
 public:
  using Sample = std::uint64_t;

  // 1M samples == 8 MiB retained per series: bounded, yet far beyond what any
  // test or paper-length bench records, so results below the cap are exact.
  static constexpr std::size_t kDefaultSampleCap = 1u << 20;

  void Record(Sample v) {
    ++count_;
    AddSaturating(v);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    if (samples_.size() >= sample_cap_) {
      ++dropped_;
      return;
    }
    samples_.push_back(v);
    // Invalidate the query cache (cheap flag, no deallocation).
    sorted_valid_ = false;
  }

  // Bulk-records `n` samples of value `v` in O(1) streaming work plus one
  // vector append for the retained copies.  Identical in outcome to calling
  // Record(v) n times: exact count/sum/min/max, retention up to the cap,
  // overflow counted in samples_dropped().  This is the path coordinated-
  // omission backfill and bucketed per-thread recorders use -- thousands of
  // synthetic samples per flush must not pay the per-sample cap bookkeeping.
  // v * n can exceed 64 bits (a bucketed recorder flushing millions of large
  // latencies); the sum saturates instead of wrapping, and sum_overflowed()
  // reports that the total is a floor, not exact.
  void RecordN(Sample v, std::uint64_t n) {
    if (n == 0) {
      return;
    }
    count_ += n;
    std::uint64_t bulk;
    if (__builtin_mul_overflow(v, n, &bulk)) {
      SaturateSum();
    } else {
      AddSaturating(bulk);
    }
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const std::size_t room =
        samples_.size() < sample_cap_ ? sample_cap_ - samples_.size() : 0;
    const std::uint64_t take = std::min<std::uint64_t>(room, n);
    if (take > 0) {
      samples_.insert(samples_.end(), static_cast<std::size_t>(take), v);
      sorted_valid_ = false;
    }
    dropped_ += n - take;
  }

  // Folds `other`'s samples into this histogram (shard aggregation).  This
  // histogram's own cap governs how many of the merged samples are retained.
  void Merge(const LatencyHistogram& other) {
    if (other.count_ == 0) {
      return;
    }
    count_ += other.count_;
    AddSaturating(other.sum_);
    if (other.sum_overflowed_) {
      SaturateSum();
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    dropped_ += other.dropped_;
    const std::size_t room =
        samples_.size() < sample_cap_ ? sample_cap_ - samples_.size() : 0;
    const std::size_t take = std::min(room, other.samples_.size());
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.begin() + static_cast<std::ptrdiff_t>(take));
    dropped_ += other.samples_.size() - take;
    if (take > 0) {
      sorted_valid_ = false;
    }
  }

  // Caps future raw-sample retention.  Already-retained samples are kept even
  // if they exceed a newly-lowered cap (no information is destroyed).
  void set_sample_cap(std::size_t cap) { sample_cap_ = cap; }
  std::size_t sample_cap() const { return sample_cap_; }

  // Samples recorded (or merged) beyond the retention cap.
  std::uint64_t samples_dropped() const { return dropped_; }

  // True once the streaming sum hit the uint64 ceiling: sum()/mean() are
  // floors from then on, never wrapped-around garbage.
  bool sum_overflowed() const { return sum_overflowed_; }

  // Forgets everything, keeping the configured cap.
  void Reset() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
    count_ = 0;
    sum_ = 0;
    sum_overflowed_ = false;
    dropped_ = 0;
    min_ = std::numeric_limits<Sample>::max();
    max_ = 0;
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  Sample max() const { return count_ == 0 ? 0 : max_; }
  Sample min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t sum() const { return sum_; }

  // Nearest-rank percentile with the same rounding the old recorder used:
  // rank = p/100 * (n-1), rounded half-up.  p is clamped to [0, 100].
  // Computed over the retained samples (exact while nothing was dropped).
  Sample percentile(double p) const {
    if (samples_.empty()) {
      return 0;
    }
    p = std::min(std::max(p, 0.0), 100.0);
    EnsureSorted();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    return sorted_[static_cast<std::size_t>(rank + 0.5)];
  }

  // Fraction of retained samples strictly above `threshold`.  Uses the sorted
  // cache: O(log n) after the one-time sort instead of a full scan per query.
  double fraction_above(Sample threshold) const {
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    const auto first_above =
        std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return static_cast<double>(sorted_.end() - first_above) /
           static_cast<double>(sorted_.size());
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void AddSaturating(std::uint64_t v) {
    if (__builtin_add_overflow(sum_, v, &sum_)) {
      SaturateSum();
    }
  }
  void SaturateSum() {
    sum_ = std::numeric_limits<std::uint64_t>::max();
    sum_overflowed_ = true;
  }

  void EnsureSorted() const {
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
  }

  std::vector<Sample> samples_;
  std::size_t sample_cap_ = kDefaultSampleCap;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  bool sum_overflowed_ = false;
  std::uint64_t dropped_ = 0;
  Sample min_ = std::numeric_limits<Sample>::max();
  Sample max_ = 0;
  // Query-side cache: mutable so const statistics queries can build it.
  mutable std::vector<Sample> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hmetrics

#endif  // HMETRICS_HISTOGRAM_H_
