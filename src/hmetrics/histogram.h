// Streaming latency histogram with a sorted-sample cache.
//
// The previous harness recorder copied and sorted the full sample vector on
// EVERY percentile query -- O(n log n) per call, and benches query several
// percentiles per table row.  LatencyHistogram sorts once, lazily, and
// invalidates the cache on insert, so a burst of percentile/min/max/fraction
// queries after a run costs one sort total.  Sum, min and max are maintained
// streaming so they never touch the cache at all.
//
// Samples are unsigned 64-bit (simulator ticks or nanoseconds); all derived
// statistics are doubles.  Merge() combines per-processor (or per-thread)
// shards into one distribution, which is how sharded harnesses aggregate.

#ifndef HMETRICS_HISTOGRAM_H_
#define HMETRICS_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace hmetrics {

class LatencyHistogram {
 public:
  using Sample = std::uint64_t;

  void Record(Sample v) {
    samples_.push_back(v);
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    // Invalidate the query cache (cheap flag, no deallocation).
    sorted_valid_ = false;
  }

  // Folds `other`'s samples into this histogram (shard aggregation).
  void Merge(const LatencyHistogram& other) {
    if (other.samples_.empty()) {
      return;
    }
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sorted_valid_ = false;
  }

  std::uint64_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    return samples_.empty()
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }
  Sample max() const { return samples_.empty() ? 0 : max_; }
  Sample min() const { return samples_.empty() ? 0 : min_; }
  std::uint64_t sum() const { return sum_; }

  // Nearest-rank percentile with the same rounding the old recorder used:
  // rank = p/100 * (n-1), rounded half-up.  p is clamped to [0, 100].
  Sample percentile(double p) const {
    if (samples_.empty()) {
      return 0;
    }
    p = std::min(std::max(p, 0.0), 100.0);
    EnsureSorted();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    return sorted_[static_cast<std::size_t>(rank + 0.5)];
  }

  // Fraction of samples strictly above `threshold`.  Uses the sorted cache:
  // O(log n) after the one-time sort instead of a full scan per query.
  double fraction_above(Sample threshold) const {
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    const auto first_above =
        std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return static_cast<double>(sorted_.end() - first_above) /
           static_cast<double>(sorted_.size());
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void EnsureSorted() const {
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
  }

  std::vector<Sample> samples_;
  std::uint64_t sum_ = 0;
  Sample min_ = std::numeric_limits<Sample>::max();
  Sample max_ = 0;
  // Query-side cache: mutable so const statistics queries can build it.
  mutable std::vector<Sample> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hmetrics

#endif  // HMETRICS_HISTOGRAM_H_
