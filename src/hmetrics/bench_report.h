// BenchReport: one machine-readable JSON document per bench run.
//
// Every bench binary emits (next to its human-readable table) a single-line
// JSON document with one shared schema:
//
//   {"schema":"hurricane-bench-report/1",
//    "bench":"fig5_lock_contention",
//    "params":{"hold_us":25,"smoke":false,...},
//    "series":[{"name":"response_us",
//               "labels":{"lock":"h2-mcs"},
//               "points":[{"p":1,"w_us":4.1},...]},...],
//    "env":{"sim":"hector-16mhz",...}}
//
// A series is one curve of a figure: a name, a label set distinguishing it
// from sibling curves (lock kind, protocol, cluster size...), and a list of
// points, each point a flat map of numeric fields (the x value and every
// measured y).  run_all.sh concatenates these lines into BENCH_RESULTS.json;
// Validate() is the shared schema check used by tests and tooling.

#ifndef HMETRICS_BENCH_REPORT_H_
#define HMETRICS_BENCH_REPORT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/hmetrics/json.h"
#include "src/hmetrics/registry.h"

namespace hmetrics {

inline constexpr const char* kBenchReportSchema = "hurricane-bench-report/1";

// One point: a flat map of numeric fields, e.g. {"p":16,"w_us":230.4}.
using Point = std::map<std::string, double>;

class BenchSeries {
 public:
  BenchSeries(std::string name, Labels labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}

  BenchSeries& AddPoint(Point point) {
    points_.push_back(std::move(point));
    return *this;
  }

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  Labels labels_;
  std::vector<Point> points_;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {
    env_["sim"] = "hector-16mhz-4x4";
  }

  const std::string& bench() const { return bench_; }

  BenchReport& SetParam(const std::string& key, double value) {
    params_[key] = value;
    return *this;
  }
  BenchReport& SetEnv(const std::string& key, std::string value) {
    env_[key] = std::move(value);
    return *this;
  }

  BenchSeries& AddSeries(std::string name, Labels labels = {}) {
    series_.emplace_back(std::move(name), std::move(labels));
    return series_.back();
  }

  const std::vector<BenchSeries>& series() const { return series_; }

  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Field("schema", kBenchReportSchema);
    w.Field("bench", bench_);
    w.Key("params");
    w.BeginObject();
    for (const auto& [k, v] : params_) {
      w.Field(k, v);
    }
    w.EndObject();
    w.Key("series");
    w.BeginArray();
    for (const BenchSeries& s : series_) {
      w.BeginObject();
      w.Field("name", s.name());
      w.Key("labels");
      w.BeginObject();
      for (const auto& [k, v] : s.labels()) {
        w.Field(k, v);
      }
      w.EndObject();
      w.Key("points");
      w.BeginArray();
      for (const Point& p : s.points()) {
        w.BeginObject();
        for (const auto& [k, v] : p) {
          w.Field(k, v);
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("env");
    w.BeginObject();
    for (const auto& [k, v] : env_) {
      w.Field(k, v);
    }
    w.EndObject();
    w.EndObject();
    return w.Take();
  }

  // Checks that `doc` conforms to the shared report schema.  On failure
  // returns false and describes the first problem in *error.
  static bool Validate(const JsonValue& doc, std::string* error) {
    auto fail = [error](const std::string& what) {
      *error = what;
      return false;
    };
    if (!doc.is_object()) {
      return fail("report is not an object");
    }
    if (doc["schema"].string_value != kBenchReportSchema) {
      return fail("missing or wrong schema tag");
    }
    if (!doc["bench"].is_string() || doc["bench"].string_value.empty()) {
      return fail("missing bench name");
    }
    if (!doc["params"].is_object()) {
      return fail("missing params object");
    }
    for (const auto& [k, v] : doc["params"].object) {
      if (!v.is_number()) {
        return fail("param '" + k + "' is not numeric");
      }
    }
    if (!doc["series"].is_array()) {
      return fail("missing series array");
    }
    for (const JsonValue& s : doc["series"].array) {
      if (!s.is_object() || !s["name"].is_string()) {
        return fail("series without a name");
      }
      if (!s["labels"].is_object()) {
        return fail("series '" + s["name"].string_value + "' has no labels object");
      }
      if (!s["points"].is_array()) {
        return fail("series '" + s["name"].string_value + "' has no points array");
      }
      for (const JsonValue& p : s["points"].array) {
        if (!p.is_object()) {
          return fail("non-object point in series '" + s["name"].string_value + "'");
        }
        for (const auto& [k, v] : p.object) {
          if (!v.is_number()) {
            return fail("non-numeric field '" + k + "' in series '" +
                        s["name"].string_value + "'");
          }
        }
      }
    }
    if (!doc["env"].is_object()) {
      return fail("missing env object");
    }
    return true;
  }

 private:
  std::string bench_;
  std::map<std::string, double> params_;
  std::vector<BenchSeries> series_;
  std::map<std::string, std::string> env_;
};

}  // namespace hmetrics

#endif  // HMETRICS_BENCH_REPORT_H_
