// TraceSession: timestamped spans and instants, exported as Chrome
// trace_event JSON (the format Perfetto / chrome://tracing load directly).
//
// Producers (the simulator's locks, memory system, RPC layer) are handed an
// optional TraceSession*; when it is null or the producer's category is
// disabled, tracing is a pointer test and costs nothing.  Recording never
// suspends or advances simulated time, so an identical run with tracing
// enabled produces bit-identical timing -- the trace is a pure observer.
//
// Spans are exported as complete events (ph "X": one record with ts + dur);
// instants as ph "i".  Timestamps are recorded in caller ticks and divided by
// ticks_per_us at export time (Chrome traces are in microseconds; the HECTOR
// model runs at 16 ticks/us).  Track ids (tid) are the caller's processor
// ids, so a Figure-5 trace shows one lane per simulated CPU.
//
// Spans that are still open at export time (the run ended mid-hold) are
// emitted with dur 0 and an explicit "truncated":true argument, so consumers
// can tell a truncated span from a genuinely zero-length one.  The
// high-volume kTraceMemory category is capped (set_memory_event_cap): beyond
// the cap memory events are dropped and counted, and the Chrome document
// carries the drop count as a top-level "droppedMemoryEvents" field.  All
// other categories share a separate overall cap (set_event_cap) so a runaway
// producer cannot exhaust host memory either; drops there are counted as
// "droppedSpans" in the same footer, and run_all.sh surfaces both counters so
// a truncated export is loud, never silent.

#ifndef HMETRICS_TRACE_H_
#define HMETRICS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/hmetrics/json.h"

namespace hmetrics {

enum TraceCategory : std::uint32_t {
  kTraceLocks = 1u << 0,   // lock acquire/hold spans
  kTraceMemory = 1u << 1,  // individual shared-memory accesses (high volume)
  kTraceRpc = 1u << 2,     // RPC send/handle/reply spans
  kTraceKernel = 1u << 3,  // kernel operations (page faults, unmaps)
  kTraceFlight = 1u << 4,  // per-request flight-recorder phase spans
  kTraceAll = ~0u,
};

class TraceSession {
 public:
  using SpanId = std::size_t;
  static constexpr std::uint64_t kOpenDur = ~0ull;
  // Sentinel id handed out for events dropped by the memory-category cap;
  // EndSpan/AddArg on it are no-ops, so producers need no extra branches.
  static constexpr SpanId kDroppedSpan = static_cast<SpanId>(-1);
  // Default cap on kTraceMemory events: one span per individual shared-memory
  // access adds up fast, and a runaway trace must not exhaust host memory.
  static constexpr std::size_t kDefaultMemoryEventCap = 1u << 20;
  // Default cap on everything else (lock/RPC/kernel/flight spans and
  // instants).  Far above any healthy run; the point is a counted, visible
  // failure mode instead of OOM.
  static constexpr std::size_t kDefaultEventCap = 1u << 22;

  explicit TraceSession(std::uint32_t categories = kTraceAll, double ticks_per_us = 1.0)
      : categories_(categories), ticks_per_us_(ticks_per_us) {}

  bool enabled(TraceCategory cat) const { return (categories_ & cat) != 0; }
  void set_ticks_per_us(double t) { ticks_per_us_ = t; }
  void set_memory_event_cap(std::size_t cap) { memory_event_cap_ = cap; }
  void set_event_cap(std::size_t cap) { event_cap_ = cap; }

  // kTraceMemory events dropped by the memory cap.
  std::uint64_t dropped_events() const { return dropped_events_; }
  // Non-memory spans/instants dropped by the overall event cap.
  std::uint64_t dropped_spans() const { return dropped_spans_; }

  // Opens a span at tick `ts` on track `tid`.  Returns the id to close it
  // with; the span is exported with dur 0 and a "truncated":true argument if
  // never closed.
  SpanId BeginSpan(TraceCategory cat, std::string name, std::uint32_t tid, std::uint64_t ts) {
    if (!AdmitEvent(cat)) {
      return kDroppedSpan;
    }
    events_.push_back(Event{std::move(name), CatName(cat), ts, kOpenDur, tid, 'X', {}});
    return events_.size() - 1;
  }

  void EndSpan(SpanId id, std::uint64_t ts) {
    if (id == kDroppedSpan) {
      return;
    }
    Event& e = events_[id];
    e.dur = ts >= e.ts ? ts - e.ts : 0;
  }

  // Attaches a key/value argument to an event (shown in the trace viewer).
  void AddArg(SpanId id, const std::string& key, std::string value) {
    if (id == kDroppedSpan) {
      return;
    }
    events_[id].args.emplace_back(key, std::move(value));
  }

  // Returns the event id so callers can AddArg to the instant (or
  // kDroppedSpan if the memory-category cap dropped it).
  SpanId Instant(TraceCategory cat, std::string name, std::uint32_t tid, std::uint64_t ts) {
    if (!AdmitEvent(cat)) {
      return kDroppedSpan;
    }
    events_.push_back(Event{std::move(name), CatName(cat), ts, 0, tid, 'i', {}});
    return events_.size() - 1;
  }

  std::size_t event_count() const { return events_.size(); }

  void WriteChromeTrace(JsonWriter* w) const {
    w->BeginObject();
    w->Field("displayTimeUnit", "ms");
    w->Key("traceEvents");
    w->BeginArray();
    for (const Event& e : events_) {
      w->BeginObject();
      w->Field("name", e.name);
      w->Field("cat", e.cat);
      w->Key("ph");
      w->String(std::string(1, e.ph));
      w->Field("pid", std::uint64_t{0});
      w->Field("tid", std::uint64_t{e.tid});
      w->Field("ts", static_cast<double>(e.ts) / ticks_per_us_);
      const bool truncated = e.ph == 'X' && e.dur == kOpenDur;
      if (e.ph == 'X') {
        w->Field("dur",
                 truncated ? 0.0 : static_cast<double>(e.dur) / ticks_per_us_);
      } else {
        w->Field("s", "t");  // instant scope: thread
      }
      if (!e.args.empty() || truncated) {
        w->Key("args");
        w->BeginObject();
        for (const auto& [k, v] : e.args) {
          w->Field(k, v);
        }
        if (truncated) {
          w->Field("truncated", true);
        }
        w->EndObject();
      }
      w->EndObject();
    }
    w->EndArray();
    if (dropped_events_ > 0) {
      w->Field("droppedMemoryEvents", dropped_events_);
    }
    if (dropped_spans_ > 0) {
      w->Field("droppedSpans", dropped_spans_);
    }
    w->EndObject();
  }

  std::string ToChromeJson() const {
    JsonWriter w;
    WriteChromeTrace(&w);
    return w.Take();
  }

 private:
  struct Event {
    std::string name;
    const char* cat;
    std::uint64_t ts;
    std::uint64_t dur;
    std::uint32_t tid;
    char ph;
    std::vector<std::pair<std::string, std::string>> args;
  };

  static const char* CatName(TraceCategory cat) {
    switch (cat) {
      case kTraceLocks:
        return "locks";
      case kTraceMemory:
        return "memory";
      case kTraceRpc:
        return "rpc";
      case kTraceKernel:
        return "kernel";
      case kTraceFlight:
        return "flight";
      default:
        return "misc";
    }
  }

  bool AdmitEvent(TraceCategory cat) {
    if (cat == kTraceMemory) {
      if (memory_events_ >= memory_event_cap_) {
        ++dropped_events_;
        return false;
      }
      ++memory_events_;
      return true;
    }
    if (other_events_ >= event_cap_) {
      ++dropped_spans_;
      return false;
    }
    ++other_events_;
    return true;
  }

  std::vector<Event> events_;
  std::uint32_t categories_;
  double ticks_per_us_;
  std::size_t memory_event_cap_ = kDefaultMemoryEventCap;
  std::size_t memory_events_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::size_t event_cap_ = kDefaultEventCap;
  std::size_t other_events_ = 0;
  std::uint64_t dropped_spans_ = 0;
};

}  // namespace hmetrics

#endif  // HMETRICS_TRACE_H_
