// TraceSession: timestamped spans and instants, exported as Chrome
// trace_event JSON (the format Perfetto / chrome://tracing load directly).
//
// Producers (the simulator's locks, memory system, RPC layer) are handed an
// optional TraceSession*; when it is null or the producer's category is
// disabled, tracing is a pointer test and costs nothing.  Recording never
// suspends or advances simulated time, so an identical run with tracing
// enabled produces bit-identical timing -- the trace is a pure observer.
//
// Spans are exported as complete events (ph "X": one record with ts + dur);
// instants as ph "i".  Timestamps are recorded in caller ticks and divided by
// ticks_per_us at export time (Chrome traces are in microseconds; the HECTOR
// model runs at 16 ticks/us).  Track ids (tid) are the caller's processor
// ids, so a Figure-5 trace shows one lane per simulated CPU.

#ifndef HMETRICS_TRACE_H_
#define HMETRICS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/hmetrics/json.h"

namespace hmetrics {

enum TraceCategory : std::uint32_t {
  kTraceLocks = 1u << 0,   // lock acquire/hold spans
  kTraceMemory = 1u << 1,  // individual shared-memory accesses (high volume)
  kTraceRpc = 1u << 2,     // RPC send/handle/reply spans
  kTraceKernel = 1u << 3,  // kernel operations (page faults, unmaps)
  kTraceAll = ~0u,
};

class TraceSession {
 public:
  using SpanId = std::size_t;
  static constexpr std::uint64_t kOpenDur = ~0ull;

  explicit TraceSession(std::uint32_t categories = kTraceAll, double ticks_per_us = 1.0)
      : categories_(categories), ticks_per_us_(ticks_per_us) {}

  bool enabled(TraceCategory cat) const { return (categories_ & cat) != 0; }
  void set_ticks_per_us(double t) { ticks_per_us_ = t; }

  // Opens a span at tick `ts` on track `tid`.  Returns the id to close it
  // with; the span stays open (dur 0 on export) if never closed.
  SpanId BeginSpan(TraceCategory cat, std::string name, std::uint32_t tid, std::uint64_t ts) {
    events_.push_back(Event{std::move(name), CatName(cat), ts, kOpenDur, tid, 'X', {}});
    return events_.size() - 1;
  }

  void EndSpan(SpanId id, std::uint64_t ts) {
    Event& e = events_[id];
    e.dur = ts >= e.ts ? ts - e.ts : 0;
  }

  // Attaches a key/value argument to an event (shown in the trace viewer).
  void AddArg(SpanId id, const std::string& key, std::string value) {
    events_[id].args.emplace_back(key, std::move(value));
  }

  void Instant(TraceCategory cat, std::string name, std::uint32_t tid, std::uint64_t ts) {
    events_.push_back(Event{std::move(name), CatName(cat), ts, 0, tid, 'i', {}});
  }

  std::size_t event_count() const { return events_.size(); }

  void WriteChromeTrace(JsonWriter* w) const {
    w->BeginObject();
    w->Field("displayTimeUnit", "ms");
    w->Key("traceEvents");
    w->BeginArray();
    for (const Event& e : events_) {
      w->BeginObject();
      w->Field("name", e.name);
      w->Field("cat", e.cat);
      w->Key("ph");
      w->String(std::string(1, e.ph));
      w->Field("pid", std::uint64_t{0});
      w->Field("tid", std::uint64_t{e.tid});
      w->Field("ts", static_cast<double>(e.ts) / ticks_per_us_);
      if (e.ph == 'X') {
        w->Field("dur",
                 e.dur == kOpenDur ? 0.0 : static_cast<double>(e.dur) / ticks_per_us_);
      } else {
        w->Field("s", "t");  // instant scope: thread
      }
      if (!e.args.empty()) {
        w->Key("args");
        w->BeginObject();
        for (const auto& [k, v] : e.args) {
          w->Field(k, v);
        }
        w->EndObject();
      }
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }

  std::string ToChromeJson() const {
    JsonWriter w;
    WriteChromeTrace(&w);
    return w.Take();
  }

 private:
  struct Event {
    std::string name;
    const char* cat;
    std::uint64_t ts;
    std::uint64_t dur;
    std::uint32_t tid;
    char ph;
    std::vector<std::pair<std::string, std::string>> args;
  };

  static const char* CatName(TraceCategory cat) {
    switch (cat) {
      case kTraceLocks:
        return "locks";
      case kTraceMemory:
        return "memory";
      case kTraceRpc:
        return "rpc";
      case kTraceKernel:
        return "kernel";
      default:
        return "misc";
    }
  }

  std::vector<Event> events_;
  std::uint32_t categories_;
  double ticks_per_us_;
};

}  // namespace hmetrics

#endif  // HMETRICS_TRACE_H_
