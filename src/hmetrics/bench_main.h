// Shared command-line handling for the bench binaries.
//
// Every bench supports the same flags:
//   --json[=PATH]    emit the BenchReport JSON document (stdout by default).
//                    The human table still prints to stdout; with plain
//                    --json the report is the LAST line, so
//                    `bench --json | tail -1` is always valid JSON.
//   --smoke          tiny iteration counts: exercise every code path and
//                    produce a schema-valid report in seconds (CI mode).
//   --trace=PATH     write a Chrome trace_event JSON of an instrumented run
//                    (benches that support tracing document what is traced).
//   --profile[=PATH] run with lock-site profiling attached and print an hprof
//                    contention report; with =PATH also write the raw
//                    hurricane-lockprof/1 document (hprof CLI input) there.
//                    Benches that support profiling document the scenario.
//   --why[=PATH]     run with a flight recorder attached and print an hwhy
//                    tail-blame report; with =PATH also write the raw
//                    hurricane-flight/1 document (hwhy CLI input) there.
//                    Benches that support it document which runs are recorded.
//
// Unrecognized arguments are left in place (ParseBenchArgs compacts argv), so
// wrappers like google-benchmark keep their own flags.

#ifndef HMETRICS_BENCH_MAIN_H_
#define HMETRICS_BENCH_MAIN_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "src/hmetrics/bench_report.h"
#include "src/hmetrics/trace.h"

namespace hmetrics {

struct BenchOptions {
  bool json = false;
  std::string json_path;   // empty: stdout
  bool smoke = false;
  std::string trace_path;  // empty: tracing off
  bool profile = false;
  std::string profile_path;  // empty: report to stdout only
  bool why = false;
  std::string why_path;  // empty: report to stdout only
};

// Consumes the shared flags from argv (shifting the rest down and updating
// *argc) and returns the parsed options.
inline BenchOptions ParseBenchArgs(int* argc, char** argv) {
  BenchOptions opts;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      opts.json = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opts.json = true;
      opts.json_path = arg + 7;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      opts.trace_path = arg + 8;
    } else if (std::strcmp(arg, "--profile") == 0) {
      opts.profile = true;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      opts.profile = true;
      opts.profile_path = arg + 10;
    } else if (std::strcmp(arg, "--why") == 0) {
      opts.why = true;
    } else if (std::strncmp(arg, "--why=", 6) == 0) {
      opts.why = true;
      opts.why_path = arg + 6;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return opts;
}

// Writes `report` as one line of JSON to opts.json_path (or stdout).  No-op
// unless --json was given.  Returns false if the output file cannot be
// written.
inline bool WriteReport(const BenchOptions& opts, const BenchReport& report) {
  if (!opts.json) {
    return true;
  }
  const std::string doc = report.ToJson();
  if (opts.json_path.empty()) {
    std::printf("%s\n", doc.c_str());
    return true;
  }
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", doc.c_str());
  std::fclose(f);
  return true;
}

// Writes a trace session to opts.trace_path.  No-op when tracing is off.
inline bool WriteTrace(const BenchOptions& opts, const TraceSession& trace) {
  if (opts.trace_path.empty()) {
    return true;
  }
  const std::string doc = trace.ToChromeJson();
  std::FILE* f = std::fopen(opts.trace_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", doc.c_str());
  std::fclose(f);
  return true;
}

// Writes `doc` (any JSON document string, e.g. a lockprof export) to `path`.
inline bool WriteJsonFile(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", doc.c_str());
  std::fclose(f);
  return true;
}

}  // namespace hmetrics

#endif  // HMETRICS_BENCH_MAIN_H_
