// Labeled metric registry: counters, gauges and histograms.
//
// A series is identified by (name, label set).  Lookup returns a stable
// reference -- hot paths resolve their series once and bump a plain integer
// afterwards, so attaching a registry to a simulator run costs nothing per
// event.  The registry is intentionally NOT thread-safe: the simulator is
// single-threaded, and native harnesses shard per thread and Merge().
//
// Export is a JSON array of series objects, one line each:
//   {"name":"kernel.rpc_retries","type":"counter","labels":{...},"value":7}
// Histograms export summary statistics, not raw samples (raw samples stay
// available in memory for tests via LatencyHistogram::samples()).

#ifndef HMETRICS_REGISTRY_H_
#define HMETRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/hmetrics/histogram.h"
#include "src/hmetrics/json.h"

namespace hmetrics {

// Label sets are small sorted key/value maps; std::map keeps export order
// deterministic.
using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void Add(std::uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {}) {
    return Find(&counters_, name, labels);
  }
  Gauge& gauge(const std::string& name, const Labels& labels = {}) {
    return Find(&gauges_, name, labels);
  }
  LatencyHistogram& histogram(const std::string& name, const Labels& labels = {}) {
    return Find(&histograms_, name, labels);
  }

  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Zeroes every series in place without invalidating cached references, so a
  // bench can reuse one registry (and its resolved handles) across
  // repetitions with no stale values leaking between runs.
  void ResetAll() {
    for (auto& [key, c] : counters_) {
      c->Reset();
    }
    for (auto& [key, g] : gauges_) {
      g->Reset();
    }
    for (auto& [key, h] : histograms_) {
      h->Reset();
    }
  }

  // Serializes every series into `w` as elements of an already-open array.
  void WriteSeries(JsonWriter* w) const {
    for (const auto& [key, c] : counters_) {
      OpenSeries(w, key, "counter");
      w->Field("value", c->value());
      w->EndObject();
    }
    for (const auto& [key, g] : gauges_) {
      OpenSeries(w, key, "gauge");
      w->Field("value", g->value());
      w->EndObject();
    }
    for (const auto& [key, h] : histograms_) {
      OpenSeries(w, key, "histogram");
      w->Field("count", h->count());
      w->Field("sum", h->sum());
      w->Field("min", h->min());
      w->Field("max", h->max());
      w->Field("mean", h->mean());
      w->Field("p50", h->percentile(50));
      w->Field("p95", h->percentile(95));
      w->Field("p99", h->percentile(99));
      if (h->samples_dropped() > 0) {
        // Raw-sample cap hit: order statistics above cover a prefix only.
        w->Field("dropped", h->samples_dropped());
      }
      w->EndObject();
    }
  }

  // Standalone export: a JSON array of series.
  std::string ToJson() const {
    JsonWriter w;
    w.BeginArray();
    WriteSeries(&w);
    w.EndArray();
    return w.Take();
  }

 private:
  using SeriesKey = std::pair<std::string, Labels>;

  template <typename T>
  static T& Find(std::map<SeriesKey, std::unique_ptr<T>>* series, const std::string& name,
                 const Labels& labels) {
    auto& slot = (*series)[SeriesKey(name, labels)];
    if (slot == nullptr) {
      slot = std::make_unique<T>();
    }
    return *slot;
  }

  static void OpenSeries(JsonWriter* w, const SeriesKey& key, const char* type) {
    w->BeginObject();
    w->Field("name", key.first);
    w->Field("type", type);
    w->Key("labels");
    w->BeginObject();
    for (const auto& [k, v] : key.second) {
      w->Field(k, v);
    }
    w->EndObject();
  }

  // std::map: deterministic iteration order for export, stable element
  // addresses for cached handles.
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace hmetrics

#endif  // HMETRICS_REGISTRY_H_
