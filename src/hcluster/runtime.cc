#include "src/hcluster/runtime.h"

#include <cassert>
#include <chrono>

namespace hcluster {
namespace {

thread_local WorkerId tls_worker_id = ClusterRuntime::kNotAWorker;

}  // namespace

ClusterRuntime::ClusterRuntime(const Topology& topology) : topology_(topology) {
  workers_.reserve(topology_.workers);
  for (WorkerId w = 0; w < topology_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (WorkerId w = 0; w < topology_.workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ClusterRuntime::~ClusterRuntime() {
  // Phase 1: drain.  Workers keep running (and keep servicing handler
  // inboxes) until every posted item -- including items posted by items we
  // are waiting for -- has completed.  Reading completed before posted makes
  // equality sufficient: a late post bumps posted first and breaks it.
  while (true) {
    const std::uint64_t completed = work_completed_.load(std::memory_order_acquire);
    const std::uint64_t posted = work_posted_.load(std::memory_order_acquire);
    if (posted == completed) {
      break;
    }
    std::this_thread::yield();
  }
  // Phase 2: all quiet -- nothing can create new work.  Release the threads.
  exit_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Wake(*worker);
  }
  for (auto& worker : workers_) {
    worker->thread.join();
  }
}

WorkerId ClusterRuntime::current_worker() const { return tls_worker_id; }

void ClusterRuntime::Wake(Worker& worker) {
  {
    std::lock_guard<std::mutex> guard(worker.wake_mutex);
    ++worker.wake_seq;
  }
  worker.wake_cv.notify_one();
}

void ClusterRuntime::Post(WorkerId w, std::function<void()> fn) {
  Worker& worker = *workers_[w];
  work_posted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(worker.task_mutex);
    worker.tasks.push_back(std::move(fn));
  }
  Wake(worker);
}

void ClusterRuntime::PostHandler(WorkerId w, std::function<void()> fn) {
  Worker& worker = *workers_[w];
  work_posted_.fetch_add(1, std::memory_order_relaxed);
  worker.gate.Post([this, fn = std::move(fn)] {
    fn();
    work_completed_.fetch_add(1, std::memory_order_release);
  });
  Wake(worker);
}

void ClusterRuntime::WorkerLoop(WorkerId id) {
  tls_worker_id = id;
  Worker& worker = *workers_[id];
  while (!exit_.load(std::memory_order_acquire)) {
    // Snapshot the eventcount BEFORE scanning for work: a post that lands
    // after this point bumps the sequence, so the sleep below falls through.
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> guard(worker.wake_mutex);
      seen = worker.wake_seq;
    }
    // Handlers first (they are what remote callers are blocked on), then one
    // process task.
    worker.gate.Poll();
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> guard(worker.task_mutex);
      if (!worker.tasks.empty()) {
        task = std::move(worker.tasks.front());
        worker.tasks.erase(worker.tasks.begin());
      }
    }
    if (task) {
      task();
      work_completed_.fetch_add(1, std::memory_order_release);
      continue;
    }
    // Idle: sleep until the eventcount moves (or exit).  The timeout is a
    // belt-and-braces bound, not the wakeup mechanism.
    std::unique_lock<std::mutex> lock(worker.wake_mutex);
    if (worker.wake_seq == seen && !exit_.load(std::memory_order_acquire)) {
      worker.wake_cv.wait_for(lock, std::chrono::milliseconds(10),
                              [&] { return worker.wake_seq != seen; });
    }
  }
  // Exit implies the destructor saw posted == completed, so both queues are
  // empty; nothing to hand off.
}

void ClusterRuntime::ServiceWhileWaiting(std::atomic<bool>* done) {
  const WorkerId self = tls_worker_id;
  if (self == kNotAWorker) {
    while (!done->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  Worker& worker = *workers_[self];
  while (!done->load(std::memory_order_acquire)) {
    // The worker itself is a schedulable resource: keep servicing incoming
    // handler work or two cross-calling workers deadlock (Section 2.3).
    worker.gate.Poll();
    std::this_thread::yield();
  }
}

void ClusterRuntime::ServiceInbox() {
  const WorkerId self = tls_worker_id;
  if (self != kNotAWorker) {
    workers_[self]->gate.Poll();
  }
}

std::uint64_t ClusterRuntime::WakeEpoch() const {
  const WorkerId self = tls_worker_id;
  if (self == kNotAWorker) {
    return 0;
  }
  Worker& worker = *workers_[self];
  std::lock_guard<std::mutex> guard(worker.wake_mutex);
  return worker.wake_seq;
}

void ClusterRuntime::WaitForWork(std::uint64_t epoch, std::chrono::nanoseconds max_wait) {
  const WorkerId self = tls_worker_id;
  if (self == kNotAWorker) {
    std::this_thread::yield();
    return;
  }
  Worker& worker = *workers_[self];
  std::unique_lock<std::mutex> lock(worker.wake_mutex);
  if (worker.wake_seq != epoch) {
    return;
  }
  worker.wake_cv.wait_for(lock, max_wait, [&] { return worker.wake_seq != epoch; });
}

void ClusterRuntime::Kick(WorkerId w) { Wake(*workers_[w]); }

void ClusterRuntime::Quiesce() {
  assert(tls_worker_id == kNotAWorker && "Quiesce must be called from outside the runtime");
  while (true) {
    const std::uint64_t completed = work_completed_.load(std::memory_order_acquire);
    const std::uint64_t posted = work_posted_.load(std::memory_order_acquire);
    if (posted == completed) {
      return;
    }
    std::this_thread::yield();
  }
}

}  // namespace hcluster
