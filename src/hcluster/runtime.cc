#include "src/hcluster/runtime.h"

#include <cassert>
#include <chrono>

namespace hcluster {
namespace {

thread_local WorkerId tls_worker_id = ClusterRuntime::kNotAWorker;

}  // namespace

ClusterRuntime::ClusterRuntime(const Topology& topology) : topology_(topology) {
  workers_.reserve(topology_.workers);
  for (WorkerId w = 0; w < topology_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (WorkerId w = 0; w < topology_.workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ClusterRuntime::~ClusterRuntime() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker->wake_cv.notify_all();
  }
  for (auto& worker : workers_) {
    worker->thread.join();
  }
}

WorkerId ClusterRuntime::current_worker() const { return tls_worker_id; }

void ClusterRuntime::Post(WorkerId w, std::function<void()> fn) {
  Worker& worker = *workers_[w];
  {
    std::lock_guard<std::mutex> guard(worker.task_mutex);
    worker.tasks.push_back(std::move(fn));
  }
  worker.posted.fetch_add(1, std::memory_order_relaxed);
  worker.wake_cv.notify_one();
}

void ClusterRuntime::PostHandler(WorkerId w, std::function<void()> fn) {
  Worker& worker = *workers_[w];
  worker.gate.Post(std::move(fn));
  worker.wake_cv.notify_one();
}

void ClusterRuntime::WorkerLoop(WorkerId id) {
  tls_worker_id = id;
  Worker& worker = *workers_[id];
  while (!stop_.load(std::memory_order_acquire)) {
    // Handlers first (they are what remote callers are blocked on), then one
    // process task.
    worker.gate.Poll();
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> guard(worker.task_mutex);
      if (!worker.tasks.empty()) {
        task = std::move(worker.tasks.front());
        worker.tasks.erase(worker.tasks.begin());
      }
    }
    if (task) {
      task();
      worker.completed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Idle: sleep briefly; posts wake us.
    std::unique_lock<std::mutex> lock(worker.wake_mutex);
    worker.wake_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ClusterRuntime::ServiceWhileWaiting(std::atomic<bool>* done) {
  const WorkerId self = tls_worker_id;
  if (self == kNotAWorker) {
    while (!done->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  Worker& worker = *workers_[self];
  while (!done->load(std::memory_order_acquire)) {
    // The worker itself is a schedulable resource: keep servicing incoming
    // handler work or two cross-calling workers deadlock (Section 2.3).
    worker.gate.Poll();
    std::this_thread::yield();
  }
}

void ClusterRuntime::ServiceInbox() {
  const WorkerId self = tls_worker_id;
  if (self != kNotAWorker) {
    workers_[self]->gate.Poll();
  }
}

void ClusterRuntime::Quiesce() {
  assert(tls_worker_id == kNotAWorker && "Quiesce must be called from outside the runtime");
  for (auto& worker : workers_) {
    while (worker->completed.load(std::memory_order_acquire) <
           worker->posted.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

}  // namespace hcluster
