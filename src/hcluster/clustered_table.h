// A hierarchically clustered, replicated hash table (Figure 2).
//
// Each cluster owns a complete instance of the table (a HybridTable: coarse
// Distributed Lock + per-entry reserve words).  Every key has a home cluster.
// Reads hit the local replica; on a miss the reader creates a local shell
// entry, holds its exclusive reservation so cluster peers combine on it
// instead of issuing redundant fetches, and fetches the value from the home
// cluster under a *reader* reservation there (so concurrent clusters can
// replicate in parallel).  The remote handler never spins: if the home entry
// is exclusively reserved it fails with would-deadlock and the initiator
// backs off and retries -- the optimistic protocol of Section 2.3.
//
// Writes are global updates and use the pessimistic protocol of Section 2.5:
// the writer updates the home copy first (releasing it before broadcasting)
// and then pushes the new value to every replica-holding cluster, retrying
// any replica whose entry is reserved.

#ifndef HCLUSTER_CLUSTERED_TABLE_H_
#define HCLUSTER_CLUSTERED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/hcluster/runtime.h"
#include "src/hcluster/topology.h"
#include "src/hlock/hybrid_table.h"
#include "src/hprof/lock_site.h"

namespace hcluster {

template <typename K, typename V, typename Hash = std::hash<K>>
class ClusteredTable {
 public:
  // `read_path` selects how replica readers reach a chain (see
  // hlock::ReadPath): kDistributed (default) gives each worker cluster its
  // own reader counter on the replica's table-level RW lock, so combined
  // reads on *different* keys proceed in parallel instead of serializing on
  // the replica's coarse lock; kCoarse preserves the serializing path (the
  // read-heavy benches race the two).
  explicit ClusteredTable(ClusterRuntime* runtime, std::size_t buckets_per_cluster = 128,
                          hlock::ReadPath read_path = hlock::ReadPath::kDistributed)
      : runtime_(runtime) {
    const std::uint32_t n = runtime_->topology().num_clusters();
    const std::uint32_t per_cluster = runtime_->topology().cluster_size;
    replicas_.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      replicas_.push_back(std::make_unique<Replica>(buckets_per_cluster, per_cluster, read_path));
    }
  }

  ClusterId home_cluster(const K& key) const {
    return static_cast<ClusterId>(Hash{}(key) % replicas_.size());
  }

  // Reads `key` from the calling worker's cluster replica, replicating from
  // the home cluster on a miss.  Returns nullopt if the key does not exist
  // anywhere.  Must be called from a worker process (it may block).
  std::optional<V> Get(const K& key) {
    const WorkerId self = runtime_->current_worker();
    const ClusterId my_cluster = runtime_->topology().cluster_of(self);
    Replica& local = *replicas_[my_cluster];

    // Fast path: present in the local replica.
    {
      auto entry = local.table.Peek(key);
      if (entry.has_value() && entry->present) {
        ++local.hits;
        return entry->value;
      }
    }

    // Miss: reserve a local shell so cluster peers combine on our fetch.
    // While waiting for the reservation, keep servicing our handler inbox --
    // blocking deaf here deadlocks against workers calling us.
    auto shell = local.table.TryAcquire(key);
    while (!shell) {
      runtime_->ServiceInbox();
      std::this_thread::yield();
      shell = local.table.TryAcquire(key);
    }
    if (shell.value().present) {
      // Someone replicated while we waited for the reservation.
      ++local.hits;
      return shell.value().value;
    }
    const ClusterId home = home_cluster(key);
    if (home == my_cluster) {
      // We *are* the home and the key is absent: nothing to fetch.
      return std::nullopt;
    }

    // Fetch from the home cluster, retrying on would-deadlock.
    const WorkerId peer = runtime_->topology().peer_of(self, home);
    FetchResult fetched;
    int spins = 0;
    while (true) {
      fetched = runtime_->Call(peer, [this, key, home, my_cluster] {
        return FetchAtHome(key, home, my_cluster);
      });
      if (!fetched.would_deadlock) {
        break;
      }
      ++retries_;
      ++spins;
      runtime_->ServiceInbox();
      std::this_thread::yield();
    }
    if (!fetched.found) {
      return std::nullopt;
    }
    shell.value().value = fetched.value;
    shell.value().present = true;
    ++replications_;
    return fetched.value;
  }

  // Globally writes `key` (upsert): updates the home copy, then broadcasts
  // the new value to every cluster that holds a replica.
  void Put(const K& key, const V& value) {
    const ClusterId home = home_cluster(key);
    const WorkerId self = runtime_->current_worker();
    const WorkerId src = self == ClusterRuntime::kNotAWorker ? 0 : self;

    // Update the home copy (and learn who holds replicas), holding nothing
    // while we broadcast afterwards -- the pessimistic strategy.  The home
    // update runs in handler context, so it must not block on the entry
    // reservation: it fails and we retry from here.
    struct HomeUpdate {
      bool ok = false;
      std::uint64_t mask = 0;
    };
    HomeUpdate home_result;
    while (true) {
      home_result = runtime_->Call(
          runtime_->topology().peer_of(src, home), [this, key, &value, home]() -> HomeUpdate {
            Replica& home_replica = *replicas_[home];
            auto guard = home_replica.table.TryAcquire(key);
            if (!guard) {
              return HomeUpdate{};
            }
            guard.value().value = value;
            guard.value().present = true;
            return HomeUpdate{true, guard.value().replica_mask};
          });
      if (home_result.ok) {
        break;
      }
      ++retries_;
      runtime_->ServiceInbox();
      std::this_thread::yield();
    }
    const std::uint64_t replica_mask = home_result.mask;

    for (ClusterId c = 0; c < replicas_.size(); ++c) {
      if (c == home || (replica_mask & (1ULL << c)) == 0) {
        continue;
      }
      const WorkerId peer = runtime_->topology().peer_of(src, c);
      while (true) {
        const bool ok = runtime_->Call(peer, [this, key, &value, c] {
          Replica& replica = *replicas_[c];
          auto guard = replica.table.TryAcquire(key);
          if (!guard) {
            return false;  // reserved: the writer retries
          }
          if (guard.value().present) {
            guard.value().value = value;
          }
          return true;
        });
        if (ok) {
          break;
        }
        ++retries_;
        runtime_->ServiceInbox();
        std::this_thread::yield();
      }
    }
  }

  // Drops the calling cluster's replica of `key` (cache eviction under
  // memory pressure; also what keeps replication traffic alive in stress
  // tests).  Refuses at the home cluster -- that copy is authoritative -- and
  // while the local entry is reserved.  The home's replica mask keeps the
  // stale bit; a later broadcast to this cluster finds a value-less shell and
  // skips it, and the next Get simply re-replicates.  Must be called from a
  // worker process.
  bool DropLocal(const K& key) {
    const WorkerId self = runtime_->current_worker();
    const ClusterId my_cluster = runtime_->topology().cluster_of(self);
    if (my_cluster == home_cluster(key)) {
      return false;
    }
    return replicas_[my_cluster]->table.Erase(key);
  }

  // Attaches four profiling sites per cluster replica to `sites`: the coarse
  // table lock, the reserve-word (fine-grain) site, and the distributed RW
  // chain lock's reader and writer sides (reader holds = chain walks, writer
  // holds = chain-mutation sweeps; the reader site's per-cluster enqueues
  // show which clusters' readers a sweep held up).  Wait/hold samples are
  // host nanoseconds; owner ids are dense thread ids, so the per-cluster
  // handoff split is an approximation of the worker topology.  Call before
  // traffic; `sites` must outlive the table's use.
  void AttachLockProfiler(hprof::SiteTable* sites, const std::string& prefix = "table") {
    const std::uint32_t per_cluster = runtime_->topology().cluster_size;
    for (ClusterId c = 0; c < replicas_.size(); ++c) {
      const std::string base = prefix + ".replica" + std::to_string(c);
      replicas_[c]->table.coarse_lock().set_site(&sites->AddSite(base + ".coarse", per_cluster));
      replicas_[c]->table.set_reserve_site(&sites->AddSite(base + ".reserve", per_cluster));
      replicas_[c]->table.set_chain_sites(&sites->AddSite(base + ".chain.reader", per_cluster),
                                          &sites->AddSite(base + ".chain.writer", per_cluster));
    }
  }

  // --- statistics ------------------------------------------------------------
  std::uint64_t replications() const { return replications_.load(); }
  std::uint64_t retries() const { return retries_.load(); }
  std::uint64_t local_hits(ClusterId c) const { return replicas_[c]->hits.load(); }

 private:
  struct Entry {
    V value{};
    bool present = false;
    std::uint64_t replica_mask = 0;  // meaningful on the home copy only
  };

  struct Replica {
    Replica(std::size_t buckets, std::uint32_t procs_per_cluster, hlock::ReadPath read_path)
        : table(buckets, procs_per_cluster, read_path) {}
    hlock::HybridTable<K, Entry> table;
    std::atomic<std::uint64_t> hits{0};
  };

  struct FetchResult {
    bool found = false;
    bool would_deadlock = false;
    V value{};
  };

  // Runs on a home-cluster worker in handler context: no spinning allowed.
  FetchResult FetchAtHome(const K& key, ClusterId home, ClusterId requester) {
    Replica& home_replica = *replicas_[home];
    // Record the requester as a replica holder and take a reader reservation.
    auto guard = home_replica.table.TryAcquireShared(key);
    if (!guard) {
      // Absent, or exclusively reserved.  Distinguish cheaply:
      if (!home_replica.table.Contains(key)) {
        return FetchResult{false, false, V{}};
      }
      return FetchResult{false, true, V{}};
    }
    if (!guard.value().present) {
      // A home-local shell with no value behind it: the key does not exist.
      return FetchResult{false, false, V{}};
    }
    FetchResult result;
    result.found = true;
    result.value = guard.value().value;
    guard.Release();
    // Update the replica mask under a short exclusive reservation.
    auto mask_guard = home_replica.table.TryAcquire(key);
    if (mask_guard) {
      mask_guard.value().replica_mask |= 1ULL << requester;
    } else {
      // Raced with a writer; the writer's broadcast may miss us this time,
      // so be conservative: report deadlock and let the reader retry.
      result.found = false;
      result.would_deadlock = true;
    }
    return result;
  }

  ClusterRuntime* runtime_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> replications_{0};
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace hcluster

#endif  // HCLUSTER_CLUSTERED_TABLE_H_
