// Cluster topology: groups workers (the native stand-ins for processors)
// into clusters and provides the paper's i-th-to-i-th RPC routing.

#ifndef HCLUSTER_TOPOLOGY_H_
#define HCLUSTER_TOPOLOGY_H_

#include <cstdint>

namespace hcluster {

using WorkerId = std::uint32_t;
using ClusterId = std::uint32_t;

struct Topology {
  std::uint32_t workers = 16;
  std::uint32_t cluster_size = 4;

  std::uint32_t num_clusters() const { return (workers + cluster_size - 1) / cluster_size; }
  ClusterId cluster_of(WorkerId w) const { return w / cluster_size; }

  // RPCs from the i-th worker of a cluster go to the i-th worker of the
  // target cluster, roughly balancing the RPC load (Section 2.2).
  WorkerId peer_of(WorkerId src, ClusterId target) const {
    return target * cluster_size + (src % cluster_size);
  }
};

}  // namespace hcluster

#endif  // HCLUSTER_TOPOLOGY_H_
