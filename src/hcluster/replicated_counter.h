// A per-cluster replicated counter.
//
// The paper's example of data that hardware cache coherence cannot replicate
// efficiently: HURRICANE keeps a *separate* reference count on each cluster's
// instance of a page descriptor, so the hot increment/decrement path touches
// only cluster-local state.  The precise total is only needed rarely (e.g.,
// at teardown) and is computed by summing the per-cluster cells.

#ifndef HCLUSTER_REPLICATED_COUNTER_H_
#define HCLUSTER_REPLICATED_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hcluster/topology.h"
#include "src/hlock/padded.h"

namespace hcluster {

class ReplicatedCounter {
 public:
  explicit ReplicatedCounter(const Topology& topology) : topology_(topology) {
    cells_.reserve(topology.num_clusters());
    for (std::uint32_t c = 0; c < topology.num_clusters(); ++c) {
      cells_.push_back(std::make_unique<hlock::Padded<std::atomic<std::int64_t>>>(0));
    }
  }

  // Adds to the calling worker's cluster cell.
  void Add(WorkerId worker, std::int64_t delta) {
    (*cells_[topology_.cluster_of(worker)])->fetch_add(delta, std::memory_order_relaxed);
  }

  // The cluster-local component (exact, cheap).
  std::int64_t Local(ClusterId cluster) const {
    return (*cells_[cluster])->load(std::memory_order_relaxed);
  }

  // The global total (sums all replicas; only approximately a snapshot while
  // writers are active).
  std::int64_t Total() const {
    std::int64_t total = 0;
    for (const auto& cell : cells_) {
      total += (*cell)->load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  Topology topology_;
  std::vector<std::unique_ptr<hlock::Padded<std::atomic<std::int64_t>>>> cells_;
};

}  // namespace hcluster

#endif  // HCLUSTER_REPLICATED_COUNTER_H_
