// A native hierarchical-clustering runtime.
//
// Workers are threads standing in for HURRICANE's processors.  Each worker
// owns a SoftIrqGate inbox; cross-cluster operations are blocking calls that
// run a closure on the target worker.  Two rules are inherited directly from
// the kernel (Sections 2.3 and 3.2):
//
//   1. A worker waiting for its own call's reply keeps servicing its inbox --
//      the worker itself is a lockable resource, and two workers calling each
//      other would otherwise deadlock.
//   2. Handler code must never block on another worker (no nested Call) and
//      must use the no-spin ("Try") operations on reserved entries, failing
//      with would-deadlock so the initiator retries.

#ifndef HCLUSTER_RUNTIME_H_
#define HCLUSTER_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/hcluster/topology.h"
#include "src/hlock/soft_irq_gate.h"

namespace hcluster {

class ClusterRuntime {
 public:
  explicit ClusterRuntime(const Topology& topology);
  ~ClusterRuntime();
  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  const Topology& topology() const { return topology_; }

  // The worker id of the calling thread, or kNotAWorker from outside.
  static constexpr WorkerId kNotAWorker = ~0u;
  WorkerId current_worker() const;

  // Fire-and-forget: run `fn` as a *process* on worker `w`.  Processes may
  // block in Call; they run from the worker loop, never from inside another
  // process or handler.
  void Post(WorkerId w, std::function<void()> fn);

  // Fire-and-forget handler dispatch: `fn` runs in handler context on `w`
  // (between and within that worker's blocking waits).  Handlers must not
  // block or Call.
  void PostHandler(WorkerId w, std::function<void()> fn);

  // Runs `fn` on worker `dst` and waits for its result.  Callable from any
  // thread; when called from a worker, the worker services its own inbox
  // while waiting.  `fn` runs in handler context: it must not Call.
  template <typename Fn>
  auto Call(WorkerId dst, Fn fn) -> decltype(fn()) {
    using R = decltype(fn());
    struct Slot {
      std::atomic<bool> done{false};
      alignas(R) unsigned char storage[sizeof(R)];
    } slot;
    PostHandler(dst, [&slot, fn = std::move(fn)]() mutable {
      new (slot.storage) R(fn());
      slot.done.store(true, std::memory_order_release);
    });
    ServiceWhileWaiting(&slot.done);
    R* result = reinterpret_cast<R*>(slot.storage);
    R value = std::move(*result);
    result->~R();
    return value;
  }

  // Runs `fn` once on the i-th peer of every cluster except `skip` (the
  // pessimistic broadcast pattern).  `fn(cluster)` is built per target.
  template <typename MakeFn>
  void Broadcast(ClusterId skip, MakeFn make_fn) {
    const WorkerId self = current_worker();
    for (ClusterId c = 0; c < topology_.num_clusters(); ++c) {
      if (c == skip) {
        continue;
      }
      Call(topology_.peer_of(self == kNotAWorker ? 0 : self, c), make_fn(c));
    }
  }

  // Services the calling worker's handler inbox once.  Worker code that
  // busy-waits on anything other than Call (e.g. an entry reservation) must
  // keep calling this while it waits: the worker is itself a schedulable
  // resource, and going deaf while blocked recreates the paper's P1/P2
  // deadlock.  No-op from a non-worker thread.
  void ServiceInbox();

  // Blocks until all posted work so far has been executed (best effort).
  void Quiesce();

 private:
  struct Worker {
    hlock::SoftIrqGate gate;  // handler (RPC) inbox
    std::mutex task_mutex;    // process queue
    std::vector<std::function<void()>> tasks;
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::thread thread;
    std::atomic<std::uint64_t> posted{0};
    std::atomic<std::uint64_t> completed{0};
  };

  void WorkerLoop(WorkerId id);
  void ServiceWhileWaiting(std::atomic<bool>* done);

  Topology topology_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
};

}  // namespace hcluster

#endif  // HCLUSTER_RUNTIME_H_
