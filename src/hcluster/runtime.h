// A native hierarchical-clustering runtime.
//
// Workers are threads standing in for HURRICANE's processors.  Each worker
// owns a SoftIrqGate inbox; cross-cluster operations are blocking calls that
// run a closure on the target worker.  Two rules are inherited directly from
// the kernel (Sections 2.3 and 3.2):
//
//   1. A worker waiting for its own call's reply keeps servicing its inbox --
//      the worker itself is a lockable resource, and two workers calling each
//      other would otherwise deadlock.
//   2. Handler code must never block on another worker (no nested Call) and
//      must use the no-spin ("Try") operations on reserved entries, failing
//      with would-deadlock so the initiator retries.

#ifndef HCLUSTER_RUNTIME_H_
#define HCLUSTER_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/hcluster/topology.h"
#include "src/hlock/soft_irq_gate.h"

namespace hcluster {

class ClusterRuntime {
 public:
  explicit ClusterRuntime(const Topology& topology);

  // Destruction is a drain, not an abandonment: every task and handler posted
  // before (or transitively by work posted before) the destructor runs to
  // completion first, workers keep servicing their inboxes throughout, and
  // only then do the threads exit and join.  Joining eagerly instead is the
  // classic shutdown deadlock: worker A blocked in Call(B) needs B to poll
  // its inbox, but B saw the stop flag and exited -- A never completes and
  // join(A) hangs.  Posting from outside the runtime once the destructor has
  // begun is a caller bug (in-flight workers may still post freely).
  ~ClusterRuntime();
  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  const Topology& topology() const { return topology_; }

  // The worker id of the calling thread, or kNotAWorker from outside.
  static constexpr WorkerId kNotAWorker = ~0u;
  WorkerId current_worker() const;

  // Fire-and-forget: run `fn` as a *process* on worker `w`.  Processes may
  // block in Call; they run from the worker loop, never from inside another
  // process or handler.
  void Post(WorkerId w, std::function<void()> fn);

  // Fire-and-forget handler dispatch: `fn` runs in handler context on `w`
  // (between and within that worker's blocking waits).  Handlers must not
  // block or Call.
  void PostHandler(WorkerId w, std::function<void()> fn);

  // Runs `fn` on worker `dst` and waits for its result.  Callable from any
  // thread; when called from a worker, the worker services its own inbox
  // while waiting.  `fn` runs in handler context: it must not Call.
  template <typename Fn>
  auto Call(WorkerId dst, Fn fn) -> decltype(fn()) {
    using R = decltype(fn());
    struct Slot {
      std::atomic<bool> done{false};
      alignas(R) unsigned char storage[sizeof(R)];
    } slot;
    PostHandler(dst, [&slot, fn = std::move(fn)]() mutable {
      new (slot.storage) R(fn());
      slot.done.store(true, std::memory_order_release);
    });
    ServiceWhileWaiting(&slot.done);
    R* result = reinterpret_cast<R*>(slot.storage);
    R value = std::move(*result);
    result->~R();
    return value;
  }

  // Runs `fn` once on the i-th peer of every cluster except `skip` (the
  // pessimistic broadcast pattern).  `fn(cluster)` is built per target.
  template <typename MakeFn>
  void Broadcast(ClusterId skip, MakeFn make_fn) {
    const WorkerId self = current_worker();
    for (ClusterId c = 0; c < topology_.num_clusters(); ++c) {
      if (c == skip) {
        continue;
      }
      Call(topology_.peer_of(self == kNotAWorker ? 0 : self, c), make_fn(c));
    }
  }

  // Services the calling worker's handler inbox once.  Worker code that
  // busy-waits on anything other than Call (e.g. an entry reservation) must
  // keep calling this while it waits: the worker is itself a schedulable
  // resource, and going deaf while blocked recreates the paper's P1/P2
  // deadlock.  No-op from a non-worker thread.
  void ServiceInbox();

  // Idle support for long-running processes (e.g. a service shard pump) that
  // run their own polling loop on a worker.  Usage is an eventcount: snapshot
  // WakeEpoch(), poll your queues (and ServiceInbox()), and if nothing was
  // found call WaitForWork(epoch, ...) -- any Post/PostHandler to this worker
  // or Kick() of it after the snapshot advances the epoch, so the sleep
  // either falls through or is woken; a wakeup cannot be lost.  From a
  // non-worker thread WakeEpoch returns 0 and WaitForWork yields once.
  std::uint64_t WakeEpoch() const;
  void WaitForWork(std::uint64_t epoch, std::chrono::nanoseconds max_wait);

  // Wakes worker `w` if it is sleeping (idle loop or WaitForWork).  External
  // producers (service submit paths) call this after handing the worker's
  // process new work through a side channel the runtime cannot see.
  void Kick(WorkerId w);

  // Blocks until every posted task and handler (including work posted by
  // that work) has executed.  Call from outside the runtime only.
  void Quiesce();

 private:
  struct Worker {
    hlock::SoftIrqGate gate;  // handler (RPC) inbox
    std::mutex task_mutex;    // process queue
    std::vector<std::function<void()>> tasks;
    // Eventcount: producers bump wake_seq under wake_mutex before notifying,
    // the worker snapshots it before scanning its queues and sleeps only if
    // it is unchanged -- a post landing between scan and sleep always changes
    // the sequence, so the wakeup cannot be lost.
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::uint64_t wake_seq = 0;  // guarded by wake_mutex
    std::thread thread;
  };

  void WorkerLoop(WorkerId id);
  void ServiceWhileWaiting(std::atomic<bool>* done);
  void Wake(Worker& worker);

  Topology topology_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Conservation counters over *all* work (tasks and handlers): posted is
  // bumped before an item is enqueued, completed after it ran, so
  // posted == completed (completed read first) proves nothing is queued or
  // mid-execution anywhere -- the destructor's drain condition.
  std::atomic<std::uint64_t> work_posted_{0};
  std::atomic<std::uint64_t> work_completed_{0};
  std::atomic<bool> exit_{false};
};

}  // namespace hcluster

#endif  // HCLUSTER_RUNTIME_H_
