#include "src/hload/open_loop.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <thread>
#include <vector>

namespace hload {

void RunnerResult::Merge(const RunnerResult& other) {
  planned += other.planned;
  issued += other.issued;
  ok += other.ok;
  notfound += other.notfound;
  expired += other.expired;
  rejected_submits += other.rejected_submits;
  rejected_final += other.rejected_final;
  abandoned += other.abandoned;
  pool_exhausted += other.pool_exhausted;
  retries += other.retries;
  window_ns = std::max(window_ns, other.window_ns);
  latency.Merge(other.latency);
}

RunnerResult LoadRunner::Run() {
  const std::uint32_t clusters = config_.workload.num_clusters;
  // One slab pool shared by all generators, clustered per generator: the
  // per-op alloc/free stays in the generator's own magazines, and the shared
  // depot lets a generator whose range runs dry borrow from a quieter one
  // before declaring pool_exhausted.
  halloc::SlabConfig pool_cfg;
  pool_cfg.objects_per_cluster = config_.pool_size;
  pool_cfg.magazine_size = 8;
  halloc::SlabAllocator<hsvc::Request> pool(clusters, pool_cfg);
  std::vector<RunnerResult> partials(clusters);
  std::vector<std::thread> generators;
  generators.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    generators.emplace_back(
        [this, c, &partials, &pool] { partials[c] = RunGenerator(c, &pool); });
  }
  RunnerResult merged;
  for (std::uint32_t c = 0; c < clusters; ++c) {
    generators[c].join();
    merged.Merge(partials[c]);
  }
  return merged;
}

RunnerResult LoadRunner::RunGenerator(std::uint32_t cluster,
                                      halloc::SlabAllocator<hsvc::Request>* pool) {
  using hsvc::Request;
  using hsvc::Service;

  RunnerResult result;
  const std::vector<PlannedOp> plan =
      PlanOps(config_.workload, cluster, config_.ops_per_cluster, config_.rate_per_cluster);
  result.planned = plan.size();

  // Jitter stream, deliberately distinct from the plan stream: retry timing
  // depends on service behavior and must not perturb the plan.
  hsim::Rng jitter(config_.workload.seed * 0xD6E8FEB86659FD93ull + cluster + 1);

  pool->RegisterThread(cluster);
  hlock::LockFreeFreeList completed;
  std::uint64_t in_flight = 0;

  const auto harvest = [&] {
    while (hlock::LockFreeNode* node = completed.Pop()) {
      Request* req = Request::FromFreeLink(node);
      --in_flight;
      hflight::Fate fate = hflight::Fate::kError;
      switch (req->status) {
        case hsvc::Status::kOk:
          ++result.ok;
          fate = hflight::Fate::kOk;
          break;
        case hsvc::Status::kNotFound:
          ++result.notfound;
          fate = hflight::Fate::kNotFound;
          break;
        case hsvc::Status::kExpired:
          ++result.expired;
          fate = hflight::Fate::kExpired;
          break;
        case hsvc::Status::kPending:
          break;  // unreachable: completions always carry a terminal status
      }
      result.latency.Record(req->done_ns > req->scheduled_ns
                                ? req->done_ns - req->scheduled_ns
                                : 0);
      if (req->flight != nullptr) {
        // Close at done_ns, not harvest time: the record's total then equals
        // the measured scheduled->done latency exactly (reply dwell in the
        // completion stack is the harvester's, not the service's).
        req->flight->retries = req->retries;
        config_.flight->Close(req->flight, fate, req->done_ns);
        req->flight = nullptr;
      }
      pool->Free(req);
    }
  };

  struct PendingRetry {
    std::uint64_t due_ns;
    Request* req;
    bool operator>(const PendingRetry& other) const { return due_ns > other.due_ns; }
  };
  std::priority_queue<PendingRetry, std::vector<PendingRetry>, std::greater<PendingRetry>>
      retry_heap;

  // Submits, and on rejection either schedules a jittered-backoff retry or
  // gives up.  The backoff base is the service's own hint, doubled per
  // attempt, scaled by a uniform [0.5, 1.5) jitter -- Section 2.3's
  // optimistic-retry client, with the hint standing in for the fixed base.
  const auto submit = [&](Request* req) {
    const hsvc::AdmitResult admit = service_->Submit(req, cluster);
    if (admit.admitted) {
      ++in_flight;
      return;
    }
    ++result.rejected_submits;
    if (req->retries >= config_.max_retries) {
      ++result.rejected_final;
      const std::uint64_t now = Service::NowNs();
      result.latency.RecordAsOf(req->scheduled_ns, now);
      if (req->flight != nullptr) {
        req->flight->retries = req->retries;
        config_.flight->Close(req->flight, hflight::Fate::kRejected, now);
        req->flight = nullptr;
      }
      pool->Free(req);
      return;
    }
    const std::uint64_t backoff_ns = static_cast<std::uint64_t>(admit.retry_after_us) *
                                     1000ull << req->retries;
    const double scale =
        0.5 + static_cast<double>(jitter.Next() >> 11) * (1.0 / 9007199254740992.0);
    ++req->retries;
    retry_heap.push(PendingRetry{
        Service::NowNs() + static_cast<std::uint64_t>(static_cast<double>(backoff_ns) * scale),
        req});
  };

  const auto fire_due_retries = [&](std::uint64_t now) {
    while (!retry_heap.empty() && retry_heap.top().due_ns <= now) {
      Request* req = retry_heap.top().req;
      retry_heap.pop();
      ++result.retries;
      submit(req);
    }
  };

  const std::uint64_t start_ns = Service::NowNs();
  for (const PlannedOp& op : plan) {
    const std::uint64_t sched = start_ns + op.at_ns;
    // Open loop: hold the line until this op's scheduled instant, harvesting
    // completions and firing due retries while we wait.
    while (true) {
      harvest();
      const std::uint64_t now = Service::NowNs();
      fire_due_retries(now);
      if (now >= sched) {
        break;
      }
      std::uint64_t next = sched;
      if (!retry_heap.empty()) {
        next = std::min(next, retry_heap.top().due_ns);
      }
      const std::uint64_t nap = next > now ? next - now : 0;
      std::this_thread::sleep_for(std::chrono::nanoseconds(std::min<std::uint64_t>(nap, 100000)));
    }
    Request* req = pool->Alloc();
    if (req == nullptr) {
      // The pool is the offered-load guarantee: without a free node (our own
      // range and the depot both dry) we are not an open-loop generator any
      // more.  Count it loudly.
      ++result.pool_exhausted;
      result.latency.RecordAsOf(sched, Service::NowNs());
      continue;
    }
    // A node can migrate between generators through the depot, so its
    // completion stack is per-allocation state, not per-node init.
    req->completion = &completed;
    req->kind = op.is_write ? hsvc::OpKind::kPut : hsvc::OpKind::kGet;
    req->key = op.key;
    req->value_in = op.at_ns;  // any deterministic payload
    req->scheduled_ns = sched;
    req->deadline_ns = config_.deadline_ns == 0 ? 0 : sched + config_.deadline_ns;
    req->retries = 0;
    req->flight = config_.flight == nullptr ? nullptr : config_.flight->Open(cluster, sched);
    ++result.issued;
    submit(req);
  }
  const std::uint64_t close_ns = Service::NowNs();
  result.window_ns = close_ns - start_ns;

  // Window closed: abandon pending retries (their ops failed to get in
  // before the deadline of our interest) and harvest until every admitted
  // request has come back -- the service completes all of them, so this
  // terminates.
  while (!retry_heap.empty()) {
    Request* req = retry_heap.top().req;
    retry_heap.pop();
    ++result.abandoned;
    result.latency.RecordAsOf(req->scheduled_ns, close_ns);
    if (req->flight != nullptr) {
      req->flight->retries = req->retries;
      config_.flight->Close(req->flight, hflight::Fate::kAbandoned, close_ns);
      req->flight = nullptr;
    }
    pool->Free(req);
  }
  while (in_flight > 0) {
    harvest();
    if (in_flight > 0) {
      std::this_thread::yield();
    }
  }
  return result;
}

}  // namespace hload
