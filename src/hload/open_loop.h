// Open-loop load runner for hsvc.
//
// One generator thread per cluster submits its planned op stream (see
// workload.h) at the ops' *scheduled* times, regardless of how the service
// is keeping up -- the open-loop discipline.  A closed-loop client (wait for
// each response before sending the next) measures a different, much kinder
// system: its arrival rate collapses exactly when the service slows down, so
// queueing delay never shows up in its numbers.  Here, every terminal
// outcome -- success, not-found, deadline expiry, final rejection after
// retries, or abandonment at window close -- is recorded against the op's
// scheduled arrival time (coordinated-omission-safe: see recorder.h).
//
// Rejected submissions follow the paper's Section 2.3 client contract:
// jittered exponential backoff seeded from the service's own retry-after
// hint, up to max_retries, from a jitter stream separate from the plan
// stream so the plan replays identically across runs.
//
// Requests come from a shared halloc slab allocator clustered per generator
// (type-stable, footnote-2 discipline): each generator registers its thread
// on its own cluster, so the alloc/free fast path stays in that cluster's
// magazines, while a generator that outruns its own range can borrow from
// the shared depot instead of stalling.  Completions return through a
// lock-free stack.  A planned op that finds the whole pool empty is counted
// (pool_exhausted) rather than silently skipped -- at that point the
// generator is no longer offering the configured load and the run's numbers
// say so.

#ifndef HLOAD_OPEN_LOOP_H_
#define HLOAD_OPEN_LOOP_H_

#include <cstdint>

#include "src/halloc/slab_allocator.h"
#include "src/hflight/flight.h"
#include "src/hload/recorder.h"
#include "src/hload/workload.h"
#include "src/hsvc/service.h"

namespace hload {

struct RunnerConfig {
  WorkloadConfig workload;
  double rate_per_cluster = 2000;    // offered ops/s per generator (Poisson)
  std::size_t ops_per_cluster = 2000;  // plan length; the window is its span
  std::size_t pool_size = 256;       // max outstanding requests per generator
  std::uint32_t max_retries = 4;     // re-submissions after rejection
  std::uint64_t deadline_ns = 0;     // per-op deadline from *scheduled* time
  // Optional flight recorder: when set, every issued op opens a record at
  // its *scheduled* instant (so the ledger's total equals the measured,
  // coordinated-omission-safe latency) and closes it with its terminal fate.
  // Must outlive the run.
  hflight::FlightRecorder* flight = nullptr;
};

struct RunnerResult {
  std::uint64_t planned = 0;
  std::uint64_t issued = 0;            // ops whose first submit was attempted
  std::uint64_t ok = 0;
  std::uint64_t notfound = 0;
  std::uint64_t expired = 0;           // admitted but past deadline at service
  std::uint64_t rejected_submits = 0;  // every rejection observed
  std::uint64_t rejected_final = 0;    // ops that gave up after max_retries
  std::uint64_t abandoned = 0;         // retries still pending at window close
  std::uint64_t pool_exhausted = 0;    // planned ops skipped: no free node
  std::uint64_t retries = 0;           // re-submission attempts made
  std::uint64_t window_ns = 0;         // submission window (max over generators)
  LatencyRecorder latency;             // all terminal outcomes, ns from scheduled

  double offered_rps() const {
    return window_ns == 0 ? 0.0
                          : static_cast<double>(planned) * 1e9 /
                                static_cast<double>(window_ns);
  }
  double achieved_rps() const {
    return window_ns == 0 ? 0.0
                          : static_cast<double>(ok + notfound) * 1e9 /
                                static_cast<double>(window_ns);
  }
  // Of everything planned, how much ended in each fate.
  double completed_fraction() const {
    return planned == 0 ? 0.0
                        : static_cast<double>(ok + notfound) /
                              static_cast<double>(planned);
  }

  void Merge(const RunnerResult& other);
};

class LoadRunner {
 public:
  LoadRunner(hsvc::Service* service, const RunnerConfig& config)
      : service_(service), config_(config) {}

  // Runs one generator thread per cluster to plan exhaustion, harvests every
  // outstanding completion, and returns the merged result.  Blocking.
  RunnerResult Run();

 private:
  RunnerResult RunGenerator(std::uint32_t cluster,
                            halloc::SlabAllocator<hsvc::Request>* pool);

  hsvc::Service* service_;
  RunnerConfig config_;
};

}  // namespace hload

#endif  // HLOAD_OPEN_LOOP_H_
