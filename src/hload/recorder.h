// Log-linear latency recorder for open-loop load generation.
//
// Open-loop measurement needs two things hmetrics' sample-retaining
// LatencyHistogram is the wrong shape for:
//
//   1. Unbounded sample counts at fixed memory.  An offered-load sweep
//      records millions of latencies; retaining samples (even capped --
//      capping biases the tail, which is the part we report) is not an
//      option.  Buckets are exact in [0,32) ns and within 1/32 (~3%)
//      relative error above, which is far below run-to-run noise at p999.
//
//   2. Coordinated-omission safety.  Latency is recorded against the op's
//      *scheduled* arrival time, and ops still un-completed when the
//      measurement window closes are backfilled at window close with the
//      latency they had already accrued -- a slow service is not allowed to
//      hide its worst ops by simply not finishing them (Tene's "coordinated
//      omission" critique).  The recorder itself is policy-free; RecordAsOf
//      is the backfill entry point the runner uses.
//
// Bridging to hmetrics at export time uses LatencyHistogram::RecordN (one
// bulk record per occupied bucket), so a recorder can flow into the standard
// bench-report pipeline without millions of Record calls.

#ifndef HLOAD_RECORDER_H_
#define HLOAD_RECORDER_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "src/hmetrics/histogram.h"

namespace hload {

class LatencyRecorder {
 public:
  void Record(std::uint64_t ns) {
    ++buckets_[Index(ns)];
    ++count_;
    AddSaturating(ns);
    min_ = count_ == 1 ? ns : std::min(min_, ns);
    max_ = std::max(max_, ns);
  }

  // Backfill for an op scheduled at `scheduled_ns` and still incomplete when
  // the window closed at `as_of_ns`: its latency is *at least* the elapsed
  // time, so record that lower bound instead of dropping the op.
  void RecordAsOf(std::uint64_t scheduled_ns, std::uint64_t as_of_ns) {
    Record(as_of_ns > scheduled_ns ? as_of_ns - scheduled_ns : 0);
  }

  void Merge(const LatencyRecorder& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    if (other.count_ > 0) {
      min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    AddSaturating(other.sum_);
    if (other.sum_overflowed_) {
      sum_overflowed_ = true;
      sum_ = std::numeric_limits<std::uint64_t>::max();
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_ns() const { return sum_; }
  // True once the running sum saturated at the uint64 ceiling; sum_ns() and
  // mean_ns() are then floors rather than wrapped nonsense.
  bool sum_overflowed() const { return sum_overflowed_; }
  std::uint64_t min_ns() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max_ns() const { return max_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Nearest-rank percentile over the bucketed distribution, in nanoseconds.
  // p in [0, 100]; p=99.9 is the p999 of the bench report.
  std::uint64_t PercentileNs(double p) const {
    if (count_ == 0) {
      return 0;
    }
    p = std::clamp(p, 0.0, 100.0);
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(p / 100.0 *
                                                              static_cast<double>(count_) +
                                                              0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return Representative(i);
      }
    }
    return max_;
  }

  // Flows the bucketed distribution into an hmetrics histogram (one RecordN
  // per occupied bucket) with values divided by `divisor` -- 1000 converts
  // the ns buckets to the µs convention of bench reports.  Set a sample cap
  // on `out` first if raw-sample retention matters.
  void AddTo(hmetrics::LatencyHistogram* out, std::uint64_t divisor = 1000) const {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] != 0) {
        out->RecordN(Representative(i) / divisor, buckets_[i]);
      }
    }
  }

 private:
  void AddSaturating(std::uint64_t v) {
    if (__builtin_add_overflow(sum_, v, &sum_)) {
      sum_ = std::numeric_limits<std::uint64_t>::max();
      sum_overflowed_ = true;
    }
  }

  // [0,32) ns exact, then 32 sub-buckets per power of two.
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kSub = 1u << kSubBits;
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  static std::size_t Index(std::uint64_t ns) {
    if (ns < kSub) {
      return static_cast<std::size_t>(ns);
    }
    const unsigned major = std::bit_width(ns) - 1;  // >= kSubBits
    const std::size_t sub = static_cast<std::size_t>((ns >> (major - kSubBits)) & (kSub - 1));
    return kSub + (major - kSubBits) * kSub + sub;
  }

  static std::uint64_t Representative(std::size_t index) {
    if (index < kSub) {
      return index;
    }
    const unsigned major = kSubBits + static_cast<unsigned>((index - kSub) / kSub);
    const std::uint64_t sub = (index - kSub) % kSub;
    const std::uint64_t lower = (std::uint64_t{1} << major) + (sub << (major - kSubBits));
    return lower + (std::uint64_t{1} << (major - kSubBits)) / 2;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  bool sum_overflowed_ = false;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace hload

#endif  // HLOAD_RECORDER_H_
