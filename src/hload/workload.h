// Deterministic workload planning for the hsvc load generator.
//
// A workload is *planned* before it is *executed*: for a given seed the
// plan -- every key, every read/write choice, every Poisson arrival gap --
// is a pure function of the config, independent of how fast the service or
// the host happens to run.  Execution-time randomness (retry jitter) draws
// from a separate stream, so two runs with the same seed offer byte-identical
// op sequences even when admission control rejects different subsets.  That
// is what makes A/B comparisons across cluster counts meaningful.
//
// Key population: `keys_per_cluster` keys homed at each cluster.  The
// clustered table homes integer keys by `key % num_clusters` (std::hash is
// the identity for integers), so the key with per-cluster rank r homed at
// cluster c is simply r * num_clusters + c.  Rank selection is uniform or
// zipfian (Gray et al.'s incremental method, the YCSB default with
// theta = 0.99); cluster selection follows `local_fraction`: that fraction
// of ops target the issuing client's own cluster, the rest pick a cluster
// uniformly -- the locality knob that decides how often the service's
// cross-cluster paths (replication fetch, write broadcast) are exercised.

#ifndef HLOAD_WORKLOAD_H_
#define HLOAD_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/hsim/random.h"

namespace hload {

// Draws ranks in [0, n) with the zipfian skew used by YCSB: rank k is chosen
// with probability proportional to 1 / (k+1)^theta.  Deterministic given the
// caller's Rng.
class ZipfianRanks {
 public:
  ZipfianRanks(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta), zeta_n_(Zeta(n, theta)), zeta2_(Zeta(2, theta)) {
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  std::uint64_t Next(hsim::Rng* rng) const {
    // Uniform double in [0,1) from the top 53 bits.
    const double u = static_cast<double>(rng->Next() >> 11) * (1.0 / 9007199254740992.0);
    const double uz = u * zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double Zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

enum class KeyDist : std::uint8_t { kUniform, kZipfian };

// Inverse of the key construction below (key = rank * num_clusters + cluster):
// the per-cluster zipf rank of a planned key.  hmesh uses the rank to decide
// replication breadth (low ranks are the hot head of the zipf curve).
inline std::uint64_t RankOfKey(std::uint64_t key, std::uint32_t num_clusters) {
  return key / num_clusters;
}

inline bool IsHotKey(std::uint64_t key, std::uint32_t num_clusters, std::uint64_t hot_ranks) {
  return RankOfKey(key, num_clusters) < hot_ranks;
}

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_clusters = 2;
  std::uint64_t keys_per_cluster = 64;
  double read_fraction = 0.9;
  double local_fraction = 0.8;  // ops homed at the issuer's own cluster
  KeyDist key_dist = KeyDist::kZipfian;
  double zipf_theta = 0.99;
};

struct PlannedOp {
  std::uint64_t at_ns = 0;  // offset from the window start (open-loop clock)
  std::uint64_t key = 0;
  bool is_write = false;
};

// Plans `count` ops for the generator attached to `cluster`, Poisson arrivals
// at `rate_per_s`.  Same (config, cluster, count, rate) -> same plan, always.
inline std::vector<PlannedOp> PlanOps(const WorkloadConfig& config, std::uint32_t cluster,
                                      std::size_t count, double rate_per_s) {
  // Per-generator stream: mix the cluster id into the seed (splitmix-style)
  // so generators are decorrelated but individually reproducible.
  hsim::Rng rng(config.seed * 0x9E3779B97F4A7C15ull + (cluster + 1) * 0xBF58476D1CE4E5B9ull);
  const ZipfianRanks zipf(config.keys_per_cluster, config.zipf_theta);
  const double mean_gap_ns = 1e9 / rate_per_s;

  std::vector<PlannedOp> plan;
  plan.reserve(count);
  std::uint64_t clock_ns = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PlannedOp op;
    // Exponential inter-arrival gap (open-loop Poisson process).
    const double u =
        (static_cast<double>(rng.Next() >> 11) + 1.0) * (1.0 / 9007199254740992.0);
    clock_ns += static_cast<std::uint64_t>(-std::log(u) * mean_gap_ns);
    op.at_ns = clock_ns;

    const std::uint32_t target_cluster =
        static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0) <
                config.local_fraction
            ? cluster
            : static_cast<std::uint32_t>(rng.NextBelow(config.num_clusters));
    const std::uint64_t rank = config.key_dist == KeyDist::kZipfian
                                   ? zipf.Next(&rng)
                                   : rng.NextBelow(config.keys_per_cluster);
    op.key = rank * config.num_clusters + target_cluster;
    op.is_write =
        static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0) >=
        config.read_fraction;
    plan.push_back(op);
  }
  return plan;
}

}  // namespace hload

#endif  // HLOAD_WORKLOAD_H_
