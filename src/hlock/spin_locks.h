// Native spin locks: test-and-set, test-and-test-and-set, exponential
// backoff, and ticket locks.
//
// These are the baselines the paper's Distributed Locks are measured against
// (Figure 3c).  All locks satisfy the BasicLockable requirements, so they
// compose with std::lock_guard / std::scoped_lock.

#ifndef HLOCK_SPIN_LOCKS_H_
#define HLOCK_SPIN_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/backoff.h"
#include "src/hlock/padded.h"
#include "src/hlock/thread_id.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Pure test-and-set: every retry is a read-modify-write.  The simplest and,
// under contention, the most cache-line-hostile lock.
class TasSpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      CpuRelax();
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// Test-and-test-and-set: spin on a plain load (cache-local once the line is
// shared) and only attempt the RMW when the lock looks free.
class TtasSpinLock {
 public:
  void lock() {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    bool contended = false;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        break;
      }
      if (site_ != nullptr && !contended) {
        site_->EnterQueue();
      }
      contended = true;
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
    if (site_ != nullptr) {
      if (contended) {
        site_->LeaveQueue();
      }
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), now - t0, contended);
      hold_start_ = now;
    }
  }

  bool try_lock() {
    const bool taken = !locked_.load(std::memory_order_relaxed) &&
                       !locked_.exchange(true, std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      hold_start_ = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), 0, /*contended=*/false);
    }
    return taken;
  }

  void unlock() {
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    locked_.store(false, std::memory_order_release);
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

 private:
  std::atomic<bool> locked_{false};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

// Test-and-set with exponential backoff (Figure 3c).  The backoff cap is the
// tuning knob the paper evaluates at 35 us and 2 ms equivalents: a small cap
// keeps uncontended latency low but floods the interconnect under load; a
// large cap is gentle on the memory system but invites starvation.
class BackoffSpinLock {
 public:
  explicit BackoffSpinLock(std::uint32_t max_backoff_spins = 1024)
      : max_backoff_spins_(max_backoff_spins) {}

  void lock() {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    bool contended = false;
    Backoff backoff(4, max_backoff_spins_);
    while (locked_.exchange(true, std::memory_order_acquire)) {
      if (site_ != nullptr && !contended) {
        site_->EnterQueue();
      }
      contended = true;
      backoff.Pause();
    }
    if (site_ != nullptr) {
      if (contended) {
        site_->LeaveQueue();
      }
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), now - t0, contended);
      hold_start_ = now;
    }
  }

  bool try_lock() {
    const bool taken = !locked_.exchange(true, std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      hold_start_ = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), 0, /*contended=*/false);
    }
    return taken;
  }

  void unlock() {
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    locked_.store(false, std::memory_order_release);
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

 private:
  std::atomic<bool> locked_{false};
  std::uint32_t max_backoff_spins_;
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

// Ticket lock: FIFO-fair like a Distributed Lock, but all waiters spin on the
// same now-serving word, so it keeps the global-spinning problem.
class TicketLock {
 public:
  void lock() {
    const std::uint32_t ticket = next_->fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_->load(std::memory_order_acquire) != ticket) {
      backoff.Pause();
    }
  }

  bool try_lock() {
    const std::uint32_t serving = serving_->load(std::memory_order_relaxed);
    std::uint32_t expected = serving;
    return next_->compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() { serving_->fetch_add(1, std::memory_order_release); }

 private:
  Padded<std::atomic<std::uint32_t>> next_{0};
  Padded<std::atomic<std::uint32_t>> serving_{0};
};

}  // namespace hlock

#endif  // HLOCK_SPIN_LOCKS_H_
