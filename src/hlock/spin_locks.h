// Native spin locks: test-and-set, test-and-test-and-set, exponential
// backoff, and ticket locks.
//
// These are the baselines the paper's Distributed Locks are measured against
// (Figure 3c).  All locks satisfy the BasicLockable requirements, so they
// compose with std::lock_guard / std::scoped_lock.
//
// TasSpinLock and TtasSpinLock live in bootstrap_locks.h (they sit beneath
// the platform policy and the algorithm layer) and are re-exported here.

#ifndef HLOCK_SPIN_LOCKS_H_
#define HLOCK_SPIN_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/algo/native_backend.h"
#include "src/hlock/algo/spin.h"
#include "src/hlock/backoff.h"
#include "src/hlock/bootstrap_locks.h"
#include "src/hlock/padded.h"
#include "src/hlock/platform.h"
#include "src/hlock/thread_id.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Test-and-set with exponential backoff (Figure 3c).  The backoff cap is the
// tuning knob the paper evaluates at 35 us and 2 ms equivalents: a small cap
// keeps uncontended latency low but floods the interconnect under load; a
// large cap is gentle on the memory system but invites starvation.
//
// The algorithm body lives in src/hlock/algo/spin.h, shared with the
// simulator; this adapter binds it to the native backend (the release is an
// exchange there too -- HECTOR fidelity the simulator requires and the native
// lock tolerates).
class BackoffSpinLock {
 public:
  explicit BackoffSpinLock(std::uint32_t max_backoff_spins = 1024)
      : core_(&backend_, /*home=*/0, max_backoff_spins) {}

  void lock() {
    Backend::Ctx ctx{CurrentThreadId()};
    core_.Acquire(ctx).Get();
  }

  bool try_lock() {
    Backend::Ctx ctx{CurrentThreadId()};
    return core_.TryAcquire(ctx).Get();
  }

  void unlock() {
    Backend::Ctx ctx{CurrentThreadId()};
    core_.Release(ctx).Get();
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { core_.set_site(site); }

 private:
  using Backend = algo::NativeBackend<StdPlatform>;
  Backend backend_;
  algo::SpinCore<Backend> core_;
};

// Ticket lock: FIFO-fair like a Distributed Lock, but all waiters spin on the
// same now-serving word, so it keeps the global-spinning problem.
class TicketLock {
 public:
  void lock() {
    const std::uint32_t ticket = next_->fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_->load(std::memory_order_acquire) != ticket) {
      backoff.Pause();
    }
  }

  bool try_lock() {
    const std::uint32_t serving = serving_->load(std::memory_order_relaxed);
    std::uint32_t expected = serving;
    return next_->compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() { serving_->fetch_add(1, std::memory_order_release); }

 private:
  Padded<std::atomic<std::uint32_t>> next_{0};
  Padded<std::atomic<std::uint32_t>> serving_{0};
};

}  // namespace hlock

#endif  // HLOCK_SPIN_LOCKS_H_
