// Lock-free leaf structures (Section 5.3).
//
// The authors planned to use "lock-free data structures for simple leaf
// locks, particularly for data structures that are required by interrupt
// handlers and if the data to be modified is contained in a single word".
// These are the two shapes that sentence describes:
//
//   LockFreeCounter -- a single-word statistic safely updated from handler
//   context (no lock to deadlock on).
//
//   LockFreeFreeList -- a Treiber stack over type-stable nodes.  It is safe
//   against ABA *only because* the nodes come from a type-stable pool that is
//   never returned to the allocator while the list is in use -- the same
//   footnote-2 discipline the reserve bits rely on; the pop-side version
//   counter closes the remaining window.
//
// Templated on the Platform policy (src/hlock/platform.h); the unsuffixed
// aliases bind StdPlatform.

#ifndef HLOCK_LOCK_FREE_H_
#define HLOCK_LOCK_FREE_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/platform.h"

namespace hlock {

template <class Platform = StdPlatform>
class BasicLockFreeCounter {
 public:
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t Read() const { return value_.load(std::memory_order_relaxed); }

  // Single-word compare-and-swap update, the paper's "changes performed as a
  // series of atomic operations on single words" pattern.
  template <typename Fn>
  std::int64_t Update(Fn fn) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, fn(current), std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
    return current;
  }

 private:
  typename Platform::template Atomic<std::int64_t> value_{0};
};

// Intrusive node for BasicLockFreeFreeList.
template <class Platform = StdPlatform>
struct BasicLockFreeNode {
  typename Platform::template Atomic<BasicLockFreeNode*> next{nullptr};
};

template <class Platform = StdPlatform>
class BasicLockFreeFreeList {
 public:
  using Node = BasicLockFreeNode<Platform>;

  void Push(Node* node) {
    Head expected = head_.load(std::memory_order_relaxed);
    Head desired;
    do {
      node->next.store(expected.node, std::memory_order_relaxed);
      desired = Head{node, expected.version + 1};
    } while (!head_.compare_exchange_weak(expected, desired, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  Node* Pop() {
    Head expected = head_.load(std::memory_order_acquire);
    while (expected.node != nullptr) {
      // Reading node->next is safe: nodes are type-stable (never freed to the
      // allocator while the list lives), so the worst case is a stale value
      // that the versioned CAS rejects.
      Head desired{expected.node->next.load(std::memory_order_relaxed), expected.version + 1};
      if (head_.compare_exchange_weak(expected, desired, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return expected.node;
      }
    }
    return nullptr;
  }

  bool empty() const { return head_.load(std::memory_order_acquire).node == nullptr; }

 private:
  struct Head {
    Node* node = nullptr;
    std::uint64_t version = 0;
  };
  // 16-byte atomic: uses cmpxchg16b where available, a libatomic lock
  // otherwise (still correct).
  typename Platform::template Atomic<Head> head_{};
};

using LockFreeCounter = BasicLockFreeCounter<>;
using LockFreeNode = BasicLockFreeNode<>;
using LockFreeFreeList = BasicLockFreeFreeList<>;

}  // namespace hlock

#endif  // HLOCK_LOCK_FREE_H_
