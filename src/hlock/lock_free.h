// Lock-free leaf structures (Section 5.3).
//
// The authors planned to use "lock-free data structures for simple leaf
// locks, particularly for data structures that are required by interrupt
// handlers and if the data to be modified is contained in a single word".
// These are the two shapes that sentence describes:
//
//   LockFreeCounter -- a single-word statistic safely updated from handler
//   context (no lock to deadlock on).
//
//   LockFreeFreeList -- a Treiber stack over type-stable nodes.  It is safe
//   against ABA *only because* the nodes come from a type-stable pool that is
//   never returned to the allocator while the list is in use -- the same
//   footnote-2 discipline the reserve bits rely on; the pop-side version
//   counter closes the remaining window.
//
// Templated on the Platform policy (src/hlock/platform.h); the unsuffixed
// aliases bind StdPlatform.

#ifndef HLOCK_LOCK_FREE_H_
#define HLOCK_LOCK_FREE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "src/hlock/platform.h"

namespace hlock {

template <class Platform = StdPlatform>
class BasicLockFreeCounter {
 public:
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t Read() const { return value_.load(std::memory_order_relaxed); }

  // Single-word compare-and-swap update, the paper's "changes performed as a
  // series of atomic operations on single words" pattern.
  //
  // Contract (pinned; tests/hlock/lock_free_contract_test.cc guards it):
  //   - Returns the value the counter held immediately BEFORE fn was applied
  //     -- fetch_add-style, so `Update(f) == old` and the counter now holds
  //     `f(old)`.  Callers branch on the pre-update value (e.g. "was this
  //     the transition past the threshold?"); returning the new value would
  //     silently shift every such test by one step.
  //   - fn may be called multiple times (once per CAS attempt) and must be
  //     a pure function of its argument.
  //   - The successful CAS is acq_rel: it synchronizes with other successful
  //     updates of this counter, so read-modify-write chains across threads
  //     are ordered.  The failure order is relaxed -- a failed attempt only
  //     feeds the retry's fn and publishes nothing.
  template <typename Fn>
  std::int64_t Update(Fn fn) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, fn(current), std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
    return current;
  }

 private:
  typename Platform::template Atomic<std::int64_t> value_{0};
};

// Intrusive node for BasicLockFreeFreeList.
template <class Platform = StdPlatform>
struct BasicLockFreeNode {
  typename Platform::template Atomic<BasicLockFreeNode*> next{nullptr};
};

template <class Platform = StdPlatform>
class BasicLockFreeFreeList {
 public:
  using Node = BasicLockFreeNode<Platform>;

 private:
  struct Head {
    Node* node = nullptr;
    std::uint64_t version = 0;
  };

 public:
  void Push(Node* node) {
    Head expected = head_.load(std::memory_order_relaxed);
    Head desired;
    do {
      node->next.store(expected.node, std::memory_order_relaxed);
      desired = Head{node, expected.version + 1};
    } while (!head_.compare_exchange_weak(expected, desired, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  Node* Pop() {
    Head expected = head_.load(std::memory_order_acquire);
    while (expected.node != nullptr) {
      // Reading node->next is safe: nodes are type-stable (never freed to the
      // allocator while the list lives), so the worst case is a stale value
      // that the versioned CAS rejects.
      Head desired{expected.node->next.load(std::memory_order_relaxed), expected.version + 1};
      if (head_.compare_exchange_weak(expected, desired, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return expected.node;
      }
    }
    return nullptr;
  }

  bool empty() const { return head_.load(std::memory_order_acquire).node == nullptr; }

  // --- lock-freedom introspection -------------------------------------------
  // Head is 16 bytes (pointer + version), which is only genuinely lock-free
  // on hardware with a double-width CAS (x86-64 cmpxchg16b -- and only when
  // the build enables it, e.g. -mcx16; aarch64 needs LSE).  WITHOUT it,
  // libatomic silently backs every Head operation with a HIDDEN GLOBAL
  // MUTEX: still linearizable, but the "lock-free" completion path can now
  // block, invert priorities, and deadlock if ever used from a context that
  // cannot take locks (the Section 5.3 interrupt-handler motivation).  That
  // fallback is invisible at the call site, so it is surfaced three ways:
  // this constant, the svc.freelist_lock_free hmetrics gauge exported by
  // hsvc::Service, and the one-time stderr warning below.
  //
  // Model-checker platforms substitute their own Atomic without the
  // std::atomic introspection surface; there the implementation is the
  // checker's simulated memory (no hidden mutex), reported as lock-free.
  static constexpr bool kHeadIsAlwaysLockFree = [] {
    if constexpr (requires {
                    Platform::template Atomic<Head>::is_always_lock_free;
                  }) {
      return Platform::template Atomic<Head>::is_always_lock_free;
    } else {
      return true;
    }
  }();

  // Runtime answer for this list instance (std::atomic allows a per-object
  // answer; falls back to the compile-time one where there is no runtime
  // query).
  bool head_is_lock_free() const {
    if constexpr (requires { head_.is_lock_free(); }) {
      return head_.is_lock_free();
    } else {
      return kHeadIsAlwaysLockFree;
    }
  }

  // Loud one-time startup detection: call from a subsystem that relies on
  // the non-blocking property (hsvc's completion path does, in its Service
  // constructor).  Returns kHeadIsAlwaysLockFree so callers can also export
  // it as a gauge.
  static bool WarnIfNotLockFree(const char* where) {
    if constexpr (!kHeadIsAlwaysLockFree) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "hlock: BasicLockFreeFreeList at %s is NOT lock-free: "
                     "16-byte atomic Head falls back to a hidden libatomic "
                     "mutex on this target/build (no double-width CAS; on "
                     "x86-64 compile with -mcx16).  Correctness is "
                     "unaffected, but the path can block.\n",
                     where);
      }
    }
    return kHeadIsAlwaysLockFree;
  }

 private:
  typename Platform::template Atomic<Head> head_{};
};

using LockFreeCounter = BasicLockFreeCounter<>;
using LockFreeNode = BasicLockFreeNode<>;
using LockFreeFreeList = BasicLockFreeFreeList<>;

}  // namespace hlock

#endif  // HLOCK_LOCK_FREE_H_
