// Bootstrap spin locks: test-and-set and test-and-test-and-set.
//
// These two are deliberately *not* written over the algorithm layer
// (src/hlock/algo/): TtasSpinLock is StdPlatform's PoolLock -- the lock the
// layer's own node pools sit on -- so expressing it through the layer would
// be circular.  They are also the baselines simple enough that a policy
// indirection would obscure more than it shares.

#ifndef HLOCK_BOOTSTRAP_LOCKS_H_
#define HLOCK_BOOTSTRAP_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/backoff.h"
#include "src/hlock/thread_id.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Pure test-and-set: every retry is a read-modify-write.  The simplest and,
// under contention, the most cache-line-hostile lock.
class TasSpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      CpuRelax();
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// Test-and-test-and-set: spin on a plain load (cache-local once the line is
// shared) and only attempt the RMW when the lock looks free.
class TtasSpinLock {
 public:
  void lock() {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    bool contended = false;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        break;
      }
      if (site_ != nullptr && !contended) {
        site_->EnterQueue();
      }
      contended = true;
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
    if (site_ != nullptr) {
      if (contended) {
        site_->LeaveQueue();
      }
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), now - t0, contended);
      hold_start_ = now;
    }
  }

  bool try_lock() {
    const bool taken = !locked_.load(std::memory_order_relaxed) &&
                       !locked_.exchange(true, std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      hold_start_ = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(CurrentThreadId(), 0, /*contended=*/false);
    }
    return taken;
  }

  void unlock() {
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    locked_.store(false, std::memory_order_release);
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

 private:
  std::atomic<bool> locked_{false};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock

#endif  // HLOCK_BOOTSTRAP_LOCKS_H_
