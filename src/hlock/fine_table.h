// Baseline tables for comparing against the hybrid locking strategy
// (Figure 1a and the single-global-lock strawman).
//
//   FineTable   -- one spin lock per bucket plus one lock per entry: the
//                  fully fine-grained design of Figure 1a.  Two lock
//                  acquisitions on every access, maximal concurrency.
//   GlobalTable -- one lock held for the entire operation: minimal cost per
//                  acquisition, no concurrency.

#ifndef HLOCK_FINE_TABLE_H_
#define HLOCK_FINE_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/hlock/spin_locks.h"

namespace hlock {

template <typename K, typename V, typename Hash = std::hash<K>>
class FineTable {
 private:
  struct Entry {
    K key{};
    V value{};
    TtasSpinLock lock;
    Entry* next = nullptr;
  };

  struct Bucket {
    TtasSpinLock lock;
    Entry* head = nullptr;
  };

 public:
  explicit FineTable(std::size_t num_buckets = 128) : buckets_(num_buckets) {}
  FineTable(const FineTable&) = delete;
  FineTable& operator=(const FineTable&) = delete;

  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept : entry_(std::exchange(other.entry_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      Release();
      entry_ = std::exchange(other.entry_, nullptr);
      return *this;
    }
    ~Guard() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const K& key() const { return entry_->key; }
    V& value() { return entry_->value; }

    void Release() {
      if (entry_ != nullptr) {
        entry_->lock.unlock();
        entry_ = nullptr;
      }
    }

   private:
    friend class FineTable;
    explicit Guard(Entry* entry) : entry_(entry) {}
    Entry* entry_ = nullptr;
  };

  // Locks the entry for `key`, creating it if absent.  Two lock levels: the
  // bucket lock to find/insert, then the entry lock to own the element
  // (taken outside the bucket lock, as a fine-grained design must to avoid
  // serializing the bucket behind a long element hold).
  Guard Acquire(const K& key) {
    Bucket& bucket = buckets_[Hash{}(key) % buckets_.size()];
    Entry* entry = nullptr;
    {
      std::lock_guard<TtasSpinLock> guard(bucket.lock);
      entry = FindInBucket(bucket, key);
      if (entry == nullptr) {
        {
          std::lock_guard<TtasSpinLock> pool_guard(pool_lock_);
          pool_.emplace_back();
          entry = &pool_.back();
        }
        entry->key = key;
        entry->next = bucket.head;
        bucket.head = entry;
      }
    }
    entry->lock.lock();
    return Guard(entry);
  }

  std::optional<V> Peek(const K& key) {
    Bucket& bucket = buckets_[Hash{}(key) % buckets_.size()];
    std::lock_guard<TtasSpinLock> guard(bucket.lock);
    Entry* entry = FindInBucket(bucket, key);
    if (entry == nullptr) {
      return std::nullopt;
    }
    return entry->value;
  }

 private:
  Entry* FindInBucket(Bucket& bucket, const K& key) {
    for (Entry* entry = bucket.head; entry != nullptr; entry = entry->next) {
      if (entry->key == key) {
        return entry;
      }
    }
    return nullptr;
  }

  std::vector<Bucket> buckets_;
  std::deque<Entry> pool_;
  TtasSpinLock pool_lock_;
};

template <typename K, typename V, typename Lock = TtasSpinLock, typename Hash = std::hash<K>>
class GlobalTable {
 public:
  explicit GlobalTable(std::size_t num_buckets = 128) : buckets_(num_buckets, nullptr) {}
  GlobalTable(const GlobalTable&) = delete;
  GlobalTable& operator=(const GlobalTable&) = delete;

  // Runs `fn(value)` with the single global lock held for the whole call.
  template <typename Fn>
  void With(const K& key, Fn&& fn) {
    std::lock_guard<Lock> guard(lock_);
    Entry* entry = Find(key);
    if (entry == nullptr) {
      pool_.emplace_back();
      entry = &pool_.back();
      entry->key = key;
      const std::size_t bucket = Hash{}(key) % buckets_.size();
      entry->next = buckets_[bucket];
      buckets_[bucket] = entry;
    }
    fn(entry->value);
  }

  std::optional<V> Peek(const K& key) {
    std::lock_guard<Lock> guard(lock_);
    Entry* entry = Find(key);
    if (entry == nullptr) {
      return std::nullopt;
    }
    return entry->value;
  }

 private:
  struct Entry {
    K key{};
    V value{};
    Entry* next = nullptr;
  };

  Entry* Find(const K& key) {
    for (Entry* entry = buckets_[Hash{}(key) % buckets_.size()]; entry != nullptr;
         entry = entry->next) {
      if (entry->key == key) {
        return entry;
      }
    }
    return nullptr;
  }

  Lock lock_;
  std::vector<Entry*> buckets_;
  std::deque<Entry> pool_;
};

}  // namespace hlock

#endif  // HLOCK_FINE_TABLE_H_
