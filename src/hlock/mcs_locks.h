// Native Distributed (MCS queue) locks: the classic algorithm and the
// HURRICANE modifications H1 and H2, ported faithfully from Figure 3.
//
// HECTOR only has atomic swap, so the H-variants use the *swap-only* release:
// a release may store nil into the tail even though a successor exists, and
// must then repair the queue (the "usurper" protocol).  Modern hardware has
// compare-and-swap; `McsLock` (the classic form, explicit queue node, CAS
// release) is provided alongside so the swap-only overhead can be measured
// (see bench/ablation_mcs_mods).
//
//   - McsLock:   caller-provided QNode, CAS release (Mellor-Crummey & Scott).
//   - McsH1Lock: per-thread pre-initialized nodes (modification 1): the
//                uncontended acquire has no node-initialization store.
//   - McsH2Lock: H1 + release without the successor check (modification 2):
//                the uncontended release is a single swap; contended releases
//                always repair.
//
// All variants are FIFO-fair (up to usurpation windows in the swap-only
// release) and waiters spin on their own cache line.
//
// Every lock is templated on the Platform policy (src/hlock/platform.h); the
// unsuffixed aliases bind StdPlatform and are the production types.  The
// hcheck model checker instantiates the same code with hcheck::Platform to
// schedule-check it (tests/hcheck/mcs_locks_hcheck_test.cc).

#ifndef HLOCK_MCS_LOCKS_H_
#define HLOCK_MCS_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/padded.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Classic MCS lock with an explicit, caller-owned queue node and CAS release.
// lock() is split into Enqueue/WaitForGrant so a checker (or instrumented
// caller) can observe the moment a thread takes its place in the queue —
// that is the instant that fixes its FIFO position.
template <class Platform = StdPlatform>
class BasicMcsLock {
 public:
  struct QNode {
    typename Platform::template Atomic<QNode*> next{nullptr};
    typename Platform::template Atomic<bool> locked{false};
  };

  // Swaps the node into the queue.  Returns true if the lock was acquired
  // immediately (no predecessor); otherwise the caller holds a queue position
  // and must call WaitForGrant() before entering the critical section.
  bool Enqueue(QNode& node) {
    node.next.store(nullptr, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return true;
    }
    node.locked.store(true, std::memory_order_relaxed);
    pred->next.store(&node, std::memory_order_release);
    return false;
  }

  void WaitForGrant(QNode& node) {
    typename Platform::Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
  }

  void lock(QNode& node) {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    const bool immediate = Enqueue(node);
    if (!immediate) {
      if (site_ != nullptr) {
        site_->EnterQueue();
      }
      WaitForGrant(node);
      if (site_ != nullptr) {
        site_->LeaveQueue();
      }
    }
    if (site_ != nullptr) {
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(Platform::ThreadId(), now - t0, !immediate);
      hold_start_ = now;
    }
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Only lock()/unlock() record -- callers driving the split
  // Enqueue/WaitForGrant protocol directly are not profiled.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

  void unlock(QNode& node) {
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      typename Platform::Backoff backoff;
      while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Pause();
      }
    }
    succ->locked.store(false, std::memory_order_release);
  }

 private:
  typename Platform::template Atomic<QNode*> tail_{nullptr};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

using McsLock = BasicMcsLock<>;

namespace internal {

// Shared implementation of the H1/H2 variants: per-thread pre-initialized
// nodes and the swap-only release.
template <class Platform, bool kCheckSuccessor>
class HurricaneMcsLock {
 public:
  HurricaneMcsLock() {
    for (auto& node : nodes_) {
      node->next.store(nullptr, std::memory_order_relaxed);
      node->locked.store(true, std::memory_order_relaxed);  // rest state: ready to wait
    }
  }
  HurricaneMcsLock(const HurricaneMcsLock&) = delete;
  HurricaneMcsLock& operator=(const HurricaneMcsLock&) = delete;

  void lock() {
    QNode& node = *nodes_[Platform::ThreadId()];
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    // Modification 1: no initialization stores here; the rest-state invariant
    // (next == nullptr, locked == true) is maintained by the contended paths.
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      if (site_ != nullptr) {
        RecordGrant(t0, /*contended=*/false);
      }
      return;
    }
    if (site_ != nullptr) {
      site_->EnterQueue();
    }
    pred->next.store(&node, std::memory_order_release);
    typename Platform::Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
    node.locked.store(true, std::memory_order_relaxed);  // re-initialize
    if (site_ != nullptr) {
      site_->LeaveQueue();
      RecordGrant(t0, /*contended=*/true);
    }
  }

  void unlock() {
    QNode& node = *nodes_[Platform::ThreadId()];
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    QNode* succ = nullptr;
    if constexpr (kCheckSuccessor) {
      succ = node.next.load(std::memory_order_acquire);
      if (succ != nullptr) {
        node.next.store(nullptr, std::memory_order_relaxed);  // re-initialize
        succ->locked.store(false, std::memory_order_release);
        return;
      }
    }
    // Modification 2 (when kCheckSuccessor is false): release with a single
    // swap.  If someone was queued, repair.
    QNode* old_tail = tail_.exchange(nullptr, std::memory_order_acq_rel);
    if (old_tail == &node) {
      return;
    }
    repairs_.fetch_add(1, std::memory_order_relaxed);
    // A successor exists but the lock word now reads free: anyone who swapped
    // themselves in believes they hold the lock (the usurper).  Restore the
    // tail and splice our waiters behind the usurper chain.
    QNode* usurper = tail_.exchange(old_tail, std::memory_order_acq_rel);
    typename Platform::Backoff backoff;
    while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
      backoff.Pause();
    }
    node.next.store(nullptr, std::memory_order_relaxed);  // re-initialize
    if (usurper != nullptr) {
      usurper->next.store(succ, std::memory_order_release);
    } else {
      succ->locked.store(false, std::memory_order_release);
    }
  }

  bool try_lock() {
    // A Distributed Lock acquires by unconditional swap; a true try_lock
    // needs CAS (available natively): grab only if free.
    QNode& node = *nodes_[Platform::ThreadId()];
    QNode* expected = nullptr;
    const bool taken = tail_.compare_exchange_strong(
        expected, &node, std::memory_order_acq_rel, std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      RecordGrant(hprof::LockSiteStats::NowTicks(), /*contended=*/false);
    }
    return taken;
  }

  // Number of contended releases that had to repair the queue.
  std::uint64_t repairs() const { return repairs_.load(std::memory_order_relaxed); }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

 private:
  struct QNode {
    typename Platform::template Atomic<QNode*> next{nullptr};
    typename Platform::template Atomic<bool> locked{true};
  };

  void RecordGrant(std::uint64_t wait_start, bool contended) {
    const std::uint64_t now = hprof::LockSiteStats::NowTicks();
    site_->RecordAcquire(Platform::ThreadId(), now - wait_start, contended);
    hold_start_ = now;
  }

  typename Platform::template Atomic<QNode*> tail_{nullptr};
  typename Platform::template Atomic<std::uint64_t> repairs_{0};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
  Padded<QNode> nodes_[Platform::kMaxThreads];
};

}  // namespace internal

template <class Platform = StdPlatform>
using BasicMcsH1Lock = internal::HurricaneMcsLock<Platform, true>;
template <class Platform = StdPlatform>
using BasicMcsH2Lock = internal::HurricaneMcsLock<Platform, false>;

using McsH1Lock = BasicMcsH1Lock<>;
using McsH2Lock = BasicMcsH2Lock<>;

}  // namespace hlock

#endif  // HLOCK_MCS_LOCKS_H_
