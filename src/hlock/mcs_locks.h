// Native Distributed (MCS queue) locks: the classic algorithm and the
// HURRICANE modifications H1 and H2, ported faithfully from Figure 3.
//
// HECTOR only has atomic swap, so the H-variants use the *swap-only* release:
// a release may store nil into the tail even though a successor exists, and
// must then repair the queue (the "usurper" protocol).  Modern hardware has
// compare-and-swap; `McsLock` (the classic form, explicit queue node, CAS
// release) is provided alongside so the swap-only overhead can be measured
// (see bench/ablation_mcs_mods).
//
//   - McsLock:   caller-provided QNode, CAS release (Mellor-Crummey & Scott).
//   - McsH1Lock: per-thread pre-initialized nodes (modification 1): the
//                uncontended acquire has no node-initialization store.
//   - McsH2Lock: H1 + release without the successor check (modification 2):
//                the uncontended release is a single swap; contended releases
//                always repair.
//
// All variants are FIFO-fair (up to usurpation windows in the swap-only
// release) and waiters spin on their own cache line.

#ifndef HLOCK_MCS_LOCKS_H_
#define HLOCK_MCS_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/backoff.h"
#include "src/hlock/padded.h"
#include "src/hlock/thread_id.h"

namespace hlock {

// Classic MCS lock with an explicit, caller-owned queue node and CAS release.
class McsLock {
 public:
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  void lock(QNode& node) {
    node.next.store(nullptr, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return;
    }
    node.locked.store(true, std::memory_order_relaxed);
    pred->next.store(&node, std::memory_order_release);
    Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
  }

  void unlock(QNode& node) {
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      Backoff backoff;
      while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Pause();
      }
    }
    succ->locked.store(false, std::memory_order_release);
  }

 private:
  std::atomic<QNode*> tail_{nullptr};
};

namespace internal {

// Shared implementation of the H1/H2 variants: per-thread pre-initialized
// nodes and the swap-only release.
template <bool kCheckSuccessor>
class HurricaneMcsLock {
 public:
  HurricaneMcsLock() {
    for (auto& node : nodes_) {
      node->next.store(nullptr, std::memory_order_relaxed);
      node->locked.store(true, std::memory_order_relaxed);  // rest state: ready to wait
    }
  }
  HurricaneMcsLock(const HurricaneMcsLock&) = delete;
  HurricaneMcsLock& operator=(const HurricaneMcsLock&) = delete;

  void lock() {
    QNode& node = *nodes_[CurrentThreadId()];
    // Modification 1: no initialization stores here; the rest-state invariant
    // (next == nullptr, locked == true) is maintained by the contended paths.
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return;
    }
    pred->next.store(&node, std::memory_order_release);
    Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
    node.locked.store(true, std::memory_order_relaxed);  // re-initialize
  }

  void unlock() {
    QNode& node = *nodes_[CurrentThreadId()];
    QNode* succ = nullptr;
    if constexpr (kCheckSuccessor) {
      succ = node.next.load(std::memory_order_acquire);
      if (succ != nullptr) {
        node.next.store(nullptr, std::memory_order_relaxed);  // re-initialize
        succ->locked.store(false, std::memory_order_release);
        return;
      }
    }
    // Modification 2 (when kCheckSuccessor is false): release with a single
    // swap.  If someone was queued, repair.
    QNode* old_tail = tail_.exchange(nullptr, std::memory_order_acq_rel);
    if (old_tail == &node) {
      return;
    }
    ++repairs_;
    // A successor exists but the lock word now reads free: anyone who swapped
    // themselves in believes they hold the lock (the usurper).  Restore the
    // tail and splice our waiters behind the usurper chain.
    QNode* usurper = tail_.exchange(old_tail, std::memory_order_acq_rel);
    Backoff backoff;
    while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
      backoff.Pause();
    }
    node.next.store(nullptr, std::memory_order_relaxed);  // re-initialize
    if (usurper != nullptr) {
      usurper->next.store(succ, std::memory_order_release);
    } else {
      succ->locked.store(false, std::memory_order_release);
    }
  }

  bool try_lock() {
    // A Distributed Lock acquires by unconditional swap; a true try_lock
    // needs CAS (available natively): grab only if free.
    QNode& node = *nodes_[CurrentThreadId()];
    QNode* expected = nullptr;
    return tail_.compare_exchange_strong(expected, &node, std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // Number of contended releases that had to repair the queue.
  std::uint64_t repairs() const { return repairs_.load(std::memory_order_relaxed); }

 private:
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> locked{true};
  };

  std::atomic<QNode*> tail_{nullptr};
  std::atomic<std::uint64_t> repairs_{0};
  Padded<QNode> nodes_[kMaxThreads];
};

}  // namespace internal

using McsH1Lock = internal::HurricaneMcsLock<true>;
using McsH2Lock = internal::HurricaneMcsLock<false>;

}  // namespace hlock

#endif  // HLOCK_MCS_LOCKS_H_
