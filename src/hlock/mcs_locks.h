// Native Distributed (MCS queue) locks: the classic algorithm and the
// HURRICANE modifications H1 and H2, ported faithfully from Figure 3.
//
// HECTOR only has atomic swap, so the H-variants use the *swap-only* release:
// a release may store nil into the tail even though a successor exists, and
// must then repair the queue (the "usurper" protocol).  Modern hardware has
// compare-and-swap; `McsLock` (the classic form, explicit queue node, CAS
// release) is provided alongside so the swap-only overhead can be measured
// (see bench/ablation_mcs_mods).
//
//   - McsLock:   caller-provided QNode, CAS release (Mellor-Crummey & Scott).
//   - McsH1Lock: per-thread pre-initialized nodes (modification 1): the
//                uncontended acquire has no node-initialization store.
//   - McsH2Lock: H1 + release without the successor check (modification 2):
//                the uncontended release is a single swap; contended releases
//                always repair.
//
// All variants are FIFO-fair (up to usurpation windows in the swap-only
// release) and waiters spin on their own cache line.
//
// Every lock is templated on the Platform policy (src/hlock/platform.h); the
// unsuffixed aliases bind StdPlatform and are the production types.  The
// hcheck model checker instantiates the same code with hcheck::Platform to
// schedule-check it (tests/hcheck/mcs_locks_hcheck_test.cc).

#ifndef HLOCK_MCS_LOCKS_H_
#define HLOCK_MCS_LOCKS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/algo/mcs.h"
#include "src/hlock/algo/native_backend.h"
#include "src/hlock/padded.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Classic MCS lock with an explicit, caller-owned queue node and CAS release.
// lock() is split into Enqueue/WaitForGrant so a checker (or instrumented
// caller) can observe the moment a thread takes its place in the queue —
// that is the instant that fixes its FIFO position.
template <class Platform = StdPlatform>
class BasicMcsLock {
 public:
  struct QNode {
    typename Platform::template Atomic<QNode*> next{nullptr};
    typename Platform::template Atomic<bool> locked{false};
  };

  // Swaps the node into the queue.  Returns true if the lock was acquired
  // immediately (no predecessor); otherwise the caller holds a queue position
  // and must call WaitForGrant() before entering the critical section.
  bool Enqueue(QNode& node) {
    node.next.store(nullptr, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return true;
    }
    node.locked.store(true, std::memory_order_relaxed);
    pred->next.store(&node, std::memory_order_release);
    return false;
  }

  void WaitForGrant(QNode& node) {
    typename Platform::Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
  }

  void lock(QNode& node) {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    const bool immediate = Enqueue(node);
    if (!immediate) {
      if (site_ != nullptr) {
        site_->EnterQueue();
      }
      WaitForGrant(node);
      if (site_ != nullptr) {
        site_->LeaveQueue();
      }
    }
    if (site_ != nullptr) {
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(Platform::ThreadId(), now - t0, !immediate);
      hold_start_ = now;
    }
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Only lock()/unlock() record -- callers driving the split
  // Enqueue/WaitForGrant protocol directly are not profiled.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

  void unlock(QNode& node) {
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      typename Platform::Backoff backoff;
      while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Pause();
      }
    }
    succ->locked.store(false, std::memory_order_release);
  }

 private:
  typename Platform::template Atomic<QNode*> tail_{nullptr};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

using McsLock = BasicMcsLock<>;

namespace internal {

// The H1/H2 variants: per-thread pre-initialized nodes and the swap-only
// release.  The algorithm body lives in src/hlock/algo/mcs.h, written once
// over the memory-backend concept; this adapter binds it to the native
// backend (raw atomics via StdPlatform, model-checked memory via
// hcheck::Platform) and runs the coroutine core eagerly to completion inside
// lock()/unlock().  The backend-visible operations -- and under hcheck the
// schedule points -- are the same, one for one, as the previous hand-written
// body.
template <class Platform, bool kCheckSuccessor>
class HurricaneMcsLock {
 public:
  HurricaneMcsLock()
      : core_(&backend_,
              kCheckSuccessor ? algo::McsVariant::kH1 : algo::McsVariant::kH2,
              /*home=*/0) {}
  HurricaneMcsLock(const HurricaneMcsLock&) = delete;
  HurricaneMcsLock& operator=(const HurricaneMcsLock&) = delete;

  void lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Acquire(ctx).Get();
  }

  void unlock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Release(ctx).Get();
  }

  bool try_lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryAcquire(ctx).Get();
  }

  // Number of contended releases that had to repair the queue.
  std::uint64_t repairs() const { return core_.repairs(); }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { core_.set_site(site); }

 private:
  using Backend = algo::NativeBackend<Platform>;
  Backend backend_;
  algo::McsCore<Backend> core_;
};

}  // namespace internal

template <class Platform = StdPlatform>
using BasicMcsH1Lock = internal::HurricaneMcsLock<Platform, true>;
template <class Platform = StdPlatform>
using BasicMcsH2Lock = internal::HurricaneMcsLock<Platform, false>;

using McsH1Lock = BasicMcsH1Lock<>;
using McsH2Lock = BasicMcsH2Lock<>;

}  // namespace hlock

#endif  // HLOCK_MCS_LOCKS_H_
