// Platform policy for the hlock primitives.
//
// Every lock in hlock is written against a small policy class supplying the
// atomics, blocking primitives, and thread identity it runs on.  `StdPlatform`
// (the default on every public alias) binds them to the real ones —
// std::atomic, std::mutex, hardware pause — and compiles to exactly the code
// the untemplated originals did.  The hcheck model checker provides a second
// policy (src/hcheck/platform.h) that substitutes its simulated weak-memory
// atomics and scheduler, so the same lock source can be exhaustively
// schedule-checked.
//
// Policy surface a Platform must provide:
//   kMaxThreads          max dense thread ids (bounds per-thread node arrays)
//   Atomic<T>            std::atomic-compatible template
//   Mutex / CondVar      BasicLockable + condition_variable(wait/notify)
//   PoolLock             small BasicLockable for node-pool protection
//   Backoff              spin-wait helper with Pause() and rounds()
//   ThreadId()           dense id of the calling thread, < kMaxThreads
//   Fence(memory_order)  std::atomic_thread_fence equivalent
//   Pause()              one cpu-relax hint
//   Check(cond, msg)     invariant check; must not return when cond is false

#ifndef HLOCK_PLATFORM_H_
#define HLOCK_PLATFORM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/hlock/backoff.h"
#include "src/hlock/bootstrap_locks.h"
#include "src/hlock/thread_id.h"

namespace hlock {

struct StdPlatform {
  static constexpr std::uint32_t kMaxThreads = hlock::kMaxThreads;

  template <typename T>
  using Atomic = std::atomic<T>;
  using Mutex = std::mutex;
  using CondVar = std::condition_variable;
  using PoolLock = TtasSpinLock;
  using Backoff = hlock::Backoff;

  static std::uint32_t ThreadId() { return CurrentThreadId(); }
  static void Fence(std::memory_order mo) { std::atomic_thread_fence(mo); }
  static void Pause() { CpuRelax(); }
  static void Check(bool cond, const char* msg) {
    if (!cond) {
      std::fprintf(stderr, "hlock: invariant violated: %s\n", msg);
      std::abort();
    }
  }
};

}  // namespace hlock

#endif  // HLOCK_PLATFORM_H_
