// Exponential backoff helper for native spin loops.
//
// On the 1-or-few-core machines this library may be tested on, a pure
// busy-wait starves the lock holder of its timeslice, so after a bounded
// number of pause rounds the backoff yields to the scheduler.  On a large
// multiprocessor the yield threshold is effectively never reached for
// uncontended locks.

#ifndef HLOCK_BACKOFF_H_
#define HLOCK_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hlock {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  // `min_spins`/`max_spins` bound the exponential pause count per round.  The
  // cap need not be a power-of-two multiple of the floor; the growth clamps
  // to it exactly (min=4, max=1000 spins 1000 at the cap, never 1024).
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024)
      : min_(std::min(min_spins, max_spins)), current_(min_), max_(max_spins) {}

  // One backoff round: pause `current_` times (doubling up to the max), then
  // yield if we have been spinning for a long time already.
  void Pause() {
    for (std::uint32_t i = 0; i < current_; ++i) {
      CpuRelax();
    }
    if (current_ < max_) {
      current_ = std::min(current_ * 2, max_);
    } else {
      // At the cap: let the holder run (essential on few-core hosts).
      std::this_thread::yield();
    }
    ++rounds_;
  }

  // Restores the floor for the next acquisition.  A Backoff held across
  // acquisitions would otherwise start every contention episode at the cap
  // and punish the common short-hold case with maximal latency.
  void Reset() { current_ = min_; }

  std::uint64_t rounds() const { return rounds_; }
  std::uint32_t spins() const { return current_; }

 private:
  std::uint32_t min_;
  std::uint32_t current_;
  std::uint32_t max_;
  std::uint64_t rounds_ = 0;
};

}  // namespace hlock

#endif  // HLOCK_BACKOFF_H_
