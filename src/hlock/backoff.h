// Exponential backoff helper for native spin loops.
//
// On the 1-or-few-core machines this library may be tested on, a pure
// busy-wait starves the lock holder of its timeslice, so after a bounded
// number of pause rounds the backoff yields to the scheduler.  On a large
// multiprocessor the yield threshold is effectively never reached for
// uncontended locks.

#ifndef HLOCK_BACKOFF_H_
#define HLOCK_BACKOFF_H_

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hlock {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  // `min_spins`/`max_spins` bound the exponential pause count per round.
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024)
      : current_(min_spins), max_(max_spins) {}

  // One backoff round: pause `current_` times (doubling up to the max), then
  // yield if we have been spinning for a long time already.
  void Pause() {
    for (std::uint32_t i = 0; i < current_; ++i) {
      CpuRelax();
    }
    if (current_ < max_) {
      current_ *= 2;
    } else {
      // At the cap: let the holder run (essential on few-core hosts).
      std::this_thread::yield();
    }
    ++rounds_;
  }

  std::uint64_t rounds() const { return rounds_; }

 private:
  std::uint32_t current_;
  std::uint32_t max_;
  std::uint64_t rounds_ = 0;
};

}  // namespace hlock

#endif  // HLOCK_BACKOFF_H_
