// Native NUMA-aware locks: CNA, HMCS-T, Fissile, and the distributed
// reader-writer lock.
//
// The algorithm bodies live in src/hlock/algo/{cna,hmcs,fissile,drwlock}.h,
// written
// once over the memory-backend concept; these adapters bind them to the
// native backend and run the coroutine cores eagerly to completion inside
// lock()/unlock(), exactly like the MCS adapters in mcs_locks.h.
//
// Native hardware gives no topology oracle, so the cluster map is a
// modelling knob: `procs_per_cluster` groups dense thread ids into clusters
// (1 = every thread its own cluster, which degrades CNA to plain MCS and
// HMCS-T to a two-level MCS).  The unsuffixed aliases bind StdPlatform; the
// hcheck model checker instantiates the same code with hcheck::Platform
// (tests/hcheck/numa_locks_hcheck_test.cc).

#ifndef HLOCK_NUMA_LOCKS_H_
#define HLOCK_NUMA_LOCKS_H_

#include <cstdint>

#include "src/hlock/algo/backend.h"
#include "src/hlock/algo/cna.h"
#include "src/hlock/algo/drwlock.h"
#include "src/hlock/algo/fissile.h"
#include "src/hlock/algo/hmcs.h"
#include "src/hlock/algo/native_backend.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// Compact NUMA-aware lock (Dice & Kogan): MCS acquire, cluster-preferring
// release with a starvation-bounded secondary queue of remote waiters.
template <class Platform = StdPlatform>
class BasicCnaLock {
 public:
  explicit BasicCnaLock(std::uint32_t procs_per_cluster = 1,
                        std::uint64_t max_streak = algo::CnaCore<
                            algo::NativeBackend<Platform>>::kDefaultMaxStreak)
      : backend_(procs_per_cluster), core_(&backend_, /*home=*/0, max_streak) {}
  BasicCnaLock(const BasicCnaLock&) = delete;
  BasicCnaLock& operator=(const BasicCnaLock&) = delete;

  void lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Acquire(ctx).Get();
  }
  void unlock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Release(ctx).Get();
  }
  bool try_lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryAcquire(ctx).Get();
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { core_.set_site(site); }

 private:
  using Backend = algo::NativeBackend<Platform>;
  Backend backend_;
  algo::CnaCore<Backend> core_;
};

// Hierarchical MCS with timeout (Chabbi, Fagan & Mellor-Crummey): one MCS
// level per cluster plus a global level; intra-cluster handoffs pass both.
template <class Platform = StdPlatform>
class BasicHmcsTLock {
 public:
  explicit BasicHmcsTLock(std::uint32_t procs_per_cluster = 1,
                          std::uint64_t threshold = algo::HmcsTCore<
                              algo::NativeBackend<Platform>>::kDefaultThreshold)
      : backend_(procs_per_cluster), core_(&backend_, /*home=*/0, threshold) {}
  BasicHmcsTLock(const BasicHmcsTLock&) = delete;
  BasicHmcsTLock& operator=(const BasicHmcsTLock&) = delete;

  void lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.AcquireBlocking(ctx).Get();
  }
  void unlock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Release(ctx).Get();
  }

  // Timed acquire: gives up after `budget` spin iterations (the native
  // backend's deadline unit).  Returns false without holding the lock or
  // leaving a queue node behind.
  bool try_lock_for(std::uint64_t budget) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    typename Backend::Deadline deadline = backend_.MakeDeadline(ctx, budget);
    return core_.Acquire(ctx, deadline).Get();
  }

  std::uint64_t abandoned_nodes_reclaimed() {
    std::uint64_t n = core_.global_level().abandoned_nodes_reclaimed();
    for (std::uint32_t c = 0; c < backend_.NumClusters(); ++c) {
      n += core_.local_level(c).abandoned_nodes_reclaimed();
    }
    return n;
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { core_.set_site(site); }

 private:
  using Backend = algo::NativeBackend<Platform>;
  Backend backend_;
  algo::HmcsTCore<Backend> core_;
};

// Fissile lock: TAS fast path over an MCS slow path; unfair but with the
// cheapest uncontended acquire/release pair of the family.
template <class Platform = StdPlatform>
class BasicFissileLock {
 public:
  explicit BasicFissileLock(std::uint32_t fast_attempts = algo::FissileCore<
                                algo::NativeBackend<Platform>>::kDefaultFastAttempts)
      : core_(&backend_, /*home=*/0, fast_attempts) {}
  BasicFissileLock(const BasicFissileLock&) = delete;
  BasicFissileLock& operator=(const BasicFissileLock&) = delete;

  void lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Acquire(ctx).Get();
  }
  void unlock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Release(ctx).Get();
  }
  bool try_lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryAcquire(ctx).Get();
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { core_.set_site(site); }

 private:
  using Backend = algo::NativeBackend<Platform>;
  Backend backend_;
  algo::FissileCore<Backend> core_;
};

// Distributed reader-writer lock: per-cluster padded reader counters (a
// reader entry/exit touches only its own cluster's line), writer flag +
// cluster sweep.  std::shared_mutex-shaped API plus try_upgrade()/downgrade()
// per the dgos rwspinlock shape.  `preference` picks who overtakes whom when
// readers and a writer collide (see algo::DrwPreference).
template <class Platform = StdPlatform>
class BasicDrwLock {
 public:
  explicit BasicDrwLock(std::uint32_t procs_per_cluster = 1,
                        algo::DrwPreference preference = algo::DrwPreference::kWriters)
      : backend_(procs_per_cluster), core_(&backend_, /*home=*/0, preference) {}
  BasicDrwLock(const BasicDrwLock&) = delete;
  BasicDrwLock& operator=(const BasicDrwLock&) = delete;

  void lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.AcquireExclusive(ctx).Get();
  }
  void unlock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.ReleaseExclusive(ctx).Get();
  }
  bool try_lock() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryAcquireExclusive(ctx).Get();
  }

  void lock_shared() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.AcquireShared(ctx).Get();
  }
  void unlock_shared() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.ReleaseShared(ctx).Get();
  }
  bool try_lock_shared() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryAcquireShared(ctx).Get();
  }

  // Upgrades a shared hold to exclusive.  On false the shared hold is
  // *retained* -- the caller must unlock_shared() and take lock() from
  // scratch (two winners would deadlock on each other's read count, so this
  // can only be a try).  On true the shared hold has been consumed.
  bool try_upgrade() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    return core_.TryUpgrade(ctx).Get();
  }

  // Downgrades an exclusive hold to shared with no writer-sneak window.
  void downgrade() {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    core_.Downgrade(ctx).Get();
  }

  // Attaches reader/writer profiling sites (null detaches); wait/hold
  // samples are host nanoseconds.  Not thread-safe against concurrent users.
  void set_sites(hprof::LockSiteStats* reader_site, hprof::LockSiteStats* writer_site) {
    core_.set_sites(reader_site, writer_site);
  }

 private:
  using Backend = algo::NativeBackend<Platform>;
  Backend backend_;
  algo::DrwLockCore<Backend> core_;
};

using CnaLock = BasicCnaLock<>;
using HmcsTLock = BasicHmcsTLock<>;
using FissileLock = BasicFissileLock<>;
using DrwLock = BasicDrwLock<>;

}  // namespace hlock

#endif  // HLOCK_NUMA_LOCKS_H_
