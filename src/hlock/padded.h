// Cache-line padding utilities.  Locks and per-processor queue nodes must not
// share cache lines: the paper's second-order effects have a cache-coherent
// analogue (line ping-pong), and padding is the standard defence.

#ifndef HLOCK_PADDED_H_
#define HLOCK_PADDED_H_

#include <cstddef>
#include <new>
#include <utility>

namespace hlock {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLineSize = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

// A T alone on its own cache line(s).
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value;

  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}
  Padded() = default;

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace hlock

#endif  // HLOCK_PADDED_H_
