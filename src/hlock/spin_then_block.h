// Spin-then-block lock (Section 5.3).
//
// For TORNADO the authors planned to "use either lock-free data structures or
// spin-then-block locks, depending on the situation".  This is the native
// spin-then-block: spin briefly (covering the short-critical-section common
// case where blocking costs more than the wait), then park on a futex-style
// wait until the holder wakes us.  Implemented portably with a mutex +
// condition variable slow path; the fast path is a single CAS.

#ifndef HLOCK_SPIN_THEN_BLOCK_H_
#define HLOCK_SPIN_THEN_BLOCK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/hlock/backoff.h"

namespace hlock {

class SpinThenBlockLock {
 public:
  explicit SpinThenBlockLock(std::uint32_t spin_rounds = 64) : spin_rounds_(spin_rounds) {}
  SpinThenBlockLock(const SpinThenBlockLock&) = delete;
  SpinThenBlockLock& operator=(const SpinThenBlockLock&) = delete;

  void lock() {
    // Phase 1: optimistic spin.
    for (std::uint32_t i = 0; i < spin_rounds_; ++i) {
      if (TryAcquire()) {
        return;
      }
      CpuRelax();
    }
    // Phase 2: block.  Announce ourselves so unlock() knows to signal.
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> guard(sleep_mutex_);
    while (!TryAcquire()) {
      wake_cv_.wait(guard);
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool try_lock() { return TryAcquire(); }

  void unlock() {
    locked_.store(false, std::memory_order_release);
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      // Take the sleep mutex so the wakeup cannot slip between a waiter's
      // failed TryAcquire and its wait().
      std::lock_guard<std::mutex> guard(sleep_mutex_);
      wake_cv_.notify_one();
    }
  }

  std::uint32_t spin_rounds() const { return spin_rounds_; }

 private:
  bool TryAcquire() {
    bool expected = false;
    return locked_.compare_exchange_strong(expected, true, std::memory_order_acquire,
                                           std::memory_order_relaxed);
  }

  std::atomic<bool> locked_{false};
  std::atomic<std::uint32_t> waiters_{0};
  std::uint32_t spin_rounds_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace hlock

#endif  // HLOCK_SPIN_THEN_BLOCK_H_
