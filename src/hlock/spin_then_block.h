// Spin-then-block lock (Section 5.3).
//
// For TORNADO the authors planned to "use either lock-free data structures or
// spin-then-block locks, depending on the situation".  This is the native
// spin-then-block: spin briefly (covering the short-critical-section common
// case where blocking costs more than the wait), then park on a futex-style
// wait until the holder wakes us.  Implemented portably with a mutex +
// condition variable slow path; the fast path is a single CAS.
//
// Memory ordering: the blocking handoff is a Dekker store/load pair —
//
//     waiter                         releaser
//     waiters_.fetch_add(1)          locked_.store(false)
//     <fence seq_cst>                <fence seq_cst>
//     TryAcquire() (reads locked_)   waiters_.load()  (reads waiters_)
//
// Without the seq_cst fences both sides can read the *old* value of the other
// side's variable (store buffers; allowed by acquire/release alone): the
// releaser sees waiters_ == 0 and skips the notify, while the waiter saw
// locked_ == true and parks — a lost wakeup that deadlocks the waiter.  The
// fences make the two orders inconsistent: at least one side sees the other's
// store.  If the releaser sees the waiter, it notifies (under sleep_mutex_, so
// the notify cannot slip between the waiter's failed TryAcquire and its
// wait()).  If the waiter sees the release, its TryAcquire under sleep_mutex_
// succeeds and it never parks.
//
// `kDekkerFix` exists so the checker tests (tests/hcheck/) can compile the
// pre-fix shape and demonstrate that hcheck finds the lost wakeup; production
// aliases always use the fixed form.

#ifndef HLOCK_SPIN_THEN_BLOCK_H_
#define HLOCK_SPIN_THEN_BLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/hlock/platform.h"

namespace hlock {

template <class Platform = StdPlatform, bool kDekkerFix = true>
class BasicSpinThenBlockLock {
 public:
  explicit BasicSpinThenBlockLock(std::uint32_t spin_rounds = 64)
      : spin_rounds_(spin_rounds) {}
  BasicSpinThenBlockLock(const BasicSpinThenBlockLock&) = delete;
  BasicSpinThenBlockLock& operator=(const BasicSpinThenBlockLock&) = delete;

  void lock() {
    // Phase 1: optimistic spin.
    for (std::uint32_t i = 0; i < spin_rounds_; ++i) {
      if (TryAcquire()) {
        return;
      }
      Platform::Pause();
    }
    // Phase 2: block.  Announce ourselves so unlock() knows to signal; the
    // announcement must be globally visible before the TryAcquire re-check
    // below (see the Dekker analysis in the header comment).
    waiters_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (kDekkerFix) {
      Platform::Fence(std::memory_order_seq_cst);
    }
    std::unique_lock<typename Platform::Mutex> guard(sleep_mutex_);
    while (!TryAcquire()) {
      wake_cv_.wait(guard);
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool try_lock() { return TryAcquire(); }

  void unlock() {
    locked_.store(false, std::memory_order_release);
    if constexpr (kDekkerFix) {
      Platform::Fence(std::memory_order_seq_cst);
    }
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      // Take the sleep mutex so the wakeup cannot slip between a waiter's
      // failed TryAcquire and its wait().
      std::lock_guard<typename Platform::Mutex> guard(sleep_mutex_);
      wake_cv_.notify_one();
    }
  }

  std::uint32_t spin_rounds() const { return spin_rounds_; }

 private:
  bool TryAcquire() {
    bool expected = false;
    return locked_.compare_exchange_strong(expected, true, std::memory_order_acquire,
                                           std::memory_order_relaxed);
  }

  typename Platform::template Atomic<bool> locked_{false};
  typename Platform::template Atomic<std::uint32_t> waiters_{0};
  std::uint32_t spin_rounds_;
  typename Platform::Mutex sleep_mutex_;
  typename Platform::CondVar wake_cv_;
};

using SpinThenBlockLock = BasicSpinThenBlockLock<>;

}  // namespace hlock

#endif  // HLOCK_SPIN_THEN_BLOCK_H_
