// The hybrid coarse-grain / fine-grain locked hash table of Figure 1b.
//
// One coarse-grained lock (a Distributed Lock by default) protects the whole
// table, but is held only long enough to search a chain and flip a reserve
// word on the target entry.  The reserve word is the fine-grained lock: it is
// set with plain stores under the coarse lock (no extra atomic read-modify-
// write), may be held across long operations, and is cleared by its exclusive
// holder with a single release store.  Waiters drop the coarse lock, spin on
// the reserve word with exponential backoff, then re-acquire the coarse lock
// and search again.
//
// The reserve word doubles as a reader-writer lock (Section 2.3): value 0 is
// free, kExclusive is exclusively reserved, anything else counts readers.
// Reader transitions happen under the coarse lock.
//
// Entries live in a type-stable pool (they are only ever reused as entries of
// this table), so a waiter spinning on a freed entry's reserve word reads a
// well-defined value -- the paper's footnote-2 requirement.
//
// TryAcquire* methods are the "no-spin" variants used by code running in
// interrupt/RPC-handler context, which must fail rather than wait
// (Section 2.3's optimistic deadlock-avoidance protocol).
//
// The reserve-word state machine itself (exclusive / reader-count encoding,
// the spin protocols) lives in src/hlock/algo/reserve.h, written once over
// the memory backend and shared with the simulator's kernel descriptors; this
// table binds it to the native backend and supplies the coarse lock, the
// entry pool, and the retry loops around it.

#ifndef HLOCK_HYBRID_TABLE_H_
#define HLOCK_HYBRID_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "src/hlock/algo/native_backend.h"
#include "src/hlock/algo/reserve.h"
#include "src/hlock/backoff.h"
#include "src/hlock/mcs_locks.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// `Platform` supplies the atomics, backoff, and invariant checks (see
// platform.h); model-checked instantiations pass hcheck::Platform together
// with an hcheck-flavoured CoarseLock.
template <typename K, typename V, typename CoarseLock = McsH2Lock, typename Hash = std::hash<K>,
          typename Platform = StdPlatform>
class HybridTable {
  using Backend = algo::NativeBackend<Platform>;
  using Reserve = algo::ReserveCore<Backend>;

 public:
  // Reserve-word encoding (see algo::ReserveCore): 0 = free, kExclusive =
  // exclusively reserved, any other value = that many readers.
  static constexpr std::uint64_t kExclusive = Reserve::kExclusive;

  // Cap (in backoff units) for the reserve-word spin loops.
  static constexpr std::uint64_t kMaxBackoff = 1024;

  explicit HybridTable(std::size_t num_buckets = 128) : buckets_(num_buckets, nullptr) {}
  HybridTable(const HybridTable&) = delete;
  HybridTable& operator=(const HybridTable&) = delete;

  // Exclusive ownership of one entry.  Movable; releases on destruction.
  // Each guard carries its own grant timestamp: many entries are reserved
  // concurrently, so hold timing cannot live in the (shared) profiling site.
  class ExclusiveGuard {
   public:
    ExclusiveGuard() = default;
    ExclusiveGuard(ExclusiveGuard&& other) noexcept
        : table_(std::exchange(other.table_, nullptr)),
          entry_(std::exchange(other.entry_, nullptr)),
          site_(std::exchange(other.site_, nullptr)),
          hold_start_(other.hold_start_) {}
    ExclusiveGuard& operator=(ExclusiveGuard&& other) noexcept {
      Release();
      table_ = std::exchange(other.table_, nullptr);
      entry_ = std::exchange(other.entry_, nullptr);
      site_ = std::exchange(other.site_, nullptr);
      hold_start_ = other.hold_start_;
      return *this;
    }
    ~ExclusiveGuard() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const K& key() const { return entry_->key; }
    V& value() { return entry_->value; }
    const V& value() const { return entry_->value; }

    // Releases the reservation early.
    void Release() {
      if (entry_ != nullptr) {
        if (site_ != nullptr) {
          site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
          site_ = nullptr;
        }
        // Exclusive clear needs no lock and no read-modify-write.
        typename Backend::Ctx ctx{Platform::ThreadId()};
        Reserve::ClearExclusive(table_->backend_, ctx, entry_->reserve).Get();
        entry_ = nullptr;
        table_ = nullptr;
      }
    }

   private:
    friend class HybridTable;
    ExclusiveGuard(HybridTable* table, typename HybridTable::Entry* entry)
        : table_(table), entry_(entry) {}
    HybridTable* table_ = nullptr;
    typename HybridTable::Entry* entry_ = nullptr;
    hprof::LockSiteStats* site_ = nullptr;
    std::uint64_t hold_start_ = 0;
  };

  // Shared (reader) hold of one entry.
  class SharedGuard {
   public:
    SharedGuard() = default;
    SharedGuard(SharedGuard&& other) noexcept
        : table_(std::exchange(other.table_, nullptr)),
          entry_(std::exchange(other.entry_, nullptr)) {}
    SharedGuard& operator=(SharedGuard&& other) noexcept {
      Release();
      table_ = std::exchange(other.table_, nullptr);
      entry_ = std::exchange(other.entry_, nullptr);
      return *this;
    }
    ~SharedGuard() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const K& key() const { return entry_->key; }
    const V& value() const { return entry_->value; }

    void Release() {
      if (entry_ != nullptr) {
        // Reader counts are shared state: update under the coarse lock.
        std::lock_guard<CoarseLock> guard(table_->lock_);
        typename Backend::Ctx ctx{Platform::ThreadId()};
        Reserve::RemoveReader(table_->backend_, ctx, entry_->reserve).Get();
        entry_ = nullptr;
        table_ = nullptr;
      }
    }

   private:
    friend class HybridTable;
    SharedGuard(HybridTable* table, typename HybridTable::Entry* entry)
        : table_(table), entry_(entry) {}
    HybridTable* table_ = nullptr;
    typename HybridTable::Entry* entry_ = nullptr;
  };

  // Exclusively reserves the entry for `key`, creating it (default V) if
  // absent.  Spins (coarse lock dropped) while the entry is reserved.
  ExclusiveGuard Acquire(const K& key) {
    const std::uint64_t t0 =
        reserve_site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    bool contended = false;
    typename Backend::Ctx ctx{Platform::ThreadId()};
    while (true) {
      Entry* wait_target = nullptr;
      {
        std::lock_guard<CoarseLock> guard(lock_);
        Entry* entry = FindLocked(key);
        if (entry == nullptr) {
          entry = InsertLocked(key);
        }
        if (Reserve::TrySetExclusive(backend_, ctx, entry->reserve).Get()) {
          return GrantExclusive(entry, t0, contended);
        }
        wait_target = entry;
      }
      // Reserved by someone else: spin outside the coarse lock, then retry
      // the search (the entry may have been erased and recycled meanwhile;
      // type-stable memory keeps the spin safe).
      if (reserve_site_ != nullptr && !contended) {
        reserve_site_->EnterQueue();
      }
      contended = true;
      Reserve::SpinUntilFree(backend_, ctx, wait_target->reserve, kMaxBackoff).Get();
    }
  }

  // No-spin exclusive reserve for handler context: returns an empty guard if
  // the entry is currently reserved.  Creates the entry if absent.
  ExclusiveGuard TryAcquire(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      entry = InsertLocked(key);
    }
    typename Backend::Ctx ctx{Platform::ThreadId()};
    if (!Reserve::TrySetExclusive(backend_, ctx, entry->reserve).Get()) {
      return ExclusiveGuard();
    }
    return GrantExclusive(entry, /*wait_start=*/0, /*contended=*/false);
  }

  // Shared (reader) reserve; spins while exclusively reserved.
  SharedGuard AcquireShared(const K& key) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    while (true) {
      Entry* wait_target = nullptr;
      {
        std::lock_guard<CoarseLock> guard(lock_);
        Entry* entry = FindLocked(key);
        if (entry == nullptr) {
          entry = InsertLocked(key);
        }
        if (Reserve::TryAddReader(backend_, ctx, entry->reserve).Get()) {
          return SharedGuard(this, entry);
        }
        wait_target = entry;
      }
      Reserve::SpinWhileExclusive(backend_, ctx, wait_target->reserve, kMaxBackoff).Get();
    }
  }

  // No-spin reader reserve: empty guard if exclusively reserved or absent.
  SharedGuard TryAcquireShared(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      return SharedGuard();
    }
    typename Backend::Ctx ctx{Platform::ThreadId()};
    if (!Reserve::TryAddReader(backend_, ctx, entry->reserve).Get()) {
      return SharedGuard();
    }
    return SharedGuard(this, entry);
  }

  // Looks up `key` and copies its value without reserving (the whole read
  // happens under the coarse lock -- fine for small V).
  std::optional<V> Peek(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      return std::nullopt;
    }
    return entry->value;
  }

  bool Contains(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    return FindLocked(key) != nullptr;
  }

  // Erases `key` if present and unreserved.  Returns false when absent or
  // reserved (handler semantics: the caller backs off and retries).
  bool Erase(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    Entry** link = &buckets_[bucket];
    while (*link != nullptr) {
      Entry* entry = *link;
      if (entry->key == key) {
        // Acquire: the recycled entry will be rewritten, which must not race
        // with the last holder's writes.
        typename Backend::Ctx ctx{Platform::ThreadId()};
        if (Reserve::Read(backend_, ctx, entry->reserve).Get() != Reserve::kFree) {
          return false;
        }
        *link = entry->next;
        entry->next = free_list_;
        free_list_ = entry;
        --size_;
        return true;
      }
      link = &entry->next;
    }
    return false;
  }

  std::size_t size() {
    std::lock_guard<CoarseLock> guard(lock_);
    return size_;
  }

  CoarseLock& coarse_lock() { return lock_; }

  // Attaches one profiling site covering every *exclusive* reservation in the
  // table (the fine-grained side of the hybrid scheme; wait/hold samples are
  // host nanoseconds).  Shared (reader) holds are not recorded -- they are
  // plain counter bumps with no meaningful wait or exclusivity.  The coarse
  // lock can be profiled separately via coarse_lock().set_site(...).
  void set_reserve_site(hprof::LockSiteStats* site) { reserve_site_ = site; }

 private:
  struct Entry {
    K key{};
    V value{};
    typename Backend::Word reserve;  // zero-initialized = free
    Entry* next = nullptr;
  };

  // Builds a granted guard, recording the acquisition when profiled.
  // `wait_start` == 0 means "no wait was timed" (TryAcquire's instant grab).
  ExclusiveGuard GrantExclusive(Entry* entry, std::uint64_t wait_start, bool contended) {
    ExclusiveGuard guard(this, entry);
    if (reserve_site_ != nullptr) {
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      if (contended) {
        reserve_site_->LeaveQueue();
      }
      reserve_site_->RecordAcquire(Platform::ThreadId(),
                                   wait_start != 0 ? now - wait_start : 0, contended);
      guard.site_ = reserve_site_;
      guard.hold_start_ = now;
    }
    return guard;
  }

  Entry* FindLocked(const K& key) {
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    for (Entry* entry = buckets_[bucket]; entry != nullptr; entry = entry->next) {
      if (entry->key == key) {
        return entry;
      }
    }
    return nullptr;
  }

  Entry* InsertLocked(const K& key) {
    Entry* entry;
    if (free_list_ != nullptr) {
      entry = free_list_;
      free_list_ = entry->next;
      entry->value = V{};
    } else {
      pool_.emplace_back();
      entry = &pool_.back();
    }
    entry->key = key;
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    entry->next = buckets_[bucket];
    buckets_[bucket] = entry;
    ++size_;
    return entry;
  }

  CoarseLock lock_;
  Backend backend_;
  hprof::LockSiteStats* reserve_site_ = nullptr;
  std::vector<Entry*> buckets_;
  std::deque<Entry> pool_;  // type-stable entry storage
  Entry* free_list_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hlock

#endif  // HLOCK_HYBRID_TABLE_H_
