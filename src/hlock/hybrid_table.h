// The hybrid coarse-grain / fine-grain locked hash table of Figure 1b, with a
// distributed read path.
//
// One coarse-grained lock (a Distributed Lock by default) protects chain
// *mutation* and exclusive reservations, but is held only long enough to
// search a chain and flip a reserve word on the target entry.  The reserve
// word is the fine-grained lock: it may be held across long operations and is
// cleared by its exclusive holder with a single release store.  Waiters drop
// the coarse lock, spin on the reserve word with exponential backoff (the
// doubling delay persists across retries of one logical acquire -- see
// ReserveCore::Backoff), then re-acquire the coarse lock and search again.
//
// The reserve word doubles as a reader-writer lock (Section 2.3): value 0 is
// free, kExclusive is exclusively reserved, anything else counts readers.
// Reserve transitions here use the atomic (CAS) family of ReserveCore ops:
// the read path below lets readers enter and leave without the coarse lock,
// so every transition that can race one must be a real read-modify-write.
// (The plain-store family remains exactly as the paper wrote it for the
// simulated kernel, which keeps Figure 4's instruction counts.)
//
// The read path (ReadPath::kDistributed, the default) replaces "take the
// coarse lock to walk a chain" with a table-level distributed RW lock
// (algo::DrwLockCore): a reader bumps its own cluster's padded counter and
// checks the writer flag -- two operations on mostly-local memory -- walks
// the chain, and leaves with a local decrement.  Chain *mutators* (insert,
// erase) keep the coarse lock for writer/writer ordering and additionally
// raise the drw writer flag and sweep the cluster counters to exclude
// readers (WriterArrive/WriterDepart: the coarse lock doubles as the drw
// writer mutex).  Reserving an *existing* entry -- the common exclusive
// acquire -- mutates no chain and therefore never sweeps.
// ReadPath::kCoarse preserves the pre-distributed behaviour (every reader
// funnels through the coarse lock); the read-heavy benches race the two.
//
// Entries live in a type-stable pool (they are only ever reused as entries of
// this table), so a waiter spinning on a freed entry's reserve word reads a
// well-defined value -- the paper's footnote-2 requirement.
//
// TryAcquire* methods are the "no-spin" variants used by code running in
// interrupt/RPC-handler context, which must fail rather than wait
// (Section 2.3's optimistic deadlock-avoidance protocol).  On the
// distributed path TryAcquireShared uses the drw *try* entry, so a sweeping
// writer fails the handler instead of blocking it.

#ifndef HLOCK_HYBRID_TABLE_H_
#define HLOCK_HYBRID_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "src/hlock/algo/drwlock.h"
#include "src/hlock/algo/native_backend.h"
#include "src/hlock/algo/reserve.h"
#include "src/hlock/backoff.h"
#include "src/hlock/mcs_locks.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// How readers reach a chain: through the coarse lock (the paper's Figure 1b
// as previously implemented) or through the table-level distributed RW lock.
enum class ReadPath : std::uint8_t {
  kCoarse,
  kDistributed,
};

// `Platform` supplies the atomics, backoff, and invariant checks (see
// platform.h); model-checked instantiations pass hcheck::Platform together
// with an hcheck-flavoured CoarseLock.
template <typename K, typename V, typename CoarseLock = McsH2Lock, typename Hash = std::hash<K>,
          typename Platform = StdPlatform>
class HybridTable {
  using Backend = algo::NativeBackend<Platform>;
  using Reserve = algo::ReserveCore<Backend>;
  using Drw = algo::DrwLockCore<Backend>;

 public:
  // Reserve-word encoding (see algo::ReserveCore): 0 = free, kExclusive =
  // exclusively reserved, any other value = that many readers.
  static constexpr std::uint64_t kExclusive = Reserve::kExclusive;

  // Cap (in backoff units) for the reserve-word spin loops.
  static constexpr std::uint64_t kMaxBackoff = 1024;

  // `procs_per_cluster` maps dense thread ids onto clusters for the
  // distributed read path's per-cluster counters and for hprof attribution
  // (1 = every thread its own cluster, the conservative default).
  explicit HybridTable(std::size_t num_buckets = 128, std::uint32_t procs_per_cluster = 1,
                       ReadPath read_path = ReadPath::kDistributed)
      : backend_(procs_per_cluster),
        chain_drw_(&backend_),
        read_path_(read_path),
        buckets_(num_buckets, nullptr) {}
  HybridTable(const HybridTable&) = delete;
  HybridTable& operator=(const HybridTable&) = delete;

  // Exclusive ownership of one entry.  Movable; releases on destruction.
  // Each guard carries its own grant timestamp: many entries are reserved
  // concurrently, so hold timing cannot live in the (shared) profiling site.
  class ExclusiveGuard {
   public:
    ExclusiveGuard() = default;
    ExclusiveGuard(ExclusiveGuard&& other) noexcept
        : table_(std::exchange(other.table_, nullptr)),
          entry_(std::exchange(other.entry_, nullptr)),
          site_(std::exchange(other.site_, nullptr)),
          hold_start_(other.hold_start_) {}
    ExclusiveGuard& operator=(ExclusiveGuard&& other) noexcept {
      Release();
      table_ = std::exchange(other.table_, nullptr);
      entry_ = std::exchange(other.entry_, nullptr);
      site_ = std::exchange(other.site_, nullptr);
      hold_start_ = other.hold_start_;
      return *this;
    }
    ~ExclusiveGuard() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const K& key() const { return entry_->key; }
    V& value() { return entry_->value; }
    const V& value() const { return entry_->value; }

    // Releases the reservation early.
    void Release() {
      if (entry_ != nullptr) {
        if (site_ != nullptr) {
          site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
          site_ = nullptr;
        }
        // Exclusive clear needs no lock and no read-modify-write.
        typename Backend::Ctx ctx{Platform::ThreadId()};
        Reserve::ClearExclusive(table_->backend_, ctx, entry_->reserve).Get();
        entry_ = nullptr;
        table_ = nullptr;
      }
    }

   private:
    friend class HybridTable;
    ExclusiveGuard(HybridTable* table, typename HybridTable::Entry* entry)
        : table_(table), entry_(entry) {}
    HybridTable* table_ = nullptr;
    typename HybridTable::Entry* entry_ = nullptr;
    hprof::LockSiteStats* site_ = nullptr;
    std::uint64_t hold_start_ = 0;
  };

  // Shared (reader) hold of one entry.
  class SharedGuard {
   public:
    SharedGuard() = default;
    SharedGuard(SharedGuard&& other) noexcept
        : table_(std::exchange(other.table_, nullptr)),
          entry_(std::exchange(other.entry_, nullptr)) {}
    SharedGuard& operator=(SharedGuard&& other) noexcept {
      Release();
      table_ = std::exchange(other.table_, nullptr);
      entry_ = std::exchange(other.entry_, nullptr);
      return *this;
    }
    ~SharedGuard() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const K& key() const { return entry_->key; }
    const V& value() const { return entry_->value; }

    void Release() {
      if (entry_ != nullptr) {
        // Lock-free reader exit: a CAS decrement on the reserve word.  (The
        // pre-fix code re-acquired the coarse chain lock here just to run a
        // plain decrement, serializing read-mostly traffic on *release*.)
        typename Backend::Ctx ctx{Platform::ThreadId()};
        if (table_->racy_reader_exit_) {
          // BUG (deliberate, test-only): the pre-fix plain load+store
          // decrement *without* the coarse lock that used to make it safe --
          // two concurrent exits lose an update.  The hcheck regression test
          // must tell this variant from the CAS one above.
          Reserve::RemoveReader(table_->backend_, ctx, entry_->reserve).Get();
        } else {
          Reserve::RemoveReaderAtomic(table_->backend_, ctx, entry_->reserve).Get();
        }
        entry_ = nullptr;
        table_ = nullptr;
      }
    }

   private:
    friend class HybridTable;
    SharedGuard(HybridTable* table, typename HybridTable::Entry* entry)
        : table_(table), entry_(entry) {}
    HybridTable* table_ = nullptr;
    typename HybridTable::Entry* entry_ = nullptr;
  };

  // Exclusively reserves the entry for `key`, creating it (default V) if
  // absent.  Spins (coarse lock dropped) while the entry is reserved.
  ExclusiveGuard Acquire(const K& key) {
    const std::uint64_t t0 =
        reserve_site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    bool contended = false;
    typename Backend::Ctx ctx{Platform::ThreadId()};
    typename Reserve::Backoff bo;  // one logical acquire, one doubling delay
    while (true) {
      Entry* wait_target = nullptr;
      {
        std::lock_guard<CoarseLock> guard(lock_);
        Entry* entry = FindLocked(key);
        if (entry == nullptr) {
          entry = InsertGuarded(ctx, key);
        }
        if (Reserve::TrySetExclusiveAtomic(backend_, ctx, entry->reserve).Get()) {
          return GrantExclusive(entry, t0, contended);
        }
        wait_target = entry;
      }
      // Reserved by someone else: spin outside the coarse lock, then retry
      // the search (the entry may have been erased and recycled meanwhile;
      // type-stable memory keeps the spin safe).
      if (reserve_site_ != nullptr && !contended) {
        reserve_site_->EnterQueue(backend_.ClusterOfCtx(backend_.CtxId(ctx)));
      }
      contended = true;
      Reserve::SpinUntilFree(backend_, ctx, wait_target->reserve, kMaxBackoff, bo).Get();
    }
  }

  // No-spin exclusive reserve for handler context: returns an empty guard if
  // the entry is currently reserved.  Creates the entry if absent.
  ExclusiveGuard TryAcquire(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    typename Backend::Ctx ctx{Platform::ThreadId()};
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      entry = InsertGuarded(ctx, key);
    }
    if (!Reserve::TrySetExclusiveAtomic(backend_, ctx, entry->reserve).Get()) {
      return ExclusiveGuard();
    }
    return GrantExclusive(entry, /*wait_start=*/0, /*contended=*/false);
  }

  // Shared (reader) reserve; spins while exclusively reserved.
  SharedGuard AcquireShared(const K& key) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    typename Reserve::Backoff bo;
    while (true) {
      Entry* wait_target = nullptr;
      if (read_path_ == ReadPath::kDistributed) {
        chain_drw_.AcquireShared(ctx).Get();
        Entry* entry = FindLocked(key);
        if (entry != nullptr &&
            Reserve::TryAddReaderAtomic(backend_, ctx, entry->reserve).Get()) {
          chain_drw_.ReleaseShared(ctx).Get();
          return SharedGuard(this, entry);
        }
        wait_target = entry;
        chain_drw_.ReleaseShared(ctx).Get();
        if (wait_target == nullptr) {
          // Absent: create it under the write path, then race for it again.
          std::lock_guard<CoarseLock> guard(lock_);
          if (FindLocked(key) == nullptr) {
            InsertGuarded(ctx, key);
          }
          continue;
        }
      } else {
        std::lock_guard<CoarseLock> guard(lock_);
        Entry* entry = FindLocked(key);
        if (entry == nullptr) {
          entry = InsertGuarded(ctx, key);
        }
        if (Reserve::TryAddReaderAtomic(backend_, ctx, entry->reserve).Get()) {
          return SharedGuard(this, entry);
        }
        wait_target = entry;
      }
      Reserve::SpinWhileExclusive(backend_, ctx, wait_target->reserve, kMaxBackoff, bo).Get();
    }
  }

  // No-spin reader reserve: empty guard if exclusively reserved or absent.
  // Distributed path: also fails (rather than waits) while a chain writer is
  // sweeping -- handler semantics all the way down.
  SharedGuard TryAcquireShared(const K& key) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    if (read_path_ == ReadPath::kDistributed) {
      if (!chain_drw_.TryAcquireShared(ctx).Get()) {
        return SharedGuard();
      }
      Entry* entry = FindLocked(key);
      SharedGuard out;
      if (entry != nullptr &&
          Reserve::TryAddReaderAtomic(backend_, ctx, entry->reserve).Get()) {
        out = SharedGuard(this, entry);
      }
      chain_drw_.ReleaseShared(ctx).Get();
      return out;
    }
    std::lock_guard<CoarseLock> guard(lock_);
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      return SharedGuard();
    }
    if (!Reserve::TryAddReaderAtomic(backend_, ctx, entry->reserve).Get()) {
      return SharedGuard();
    }
    return SharedGuard(this, entry);
  }

  // Looks up `key` and copies its value without reserving.  On the
  // distributed path this is the reader fast path: a cluster-local counter
  // bump, a flag check, the chain walk, a local decrement -- no shared lock
  // word is written.  (As before, the unreserved copy can observe a
  // concurrent exclusive holder's in-place update of V; callers that need a
  // stable read take AcquireShared.)
  std::optional<V> Peek(const K& key) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    if (read_path_ == ReadPath::kDistributed) {
      chain_drw_.AcquireShared(ctx).Get();
      Entry* entry = FindLocked(key);
      std::optional<V> out;
      if (entry != nullptr) {
        out = entry->value;
      }
      chain_drw_.ReleaseShared(ctx).Get();
      return out;
    }
    std::lock_guard<CoarseLock> guard(lock_);
    Entry* entry = FindLocked(key);
    if (entry == nullptr) {
      return std::nullopt;
    }
    return entry->value;
  }

  bool Contains(const K& key) {
    typename Backend::Ctx ctx{Platform::ThreadId()};
    if (read_path_ == ReadPath::kDistributed) {
      chain_drw_.AcquireShared(ctx).Get();
      const bool found = FindLocked(key) != nullptr;
      chain_drw_.ReleaseShared(ctx).Get();
      return found;
    }
    std::lock_guard<CoarseLock> guard(lock_);
    return FindLocked(key) != nullptr;
  }

  // Erases `key` if present and unreserved.  Returns false when absent or
  // reserved (handler semantics: the caller backs off and retries).
  bool Erase(const K& key) {
    std::lock_guard<CoarseLock> guard(lock_);
    typename Backend::Ctx ctx{Platform::ThreadId()};
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    Entry** link = &buckets_[bucket];
    while (*link != nullptr) {
      Entry* entry = *link;
      if (entry->key == key) {
        // Sweep readers out *before* the reserve check: a chain reader still
        // walking could otherwise add a reader hold between our check and
        // the unlink, leaving it holding a recycled entry.
        if (read_path_ == ReadPath::kDistributed) {
          chain_drw_.WriterArrive(ctx).Get();
        }
        // Acquire: the recycled entry will be rewritten, which must not race
        // with the last holder's writes.
        const bool reserved =
            Reserve::Read(backend_, ctx, entry->reserve).Get() != Reserve::kFree;
        if (!reserved) {
          *link = entry->next;
          entry->next = free_list_;
          free_list_ = entry;
          --size_;
        }
        if (read_path_ == ReadPath::kDistributed) {
          chain_drw_.WriterDepart(ctx).Get();
        }
        return !reserved;
      }
      link = &entry->next;
    }
    return false;
  }

  std::size_t size() {
    std::lock_guard<CoarseLock> guard(lock_);
    return size_;
  }

  CoarseLock& coarse_lock() { return lock_; }
  ReadPath read_path() const { return read_path_; }

  // Attaches one profiling site covering every *exclusive* reservation in the
  // table (the fine-grained side of the hybrid scheme; wait/hold samples are
  // host nanoseconds).  Shared (reader) reserve holds are not recorded --
  // they are plain counter bumps with no meaningful wait or exclusivity.
  // The coarse lock can be profiled separately via coarse_lock().set_site().
  void set_reserve_site(hprof::LockSiteStats* site) { reserve_site_ = site; }

  // Attaches reader/writer sites to the table-level distributed RW lock
  // (reader holds = chain walks; writer holds = chain-mutation sweeps), with
  // per-cluster enqueue attribution.  Null detaches.
  void set_chain_sites(hprof::LockSiteStats* reader_site, hprof::LockSiteStats* writer_site) {
    chain_drw_.set_sites(reader_site, writer_site);
  }

  // Test-only: reverts the reader exit to a plain (non-CAS) decrement while
  // keeping it outside the coarse lock -- the lost-update bug the hcheck
  // regression suite must catch.  Never call outside tests.
  void set_racy_reader_exit_for_test(bool racy) { racy_reader_exit_ = racy; }

 private:
  struct Entry {
    K key{};
    V value{};
    typename Backend::Word reserve;  // zero-initialized = free
    Entry* next = nullptr;
  };

  // Builds a granted guard, recording the acquisition when profiled.
  // `wait_start` == 0 means "no wait was timed" (TryAcquire's instant grab).
  ExclusiveGuard GrantExclusive(Entry* entry, std::uint64_t wait_start, bool contended) {
    ExclusiveGuard guard(this, entry);
    if (reserve_site_ != nullptr) {
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      if (contended) {
        reserve_site_->LeaveQueue();
      }
      const std::uint32_t id = Platform::ThreadId();
      reserve_site_->RecordAcquire(id, wait_start != 0 ? now - wait_start : 0, contended,
                                   backend_.ClusterOfCtx(id));
      guard.site_ = reserve_site_;
      guard.hold_start_ = now;
    }
    return guard;
  }

  Entry* FindLocked(const K& key) {
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    for (Entry* entry = buckets_[bucket]; entry != nullptr; entry = entry->next) {
      if (entry->key == key) {
        return entry;
      }
    }
    return nullptr;
  }

  // Inserts under the coarse lock (which the caller holds); on the
  // distributed path the insertion is additionally fenced by the drw writer
  // flag+sweep so no reader walks the chain mid-splice.  The coarse lock
  // *is* the drw writer mutex -- WriterArrive/WriterDepart rely on it.
  Entry* InsertGuarded(typename Backend::Ctx& ctx, const K& key) {
    if (read_path_ != ReadPath::kDistributed) {
      return InsertLocked(key);
    }
    chain_drw_.WriterArrive(ctx).Get();
    Entry* entry = InsertLocked(key);
    chain_drw_.WriterDepart(ctx).Get();
    return entry;
  }

  Entry* InsertLocked(const K& key) {
    Entry* entry;
    if (free_list_ != nullptr) {
      entry = free_list_;
      free_list_ = entry->next;
      entry->value = V{};
    } else {
      pool_.emplace_back();
      entry = &pool_.back();
    }
    entry->key = key;
    const std::size_t bucket = Hash{}(key) % buckets_.size();
    entry->next = buckets_[bucket];
    buckets_[bucket] = entry;
    ++size_;
    return entry;
  }

  CoarseLock lock_;
  Backend backend_;
  Drw chain_drw_;  // table-level distributed RW lock over the chains
  ReadPath read_path_;
  bool racy_reader_exit_ = false;  // test-only bug knob (see setter)
  hprof::LockSiteStats* reserve_site_ = nullptr;
  std::vector<Entry*> buckets_;
  std::deque<Entry> pool_;  // type-stable entry storage
  Entry* free_list_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hlock

#endif  // HLOCK_HYBRID_TABLE_H_
