// Dense thread identifiers.
//
// The paper's Distributed Locks pre-allocate one queue node per processor per
// lock.  The native analogue indexes per-lock node arrays with a small dense
// id assigned to each thread on first use.

#ifndef HLOCK_THREAD_ID_H_
#define HLOCK_THREAD_ID_H_

#include <atomic>
#include <cstdint>

namespace hlock {

// The maximum number of distinct threads that may ever touch the per-thread
// lock structures in one process.  Generous: ids are never recycled.
inline constexpr std::uint32_t kMaxThreads = 256;

inline std::uint32_t CurrentThreadId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kMaxThreads;
}

}  // namespace hlock

#endif  // HLOCK_THREAD_ID_H_
