// Dense thread identifiers.
//
// The paper's Distributed Locks pre-allocate one queue node per processor per
// lock.  The native analogue indexes per-lock node arrays with a small dense
// id assigned to each thread on first use.
//
// Ids are recycled: a thread releases its id back to a free list when it
// exits, so processes that churn through short-lived threads (thread pools,
// benchmark harnesses) stay within the bound.  The bound is on *concurrently
// live* threads that have touched a lock; exceeding it aborts the process
// with a diagnostic.  The previous behavior — silently wrapping the id with
// `% kMaxThreads` — handed two live threads the same per-lock queue node,
// which corrupts any MCS-style queue they both enqueue on.
//
// Recycling is safe because a thread cannot exit while it holds or waits on
// a lock, and every hlock primitive restores its per-thread node to the rest
// state before returning, so an id is only ever reused with its nodes
// quiescent.

#ifndef HLOCK_THREAD_ID_H_
#define HLOCK_THREAD_ID_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace hlock {

// The maximum number of threads that may concurrently hold a dense id, i.e.
// be live after having touched any per-thread lock structure.
inline constexpr std::uint32_t kMaxThreads = 256;

namespace internal {

class ThreadIdSlot {
 public:
  ThreadIdSlot() {
    std::lock_guard<std::mutex> guard(Mu());
    std::vector<std::uint32_t>& freed = FreeIds();
    if (!freed.empty()) {
      id_ = freed.back();
      freed.pop_back();
      return;
    }
    id_ = NextId()++;
    if (id_ >= kMaxThreads) {
      std::fprintf(stderr,
                   "hlock: more than %u concurrently live threads are using "
                   "per-thread lock structures; raise hlock::kMaxThreads or "
                   "reduce thread concurrency (ids are recycled only when a "
                   "thread exits)\n",
                   kMaxThreads);
      std::abort();
    }
  }

  ~ThreadIdSlot() {
    std::lock_guard<std::mutex> guard(Mu());
    FreeIds().push_back(id_);
  }

  ThreadIdSlot(const ThreadIdSlot&) = delete;
  ThreadIdSlot& operator=(const ThreadIdSlot&) = delete;

  std::uint32_t id() const { return id_; }

 private:
  // Intentionally leaked: thread_local destructors of late-exiting threads
  // run during shutdown and must not touch destroyed statics.
  static std::mutex& Mu() {
    static std::mutex* mu = new std::mutex;
    return *mu;
  }
  static std::vector<std::uint32_t>& FreeIds() {
    static std::vector<std::uint32_t>* freed = new std::vector<std::uint32_t>;
    return *freed;
  }
  static std::uint32_t& NextId() {
    static std::uint32_t next = 0;
    return next;
  }

  std::uint32_t id_;
};

}  // namespace internal

inline std::uint32_t CurrentThreadId() {
  thread_local const internal::ThreadIdSlot slot;
  return slot.id();
}

}  // namespace hlock

#endif  // HLOCK_THREAD_ID_H_
