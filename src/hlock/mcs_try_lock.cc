#include "src/hlock/mcs_try_lock.h"

namespace hlock {

// The production instantiations.  Other translation units see the extern
// template declarations in the header and link against these.
template class BasicMcsTryV1Lock<StdPlatform>;
template class BasicMcsTryV2Lock<StdPlatform>;

}  // namespace hlock
