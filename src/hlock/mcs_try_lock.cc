#include "src/hlock/mcs_try_lock.h"

#include <mutex>

namespace hlock {

McsTryV2Lock::~McsTryV2Lock() {
  Node* node = all_nodes_;
  while (node != nullptr) {
    Node* next = node->pool_next;
    delete node;
    node = next;
  }
}

McsTryV2Lock::Node* McsTryV2Lock::AllocNode() {
  {
    std::lock_guard<TtasSpinLock> guard(pool_lock_);
    if (free_list_ != nullptr) {
      Node* node = free_list_;
      free_list_ = node->pool_next;
      node->next.store(nullptr, std::memory_order_relaxed);
      node->state.store(kWaiting, std::memory_order_relaxed);
      node->pool_next = nullptr;
      return node;
    }
  }
  Node* node = new Node;
  std::lock_guard<TtasSpinLock> guard(pool_lock_);
  node->pool_next = all_nodes_;
  all_nodes_ = node;
  return node;
}

void McsTryV2Lock::FreeNode(Node* node) {
  // Note: `all_nodes_` tracking uses pool_next only at allocation time; from
  // here on pool_next threads the free list.  Nodes are type-stable: they are
  // only ever reused as queue nodes of this lock.
  std::lock_guard<TtasSpinLock> guard(pool_lock_);
  node->pool_next = free_list_;
  free_list_ = node;
}

McsTryV2Lock::Node* McsTryV2Lock::Enqueue(bool* immediate) {
  Node* node = AllocNode();
  Node* pred = tail_.exchange(node, std::memory_order_acq_rel);
  if (pred == nullptr) {
    node->state.store(kGranted, std::memory_order_relaxed);
    *immediate = true;
  } else {
    pred->next.store(node, std::memory_order_release);
    *immediate = false;
  }
  return node;
}

void McsTryV2Lock::lock() {
  bool immediate = false;
  Node* node = Enqueue(&immediate);
  if (!immediate) {
    Backoff backoff;
    while (node->state.load(std::memory_order_acquire) != kGranted) {
      backoff.Pause();
    }
  }
  *holders_[CurrentThreadId()] = node;
}

bool McsTryV2Lock::try_lock() {
  bool immediate = false;
  Node* node = Enqueue(&immediate);
  if (immediate) {
    *holders_[CurrentThreadId()] = node;
    return true;
  }
  // Try to abandon.  If the predecessor granted us the lock in the window,
  // the CAS fails and we own the lock after all.
  std::uint32_t expected = kWaiting;
  if (node->state.compare_exchange_strong(expected, kAbandoned, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    // The node stays in the queue; a release will reclaim it.
    return false;
  }
  *holders_[CurrentThreadId()] = node;
  return true;
}

void McsTryV2Lock::unlock() {
  Node*& slot = *holders_[CurrentThreadId()];
  Node* node = slot;
  slot = nullptr;
  while (true) {
    Node* succ = node->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        FreeNode(node);
        return;
      }
      Backoff backoff;
      while ((succ = node->next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Pause();
      }
    }
    // Either grant the successor the lock, or -- if it abandoned its attempt
    // -- reclaim its node and keep walking the queue.
    std::uint32_t expected = kWaiting;
    if (succ->state.compare_exchange_strong(expected, kGranted, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      FreeNode(node);
      return;
    }
    FreeNode(node);
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
    node = succ;  // abandoned: we own it now; continue with its successor
  }
}

}  // namespace hlock
