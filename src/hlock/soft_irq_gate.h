// Software interrupt masking with a deferred-work queue (Section 3.2,
// adapted from Stodolsky et al.).
//
// HURRICANE's resolution to the TryLock problem: instead of letting RPC
// interrupt handlers gamble on TryLock, each processor keeps a flag that is
// set before acquiring any lock an interrupt handler might need.  A handler
// finding the flag set enqueues its work on a per-processor queue; the work
// runs when the flag clears.  The flag and queue are strictly local in the
// paper; here the owner thread manipulates the gate while any thread may post
// work (the cross-processor RPC analogue), so the queue is a Vyukov-style
// intrusive MPSC list.
//
// Because deferred work is executed in arrival order when the gate opens,
// access to the processor is fair -- the property retry-based TryLock lacks.
//
// Templated on the Platform policy (src/hlock/platform.h); the unsuffixed
// alias binds StdPlatform and is explicitly instantiated in soft_irq_gate.cc.

#ifndef HLOCK_SOFT_IRQ_GATE_H_
#define HLOCK_SOFT_IRQ_GATE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/hlock/platform.h"

namespace hlock {

template <class Platform = StdPlatform>
class BasicSoftIrqGate {
 public:
  BasicSoftIrqGate() : head_(&stub_), tail_(&stub_) {}

  ~BasicSoftIrqGate() {
    // Drain remaining items without running them.
    WorkItem* item = tail_;
    while (item != nullptr) {
      WorkItem* next = item->next.load(std::memory_order_acquire);
      if (item != &stub_) {
        delete item;
      }
      item = next;
    }
  }

  BasicSoftIrqGate(const BasicSoftIrqGate&) = delete;
  BasicSoftIrqGate& operator=(const BasicSoftIrqGate&) = delete;

  // --- owner-thread operations -------------------------------------------------

  // Closes the gate (nestable).  Call before acquiring any lock a handler
  // could need.
  void Enter() { ++depth_; }

  // Opens one nesting level; when fully open, runs all deferred work.
  void Exit() {
    if (--depth_ == 0) {
      Drain();
    }
  }

  // Runs pending work if the gate is open.  The owner calls this at its
  // interrupt points (idle loops, spin loops).
  void Poll() {
    if (depth_ == 0) {
      Drain();
    }
  }

  bool closed() const { return depth_ > 0; }

  // RAII guard for a masked region.
  class Region {
   public:
    explicit Region(BasicSoftIrqGate& gate) : gate_(gate) { gate_.Enter(); }
    ~Region() { gate_.Exit(); }
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    BasicSoftIrqGate& gate_;
  };

  // --- any-thread operations ----------------------------------------------------

  // Posts work.  If called by the owner with the gate open, consider calling
  // Poll() afterwards; otherwise the work runs at the owner's next Poll/Exit.
  void Post(std::function<void()> work) {
    auto* item = new WorkItem{std::move(work), {nullptr}};
    const std::uint64_t pending = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (pending > hw &&
           !high_water_.compare_exchange_weak(hw, pending, std::memory_order_relaxed)) {
    }
    WorkItem* prev = head_.exchange(item, std::memory_order_acq_rel);
    prev->next.store(item, std::memory_order_release);
  }

  // --- statistics -----------------------------------------------------------------
  std::uint64_t executed() const { return executed_; }
  std::uint64_t deferred_high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  // Items posted but not yet executed.  Any-thread readable; exact once
  // producers have quiesced (shutdown drain loops poll it).
  std::uint64_t pending() const { return pending_.load(std::memory_order_acquire); }

 private:
  struct WorkItem {
    std::function<void()> work;
    typename Platform::template Atomic<WorkItem*> next{nullptr};
  };

  void Drain() {
    if (draining_) {
      return;  // a work item polled the gate; do not re-enter
    }
    draining_ = true;
    struct Reset {
      bool* flag;
      ~Reset() { *flag = false; }
    } reset{&draining_};
    while (true) {
      WorkItem* tail = tail_;
      WorkItem* next = tail->next.load(std::memory_order_acquire);
      if (tail == &stub_) {
        if (next == nullptr) {
          return;  // empty
        }
        tail_ = next;
        tail = next;
        next = next->next.load(std::memory_order_acquire);
      }
      if (next != nullptr) {
        tail_ = next;
        tail->work();
        ++executed_;
        pending_.fetch_sub(1, std::memory_order_relaxed);
        delete tail;
        continue;
      }
      // tail is the last element; re-insert the stub and retry to detach it.
      WorkItem* head = head_.load(std::memory_order_acquire);
      if (tail != head) {
        return;  // a producer is mid-push; its item will be visible shortly
      }
      stub_.next.store(nullptr, std::memory_order_relaxed);
      WorkItem* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
      prev->next.store(&stub_, std::memory_order_release);
      next = tail->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        tail_ = next;
        tail->work();
        ++executed_;
        pending_.fetch_sub(1, std::memory_order_relaxed);
        delete tail;
      }
    }
  }

  // Vyukov intrusive MPSC queue: producers push to head_, the single consumer
  // pops from tail_.
  typename Platform::template Atomic<WorkItem*> head_;
  WorkItem* tail_;
  WorkItem stub_;

  int depth_ = 0;          // owner-only
  bool draining_ = false;  // owner-only: prevents re-entrant drains
  std::uint64_t executed_ = 0;
  typename Platform::template Atomic<std::uint64_t> high_water_{0};  // CAS-max by producers
  typename Platform::template Atomic<std::uint64_t> pending_{0};
};

using SoftIrqGate = BasicSoftIrqGate<>;

extern template class BasicSoftIrqGate<StdPlatform>;

}  // namespace hlock

#endif  // HLOCK_SOFT_IRQ_GATE_H_
