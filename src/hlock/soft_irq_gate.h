// Software interrupt masking with a deferred-work queue (Section 3.2,
// adapted from Stodolsky et al.).
//
// HURRICANE's resolution to the TryLock problem: instead of letting RPC
// interrupt handlers gamble on TryLock, each processor keeps a flag that is
// set before acquiring any lock an interrupt handler might need.  A handler
// finding the flag set enqueues its work on a per-processor queue; the work
// runs when the flag clears.  The flag and queue are strictly local in the
// paper; here the owner thread manipulates the gate while any thread may post
// work (the cross-processor RPC analogue), so the queue is a Vyukov-style
// intrusive MPSC list.
//
// Because deferred work is executed in arrival order when the gate opens,
// access to the processor is fair -- the property retry-based TryLock lacks.

#ifndef HLOCK_SOFT_IRQ_GATE_H_
#define HLOCK_SOFT_IRQ_GATE_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace hlock {

class SoftIrqGate {
 public:
  SoftIrqGate();
  ~SoftIrqGate();
  SoftIrqGate(const SoftIrqGate&) = delete;
  SoftIrqGate& operator=(const SoftIrqGate&) = delete;

  // --- owner-thread operations -------------------------------------------------

  // Closes the gate (nestable).  Call before acquiring any lock a handler
  // could need.
  void Enter();

  // Opens one nesting level; when fully open, runs all deferred work.
  void Exit();

  // Runs pending work if the gate is open.  The owner calls this at its
  // interrupt points (idle loops, spin loops).
  void Poll();

  bool closed() const { return depth_ > 0; }

  // RAII guard for a masked region.
  class Region {
   public:
    explicit Region(SoftIrqGate& gate) : gate_(gate) { gate_.Enter(); }
    ~Region() { gate_.Exit(); }
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    SoftIrqGate& gate_;
  };

  // --- any-thread operations ----------------------------------------------------

  // Posts work.  If called by the owner with the gate open, consider calling
  // Poll() afterwards; otherwise the work runs at the owner's next Poll/Exit.
  void Post(std::function<void()> work);

  // --- statistics -----------------------------------------------------------------
  std::uint64_t executed() const { return executed_; }
  std::uint64_t deferred_high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkItem {
    std::function<void()> work;
    std::atomic<WorkItem*> next{nullptr};
  };

  void Drain();

  // Vyukov intrusive MPSC queue: producers push to head_, the single consumer
  // pops from tail_.
  std::atomic<WorkItem*> head_;
  WorkItem* tail_;
  WorkItem stub_;

  int depth_ = 0;         // owner-only
  bool draining_ = false;  // owner-only: prevents re-entrant drains
  std::uint64_t executed_ = 0;
  std::atomic<std::uint64_t> high_water_{0};  // CAS-max updated by producers
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace hlock

#endif  // HLOCK_SOFT_IRQ_GATE_H_
