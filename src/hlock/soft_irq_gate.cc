#include "src/hlock/soft_irq_gate.h"

namespace hlock {

// The production instantiation; the header declares it extern.
template class BasicSoftIrqGate<StdPlatform>;

}  // namespace hlock
