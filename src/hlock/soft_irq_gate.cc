#include "src/hlock/soft_irq_gate.h"

#include <utility>

namespace hlock {

SoftIrqGate::SoftIrqGate() : head_(&stub_), tail_(&stub_) {}

SoftIrqGate::~SoftIrqGate() {
  // Drain remaining items without running them.
  WorkItem* item = tail_;
  while (item != nullptr) {
    WorkItem* next = item->next.load(std::memory_order_acquire);
    if (item != &stub_) {
      delete item;
    }
    item = next;
  }
}

void SoftIrqGate::Post(std::function<void()> work) {
  auto* item = new WorkItem{std::move(work), {nullptr}};
  const std::uint64_t pending = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
  while (pending > hw &&
         !high_water_.compare_exchange_weak(hw, pending, std::memory_order_relaxed)) {
  }
  WorkItem* prev = head_.exchange(item, std::memory_order_acq_rel);
  prev->next.store(item, std::memory_order_release);
}

void SoftIrqGate::Enter() { ++depth_; }

void SoftIrqGate::Exit() {
  if (--depth_ == 0) {
    Drain();
  }
}

void SoftIrqGate::Poll() {
  if (depth_ == 0) {
    Drain();
  }
}

void SoftIrqGate::Drain() {
  if (draining_) {
    return;  // a work item polled the gate; do not re-enter
  }
  draining_ = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&draining_};
  while (true) {
    WorkItem* tail = tail_;
    WorkItem* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return;  // empty
      }
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      tail->work();
      ++executed_;
      pending_.fetch_sub(1, std::memory_order_relaxed);
      delete tail;
      continue;
    }
    // tail is the last element; re-insert the stub and retry to detach it.
    WorkItem* head = head_.load(std::memory_order_acquire);
    if (tail != head) {
      return;  // a producer is mid-push; its item will be visible shortly
    }
    stub_.next.store(nullptr, std::memory_order_relaxed);
    WorkItem* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      tail->work();
      ++executed_;
      pending_.fetch_sub(1, std::memory_order_relaxed);
      delete tail;
    }
  }
}

}  // namespace hlock
