// TryLock support for Distributed Locks (Section 3.2).
//
// Two variants, matching the paper's two attempts:
//
//   McsTryV1Lock -- the per-thread queue node carries an in_use flag.  An
//   interrupt handler (or any re-entrant context) checks the flag before
//   enqueueing: if set, it has interrupted this thread's own lock code and
//   must not wait.  Not a true TryLock -- if the node is free the caller
//   enqueues and *waits* -- but it provably cannot deadlock with the context
//   it interrupted.  The flag is maintained on the common path, which is the
//   base-performance cost the paper observed.
//
//   McsTryV2Lock -- a true TryLock: a failed attempt abandons its queue node
//   in place and returns immediately; releases garbage-collect abandoned
//   nodes while handing the lock over (cf. Craig's timeout queue locks).
//   The paper's conclusion is reproduced by the tests and benches: under
//   saturation a queue lock is handed directly from holder to waiter, so
//   TryLock callers essentially never see it free -- retry-based access to a
//   fair lock is only probabilistically fair and starves.
//
// Both locks are templated on the Platform policy (src/hlock/platform.h);
// the unsuffixed aliases bind StdPlatform.  The StdPlatform instantiations
// are explicit (mcs_try_lock.cc) so other translation units link against one
// copy, exactly as with the previous out-of-line definitions.

#ifndef HLOCK_MCS_TRY_LOCK_H_
#define HLOCK_MCS_TRY_LOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/hlock/padded.h"
#include "src/hlock/platform.h"
#include "src/hprof/lock_site.h"

namespace hlock {

// --- Variant 1 ----------------------------------------------------------------
//
// Single-owner-context invariant: a given thread's queue node -- and in
// particular its in_use flag -- is touched only by that thread and by
// interrupt contexts *nested on* that thread (the paper's model: the handler
// borrows the CPU, so handler and interrupted code interleave, they never run
// concurrently).  Under that invariant program order alone keeps the flag
// coherent and relaxed accesses are correct; lock()/unlock() Check() the
// invariant's observable half (no re-entry, no unpaired unlock).
// LockFromInterrupt claims the flag with a CAS rather than a load+store pair
// so that even a cross-thread "interrupt" (as a simulated environment might
// deliver) cannot claim a node that is concurrently being claimed.
template <class Platform = StdPlatform>
class BasicMcsTryV1Lock {
 public:
  BasicMcsTryV1Lock() = default;
  BasicMcsTryV1Lock(const BasicMcsTryV1Lock&) = delete;
  BasicMcsTryV1Lock& operator=(const BasicMcsTryV1Lock&) = delete;

  void lock() {
    QNode& node = *nodes_[Platform::ThreadId()];
    Platform::Check(!node.in_use.load(std::memory_order_relaxed),
                    "McsTryV1Lock::lock re-entered while this thread's node is in "
                    "use; interrupt contexts must use LockFromInterrupt");
    node.in_use.store(true, std::memory_order_relaxed);  // common-path cost
    ProfiledEnqueue(node);
  }

  // Interrupt-safe acquire: fails only when this thread's node is already in
  // use, i.e. the caller interrupted its own lock/unlock code and waiting
  // could deadlock.  Otherwise enqueues and waits like lock().
  bool LockFromInterrupt() {
    QNode& node = *nodes_[Platform::ThreadId()];
    bool expected = false;
    if (!node.in_use.compare_exchange_strong(expected, true, std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      return false;
    }
    ProfiledEnqueue(node);
    return true;
  }

  // Attaches a profiling site (null detaches); wait/hold samples are host
  // nanoseconds.  Not thread-safe against concurrent lock users.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }

  void unlock() {
    QNode& node = *nodes_[Platform::ThreadId()];
    Platform::Check(node.in_use.load(std::memory_order_relaxed),
                    "McsTryV1Lock::unlock without a matching lock on this thread");
    if (site_ != nullptr) {
      site_->RecordRelease(hprof::LockSiteStats::NowTicks() - hold_start_);
    }
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (!tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        typename Platform::Backoff backoff;
        while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
          backoff.Pause();
        }
      }
    }
    if (succ != nullptr) {
      node.next.store(nullptr, std::memory_order_relaxed);
      succ->locked.store(false, std::memory_order_release);
    }
    // Release so a context that observes the node free also observes the
    // node's rest state restored (matters only if the observer is not this
    // thread; free for the in-order case).
    node.in_use.store(false, std::memory_order_release);  // common-path cost
  }

 private:
  struct QNode {
    typename Platform::template Atomic<QNode*> next{nullptr};
    typename Platform::template Atomic<bool> locked{true};
    typename Platform::template Atomic<bool> in_use{false};
  };

  // Returns true when the lock was free (no predecessor).
  bool Enqueue(QNode& node) {
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return true;
    }
    if (site_ != nullptr) {
      site_->EnterQueue();
    }
    pred->next.store(&node, std::memory_order_release);
    typename Platform::Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
    node.locked.store(true, std::memory_order_relaxed);
    if (site_ != nullptr) {
      site_->LeaveQueue();
    }
    return false;
  }

  void ProfiledEnqueue(QNode& node) {
    const std::uint64_t t0 =
        site_ != nullptr ? hprof::LockSiteStats::NowTicks() : 0;
    const bool immediate = Enqueue(node);
    if (site_ != nullptr) {
      const std::uint64_t now = hprof::LockSiteStats::NowTicks();
      site_->RecordAcquire(Platform::ThreadId(), now - t0, !immediate);
      hold_start_ = now;
    }
  }

  typename Platform::template Atomic<QNode*> tail_{nullptr};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
  Padded<QNode> nodes_[Platform::kMaxThreads];
};

// --- Variant 2 ----------------------------------------------------------------
template <class Platform = StdPlatform>
class BasicMcsTryV2Lock {
 public:
  BasicMcsTryV2Lock() = default;
  ~BasicMcsTryV2Lock() {
    Node* node = all_nodes_;
    while (node != nullptr) {
      Node* next = node->all_next;
      delete node;
      node = next;
    }
  }
  BasicMcsTryV2Lock(const BasicMcsTryV2Lock&) = delete;
  BasicMcsTryV2Lock& operator=(const BasicMcsTryV2Lock&) = delete;

  void lock() {
    bool immediate = false;
    Node* node = Enqueue(&immediate);
    if (!immediate) {
      typename Platform::Backoff backoff;
      while (node->state.load(std::memory_order_acquire) != kGranted) {
        backoff.Pause();
      }
    }
    *holders_[Platform::ThreadId()] = node;
  }

  // True TryLock: a single attempt.  On failure the queue node is left in the
  // queue, marked abandoned, to be reclaimed by a later release.
  bool try_lock() {
    bool immediate = false;
    Node* node = Enqueue(&immediate);
    if (immediate) {
      *holders_[Platform::ThreadId()] = node;
      return true;
    }
    // Try to abandon.  If the predecessor granted us the lock in the window,
    // the CAS fails and we own the lock after all.
    std::uint32_t expected = kWaiting;
    if (node->state.compare_exchange_strong(expected, kAbandoned, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      // The node stays in the queue; a release will reclaim it.
      return false;
    }
    *holders_[Platform::ThreadId()] = node;
    return true;
  }

  void unlock() {
    Node*& slot = *holders_[Platform::ThreadId()];
    Node* node = slot;
    Platform::Check(node != nullptr,
                    "McsTryV2Lock::unlock without a matching lock on this thread");
    slot = nullptr;
    while (true) {
      Node* succ = node->next.load(std::memory_order_acquire);
      if (succ == nullptr) {
        Node* expected = node;
        if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          FreeNode(node);
          return;
        }
        typename Platform::Backoff backoff;
        while ((succ = node->next.load(std::memory_order_acquire)) == nullptr) {
          backoff.Pause();
        }
      }
      // Either grant the successor the lock, or -- if it abandoned its attempt
      // -- reclaim its node and keep walking the queue.
      std::uint32_t expected = kWaiting;
      if (succ->state.compare_exchange_strong(expected, kGranted, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        FreeNode(node);
        return;
      }
      FreeNode(node);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
      node = succ;  // abandoned: we own it now; continue with its successor
    }
  }

  std::uint64_t abandoned_nodes_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // --- pool conservation (quiescent observers, for tests) ----------------------
  // With the lock free and no thread inside lock code, every node ever
  // allocated must sit in the free list exactly once: total_nodes() ==
  // pooled_nodes().  A leak (abandoned node never reclaimed) or a double free
  // (caught eagerly by FreeNode) breaks the equality.
  std::uint64_t total_nodes() const {
    std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
    return total_nodes_;
  }
  std::uint64_t pooled_nodes() const {
    std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
    std::uint64_t n = 0;
    for (Node* node = free_list_; node != nullptr; node = node->pool_next) {
      ++n;
    }
    return n;
  }

 private:
  enum State : std::uint32_t { kWaiting = 0, kGranted = 1, kAbandoned = 2 };

  struct Node {
    typename Platform::template Atomic<Node*> next{nullptr};
    typename Platform::template Atomic<std::uint32_t> state{kWaiting};
    Node* pool_next = nullptr;  // free-list link; guarded by pool_lock_
    Node* all_next = nullptr;   // allocation chain, for the destructor
    bool in_pool = false;       // guarded by pool_lock_; catches double frees
  };

  Node* AllocNode() {
    {
      std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
      if (free_list_ != nullptr) {
        Node* node = free_list_;
        free_list_ = node->pool_next;
        node->next.store(nullptr, std::memory_order_relaxed);
        node->state.store(kWaiting, std::memory_order_relaxed);
        node->pool_next = nullptr;
        node->in_pool = false;
        return node;
      }
    }
    Node* node = new Node;
    std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
    node->all_next = all_nodes_;
    all_nodes_ = node;
    ++total_nodes_;
    return node;
  }

  void FreeNode(Node* node) {
    // Nodes are type-stable: they are only ever reused as queue nodes of this
    // lock, never returned to the allocator while the lock lives.
    std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
    Platform::Check(!node->in_pool,
                    "McsTryV2Lock: queue node freed twice (reclaimed by two releases)");
    node->in_pool = true;
    node->pool_next = free_list_;
    free_list_ = node;
  }

  // Enqueues a fresh node; returns it and whether the lock was acquired
  // immediately (no predecessor).
  Node* Enqueue(bool* immediate) {
    Node* node = AllocNode();
    Node* pred = tail_.exchange(node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      node->state.store(kGranted, std::memory_order_relaxed);
      *immediate = true;
    } else {
      pred->next.store(node, std::memory_order_release);
      *immediate = false;
    }
    return node;
  }

  typename Platform::template Atomic<Node*> tail_{nullptr};
  // Per-thread slot remembering the node this thread acquired with; each slot
  // is touched only by its owning thread, so consecutive holders do not race.
  Padded<Node*> holders_[Platform::kMaxThreads] = {};
  typename Platform::template Atomic<std::uint64_t> reclaimed_{0};

  // Node pool.  Nodes are freed by *other* threads (the releaser reclaims
  // abandoned nodes), so a per-thread cache does not work; the free list is
  // protected by a tiny lock, which is off the lock's fast path.
  mutable typename Platform::PoolLock pool_lock_;
  Node* free_list_ = nullptr;
  Node* all_nodes_ = nullptr;  // chain of every allocation, for the destructor
  std::uint64_t total_nodes_ = 0;  // guarded by pool_lock_
};

using McsTryV1Lock = BasicMcsTryV1Lock<>;
using McsTryV2Lock = BasicMcsTryV2Lock<>;

extern template class BasicMcsTryV1Lock<StdPlatform>;
extern template class BasicMcsTryV2Lock<StdPlatform>;

}  // namespace hlock

#endif  // HLOCK_MCS_TRY_LOCK_H_
