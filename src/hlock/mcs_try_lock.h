// TryLock support for Distributed Locks (Section 3.2).
//
// Two variants, matching the paper's two attempts:
//
//   McsTryV1Lock -- the per-thread queue node carries an in_use flag.  An
//   interrupt handler (or any re-entrant context) checks the flag before
//   enqueueing: if set, it has interrupted this thread's own lock code and
//   must not wait.  Not a true TryLock -- if the node is free the caller
//   enqueues and *waits* -- but it provably cannot deadlock with the context
//   it interrupted.  The flag is maintained on the common path, which is the
//   base-performance cost the paper observed.
//
//   McsTryV2Lock -- a true TryLock: a failed attempt abandons its queue node
//   in place and returns immediately; releases garbage-collect abandoned
//   nodes while handing the lock over (cf. Craig's timeout queue locks).
//   The paper's conclusion is reproduced by the tests and benches: under
//   saturation a queue lock is handed directly from holder to waiter, so
//   TryLock callers essentially never see it free -- retry-based access to a
//   fair lock is only probabilistically fair and starves.

#ifndef HLOCK_MCS_TRY_LOCK_H_
#define HLOCK_MCS_TRY_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/backoff.h"
#include "src/hlock/padded.h"
#include "src/hlock/spin_locks.h"
#include "src/hlock/thread_id.h"

namespace hlock {

// --- Variant 1 ----------------------------------------------------------------
class McsTryV1Lock {
 public:
  McsTryV1Lock() = default;
  McsTryV1Lock(const McsTryV1Lock&) = delete;
  McsTryV1Lock& operator=(const McsTryV1Lock&) = delete;

  void lock() {
    QNode& node = *nodes_[CurrentThreadId()];
    node.in_use.store(true, std::memory_order_relaxed);  // common-path cost
    Enqueue(node);
  }

  // Interrupt-safe acquire: fails only when this thread's node is already in
  // use, i.e. the caller interrupted its own lock/unlock code and waiting
  // could deadlock.  Otherwise enqueues and waits like lock().
  bool LockFromInterrupt() {
    QNode& node = *nodes_[CurrentThreadId()];
    if (node.in_use.load(std::memory_order_relaxed)) {
      return false;
    }
    node.in_use.store(true, std::memory_order_relaxed);
    Enqueue(node);
    return true;
  }

  void unlock() {
    QNode& node = *nodes_[CurrentThreadId()];
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (!tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        Backoff backoff;
        while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
          backoff.Pause();
        }
      }
    }
    if (succ != nullptr) {
      node.next.store(nullptr, std::memory_order_relaxed);
      succ->locked.store(false, std::memory_order_release);
    }
    node.in_use.store(false, std::memory_order_release);  // common-path cost
  }

 private:
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> locked{true};
    std::atomic<bool> in_use{false};
  };

  void Enqueue(QNode& node) {
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return;
    }
    pred->next.store(&node, std::memory_order_release);
    Backoff backoff;
    while (node.locked.load(std::memory_order_acquire)) {
      backoff.Pause();
    }
    node.locked.store(true, std::memory_order_relaxed);
  }

  std::atomic<QNode*> tail_{nullptr};
  Padded<QNode> nodes_[kMaxThreads];
};

// --- Variant 2 ----------------------------------------------------------------
class McsTryV2Lock {
 public:
  McsTryV2Lock() = default;
  ~McsTryV2Lock();
  McsTryV2Lock(const McsTryV2Lock&) = delete;
  McsTryV2Lock& operator=(const McsTryV2Lock&) = delete;

  void lock();

  // True TryLock: a single attempt.  On failure the queue node is left in the
  // queue, marked abandoned, to be reclaimed by a later release.
  bool try_lock();

  void unlock();

  std::uint64_t abandoned_nodes_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  enum State : std::uint32_t { kWaiting = 0, kGranted = 1, kAbandoned = 2 };

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
    Node* pool_next = nullptr;
  };

  Node* AllocNode();
  void FreeNode(Node* node);

  // Enqueues a fresh node; returns it and whether the lock was acquired
  // immediately (no predecessor).
  Node* Enqueue(bool* immediate);

  std::atomic<Node*> tail_{nullptr};
  // Per-thread slot remembering the node this thread acquired with; each slot
  // is touched only by its owning thread, so consecutive holders do not race.
  Padded<Node*> holders_[kMaxThreads] = {};
  std::atomic<std::uint64_t> reclaimed_{0};

  // Node pool.  Nodes are freed by *other* threads (the releaser reclaims
  // abandoned nodes), so a per-thread cache does not work; the free list is
  // protected by a tiny spin lock, which is off the lock's fast path.
  TtasSpinLock pool_lock_;
  Node* free_list_ = nullptr;
  Node* all_nodes_ = nullptr;  // chain of every allocation, for the destructor
};

}  // namespace hlock

#endif  // HLOCK_MCS_TRY_LOCK_H_
