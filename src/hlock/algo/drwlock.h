// Distributed reader-writer lock: per-cluster reader counters, written once
// over the memory backend.
//
// The reserve-word protocol (reserve.h) counts readers in one shared word, so
// every reader entry bounces the same cache line -- and in the hybrid table
// every reader transition additionally funnels through the coarse chain lock.
// This lock distributes the reader side the way "High-Performance Distributed
// RMA Locks" evaluates: each cluster owns a padded counter word homed in that
// cluster's memory module, so an uncontended reader entry/exit touches only
// local memory.  A writer raises a global flag and then *sweeps* the cluster
// counters, waiting for each to drain; readers that arrive while the flag is
// up back their increment out and spin locally until the flag clears.
//
// Writer/writer exclusion is a separate single word (`wmutex`), deliberately
// split from the flag+sweep protocol (WriterArrive / WriterDepart) so an
// embedding structure that already serializes its writers -- the hybrid
// table's coarse chain lock -- can reuse that lock as the writer mutex and
// pay only for the sweep.
//
// Preference knob: kWriters (default) raises the flag immediately, so the
// writer waits only for in-flight readers; kReaders makes the writer first
// drain the counters *without* the flag raised, admitting readers that arrive
// ahead of it (readers stay fully parallel at the price of possible writer
// starvation -- the classic reader-preference trade).  Reader-side code is
// identical in both modes, which is what keeps the reader fast path two local
// operations.
//
// upgrade()/downgrade() follow the dgos rwspinlock API shape: TryUpgrade is a
// *try* -- two concurrent upgraders would deadlock waiting for each other's
// read hold, so the loser must release and reacquire; Downgrade re-enters the
// caller's cluster counter before the flag drops, so no writer can sneak in
// between.
//
// Memory orders (the table in DESIGN.md): reader increment (CAS success) and
// the flag load after it are seq_cst, and so are the writer's flag store and
// sweep loads -- the two sides form a store-load (Dekker) race that acquire/
// release alone would not order: a reader could publish its increment too
// late for the sweep while reading a stale flag.  Reader exit decrements with
// release (the sweep's loads take over the entry after all reader reads
// retire); WriterDepart clears the flag with release (publishing the writer's
// writes to the readers it admits).
//
// Deliberate-bug knobs for the model checker (tests/hcheck/drwlock_*):
// kBrokenSweep skips cluster 0 in the writer sweep (a reader there
// coexists with the writer -- hcheck catches the exclusion violation);
// kBrokenUnderflow double-decrements in the reader backout path (the counter
// underflow check fires, or a phantom reader admission breaks exclusion).

#ifndef HLOCK_ALGO_DRWLOCK_H_
#define HLOCK_ALGO_DRWLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/hlock/algo/backend.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

enum class DrwPreference : std::uint8_t {
  kWriters,  // flag up first, sweep once: bounded writer wait
  kReaders,  // flagless pre-drain: arriving readers overtake a waiting writer
};

enum class DrwBroken : std::uint8_t {
  kNone,
  kBrokenSweep,      // writer sweep skips cluster 0
  kBrokenUnderflow,  // reader backout decrements twice
};

template <class B>
class DrwLockCore {
 public:
  using Ctx = typename B::Ctx;
  using Word = typename B::Word;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  // Doubling-delay poll pacing (backend time units) for waits whose length is
  // another context's hold: the reader's flag wait, the writer's sweep, and
  // the writer-mutex spin.  Fixed-interval polling of a *remote* word keeps
  // its home memory module saturated -- delaying the very store or decrement
  // being waited for -- so these waits back off like Figure 3c's spin lock.
  static constexpr std::uint64_t kPollBase = 16;
  static constexpr std::uint64_t kPollCap = 512;

  // `home` places the writer-side words (flag + writer mutex); each cluster's
  // reader counter is homed at that cluster's first context's module, which
  // is what makes the reader fast path local in the simulator.
  explicit DrwLockCore(B* b, std::uint32_t home = 0,
                       DrwPreference preference = DrwPreference::kWriters,
                       DrwBroken broken = DrwBroken::kNone)
      : b_(b),
        preference_(preference),
        broken_(broken),
        num_clusters_(b->NumClusters()),
        counters_(new PaddedWord[b->NumClusters()]),
        name_("drwlock"),
        reader_hold_start_(new std::uint64_t[b->NumCtxs()]()) {
    b_->InitWord(wflag_, home, 0);
    b_->InitWord(wmutex_, home, 0);
    for (std::uint32_t c = 0; c < num_clusters_; ++c) {
      b_->InitWord(counters_[c].w, ClusterHome(c), 0);
    }
  }
  DrwLockCore(const DrwLockCore&) = delete;
  DrwLockCore& operator=(const DrwLockCore&) = delete;

  // --- reader side ----------------------------------------------------------

  TaskT<void> AcquireShared(Ctx& ctx) {
    const std::uint64_t wait_start = reader_site_ != nullptr ? b_->Now(ctx) : 0;
    const std::uint32_t id = b_->CtxId(ctx);
    const std::uint32_t cluster = b_->ClusterOfCtx(id);
    Word& counter = counters_[cluster].w;
    bool contended = false;
    while (true) {
      co_await BumpReader(ctx, counter);
      const std::uint64_t flag =
          co_await b_->Load(ctx, wflag_, std::memory_order_seq_cst);
      co_await b_->Exec(ctx, 0, 1);
      if (flag == 0) {
        break;  // admitted: the sweep (if any) will wait for our count
      }
      // A writer is (or was) sweeping: back the increment out so the sweep
      // can complete, then spin locally until the flag clears.
      co_await DropReader(ctx, counter, std::memory_order_release);
      if (broken_ == DrwBroken::kBrokenUnderflow) {
        // BUG (deliberate, for hcheck): a second decrement releases a count
        // we never held -- underflow, or a phantom admission for a racing
        // reader whose increment we just erased.
        co_await DropReader(ctx, counter, std::memory_order_release);
      }
      if (reader_site_ != nullptr && !contended) {
        reader_site_->EnterQueue(cluster);
      }
      contended = true;
      std::uint64_t delay = kPollBase;
      while (true) {
        const std::uint64_t f =
            co_await b_->Load(ctx, wflag_, std::memory_order_relaxed);
        co_await b_->Exec(ctx, 0, 1);
        if (f == 0) {
          break;
        }
        // Doubling delay, not fixed-interval polling: the flag's home module
        // also serves the writer's release store, and every waiting reader is
        // polling the same word.
        co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
        delay = delay < kPollCap ? delay * 2 : kPollCap;
      }
    }
    if (reader_site_ != nullptr) {
      const std::uint64_t now = b_->Now(ctx);
      if (contended) {
        reader_site_->LeaveQueue();
      }
      reader_site_->RecordAcquire(id, now - wait_start, contended, cluster);
      reader_hold_start_[id] = now;
    }
  }

  // No-spin reader entry for handler context: false if a writer holds or is
  // sweeping the lock.
  TaskT<bool> TryAcquireShared(Ctx& ctx) {
    const std::uint32_t id = b_->CtxId(ctx);
    const std::uint32_t cluster = b_->ClusterOfCtx(id);
    Word& counter = counters_[cluster].w;
    co_await BumpReader(ctx, counter);
    const std::uint64_t flag =
        co_await b_->Load(ctx, wflag_, std::memory_order_seq_cst);
    co_await b_->Exec(ctx, 0, 1);
    if (flag != 0) {
      co_await DropReader(ctx, counter, std::memory_order_release);
      co_return false;
    }
    if (reader_site_ != nullptr) {
      const std::uint64_t now = b_->Now(ctx);
      reader_site_->RecordAcquire(id, 0, /*contended=*/false, cluster);
      reader_hold_start_[id] = now;
    }
    co_return true;
  }

  TaskT<void> ReleaseShared(Ctx& ctx) {
    const std::uint32_t id = b_->CtxId(ctx);
    if (reader_site_ != nullptr) {
      reader_site_->RecordRelease(b_->Now(ctx) - reader_hold_start_[id]);
    }
    co_await DropReader(ctx, counters_[b_->ClusterOfCtx(id)].w,
                        std::memory_order_release);
  }

  // --- writer side ----------------------------------------------------------

  TaskT<void> AcquireExclusive(Ctx& ctx) {
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = writer_site_ != nullptr ? b_->Now(ctx) : 0;
    bool contended = false;
    std::uint64_t delay = kPollBase;
    while (true) {
      const bool won = co_await b_->CompareSwap(ctx, wmutex_, 0, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      if (won) {
        break;
      }
      if (writer_site_ != nullptr && !contended) {
        writer_site_->EnterQueue(b_->ClusterOfCtx(b_->CtxId(ctx)));
      }
      contended = true;
      co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
      delay = delay < kPollCap ? delay * 2 : kPollCap;
    }
    co_await WriterArriveTimed(ctx, wait_start, contended);
    b_->EndSpan(ctx, span);
  }

  // No-spin writer entry: false if another writer holds the mutex *or* any
  // reader is in -- the flag is backed out rather than waited on.
  TaskT<bool> TryAcquireExclusive(Ctx& ctx) {
    const bool won = co_await b_->CompareSwap(ctx, wmutex_, 0, 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 1);
    if (!won) {
      co_return false;
    }
    co_await b_->Store(ctx, wflag_, 1, std::memory_order_seq_cst);
    for (std::uint32_t c = 0; c < num_clusters_; ++c) {
      const std::uint64_t readers =
          co_await b_->Load(ctx, counters_[c].w, std::memory_order_seq_cst);
      co_await b_->Exec(ctx, 0, 1);
      if (readers != 0) {
        co_await b_->Store(ctx, wflag_, 0, std::memory_order_release);
        co_await b_->Store(ctx, wmutex_, 0, std::memory_order_release);
        co_return false;
      }
    }
    if (writer_site_ != nullptr) {
      RecordWriterGrant(ctx, b_->Now(ctx), /*contended=*/false);
    }
    co_return true;
  }

  TaskT<void> ReleaseExclusive(Ctx& ctx) {
    if (writer_site_ != nullptr) {
      writer_site_->RecordRelease(b_->Now(ctx) - writer_hold_start_);
    }
    b_->ReleaseInstant(ctx, name_);
    co_await b_->Store(ctx, wflag_, 0, std::memory_order_release);
    co_await b_->Store(ctx, wmutex_, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
  }

  // --- flag + sweep, for embedders that bring their own writer mutex -------
  // The caller must hold whatever serializes its writers (the hybrid table's
  // coarse chain lock) across Arrive..Depart; this pair only excludes
  // *readers*.

  TaskT<void> WriterArrive(Ctx& ctx) {
    const std::uint64_t wait_start = writer_site_ != nullptr ? b_->Now(ctx) : 0;
    co_await WriterArriveTimed(ctx, wait_start, /*contended=*/false);
  }

  TaskT<void> WriterDepart(Ctx& ctx) {
    if (writer_site_ != nullptr) {
      writer_site_->RecordRelease(b_->Now(ctx) - writer_hold_start_);
    }
    co_await b_->Store(ctx, wflag_, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
  }

  // --- upgrade / downgrade --------------------------------------------------

  // Upgrades a shared hold to exclusive.  A *try*: two upgraders would each
  // wait forever for the other's read count, so on a lost writer-mutex race
  // the caller must ReleaseShared and take the write path from scratch.  On
  // success the shared hold has been consumed.
  TaskT<bool> TryUpgrade(Ctx& ctx) {
    const bool won = co_await b_->CompareSwap(ctx, wmutex_, 0, 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 1);
    if (!won) {
      co_return false;
    }
    const std::uint64_t wait_start = writer_site_ != nullptr ? b_->Now(ctx) : 0;
    if (reader_site_ != nullptr) {
      const std::uint32_t id = b_->CtxId(ctx);
      reader_site_->RecordRelease(b_->Now(ctx) - reader_hold_start_[id]);
    }
    co_await b_->Store(ctx, wflag_, 1, std::memory_order_seq_cst);
    // Drop our own read count *after* the flag is up: between the drop and
    // the sweep no new reader can slip in, so the sweep's zero is ours to
    // take exclusively.
    co_await DropReader(ctx, counters_[b_->ClusterOfCtx(b_->CtxId(ctx))].w,
                        std::memory_order_release);
    if (writer_site_ != nullptr) {
      writer_site_->EnterQueue(b_->ClusterOfCtx(b_->CtxId(ctx)));
    }
    co_await Sweep(ctx);
    if (writer_site_ != nullptr) {
      RecordWriterGrant(ctx, wait_start, /*contended=*/true);
    }
    co_return true;
  }

  // Downgrades an exclusive hold to shared without a window: the caller's
  // cluster counter is re-entered *before* the flag drops, so a writer that
  // arrives next sweeps into our read hold and waits.
  TaskT<void> Downgrade(Ctx& ctx) {
    const std::uint32_t id = b_->CtxId(ctx);
    if (writer_site_ != nullptr) {
      writer_site_->RecordRelease(b_->Now(ctx) - writer_hold_start_);
    }
    co_await BumpReader(ctx, counters_[b_->ClusterOfCtx(id)].w);
    if (reader_site_ != nullptr) {
      const std::uint64_t now = b_->Now(ctx);
      reader_site_->RecordAcquire(id, 0, /*contended=*/false, b_->ClusterOfCtx(id));
      reader_hold_start_[id] = now;
    }
    co_await b_->Store(ctx, wflag_, 0, std::memory_order_release);
    co_await b_->Store(ctx, wmutex_, 0, std::memory_order_release);
  }

  // --- introspection / profiling -------------------------------------------

  std::uint32_t num_clusters() const { return num_clusters_; }
  DrwPreference preference() const { return preference_; }
  const std::string& name() const { return name_; }

  // Attaches reader/writer profiling sites (null detaches; they may differ --
  // reader holds and writer holds are different histograms).  Recording is
  // host-side only, so a profiled run is operation-identical to an
  // unprofiled one.  Not thread-safe against concurrent lock users.
  void set_sites(hprof::LockSiteStats* reader_site, hprof::LockSiteStats* writer_site) {
    reader_site_ = reader_site;
    writer_site_ = writer_site;
  }
  hprof::LockSiteStats* reader_site() const { return reader_site_; }
  hprof::LockSiteStats* writer_site() const { return writer_site_; }

 private:
  // One counter per cluster, each on its own cache line: the whole point is
  // that cluster-local reader traffic never invalidates a remote line.
  struct alignas(64) PaddedWord {
    Word w;
  };

  std::uint32_t ClusterHome(std::uint32_t cluster) const {
    const std::uint32_t n = b_->NumCtxs();
    for (std::uint32_t id = 0; id < n; ++id) {
      if (b_->ClusterOfCtx(id) == cluster) {
        return b_->HomeOf(id);
      }
    }
    return 0;
  }

  // CAS-increment (HECTOR-style swap-only hardware never runs this lock; the
  // beyond-the-paper locks already assume CAS, see backend.h).
  TaskT<void> BumpReader(Ctx& ctx, Word& counter) {
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      const std::uint64_t v =
          co_await b_->Load(ctx, counter, std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      if (co_await b_->CompareSwap(ctx, counter, v, v + 1,
                                   std::memory_order_seq_cst,
                                   std::memory_order_relaxed)) {
        co_return;
      }
      co_await b_->SpinPause(ctx, sw);
    }
  }

  TaskT<void> DropReader(Ctx& ctx, Word& counter, std::memory_order ok_mo) {
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      const std::uint64_t v =
          co_await b_->Load(ctx, counter, std::memory_order_relaxed);
      co_await b_->Exec(ctx, 1, 1);
      // A decrement from 0 would wrap into a phantom reader population no
      // sweep could ever drain.
      B::Check(v != 0, "drwlock reader count underflow");
      if (co_await b_->CompareSwap(ctx, counter, v, v - 1, ok_mo,
                                   std::memory_order_relaxed)) {
        co_return;
      }
      co_await b_->SpinPause(ctx, sw);
    }
  }

  // Waits for every cluster counter to drain.  seq_cst loads: they are the
  // writer's half of the Dekker race against reader increments.
  TaskT<void> Sweep(Ctx& ctx) {
    std::uint32_t first = 0;
    if (broken_ == DrwBroken::kBrokenSweep && num_clusters_ > 1) {
      // BUG (deliberate, for hcheck): never looks at cluster 0, so a reader
      // there runs concurrently with the "exclusive" holder.
      first = 1;
    }
    for (std::uint32_t c = first; c < num_clusters_; ++c) {
      std::uint64_t delay = kPollBase;
      while (true) {
        const std::uint64_t readers =
            co_await b_->Load(ctx, counters_[c].w, std::memory_order_seq_cst);
        co_await b_->Exec(ctx, 0, 1);
        if (readers == 0) {
          break;
        }
        // Back off between polls: the sweep's loads occupy the counter's home
        // module, which is exactly where the drain decrements must land.
        co_await b_->BackoffUnits(ctx, delay, delay >= kPollCap);
        delay = delay < kPollCap ? delay * 2 : kPollCap;
      }
    }
  }

  TaskT<void> WriterArriveTimed(Ctx& ctx, std::uint64_t wait_start, bool contended) {
    if (preference_ == DrwPreference::kReaders) {
      // Flagless pre-drain: readers arriving now are admitted ahead of us.
      // Only once the population hits zero does the flag go up, so the
      // definitive sweep below is near-instant in the common case.
      co_await Sweep(ctx);
    }
    co_await b_->Store(ctx, wflag_, 1, std::memory_order_seq_cst);
    co_await Sweep(ctx);
    if (writer_site_ != nullptr) {
      RecordWriterGrant(ctx, wait_start, contended);
    }
  }

  void RecordWriterGrant(Ctx& ctx, std::uint64_t wait_start, bool contended) {
    const std::uint64_t now = b_->Now(ctx);
    const std::uint32_t id = b_->CtxId(ctx);
    if (contended) {
      writer_site_->LeaveQueue();
    }
    writer_site_->RecordAcquire(id, now - wait_start, contended, b_->ClusterOfCtx(id));
    writer_hold_start_ = now;
  }

  B* b_;
  DrwPreference preference_;
  DrwBroken broken_;
  std::uint32_t num_clusters_;
  Word wflag_;   // nonzero = a writer is sweeping or holding
  Word wmutex_;  // writer/writer exclusion for the standalone write path
  std::unique_ptr<PaddedWord[]> counters_;  // per-cluster reader populations
  std::string name_;
  hprof::LockSiteStats* reader_site_ = nullptr;
  hprof::LockSiteStats* writer_site_ = nullptr;
  // Host-side hold timing, touched only when a site is attached.  Readers
  // hold concurrently, so grant stamps are per-context (each slot written by
  // its own context); the writer stamp is owner-written under the lock.
  std::unique_ptr<std::uint64_t[]> reader_hold_start_;
  std::uint64_t writer_hold_start_ = 0;
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_DRWLOCK_H_
