// Fissile lock: a test-and-set fast path over an MCS slow path, written once
// over the memory backend.
//
// The uncontended acquire is a single swap on the outer word -- cheaper even
// than H2-MCS's swap (no queue-node bookkeeping, and the release is one store
// with no repair protocol).  Under contention, callers that fail the fast
// path fall into a full MCS queue ("fission" into the slow path); the queue
// serializes the slow-path waiters, and only its head competes with fast-path
// arrivals for the outer word, bounding the TAS storm to at most two
// contenders regardless of queue depth (cf. Dice's "Malthusian" / compact
// fast-path locks).
//
// The price is fairness: a fast-path arrival can barge past the whole queue.
// The benches measure exactly that trade against the FIFO Distributed Locks.
//
// Memory orders: outer swap acquire (release store on unlock); inner queue
// per McsCore.  The outer word is the lock; the inner lock only orders
// slow-path waiters and publishes nothing about the protected data.

#ifndef HLOCK_ALGO_FISSILE_H_
#define HLOCK_ALGO_FISSILE_H_

#include <cstdint>
#include <string>

#include "src/hlock/algo/backend.h"
#include "src/hlock/algo/mcs.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

template <class B>
class FissileCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  // Fast-path swap attempts before fissioning into the queue.
  static constexpr std::uint32_t kDefaultFastAttempts = 2;

  // `home` is the module holding the outer word and the inner queue's tail.
  // `broken_barge` is a deliberate bug switch for the model-checking tests:
  // a slow-path caller enters the critical section straight off the inner
  // queue grant, without winning the outer word -- so it runs concurrently
  // with a fast-path holder (hcheck catches the mutual exclusion violation).
  FissileCore(B* b, std::uint32_t home, std::uint32_t fast_attempts = kDefaultFastAttempts,
              bool broken_barge = false)
      : b_(b),
        fast_attempts_(fast_attempts == 0 ? 1 : fast_attempts),
        broken_barge_(broken_barge),
        inner_(b, McsVariant::kOriginal, home),
        name_("fissile") {
    b_->InitWord(outer_, home, 0);
  }
  FissileCore(const FissileCore&) = delete;
  FissileCore& operator=(const FissileCore&) = delete;

  TaskT<void> Acquire(Ctx& ctx) {
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = site_ != nullptr ? b_->Now(ctx) : 0;

    // Fast path: a few bare swaps on the outer word.
    typename B::SpinWait sw = b_->MakeSpinWait();
    for (std::uint32_t attempt = 0; attempt < fast_attempts_; ++attempt) {
      const std::uint64_t old =
          co_await b_->FetchStore(ctx, outer_, 1, std::memory_order_acquire);
      co_await b_->Exec(ctx, 1, 2);
      if (old == 0) {
        if (site_ != nullptr) {
          RecordGrant(ctx, wait_start, /*contended=*/attempt != 0);
        }
        b_->EndSpan(ctx, span);
        co_return;
      }
      co_await b_->SpinPause(ctx, sw);
    }

    // Slow path: queue up, and as queue head spin for the outer word.  The
    // inner lock is released before entering the critical section -- the
    // outer word alone protects the data.
    if (site_ != nullptr) {
      site_->EnterQueue(b_->ClusterOfCtx(b_->CtxId(ctx)));
    }
    co_await inner_.Acquire(ctx);
    if (!broken_barge_) {
      while (true) {
        const std::uint64_t old =
            co_await b_->FetchStore(ctx, outer_, 1, std::memory_order_acquire);
        co_await b_->Exec(ctx, 1, 2);
        if (old == 0) {
          break;
        }
        co_await b_->SpinPause(ctx, sw);
      }
    }
    // BUG when broken_barge_ (deliberate, for hcheck): skip the outer fight
    // and run concurrently with any fast-path holder.
    co_await inner_.Release(ctx);
    if (site_ != nullptr) {
      site_->LeaveQueue();
      RecordGrant(ctx, wait_start, /*contended=*/true);
    }
    b_->EndSpan(ctx, span);
  }

  TaskT<void> Release(Ctx& ctx) {
    if (site_ != nullptr) {
      site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    b_->ReleaseInstant(ctx, name_);
    co_await b_->Store(ctx, outer_, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
  }

  TaskT<bool> TryAcquire(Ctx& ctx) {
    const std::uint64_t old =
        co_await b_->FetchStore(ctx, outer_, 1, std::memory_order_acquire);
    co_await b_->Exec(ctx, 1, 1);
    const bool taken = old == 0;
    if (taken && site_ != nullptr) {
      RecordGrant(ctx, b_->Now(ctx), /*contended=*/false);
    }
    co_return taken;
  }

  std::uint32_t fast_attempts() const { return fast_attempts_; }
  const std::string& name() const { return name_; }

  // Attaches a profiling site (null detaches); recording is host-side only,
  // so a profiled run is operation-identical to an unprofiled one.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }
  hprof::LockSiteStats* site() const { return site_; }

 private:
  void RecordGrant(Ctx& ctx, std::uint64_t wait_start, bool contended) {
    const std::uint64_t now = b_->Now(ctx);
    const std::uint32_t id = b_->CtxId(ctx);
    site_->RecordAcquire(id, now - wait_start, contended, b_->ClusterOfCtx(id));
    hold_start_ = now;
  }

  B* b_;
  std::uint32_t fast_attempts_;
  bool broken_barge_;
  McsCore<B> inner_;
  std::string name_;
  typename B::Word outer_;  // 1 = held; the actual lock
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_FISSILE_H_

