// Distributed (MCS queue) locks, written once over the memory backend: the
// original Mellor-Crummey & Scott algorithm and the paper's two HURRICANE
// modifications (Figure 3a/3b).
//
// HECTOR supports only atomic swap (fetch_and_store), so the release path is
// the swap-only MCS variant: releasing may store nil into the lock word even
// though a successor exists, in which case the queue must be repaired (the
// "usurper" dance).  The paper's modifications:
//
//   H1: the per-processor queue node is initialized once, before first use,
//       and re-initialized on the *contended* path whenever it is modified.
//       This removes the `I->next := nil` store from the uncontended acquire.
//
//   H2: the `if I->next != nil` successor check is removed from release; the
//       release always swaps nil into the lock word.  This removes a load
//       and a branch from the uncontended release at the cost of a constant
//       queue-repair overhead whenever there *is* a successor.
//
// Under the simulator backend the uncontended instruction counts match
// Figure 4 exactly:
//   MCS    2 atomic / 2 mem / 3 reg / 5 br
//   H1-MCS 2 atomic / 1 mem / 3 reg / 5 br
//   H2-MCS 2 atomic / 0 mem / 3 reg / 4 br
//
// Queue links are held as caller id + 1 (0 = nil) so the same body runs on
// word-valued backends; waiters spin on the `locked` flag in their own node,
// which the simulator homes on their local memory module -- spinning
// generates no bus or ring traffic, the whole point of Distributed Locks.
//
// Memory orders (honoured natively, ignored by the simulator):
//   tail swap acq_rel; predecessor link store release; grant store release;
//   spin load acquire; rest-state re-initializations relaxed (PostStore).

#ifndef HLOCK_ALGO_MCS_H_
#define HLOCK_ALGO_MCS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/hlock/algo/backend.h"
#include "src/hlock/padded.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

enum class McsVariant {
  kOriginal,  // Figure 3a
  kH1,        // first modification only
  kH2,        // both modifications (Figure 3b)
};

inline const char* McsVariantName(McsVariant v) {
  switch (v) {
    case McsVariant::kOriginal:
      return "mcs";
    case McsVariant::kH1:
      return "h1-mcs";
    case McsVariant::kH2:
      return "h2-mcs";
  }
  return "mcs?";
}

template <class B>
class McsCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  static constexpr std::uint64_t kNil = 0;

  // `home` is the module holding the lock (tail) word; one queue node per
  // caller is placed on that caller's local module.
  McsCore(B* b, McsVariant variant, std::uint32_t home)
      : b_(b), variant_(variant), name_(McsVariantName(variant)) {
    const std::uint32_t n = b_->NumCtxs();
    nodes_ = std::make_unique<Node[]>(n);
    b_->InitWord(tail_, home, kNil);
    for (std::uint32_t i = 0; i < n; ++i) {
      // For H1/H2 the rest state is pre-initialized: next == nil, locked == 1
      // (ready to wait); the contended paths below restore this invariant
      // whenever they modify a node.  The original algorithm initializes
      // next in acquire.
      b_->InitWord(nodes_[i].next, b_->HomeOf(i), kNil);
      b_->InitWord(nodes_[i].locked, b_->HomeOf(i), 1);
    }
  }
  McsCore(const McsCore&) = delete;
  McsCore& operator=(const McsCore&) = delete;

  TaskT<void> Acquire(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    Node& node = nodes_[me - 1];
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = site_ != nullptr ? b_->Now(ctx) : 0;

    if (variant_ == McsVariant::kOriginal) {
      // I->next := nil  -- hoisted out of the critical path by modification H1.
      co_await b_->Store(ctx, node.next, kNil, std::memory_order_relaxed);
    }

    const std::uint64_t pred =
        co_await b_->FetchStore(ctx, tail_, me, std::memory_order_acq_rel);
    // Compare predecessor against nil, branch, return (uncontended exit).
    co_await b_->Exec(ctx, 1, 2);
    if (pred == kNil) {
      if (site_ != nullptr) {
        RecordGrant(ctx, wait_start, /*contended=*/false);
      }
      b_->EndSpan(ctx, span);
      co_return;
    }

    // Contended path: link behind the predecessor and spin on our own node.
    if (site_ != nullptr) {
      site_->EnterQueue(b_->ClusterOfCtx(me - 1));
    }
    if (variant_ == McsVariant::kOriginal) {
      // I->locked := true.  H1/H2 keep the flag pre-set at rest.
      co_await b_->Store(ctx, node.locked, 1, std::memory_order_relaxed);
    }
    co_await b_->Store(ctx, nodes_[pred - 1].next, me, std::memory_order_release);
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      const std::uint64_t locked =
          co_await b_->Load(ctx, node.locked, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (locked == 0) {
        break;
      }
      // Pace the spin: the flag is local, but a back-to-back load loop would
      // monopolize this caller's own memory module and stall remote accesses
      // to the data that happens to live there.
      co_await b_->SpinPause(ctx, sw);
    }
    if (variant_ != McsVariant::kOriginal) {
      // Re-establish the rest-state invariant: the releaser cleared our flag.
      // The store is absorbed by the write buffer (local word, nothing reads
      // it until our next acquire), so modification 1 does not lengthen the
      // handoff chain under contention.
      b_->PostStore(ctx, node.locked, 1);
    }
    if (site_ != nullptr) {
      site_->LeaveQueue();
      RecordGrant(ctx, wait_start, /*contended=*/true);
    }
    b_->EndSpan(ctx, span);
  }

  TaskT<void> Release(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    Node& node = nodes_[me - 1];
    if (site_ != nullptr) {
      site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    b_->ReleaseInstant(ctx, name_);

    std::uint64_t succ = kNil;
    if (variant_ != McsVariant::kH2) {
      // Original / H1: check for a known successor first.
      succ = co_await b_->Load(ctx, node.next, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (succ != kNil) {
        if (variant_ == McsVariant::kH1) {
          b_->PostStore(ctx, node.next, kNil);  // re-init (contended, buffered)
        }
        co_await b_->Store(ctx, nodes_[succ - 1].locked, 0, std::memory_order_release);
        co_await b_->Exec(ctx, 1, 2);
        co_return;
      }
    }

    // Swap nil into the lock word.  If we were the tail, the lock is free and
    // we are done -- this is the whole uncontended release for H2.
    const std::uint64_t old_tail =
        co_await b_->FetchStore(ctx, tail_, kNil, std::memory_order_acq_rel);
    co_await b_->Exec(ctx, 2, 2);
    if (old_tail == me) {
      co_return;
    }

    // Someone enqueued behind us (and under H2 possibly long ago): we have
    // wrongly freed the lock, so repair the queue.  Any caller that swapped
    // itself onto the nil lock word in the window believes it holds the lock
    // (the "usurper"); restore the real tail and splice our waiters after it.
    repairs_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t usurper =
        co_await b_->FetchStore(ctx, tail_, old_tail, std::memory_order_acq_rel);
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (succ == kNil) {
      succ = co_await b_->Load(ctx, node.next, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (succ == kNil) {
        co_await b_->SpinPause(ctx, sw);
      }
    }
    if (variant_ != McsVariant::kOriginal) {
      b_->PostStore(ctx, node.next, kNil);  // re-init (contended, buffered)
    }
    co_await b_->Exec(ctx, 0, 1);
    if (usurper != kNil) {
      // The usurper chain runs first; append our waiters after its tail.
      co_await b_->Store(ctx, nodes_[usurper - 1].next, succ, std::memory_order_release);
    } else {
      co_await b_->Store(ctx, nodes_[succ - 1].locked, 0, std::memory_order_release);
    }
    co_await b_->Exec(ctx, 1, 1);
  }

  // A Distributed Lock acquires by unconditional swap; a true try-acquire
  // needs CAS (a modern-hardware comparison point): grab only if free.
  TaskT<bool> TryAcquire(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    const bool taken = co_await b_->CompareSwap(ctx, tail_, kNil, me,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      RecordGrant(ctx, b_->Now(ctx), /*contended=*/false);
    }
    co_return taken;
  }

  // Number of contended releases that had to repair the queue.
  std::uint64_t repairs() const { return repairs_.load(std::memory_order_relaxed); }

  McsVariant variant() const { return variant_; }
  const std::string& name() const { return name_; }

  // Attaches a profiling site (null detaches); recording is host-side only,
  // so a profiled run is operation-identical to an unprofiled one.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }
  hprof::LockSiteStats* site() const { return site_; }

 private:
  struct alignas(kCacheLineSize) Node {
    typename B::Word next;    // successor's caller id + 1, or 0 (nil)
    typename B::Word locked;  // 1 while the owner must wait
  };

  void RecordGrant(Ctx& ctx, std::uint64_t wait_start, bool contended) {
    const std::uint64_t now = b_->Now(ctx);
    const std::uint32_t id = b_->CtxId(ctx);
    site_->RecordAcquire(id, now - wait_start, contended, b_->ClusterOfCtx(id));
    hold_start_ = now;
  }

  B* b_;
  McsVariant variant_;
  std::string name_;
  typename B::Word tail_;  // caller id + 1 of the queue tail, or 0 (free)
  std::unique_ptr<Node[]> nodes_;
  std::atomic<std::uint64_t> repairs_{0};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_MCS_H_
